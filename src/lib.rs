//! # rfdet — deterministic multithreading without global barriers
//!
//! A from-scratch Rust reproduction of *"Efficient Deterministic
//! Multithreading Without Global Barriers"* (Lu, Zhou, Bergan, Wang —
//! PPoPP 2014): the **RFDet** runtime implementing **deterministic lazy
//! release consistency (DLRC)**, plus everything needed to evaluate it —
//! a pthreads-style baseline, a DThreads-model comparator, a
//! CoreDet-style quantum comparator, and the paper's 17 workloads.
//!
//! This crate is the façade: it re-exports the public API of every
//! sub-crate. Start with [`RfdetBackend`] and the [`DmtCtx`] trait, or
//! run `cargo run --release --example quickstart`.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`api`] | `rfdet-api` | the `DmtCtx` programming surface, configs, stats |
//! | [`trace`] | `rfdet-trace` | flight recorder: schedule traces, replay, shrinking |
//! | [`vclock`] | `rfdet-vclock` | vector clocks / happens-before |
//! | [`mem`] | `rfdet-mem` | COW private spaces, page diffing, allocator |
//! | [`meta`] | `rfdet-meta` | slice store, GC, sync-var table |
//! | [`kendo`] | `rfdet-kendo` | deterministic turn arbitration |
//! | [`core`] | `rfdet-core` | **the paper's contribution: the DLRC runtime** |
//! | [`native`] | `rfdet-native` | nondeterministic "pthreads" baseline |
//! | [`dthreads`] | `rfdet-dthreads` | DThreads-model comparator |
//! | [`quantum`] | `rfdet-quantum` | CoreDet/DMP-style comparator |
//! | [`workloads`] | `rfdet-workloads` | racey + 16 benchmark kernels |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rfdet_api as api;
pub use rfdet_core as core;
pub use rfdet_dthreads as dthreads;
pub use rfdet_kendo as kendo;
pub use rfdet_mem as mem;
pub use rfdet_meta as meta;
pub use rfdet_native as native;
pub use rfdet_quantum as quantum;
pub use rfdet_vclock as vclock;
pub use rfdet_workloads as workloads;

pub use rfdet_api::{
    races_digest, render_races, trace, AccessKind, Addr, AtomicOp, BarrierId, CondId, DmtBackend,
    DmtCtx, DmtCtxExt, FailureKind, FailureReport, FaultAction, FaultPlan, FaultSpec, MonitorMode,
    MutexId, Pod, RaceReport, RaceSite, Replay, RetryPolicy, RfdetOpts, RunConfig, RunError,
    RunOutput, RunTrace, Stats, ThreadFn, ThreadHandle, ThreadReport, Tid, TracedRun, WaitEdge,
    WaitTarget,
};
pub use rfdet_core::RfdetBackend;
pub use rfdet_dthreads::DthreadsBackend;
pub use rfdet_native::NativeBackend;
pub use rfdet_quantum::QuantumBackend;

/// All four backends, labelled as in the paper's figures.
#[must_use]
pub fn all_backends() -> Vec<Box<dyn DmtBackend>> {
    vec![
        Box::new(NativeBackend),
        Box::new(RfdetBackend::ci()),
        Box::new(RfdetBackend::pf()),
        Box::new(DthreadsBackend),
        Box::new(QuantumBackend),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_roster() {
        let names: Vec<String> = all_backends().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["pthreads", "RFDet-ci", "RFDet-pf", "DThreads", "CoreDet-q"]
        );
        let det: Vec<bool> = all_backends()
            .iter()
            .map(|b| b.is_deterministic())
            .collect();
        assert_eq!(det, vec![false, true, true, true, true]);
    }
}
