//! Run any registered benchmark workload on any backend, with timing and
//! the Table-1 profiling counters.
//!
//! ```sh
//! cargo run --release --example run_workload -- ocean RFDet-ci 4 bench
//! cargo run --release --example run_workload -- racey DThreads 8 test
//! ```

use rfdet::workloads::{benchmarks, by_name, Params, Size};
use rfdet::{all_backends, DmtBackend, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: run_workload <workload> [backend] [threads] [test|bench]");
        eprintln!(
            "workloads: racey, {}",
            benchmarks()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        eprintln!(
            "backends:  {}",
            all_backends()
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
    let workload = by_name(&args[0]).unwrap_or_else(|| {
        eprintln!("unknown workload {:?}", args[0]);
        std::process::exit(2);
    });
    let backend_name = args.get(1).map_or("RFDet-ci", String::as_str);
    let backend: Box<dyn DmtBackend> = all_backends()
        .into_iter()
        .find(|b| b.name() == backend_name)
        .unwrap_or_else(|| {
            eprintln!("unknown backend {backend_name:?}");
            std::process::exit(2);
        });
    let threads: usize = args.get(2).map_or(4, |s| s.parse().expect("threads"));
    let size = match args.get(3).map(String::as_str) {
        Some("test") => Size::Test,
        _ => Size::Bench,
    };

    let cfg = RunConfig::default();
    let start = std::time::Instant::now();
    let out = backend.run_expect(&cfg, (workload.factory)(Params::new(threads, size)));
    let elapsed = start.elapsed();

    println!(
        "== {} on {} ({threads} threads, {size:?}) ==",
        workload.name,
        backend.name()
    );
    println!("output:  {}", String::from_utf8_lossy(&out.output).trim());
    println!("time:    {elapsed:?}");
    let s = out.stats;
    println!(
        "syncs:   lock/unlock {}/{}  wait/signal {}/{}  fork/join {}/{}  barrier {}",
        s.locks, s.unlocks, s.waits, s.signals, s.forks, s.joins, s.barriers
    );
    println!(
        "memory:  loads {}  stores {}  store-w/copy {}  page-faults {}",
        s.loads, s.stores, s.stores_with_copy, s.page_faults
    );
    println!(
        "dlrc:    slices {} (merged {})  propagated {}  premerged {}  gc {} (reclaimed {})",
        s.slices,
        s.slices_merged,
        s.slices_propagated,
        s.prelock_premerged,
        s.gc_count,
        s.gc_reclaimed_slices
    );
    println!(
        "engine:  global fences {}  serial commits {}",
        s.global_fences, s.serial_commits
    );
}
