//! The §4.6/§6 extension in action: **lock-free synchronization under
//! strong determinism**.
//!
//! ```sh
//! cargo run --release --example lockfree_extension
//! ```
//!
//! The base paper explicitly does not support ad hoc or lock-free
//! synchronization — "programs using ad hoc synchronization may be
//! incorrect in DLRC (e.g., they may deadlock or violate atomicity)" —
//! and sketches the fix as future work: run atomic operations through
//! Kendo and give them acquire/release propagation. This build
//! implements that sketch ([`DmtCtx::atomic_rmw`] and friends), so the
//! canonical lock-free patterns work *and* are reproducible.

use rfdet::{AtomicOp, DmtBackend, DmtCtx, DmtCtxExt, RfdetBackend, RunConfig};

const TICKET_NEXT: u64 = 4096;
const TICKET_SERVING: u64 = 4104;
const LOG_BASE: u64 = 8192;

/// A ticket lock — pure fetch-add/ load spinning, no runtime mutex — and
/// a work log recording the deterministic service order.
fn program(ctx: &mut dyn DmtCtx) {
    let workers: Vec<_> = (0..3u64)
        .map(|i| {
            ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                for _ in 0..5 {
                    let my_ticket = ctx.atomic_rmw(TICKET_NEXT, AtomicOp::Add(1));
                    while ctx.atomic_load(TICKET_SERVING) != my_ticket {
                        ctx.tick(1);
                    }
                    // Critical section: append (ticket, worker) to the log
                    // with ordinary (non-atomic) accesses — the ticket
                    // handoff's acquire/release edges order them.
                    ctx.write_idx::<u64>(LOG_BASE, my_ticket, i + 1);
                    ctx.tick(25); // some work
                    ctx.atomic_rmw(TICKET_SERVING, AtomicOp::Add(1));
                }
            }))
        })
        .collect();
    for w in workers {
        ctx.join(w);
    }
    let total = ctx.atomic_load(TICKET_NEXT);
    let order: Vec<String> = (0..total)
        .map(|t| ctx.read_idx::<u64>(LOG_BASE, t).to_string())
        .collect();
    ctx.emit_str(&format!("service order: {}", order.join("")));
}

fn main() {
    println!("ticket lock built purely from atomics, under RFDet:");
    let mut orders = std::collections::HashSet::new();
    for run in 0..6 {
        let cfg = RunConfig {
            jitter_seed: Some(run * 31 + 5),
            ..RunConfig::default()
        };
        let out = RfdetBackend::ci().run_expect(&cfg, Box::new(program));
        let text = String::from_utf8_lossy(&out.output).into_owned();
        println!("  run {run}: {text}");
        orders.insert(text);
    }
    assert_eq!(
        orders.len(),
        1,
        "lock-free service order must be deterministic"
    );
    println!(
        "\nFifteen critical sections, zero runtime mutexes, one service\n\
         order — reproduced under six different jitter schedules. The\n\
         per-cell internal sync vars (SyncKey::Atomic) give every atomic\n\
         acquire+release semantics, so even the *order in which the\n\
         ticket lock is granted* is part of the deterministic output."
    );
}
