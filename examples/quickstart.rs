//! Quickstart: run a multithreaded program deterministically.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Four threads increment a shared counter under a lock and append to a
//! shared log *without* one (a data race). Under RFDet both the counter
//! and the racy log are bit-identical on every run; under pthreads the
//! racy part varies.

use rfdet::{DmtBackend, DmtCtx, DmtCtxExt, MutexId, NativeBackend, RfdetBackend, RunConfig};

const COUNTER: u64 = 4096; // an address in the logical shared space
const RACY_LOG: u64 = 8192;

fn program(ctx: &mut dyn DmtCtx) {
    let m = MutexId(0);
    let workers: Vec<_> = (0..4u64)
        .map(|i| {
            ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                for k in 0..100u64 {
                    // Properly synchronized counter.
                    ctx.lock(m);
                    let v: u64 = ctx.read(COUNTER);
                    ctx.write(COUNTER, v + 1);
                    ctx.unlock(m);
                    // Racy log update: classic lost-update race.
                    let cur: u64 = ctx.read(RACY_LOG);
                    ctx.write(RACY_LOG, cur.wrapping_mul(31).wrapping_add(i * 100 + k));
                    ctx.tick(5);
                }
            }))
        })
        .collect();
    for w in workers {
        ctx.join(w);
    }
    let counter: u64 = ctx.read(COUNTER);
    let log: u64 = ctx.read(RACY_LOG);
    ctx.emit_str(&format!("counter={counter} racy_log={log:016x}"));
}

fn main() {
    let cfg = RunConfig::default();

    println!("RFDet (deterministic): five runs");
    let rfdet = RfdetBackend::ci();
    let mut outputs = std::collections::HashSet::new();
    for i in 0..5 {
        let out = rfdet.run_expect(&cfg, Box::new(program));
        let text = String::from_utf8_lossy(&out.output).into_owned();
        println!("  run {i}: {text}");
        outputs.insert(text);
    }
    assert_eq!(outputs.len(), 1, "RFDet must be deterministic");
    println!("  -> one distinct output, data race included\n");

    println!("pthreads (conventional): five runs");
    let mut native_outputs = std::collections::HashSet::new();
    for i in 0..5 {
        let out = NativeBackend.run_expect(&cfg, Box::new(program));
        let text = String::from_utf8_lossy(&out.output).into_owned();
        println!("  run {i}: {text}");
        native_outputs.insert(text);
    }
    println!(
        "  -> {} distinct output(s): the counter is always 400, but the racy\n\
         \x20    log depends on scheduling (on a single CPU it may even look\n\
         \x20    stable — run on a multicore box to watch it diverge)",
        native_outputs.len()
    );
}
