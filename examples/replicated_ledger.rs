//! Deterministic state-machine replication — the paper's second headline
//! application (§2 "Record and Replay": DMT lets replicas agree by
//! replaying *inputs only*).
//!
//! ```sh
//! cargo run --release --example replicated_ledger
//! ```
//!
//! A multithreaded "bank" applies a stream of transfer commands with
//! per-account locks and answers audit queries concurrently. Three
//! replicas run the same program with the same input on separate RFDet
//! instances (imagine separate machines); their final ledger hashes must
//! match bit-for-bit — no interleaving log shipped anywhere.

use rfdet::{DmtBackend, DmtCtx, DmtCtxExt, MutexId, RfdetBackend, RunConfig};

const ACCOUNTS: u64 = 64;
const BALANCES: u64 = 4096; // u64 per account
const AUDITS: u64 = 8192; // audit results

fn account_lock(a: u64) -> MutexId {
    MutexId(100 + a as u32)
}

/// The replicated service. `input_seed` is the *only* input.
fn replica(input_seed: u64) -> rfdet::ThreadFn {
    Box::new(move |ctx: &mut dyn DmtCtx| {
        for a in 0..ACCOUNTS {
            ctx.write_idx::<u64>(BALANCES, a, 1_000);
        }
        // Two transfer workers share the command stream (odd/even split),
        // plus one auditor thread that sums balances under locks.
        let workers: Vec<_> = (0..2u64)
            .map(|w| {
                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                    let mut rng = rfdet::api::DetRng::new(input_seed);
                    for k in 0..600u64 {
                        let from = rng.next_below(ACCOUNTS);
                        let to = rng.next_below(ACCOUNTS);
                        let amount = rng.next_below(50);
                        if k % 2 != w || from == to {
                            continue; // not this worker's command
                        }
                        // Ordered two-lock transfer (no deadlock).
                        let (lo, hi) = (from.min(to), from.max(to));
                        ctx.lock(account_lock(lo));
                        ctx.lock(account_lock(hi));
                        let f: u64 = ctx.read_idx(BALANCES, from);
                        if f >= amount {
                            let t: u64 = ctx.read_idx(BALANCES, to);
                            ctx.write_idx::<u64>(BALANCES, from, f - amount);
                            ctx.write_idx::<u64>(BALANCES, to, t + amount);
                        }
                        ctx.unlock(account_lock(hi));
                        ctx.unlock(account_lock(lo));
                        ctx.tick(20);
                    }
                }))
            })
            .collect();
        let auditor = ctx.spawn(Box::new(|ctx: &mut dyn DmtCtx| {
            for round in 0..10u64 {
                let mut total = 0u64;
                for a in 0..ACCOUNTS {
                    ctx.lock(account_lock(a));
                    total += ctx.read_idx::<u64>(BALANCES, a);
                    ctx.unlock(account_lock(a));
                }
                ctx.write_idx::<u64>(AUDITS, round, total);
                ctx.tick(100);
            }
        }));
        for w in workers {
            ctx.join(w);
        }
        ctx.join(auditor);
        // Ledger digest + the audit trail (audits interleave with
        // transfers, so their values depend on scheduling — which DMT
        // makes a pure function of the input).
        let mut h: u64 = 0xcbf29ce484222325;
        for a in 0..ACCOUNTS {
            let b: u64 = ctx.read_idx(BALANCES, a);
            h = (h ^ b).wrapping_mul(0x100000001B3);
        }
        let audits: Vec<String> = (0..10)
            .map(|r| ctx.read_idx::<u64>(AUDITS, r).to_string())
            .collect();
        ctx.emit_str(&format!("ledger={h:016x} audits=[{}]", audits.join(",")));
    })
}

fn main() {
    let input_seed = 0xFEED_BEEF;
    println!("three replicas, same input, independent executions:");
    let mut states = std::collections::HashSet::new();
    for replica_id in 0..3 {
        // Different physical conditions per "machine".
        let cfg = RunConfig {
            jitter_seed: Some(replica_id * 7 + 1),
            ..RunConfig::default()
        };
        let out = RfdetBackend::ci().run_expect(&cfg, replica(input_seed));
        let text = String::from_utf8_lossy(&out.output).into_owned();
        println!("  replica {replica_id}: {text}");
        states.insert(text);
    }
    assert_eq!(states.len(), 1, "replicas diverged!");
    println!(
        "\nAll replicas reached the identical state — including the audit\n\
         totals, whose values depend on how audits interleave with\n\
         transfers. Only the input (one seed) was shared; no interleaving\n\
         log, no coordination. A different input gives a different (but\n\
         equally replicated) history:"
    );
    let out = RfdetBackend::ci().run_expect(&RunConfig::default(), replica(42));
    println!("  input 42: {}", String::from_utf8_lossy(&out.output));
}
