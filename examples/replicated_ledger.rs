//! Deterministic state-machine replication — the paper's second headline
//! application (§2 "Record and Replay": DMT lets replicas agree by
//! replaying *inputs only*).
//!
//! ```sh
//! cargo run --release --example replicated_ledger
//! ```
//!
//! The replica program is the registered `service.ledger` workload
//! (DESIGN.md §4.12): a sharded in-memory ledger where N workers and the
//! main thread each own an account stripe, ingesting a deterministic
//! request stream of point gets, puts, cross-shard transfers and scans.
//! Three replicas run the same program with the same input on separate
//! RFDet instances under *different* physical conditions (distinct
//! jitter seeds — imagine separate machines); their final state must
//! match bit-for-bit, with no interleaving log shipped anywhere.
//!
//! Everything goes through the typed `run` API: a failed replica
//! surfaces as a `RunError` carrying a structured `FailureReport`, which
//! this example prints (rather than panicking) before demonstrating the
//! recovery story — crash a worker mid-stream, restore the newest
//! checkpoint, replay the tail, and converge with the unfaulted replica.

use rfdet::core::run_failover;
use rfdet::workloads::{service, Params, Size};
use rfdet::{FaultPlan, RfdetBackend, RunConfig};

const WORKERS: usize = 4;

fn replica_cfg(jitter_seed: u64) -> RunConfig {
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.jitter_seed = Some(jitter_seed);
    cfg
}

fn main() {
    use rfdet::DmtBackend as _;
    let params = Params::new(WORKERS, Size::Test);
    let backend = RfdetBackend::ci();

    println!("three replicas, same input, independent executions:");
    let mut states = std::collections::HashSet::new();
    for replica_id in 0..3u64 {
        // Different physical conditions per "machine".
        let cfg = replica_cfg(replica_id * 7 + 1);
        match backend.run(&cfg, service::ledger(params)) {
            Ok(out) => {
                let text = String::from_utf8_lossy(&out.output).into_owned();
                println!("  replica {replica_id}: {text}");
                states.insert(text);
            }
            Err(e) => {
                // A replica failure is a first-class, typed outcome —
                // render the structured report and bail.
                eprintln!("replica {replica_id} failed:\n{}", e.report().render());
                std::process::exit(1);
            }
        }
    }
    assert_eq!(states.len(), 1, "replicas diverged!");
    println!(
        "\nAll replicas reached the identical state — including the\n\
         per-worker checksums, whose values depend on the order\n\
         cross-shard transfers land in each mailbox. Only the input was\n\
         shared; no interleaving log, no coordination.\n"
    );

    // The failover story: crash worker 2 in the last request round,
    // restore the newest checkpoint, replay the input tail, and compare
    // against an unfaulted replica.
    let rounds = service::request_rounds_per_run(WORKERS, Size::Test);
    let crash_op =
        service::OPS_INIT_ROUND + (rounds - 1) * service::ops_per_request_round(WORKERS) + 2;
    let mut cfg = replica_cfg(1);
    cfg.checkpoint_every = 2;
    cfg.trace = Some(format!("service.ledger@{WORKERS}"));
    cfg.fault_plan = FaultPlan::new().panic_at(2, crash_op);
    let bodies = service::ledger_resume(params);
    let report = run_failover(&backend, &cfg, &move || service::ledger(params), &*bodies);
    match &report.crash {
        Some(crash) => println!(
            "crash injected: {:?} on thread {} at sync op {crash_op}",
            crash.kind, crash.tid
        ),
        None => println!("crash plan never fired (unexpected at this coordinate)"),
    }
    match report.recovered_from_epoch {
        Some(epoch) => println!("recovered from checkpoint epoch {epoch}, replayed the tail"),
        None => println!("no checkpoint available; replayed from scratch"),
    }
    assert!(
        report.converged,
        "recovered replica diverged: {:016x} != {:016x}",
        report.recovered_digest, report.reference_digest
    );
    println!(
        "recovered replica digest {:016x} == unfaulted replica digest {:016x}",
        report.recovered_digest, report.reference_digest
    );
    println!(
        "recovery cost {:.1} ms vs {:.1} ms for a full re-run ({:.0}% of it)",
        report.recovery_ms,
        report.full_run_ms,
        report.recovery_ratio() * 100.0
    );
}
