//! Deterministic debugging of a data race — the motivating use case of
//! the paper's introduction.
//!
//! ```sh
//! cargo run --release --example race_debugging
//! ```
//!
//! The "application" has a bug: a worker publishes a result pointer
//! (well, index) *before* finishing the result's payload, and a reader
//! races with it. On a conventional runtime the crash-y observation is
//! intermittent and schedule-dependent; under RFDet it reproduces
//! **identically on every run**, so you can bisect, add prints, and
//! re-run without losing the bug. The paper: strong determinism makes
//! "the most severe races reproducible, and thus, debuggable" (§2).

use rfdet::{trace, DmtBackend, DmtCtx, DmtCtxExt, FaultPlan, RfdetBackend, RunConfig, RunError};

const READY_FLAG: u64 = 4096;
const PAYLOAD: u64 = 4104; // 8 u64s
const OBSERVED: u64 = 8192;

fn buggy_program(ctx: &mut dyn DmtCtx) {
    // Writer: fills the payload, then sets the ready flag — but with an
    // ad hoc (racy) flag instead of a lock or condvar.
    let writer = ctx.spawn(Box::new(|ctx: &mut dyn DmtCtx| {
        for i in 0..8u64 {
            ctx.write_idx::<u64>(PAYLOAD, i, 0xA0 + i);
            ctx.tick(50); // simulated work between field writes
        }
        ctx.write::<u64>(READY_FLAG, 1);
    }));
    // Reader: spins briefly on the flag, then reads the payload. The bug:
    // under DLRC the flag write is a *racy* write, so the reader may see
    // ready=1 while payload writes are not yet visible — or never see the
    // flag at all — but it sees the SAME thing every run.
    let reader = ctx.spawn(Box::new(|ctx: &mut dyn DmtCtx| {
        let mut spins = 0u64;
        while ctx.read::<u64>(READY_FLAG) == 0 && spins < 500 {
            spins += 1;
            ctx.tick(1);
        }
        let mut sum = 0u64;
        for i in 0..8u64 {
            sum = sum.wrapping_add(ctx.read_idx::<u64>(PAYLOAD, i));
        }
        ctx.write::<u64>(OBSERVED, sum);
        ctx.write::<u64>(OBSERVED + 8, spins);
    }));
    ctx.join(writer);
    ctx.join(reader);
    let sum: u64 = ctx.read(OBSERVED);
    let spins: u64 = ctx.read(OBSERVED + 8);
    let complete: u64 = (0..8).map(|i| 0xA0 + i).sum();
    let verdict = if sum == complete {
        "complete"
    } else {
        "TORN/STALE"
    };
    ctx.emit_str(&format!(
        "reader saw sum={sum:#x} ({verdict}) after {spins} spins"
    ));
}

fn main() {
    let cfg = RunConfig::default();
    let backend = RfdetBackend::ci();
    println!("the same buggy execution, ten times under RFDet:");
    let mut distinct = std::collections::HashSet::new();
    for i in 0..10 {
        // Vary physical timing as hard as we can — results must not move.
        let mut c = cfg.clone();
        c.jitter_seed = Some(i);
        c.jitter_max_us = 100;
        let out = backend.run_expect(&c, Box::new(buggy_program));
        let text = String::from_utf8_lossy(&out.output).into_owned();
        println!("  run {i}: {text}");
        distinct.insert(text);
    }
    assert_eq!(distinct.len(), 1);
    println!(
        "\nThe racy observation is frozen: every run (under injected jitter!)\n\
         reproduces the identical buggy state. Add instrumentation, re-run,\n\
         and the bug is still there — that is the DMT debugging story.\n\
         (Note DLRC also explains WHY the reader can spin 500 times and\n\
         never see the flag: without synchronization there is no\n\
         happens-before edge, so the writer's update must not become\n\
         visible — ad hoc synchronization is unsupported by design, §4.6.)"
    );

    // Act two: crash the writer mid-publication with a deterministic
    // injected fault. The run comes back as a typed `RunError` carrying a
    // full failure report — and because the fault is keyed to the logical
    // schedule, the report digest is identical on every rerun.
    println!("\nnow killing the writer at its first sync op (its exit), twice:");
    let mut digests = std::collections::HashSet::new();
    for attempt in 0..2 {
        let mut c = cfg.clone();
        c.jitter_seed = Some(attempt);
        c.jitter_max_us = 100;
        c.fault_plan = FaultPlan::new().panic_at(1, 0);
        let err = backend
            .run(&c, Box::new(buggy_program))
            .expect_err("the injected fault must fail the run");
        assert!(matches!(err, RunError::WorkerPanicked(_)));
        digests.insert(err.report_digest());
        if attempt == 0 {
            println!("{}", err.report().render());
        }
    }
    assert_eq!(digests.len(), 1);
    println!("both crashes produced the same report digest: the failure itself is reproducible.");

    // Act three: the flight recorder. Crash once more with recording on —
    // the failing run persists its schedule trace to disk — then replay
    // that trace and watch the recorder verify its own reproduction.
    println!("\nfinally, recording the crash and replaying it from the persisted trace:");
    let mut c = cfg.clone();
    c.jitter_seed = Some(0);
    c.jitter_max_us = 100;
    c.fault_plan = FaultPlan::new().panic_at(1, 0);
    c.trace = Some("race_debugging".to_owned());
    let run = backend.run_traced(&c, Box::new(buggy_program));
    let err = run
        .result
        .expect_err("the injected fault must fail the run");
    let path = err
        .report()
        .trace_path
        .clone()
        .expect("failing traced runs persist their schedule");
    println!("  trace persisted to {}", path.display());
    let recorded = trace::persist::load(&path).expect("the persisted trace decodes");
    println!("  {}", recorded.summary());
    let replay = backend.replay(&recorded, Box::new(buggy_program));
    assert!(
        replay.reproduced(),
        "replay must reproduce the recorded digest and culprit schedule"
    );
    println!(
        "  replay reproduced the crash: digest match={}, culprit schedule match={:?}\n\
         \nThe crash is now an artifact: a {}-byte file anyone can replay\n\
         (`cargo run -p rfdet-bench --bin replay -- replay <file>`), shrink,\n\
         and debug — no flaky reproduction steps attached.",
        replay.digest_match,
        replay.schedule_match,
        recorded.encode().len(),
    );
}
