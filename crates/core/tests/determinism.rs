//! End-to-end determinism tests for the RFDet runtime.
//!
//! Strong determinism (§3.2, §5.1): a program — *including one full of
//! data races* — must produce bit-identical output on every run, under
//! arbitrary physical timing. We perturb timing with the jitter
//! failure-injection hook and compare output digests.

use rfdet_api::{
    AtomicOp, BarrierId, CondId, DmtBackend, DmtCtx, DmtCtxExt, MonitorMode, MutexId, RunConfig,
};
use rfdet_core::RfdetBackend;

fn cfg(jitter_seed: Option<u64>) -> RunConfig {
    let mut c = RunConfig::small();
    c.rfdet.fault_cost_spins = 0;
    c.jitter_seed = jitter_seed;
    c.jitter_max_us = 30;
    c
}

/// Racy program: three threads hammer overlapping counters without locks,
/// then main prints everything after joining.
fn racy_root(ctx: &mut dyn DmtCtx) {
    let handles: Vec<_> = (0..3u64)
        .map(|i| {
            ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                for k in 0..200u64 {
                    let a: u64 = ctx.read(64);
                    ctx.write(64, a.wrapping_mul(31).wrapping_add(i + k));
                    let b: u64 = ctx.read(128 + 8 * i);
                    ctx.write(128 + 8 * i, b + k);
                    ctx.tick(3);
                }
            }))
        })
        .collect();
    for h in handles {
        ctx.join(h);
    }
    let x: u64 = ctx.read(64);
    let y0: u64 = ctx.read(128);
    let y1: u64 = ctx.read(136);
    let y2: u64 = ctx.read(144);
    ctx.emit_str(&format!("{x},{y0},{y1},{y2}"));
}

fn digest_of(backend: &RfdetBackend, seed: Option<u64>, root: fn(&mut dyn DmtCtx)) -> u64 {
    let out = backend.run_expect(&cfg(seed), Box::new(root));
    out.output_digest()
}

#[test]
fn racy_program_is_deterministic_across_runs_and_jitter() {
    let backend = RfdetBackend::ci();
    let baseline = digest_of(&backend, None, racy_root);
    for seed in [1u64, 2, 3, 99] {
        assert_eq!(
            digest_of(&backend, Some(seed), racy_root),
            baseline,
            "jitter seed {seed} changed a racy program's output"
        );
    }
}

#[test]
fn pf_mode_is_equally_deterministic() {
    let backend = RfdetBackend::pf();
    let baseline = digest_of(&backend, None, racy_root);
    for seed in [7u64, 8] {
        assert_eq!(digest_of(&backend, Some(seed), racy_root), baseline);
    }
}

#[test]
fn ci_and_pf_agree_with_each_other() {
    // Both monitoring modes implement the same memory model, so even racy
    // results must agree between them.
    assert_eq!(
        digest_of(&RfdetBackend::ci(), None, racy_root),
        digest_of(&RfdetBackend::pf(), None, racy_root),
    );
}

fn optimization_matrix() -> Vec<RunConfig> {
    let mut cfgs = Vec::new();
    for merging in [false, true] {
        for prelock in [false, true] {
            for lazy in [false, true] {
                for monitor in [MonitorMode::Ci, MonitorMode::Pf] {
                    let mut c = cfg(Some(5));
                    c.rfdet.slice_merging = merging;
                    c.rfdet.prelock = prelock;
                    c.rfdet.lazy_writes = lazy;
                    c.rfdet.monitor = monitor;
                    cfgs.push(c);
                }
            }
        }
    }
    cfgs
}

/// Lock-based program whose result is schedule-independent, so every
/// optimization combination must produce the same answer.
fn locked_root(ctx: &mut dyn DmtCtx) {
    let m = MutexId(0);
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                for k in 0..60u64 {
                    ctx.lock(m);
                    let v: u64 = ctx.read(4096);
                    ctx.write(4096, v + i * 1000 + k);
                    ctx.unlock(m);
                    ctx.tick((i + 1) * 7);
                }
            }))
        })
        .collect();
    for h in handles {
        ctx.join(h);
    }
    let v: u64 = ctx.read(4096);
    ctx.emit_str(&format!("sum={v}"));
}

#[test]
fn every_optimization_combination_gives_the_same_result() {
    let expected = {
        // Compute the schedule-independent expectation directly.
        let mut v = 0u64;
        for i in 0..4u64 {
            for k in 0..60 {
                v += i * 1000 + k;
            }
        }
        format!("sum={v}").into_bytes()
    };
    for c in optimization_matrix() {
        let out = RfdetBackend::default().run_expect(&c, Box::new(locked_root));
        assert_eq!(
            out.output, expected,
            "wrong result with opts merging={} prelock={} lazy={} monitor={:?}",
            c.rfdet.slice_merging, c.rfdet.prelock, c.rfdet.lazy_writes, c.rfdet.monitor
        );
    }
}

#[test]
fn condvar_pingpong_is_deterministic() {
    fn root(ctx: &mut dyn DmtCtx) {
        let m = MutexId(0);
        let cv = CondId(0);
        let flag = 256u64; // 0 = producer's turn, 1 = consumer's turn
        let slot = 264u64;
        let acc = 272u64;
        let consumer = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            for _ in 0..40 {
                ctx.lock(m);
                while ctx.read::<u64>(flag) == 0 {
                    ctx.cond_wait(cv, m);
                }
                let v: u64 = ctx.read(slot);
                let a: u64 = ctx.read(acc);
                ctx.write(acc, a.wrapping_mul(3).wrapping_add(v));
                ctx.write(flag, 0u64);
                ctx.cond_signal(cv);
                ctx.unlock(m);
            }
        }));
        for i in 0..40u64 {
            ctx.lock(m);
            while ctx.read::<u64>(flag) == 1 {
                ctx.cond_wait(cv, m);
            }
            ctx.write(slot, i * i);
            ctx.write(flag, 1u64);
            ctx.cond_signal(cv);
            ctx.unlock(m);
        }
        ctx.join(consumer);
        let a: u64 = ctx.read(acc);
        ctx.emit_str(&format!("acc={a}"));
    }
    let backend = RfdetBackend::ci();
    let base = backend.run_expect(&cfg(None), Box::new(root));
    assert!(base.stats.waits > 0, "the test must actually block");
    assert!(base.stats.signals >= 80);
    for seed in [11u64, 12, 13] {
        let out = backend.run_expect(&cfg(Some(seed)), Box::new(root));
        assert_eq!(out.output, base.output);
    }
}

#[test]
fn barrier_phases_see_all_prior_writes() {
    fn root(ctx: &mut dyn DmtCtx) {
        let b = BarrierId(0);
        let n = 4u64;
        // Each thread writes its cell, barriers, then reads all cells and
        // writes a checksum; repeat for several phases.
        let handles: Vec<_> = (0..n)
            .map(|i| {
                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                    for phase in 0..5u64 {
                        ctx.write_idx::<u64>(1024, i, phase * 100 + i);
                        ctx.barrier(b, 4);
                        let mut sum = 0u64;
                        for j in 0..4u64 {
                            sum += ctx.read_idx::<u64>(1024, j);
                        }
                        ctx.write_idx::<u64>(2048, i, sum);
                        ctx.barrier(b, 4);
                    }
                }))
            })
            .collect();
        for h in handles {
            ctx.join(h);
        }
        let mut all = Vec::new();
        for i in 0..n {
            all.push(ctx.read_idx::<u64>(2048, i).to_string());
        }
        ctx.emit_str(&all.join(","));
    }
    let backend = RfdetBackend::ci();
    let out = backend.run_expect(&cfg(Some(3)), Box::new(root));
    // Every thread's final checksum is the phase-4 sum: Σ (400 + i).
    let expected: u64 = (0..4u64).map(|i| 400 + i).sum();
    let expected = format!("{expected},{expected},{expected},{expected}");
    assert_eq!(out.output, expected.as_bytes());
    assert_eq!(out.stats.barriers, 4 * 5 * 2);
    // And it is stable under jitter.
    let again = backend.run_expect(&cfg(Some(77)), Box::new(root));
    assert_eq!(again.output, out.output);
}

/// Regression test: the parent's writes *around* a spawn must reach
/// every child through the next sync edge. The child's initial clock is
/// seeded from the spawn boundary; seeding it from the parent's
/// post-tick clock instead made the child claim the parent's next slice
/// (stamped with exactly that clock) as already-seen, so its writes —
/// which happen after the memory fork — were filtered as redundant at
/// every later edge and lost forever. Two windows are exercised: writes
/// between two spawns (missable by the first child) and writes after
/// the last spawn (missable by the last child, the shape that lost
/// ledger deposits in `service.ledger`).
#[test]
fn children_see_parent_writes_made_after_their_fork() {
    fn root(ctx: &mut dyn DmtCtx) {
        let b = BarrierId(9);
        let child = |i: u64| {
            Box::new(move |ctx: &mut dyn DmtCtx| {
                ctx.barrier(b, 3);
                let between: u64 = ctx.read(512);
                let after: u64 = ctx.read(520);
                ctx.emit_str(&format!("t{i}:{between},{after};"));
            })
        };
        let h1 = ctx.spawn(child(1));
        ctx.write(512u64, 0xBE7_u64); // between the two spawns
        let h2 = ctx.spawn(child(2));
        ctx.write(520u64, 0xAF7E2_u64); // after the last spawn
        ctx.barrier(b, 3);
        ctx.join(h1);
        ctx.join(h2);
    }
    let backend = RfdetBackend::ci();
    let out = backend.run_expect(&cfg(None), Box::new(root));
    assert_eq!(
        String::from_utf8_lossy(&out.output),
        format!("t1:{0},{1};t2:{0},{1};", 0xBE7, 0xAF7E2)
    );
}

#[test]
fn unsynchronized_thread_never_blocks_on_others_locks() {
    // The §3.1 scenario: T1 and T3 fight over a lock while T2 only
    // computes. T2 must finish its work without any lock acquisitions
    // appearing in its path — we verify it completes and the result is
    // deterministic (progress is observable as the run terminating).
    fn root(ctx: &mut dyn DmtCtx) {
        let m = MutexId(9);
        let t1 = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            for _ in 0..100 {
                ctx.lock(m);
                ctx.update::<u64>(512, |v| v + 1);
                ctx.unlock(m);
            }
        }));
        let t2 = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            let mut acc = 7u64;
            for k in 0..5000u64 {
                acc = acc.wrapping_mul(1099511628211).wrapping_add(k);
                ctx.tick(1);
            }
            ctx.write(600, acc);
        }));
        let t3 = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            for _ in 0..100 {
                ctx.lock(m);
                ctx.update::<u64>(512, |v| v + 3);
                ctx.unlock(m);
            }
        }));
        ctx.join(t1);
        ctx.join(t2);
        ctx.join(t3);
        let locks: u64 = ctx.read(512);
        let compute: u64 = ctx.read(600);
        ctx.emit_str(&format!("{locks},{compute}"));
    }
    let backend = RfdetBackend::ci();
    let a = backend.run_expect(&cfg(Some(1)), Box::new(root));
    let b = backend.run_expect(&cfg(Some(2)), Box::new(root));
    assert_eq!(a.output, b.output);
    assert!(a.output.starts_with(b"400,"));
}

#[test]
fn gc_reclaims_under_pressure_without_changing_results() {
    fn root(ctx: &mut dyn DmtCtx) {
        let m = MutexId(0);
        let handles: Vec<_> = (0..2u64)
            .map(|i| {
                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                    for k in 0..50u64 {
                        ctx.lock(m);
                        // Fat slices: touch several pages.
                        for p in 0..4u64 {
                            ctx.write(8192 + p * 4096 + 8 * i, k * p);
                        }
                        ctx.unlock(m);
                    }
                }))
            })
            .collect();
        for h in handles {
            ctx.join(h);
        }
        let v: u64 = ctx.read(8192 + 3 * 4096 + 8);
        ctx.emit_str(&format!("{v}"));
    }
    let mut tight = cfg(None);
    tight.meta_capacity_bytes = 8 << 10; // force GC
    tight.gc_threshold = 0.5;
    let out = RfdetBackend::ci().run_expect(&tight, Box::new(root));
    assert!(out.stats.gc_count > 0, "GC must have triggered");
    let mut roomy = cfg(None);
    roomy.meta_capacity_bytes = 64 << 20;
    let out2 = RfdetBackend::ci().run_expect(&roomy, Box::new(root));
    assert_eq!(out.output, out2.output, "GC must be invisible to results");
    assert_eq!(out2.stats.gc_count, 0);
}

#[test]
fn barrier_reused_across_episodes_survives_gc() {
    // The same BarrierId runs many episodes while a tight metadata budget
    // forces GC passes between them. Barrier propagation re-walks slice
    // lists from cursor 0, so it must cope with pruned prefixes: the
    // result has to match a run with no GC at all.
    fn root(ctx: &mut dyn DmtCtx) {
        let b = BarrierId(7);
        let n = 2u64;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                    for phase in 0..20u64 {
                        // Fat writes so slices pile up and trip the GC
                        // threshold mid-sequence.
                        for p in 0..3u64 {
                            ctx.write(16384 + p * 4096 + 8 * i, phase * 10 + i);
                        }
                        ctx.barrier(b, 2);
                        let mut sum = 0u64;
                        for j in 0..n {
                            for p in 0..3u64 {
                                sum += ctx.read::<u64>(16384 + p * 4096 + 8 * j);
                            }
                        }
                        ctx.write_idx::<u64>(4096, i, sum);
                        ctx.barrier(b, 2);
                    }
                }))
            })
            .collect();
        for h in handles {
            ctx.join(h);
        }
        let a: u64 = ctx.read_idx(4096, 0);
        let c: u64 = ctx.read_idx(4096, 1);
        ctx.emit_str(&format!("{a},{c}"));
    }
    let mut tight = cfg(None);
    tight.meta_capacity_bytes = 8 << 10;
    tight.gc_threshold = 0.5;
    let out = RfdetBackend::ci().run_expect(&tight, Box::new(root));
    assert!(out.stats.gc_count > 0, "GC must trigger between episodes");
    assert_eq!(out.stats.barriers, 2 * 20 * 2);
    let mut roomy = cfg(None);
    roomy.meta_capacity_bytes = 64 << 20;
    let out2 = RfdetBackend::ci().run_expect(&roomy, Box::new(root));
    assert_eq!(out2.stats.gc_count, 0);
    assert_eq!(
        out.output, out2.output,
        "pruning between barrier episodes changed the barrier's result"
    );
}

#[test]
fn sync_hot_path_runs_out_of_per_thread_caches() {
    // Structural evidence for the sharded hot path: after each thread's
    // first touch of a sync object, every further acquire must be served
    // from the per-context handle cache (no shard-table lookups), and the
    // sharded/per-class locks must be effectively uncontended.
    fn root(ctx: &mut dyn DmtCtx) {
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                    for _ in 0..100u64 {
                        ctx.atomic_rmw(904, AtomicOp::Add(i));
                        ctx.atomic_rmw(912 + 8 * i, AtomicOp::Add(1));
                    }
                }))
            })
            .collect();
        for h in handles {
            ctx.join(h);
        }
    }
    let out = RfdetBackend::ci().run_expect(&cfg(Some(9)), Box::new(root));
    assert_eq!(out.stats.atomics, 4 * 200);
    let s = &out.stats;
    // Distinct (thread, key) pairs bound the misses: 4 threads × 2 atomic
    // cells (shared + private) plus a handful of internal vars (thread
    // lifecycle). Everything else must be a cache hit.
    assert!(
        s.sync_var_cache_misses <= 4 * 2 + 16,
        "cold misses only: {} misses",
        s.sync_var_cache_misses
    );
    assert!(
        s.sync_var_cache_hits >= 700,
        "steady state must hit the handle cache: {} hits",
        s.sync_var_cache_hits
    );
    // The turn protocol serializes queue/shard access, so contention on
    // the split locks should be rare even under 4 threads.
    assert!(
        s.shard_lock_contended + s.queue_lock_contended <= s.sync_ops() / 10,
        "sharded locks contended {}+{} times over {} sync ops",
        s.shard_lock_contended,
        s.queue_lock_contended,
        s.sync_ops()
    );
}

#[test]
fn byte_granularity_race_merge_matches_paper_example() {
    // §4.6: y=0 initially; T2 writes y=256, T3 writes y=255 concurrently;
    // byte-granularity merging yields 511 somewhere downstream. We check
    // (a) determinism and (b) that the merged value is one of the
    // semantically-explainable outcomes {255, 256, 511}.
    fn root(ctx: &mut dyn DmtCtx) {
        let y = 700u64;
        let t2 = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            ctx.write::<u32>(y, 256);
        }));
        let t3 = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            ctx.write::<u32>(y, 255);
        }));
        ctx.join(t2);
        ctx.join(t3);
        let v: u32 = ctx.read(y);
        ctx.emit_str(&format!("{v}"));
    }
    let backend = RfdetBackend::ci();
    let out = backend.run_expect(&cfg(None), Box::new(root));
    let v: u32 = String::from_utf8(out.output.clone())
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        [255, 256, 511].contains(&v),
        "merged value {v} is not byte-explainable"
    );
    for seed in [21u64, 22, 23, 24] {
        let again = backend.run_expect(&cfg(Some(seed)), Box::new(root));
        assert_eq!(
            again.output, out.output,
            "race resolution must be deterministic"
        );
    }
}
