//! End-to-end checkpoint/restore and sharded-replay tests (DESIGN.md
//! §4.11), driven through the resumable `chaos.long_haul` workload.
//!
//! The invariant under test everywhere: a run continued from a
//! consistent-cut checkpoint is *byte-identical* to the uninterrupted
//! run — same output, same later checkpoints — because the cut captures
//! every determinism-relevant input (clocks, pages, heap, sync table,
//! fault coordinates) and the resume body replays the exact post-cut op
//! sequence.

use rfdet_api::{DmtBackend, FaultPlan, RunConfig, TracedRun};
use rfdet_core::RfdetBackend;
use rfdet_trace::{persist, Checkpoint};
use rfdet_workloads::{chaos, Params, Size};

/// Worker count; barrier parties are `WORKERS + 1` (main participates).
const WORKERS: usize = 3;
/// 12 test-size rounds with a cadence of 4 → checkpoints at 4, 8, 12.
const EVERY: u64 = 4;

fn params() -> Params {
    Params::new(WORKERS, Size::Test)
}

fn base_cfg() -> RunConfig {
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(10_000);
    cfg.checkpoint_every = EVERY;
    cfg.persist_checkpoints = false;
    cfg.trace = Some(format!("chaos.long_haul@{WORKERS}"));
    cfg
}

fn run_full() -> TracedRun {
    RfdetBackend::ci().run_traced(&base_cfg(), chaos::long_haul(params()))
}

fn resumed(cfg: &RunConfig, ckpt: &Checkpoint) -> TracedRun {
    let bodies = chaos::long_haul_resume(params());
    RfdetBackend::ci().run_resumed(cfg, ckpt, &|tid| bodies(tid))
}

#[test]
fn full_run_collects_the_checkpoint_chain() {
    let run = run_full();
    let out = run.result.expect("clean long_haul run");
    assert!(!out.output.is_empty());
    let epochs: Vec<u64> = run.checkpoints.iter().map(|c| c.epoch).collect();
    assert_eq!(epochs, vec![4, 8, 12], "cadence 4 over 12 eligible rounds");
    for c in &run.checkpoints {
        assert_eq!(c.threads.len(), WORKERS + 1, "full membership");
        assert!(c.threads.iter().all(|t| t.alive));
        assert!(c.finished.is_empty());
        assert_eq!(c.backend, "RFDet-ci");
    }
    assert!(run.warnings.is_empty(), "no persistence warnings in-memory");
    // 3 checkpoints × 4 threads contributed.
    assert_eq!(out.stats.checkpoints_contributed, 12);
}

#[test]
fn crash_resume_recovers_to_the_identical_digest() {
    let baseline = run_full();
    let base_out = baseline.result.as_ref().expect("clean baseline").clone();

    // Crash the run mid-flight, after the epoch-8 checkpoint persisted:
    // worker 2 executes 3 sync ops per round, so op 30 lands in round 10.
    let dir = std::env::temp_dir().join(format!("rfdet-ckpt-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let mut faulted_cfg = base_cfg();
    faulted_cfg.persist_checkpoints = true;
    faulted_cfg.checkpoint_dir = Some(dir.clone());
    faulted_cfg.fault_plan = FaultPlan::new().panic_at(2, 30);
    let crashed = RfdetBackend::ci().run_traced(&faulted_cfg, chaos::long_haul(params()));
    let err = crashed
        .result
        .expect_err("injected panic must fail the run");
    assert_eq!(err.report().tid, 2);
    assert!(crashed.warnings.is_empty(), "persistence must have worked");

    // Recover from the latest on-disk checkpoint: epoch 8, the last one
    // sealed before the crash.
    let run_key = crashed
        .checkpoints
        .first()
        .expect("pre-crash chain")
        .run_key();
    let chain = persist::checkpoint_chain(&dir, run_key);
    assert_eq!(
        chain.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
        vec![4, 8],
        "epoch 12 was never reached"
    );
    let (epoch, path) = persist::latest_checkpoint(&dir, run_key).expect("latest checkpoint");
    assert_eq!(epoch, 8);
    let ckpt = persist::load_checkpoint(&path).expect("decode persisted checkpoint");

    // Resume under the recorded config minus the fault plan (the crash
    // cause): the continuation must converge on the clean run exactly.
    let resume = resumed(&base_cfg(), &ckpt);
    let out = resume.result.expect("resumed run completes");
    assert_eq!(out.output, base_out.output, "byte-identical recovery");
    assert_eq!(out.output_digest(), base_out.output_digest());
    assert_eq!(
        resume
            .checkpoints
            .iter()
            .map(Checkpoint::digest)
            .collect::<Vec<_>>(),
        vec![baseline.checkpoints[2].digest()],
        "the resumed run reproduces the epoch-12 checkpoint bit-for-bit"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unwritable_checkpoint_dir_degrades_to_warnings_not_failure() {
    // Point checkpoint_dir *under a regular file*, which fails with
    // ENOTDIR for any user (a read-only directory would be bypassed by
    // root, which CI containers run as). Persistence must degrade to
    // one warning per missed checkpoint; the run itself — output,
    // in-memory chain, digests — must be untouched.
    let file = std::env::temp_dir().join(format!("rfdet-ckpt-notdir-{}", std::process::id()));
    std::fs::write(&file, b"not a directory").expect("create blocker file");
    let mut cfg = base_cfg();
    cfg.persist_checkpoints = true;
    cfg.checkpoint_dir = Some(file.join("ckpts"));
    let run = RfdetBackend::ci().run_traced(&cfg, chaos::long_haul(params()));
    std::fs::remove_file(&file).ok();

    let baseline = run_full();
    let out = run
        .result
        .expect("persistence failure must not fail the run");
    assert_eq!(
        out.output,
        baseline.result.expect("clean baseline").output,
        "degraded run is still byte-identical"
    );
    assert_eq!(run.checkpoints.len(), 3, "in-memory chain is complete");
    assert_eq!(run.warnings.len(), 3, "one warning per unpersisted epoch");
    for w in &run.warnings {
        assert!(w.contains("not persisted"), "warning text: {w}");
    }
}

#[test]
fn stop_at_checkpoint_is_a_clean_partial_stop() {
    let mut cfg = base_cfg();
    cfg.stop_at_checkpoint = Some(4);
    let run = RfdetBackend::ci().run_traced(&cfg, chaos::long_haul(params()));
    let out = run.result.expect("a shard stop is not a failure");
    assert!(
        out.output.is_empty(),
        "long_haul emits only after its final round"
    );
    assert_eq!(run.checkpoints.len(), 1);
    assert_eq!(run.checkpoints[0].epoch, 4);
}

#[test]
fn sharded_replay_reproduces_the_serial_chain_and_output() {
    let baseline = run_full();
    let base_out = baseline.result.as_ref().expect("clean baseline").clone();
    let chain = &baseline.checkpoints;
    assert_eq!(chain.len(), 3);

    // Shard 0 replays from the start up to the first checkpoint; each
    // later shard resumes at checkpoint k and stops at k+1. Terminal
    // checkpoint digests must match the recorded chain bit-for-bit —
    // that is the whole verification story for parallel shard replay.
    let mut shard0_cfg = base_cfg();
    shard0_cfg.stop_at_checkpoint = Some(chain[0].epoch);
    let shard0 = RfdetBackend::ci().run_traced(&shard0_cfg, chaos::long_haul(params()));
    shard0.result.expect("shard 0 stops cleanly");
    assert_eq!(shard0.checkpoints.len(), 1);
    assert_eq!(shard0.checkpoints[0].digest(), chain[0].digest());

    for k in 0..2 {
        let mut cfg = base_cfg();
        cfg.stop_at_checkpoint = Some(chain[k + 1].epoch);
        let shard = resumed(&cfg, &chain[k]);
        shard.result.expect("mid shard stops cleanly");
        let last = shard.checkpoints.last().expect("terminal checkpoint");
        assert_eq!(
            last.digest(),
            chain[k + 1].digest(),
            "shard {} terminal checkpoint diverged",
            k + 1
        );
    }

    // The tail shard runs to completion and must reproduce the full
    // run's output exactly.
    let tail = resumed(&base_cfg(), &chain[2]);
    let out = tail.result.expect("tail shard completes");
    assert_eq!(out.output, base_out.output);
    assert_eq!(out.output_digest(), base_out.output_digest());
}
