//! Crash-failover convergence (DESIGN.md §4.12): kill a worker at a
//! FaultPlan coordinate mid-stream, restore the last checkpoint, replay
//! the input tail, and require the recovered replica's digest to be
//! byte-identical to an unfaulted replica's — at 2, 4 and 8 threads.

use rfdet_api::{FailureKind, FaultPlan, RunConfig};
use rfdet_core::{run_failover, RfdetBackend};
use rfdet_workloads::{service, Params, Size};

/// Checkpoint cadence in barrier episodes. Test scale runs 7 episodes
/// (init + 6 request rounds), so checkpoints seal at epochs 2, 4, 6.
const EVERY: u64 = 2;

fn cfg_for(workers: usize, plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(10_000);
    cfg.checkpoint_every = EVERY;
    cfg.trace = Some(format!("service.ledger@{workers}"));
    cfg.fault_plan = plan;
    cfg
}

/// A sync-op index inside the *last* request round for a worker: past
/// the epoch-6 checkpoint, so recovery restores epoch 6 and replays
/// exactly one round.
fn late_crash_op(workers: usize) -> u64 {
    service::OPS_INIT_ROUND + 5 * service::ops_per_request_round(workers) + 2
}

fn report_for(workers: usize, plan: FaultPlan) -> rfdet_core::FailoverReport {
    let p = Params::new(workers, Size::Test);
    let bodies = service::ledger_resume(p);
    run_failover(
        &RfdetBackend::ci(),
        &cfg_for(workers, plan),
        &move || service::ledger(p),
        &*bodies,
    )
}

#[test]
fn late_crash_recovers_from_the_last_checkpoint_and_converges() {
    for workers in [2usize, 4, 8] {
        let victim = 2u32;
        let plan = FaultPlan::new().panic_at(victim, late_crash_op(workers));
        let r = report_for(workers, plan);
        let crash = r.crash.as_ref().unwrap_or_else(|| {
            panic!(
                "fault must fire at {workers} threads (op {})",
                late_crash_op(workers)
            )
        });
        assert_eq!(crash.kind, FailureKind::Panic, "{workers} threads");
        assert_eq!(crash.tid, victim, "{workers} threads");
        assert_eq!(
            r.recovered_from_epoch,
            Some(6),
            "{workers} threads: crash in round 6 recovers from epoch 6"
        );
        assert!(
            r.converged,
            "{workers} threads: recovered digest {:016x} != reference {:016x}",
            r.recovered_digest, r.reference_digest
        );
    }
}

#[test]
fn crash_before_the_first_checkpoint_recovers_from_scratch() {
    // Op 2 is the first lock of request round 1 — before epoch 2 seals.
    let plan = FaultPlan::new().panic_at(1, 2);
    let r = report_for(4, plan);
    assert!(r.crash.is_some(), "early fault must fire");
    assert_eq!(r.recovered_from_epoch, None, "no checkpoint existed yet");
    assert!(r.converged, "from-scratch replay still converges");
}

#[test]
fn plan_past_the_end_of_the_run_is_a_clean_convergent_noop() {
    let plan = FaultPlan::new().panic_at(2, 1_000_000);
    let r = report_for(4, plan);
    assert!(r.crash.is_none(), "coordinate never reached");
    assert!(r.converged);
    assert_eq!(r.recovered_digest, r.reference_digest);
}

#[test]
fn failover_recovers_through_persisted_checkpoints_too() {
    let workers = 4usize;
    let dir = std::env::temp_dir().join(format!("rfdet-failover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let mut cfg = cfg_for(
        workers,
        FaultPlan::new().panic_at(2, late_crash_op(workers)),
    );
    cfg.persist_checkpoints = true;
    cfg.checkpoint_dir = Some(dir.clone());
    let p = Params::new(workers, Size::Test);
    let bodies = service::ledger_resume(p);
    let r = run_failover(
        &RfdetBackend::ci(),
        &cfg,
        &move || service::ledger(p),
        &*bodies,
    );
    std::fs::remove_dir_all(&dir).ok();
    assert!(r.crash.is_some());
    assert_eq!(r.recovered_from_epoch, Some(6));
    assert!(r.converged, "on-disk recovery path converges");
}
