//! Consistent-cut checkpoint capture (DESIGN.md §4.11).
//!
//! A checkpoint rides a *full-membership barrier episode*: the one point
//! in the DLRC protocol where every live thread is provably at the same
//! synchronization boundary without any global barrier being added —
//! the application already paid for this one. Eligibility is decided
//! inside the last arriver's turn ([`decide`]); per-thread state is then
//! captured *off turn* by each participant right after its own barrier
//! merge ([`contribute`]), so capture parallelizes exactly like
//! propagation does and the turn pipeline never stalls on page copies.
//!
//! Eligibility (all three, checked in-turn):
//!
//! 1. **Full membership** — every live thread is a participant of this
//!    episode. Threads parked on mutexes/condvars/joins are live but not
//!    at the barrier, so their in-flight wakeup state would be lost.
//! 2. **No mutex held, no waiter queued** — mutex ownership is runtime
//!    queue state the checkpoint record deliberately does not carry.
//! 3. **Every recorded release ≤ upper** — post-merge, each participant's
//!    clock dominates the episode's upper limit, so every slice any
//!    future acquire could need has already been propagated into every
//!    survivor. That is what makes "restore with empty slice lists and
//!    zero cursors" sound. The check matters for *unjoined dead
//!    threads*: their exit release can exceed `upper`, and restoring
//!    without their unpropagated slices would lose their writes to a
//!    later joiner — such episodes are simply ineligible.
//!
//! The episode counter advances only on eligible episodes, so epoch
//! numbering is itself deterministic: the same run always checkpoints at
//! the same episodes with the same contents, which is what lets sharded
//! replay compare checkpoint digests byte-for-byte.

use crate::ctx::RfdetCtx;
use parking_lot::Mutex;
use rfdet_api::Tid;
use rfdet_mem::HeapState;
use rfdet_meta::SyncKey;
use rfdet_trace::{
    persist, sync_class, Checkpoint, CkptFreeList, CkptHeap, CkptPage, CkptSyncVar, CkptThread,
};
use rfdet_vclock::VClock;

/// Panic payload for the clean shard stop
/// ([`rfdet_api::RunConfig::stop_at_checkpoint`]): after contributing to
/// the target epoch every participant unwinds with this token, the
/// backend recognizes it and finishes the thread without recording a
/// failure. Partial output plus the terminal checkpoint *are* the result.
pub(crate) struct CkptStop;

/// One live thread's contribution to a pending checkpoint.
struct PendingCkpt {
    /// Number of live participants still expected to contribute.
    expected: usize,
    /// The checkpoint under construction: global seal data and
    /// dead-thread entries were filled in-turn by [`decide`]; live
    /// fragments arrive off-turn through [`CkptCollector::add_fragment`].
    ckpt: Checkpoint,
}

#[derive(Default)]
struct CkptInner {
    /// Eligible-episode counter — the epoch id. Seeded from the source
    /// checkpoint on resume so a resumed run's chain continues the
    /// original numbering.
    episodes: u64,
    pending: Option<PendingCkpt>,
    collected: Vec<Checkpoint>,
    warnings: Vec<String>,
}

/// Run-wide checkpoint assembly state, one per [`crate::shared::RuntimeShared`].
///
/// The lock is uncontended in the steady state: [`decide`] runs inside a
/// turn, and the off-turn [`contribute`] calls take it once per
/// participant per checkpointed episode.
#[derive(Default)]
pub(crate) struct CkptCollector {
    inner: Mutex<CkptInner>,
}

impl CkptCollector {
    /// Seeds the eligible-episode counter (resume: continue the source
    /// run's epoch numbering instead of restarting at 1).
    pub fn seed_episodes(&self, episodes: u64) {
        self.inner.lock().episodes = episodes;
    }

    /// Records a non-fatal degradation (e.g. an unpersistable file).
    pub fn warn(&self, msg: String) {
        self.inner.lock().warnings.push(msg);
    }

    /// Drains the run's results at teardown.
    pub fn take_results(&self) -> (Vec<Checkpoint>, Vec<String>) {
        let mut inner = self.inner.lock();
        (
            std::mem::take(&mut inner.collected),
            std::mem::take(&mut inner.warnings),
        )
    }

    /// Deposits one live thread's fragment. Returns the sealed
    /// checkpoint when this was the last expected contribution — the
    /// caller persists it *outside* the lock.
    fn add_fragment(&self, frag: CkptThread) -> Option<Checkpoint> {
        let mut inner = self.inner.lock();
        let pending = inner
            .pending
            .as_mut()
            .expect("fragment contributed with no checkpoint pending");
        pending.ckpt.threads.push(frag);
        pending.expected -= 1;
        if pending.expected > 0 {
            return None;
        }
        let mut sealed = inner.pending.take().expect("just observed").ckpt;
        sealed.threads.sort_by_key(|t| t.tid);
        Some(sealed)
    }
}

fn key_to_class(key: SyncKey) -> (u8, u64) {
    match key {
        SyncKey::Mutex(id) => (sync_class::MUTEX, u64::from(id)),
        SyncKey::Cond(id) => (sync_class::COND, u64::from(id)),
        SyncKey::Barrier(id) => (sync_class::BARRIER, u64::from(id)),
        SyncKey::Thread(tid) => (sync_class::THREAD, u64::from(tid)),
        SyncKey::Atomic(addr) => (sync_class::ATOMIC, addr),
    }
}

/// Inverse of [`key_to_class`], used by restore.
pub(crate) fn class_to_key(class: u8, id: u64) -> SyncKey {
    #[allow(clippy::cast_possible_truncation)]
    match class {
        sync_class::MUTEX => SyncKey::Mutex(id as u32),
        sync_class::COND => SyncKey::Cond(id as u32),
        sync_class::BARRIER => SyncKey::Barrier(id as u32),
        sync_class::THREAD => SyncKey::Thread(id as Tid),
        sync_class::ATOMIC => SyncKey::Atomic(id),
        other => panic!("unknown sync-var class {other} in checkpoint"),
    }
}

fn heap_to_ckpt(s: &HeapState) -> CkptHeap {
    CkptHeap {
        cursor: s.cursor,
        allocated_bytes: s.allocated_bytes,
        free: s
            .free
            .iter()
            .map(|(class, addrs)| CkptFreeList {
                class: *class,
                addrs: addrs.clone(),
            })
            .collect(),
        live: s.live.clone(),
    }
}

/// Inverse of [`heap_to_ckpt`], used by restore.
pub(crate) fn ckpt_to_heap(c: &CkptHeap) -> HeapState {
    HeapState {
        cursor: c.cursor,
        allocated_bytes: c.allocated_bytes,
        free: c
            .free
            .iter()
            .map(|fl| (fl.class, fl.addrs.clone()))
            .collect(),
        live: c.live.clone(),
    }
}

/// Decides, inside the last arriver's turn, whether this barrier episode
/// seeds a checkpoint. Returns the epoch to stamp into the
/// [`crate::handoff::BarrierHandoff`] when it does.
///
/// Running in-turn is what makes the *global* seal data (sync-var table,
/// join table, dead threads' output) safe to read without racing: no
/// other thread can execute an op boundary until this turn releases, and
/// the woken participants run only off-turn work until their next op.
pub(crate) fn decide(ctx: &mut RfdetCtx, participants: &[Tid], upper: &VClock) -> Option<u64> {
    let every = ctx.shared.cfg.checkpoint_every;
    if every == 0 {
        return None;
    }
    let finished: Vec<Tid> = {
        let joins = ctx.shared.queues.joins.lock();
        let mut f: Vec<Tid> = joins.finished.iter().copied().collect();
        f.sort_unstable();
        f
    };
    let live = ctx.shared.meta.num_threads() - finished.len();
    if participants.len() != live {
        return None;
    }
    {
        let mxs = ctx.shared.queues.mutexes.lock();
        if mxs
            .values()
            .any(|m| m.owner.is_some() || !m.queue.is_empty())
        {
            return None;
        }
    }
    let mut sync_vars: Vec<CkptSyncVar> = Vec::new();
    for (key, last_tid, last_time) in ctx.shared.meta.sync_var_entries() {
        if !last_time.leq(upper) {
            // An undominated release (typically an unjoined dead
            // thread's exit): its slices are not yet everywhere, so the
            // empty-slice-list restore would lose them.
            return None;
        }
        let (class, id) = key_to_class(key);
        sync_vars.push(CkptSyncVar {
            class,
            id,
            last_tid,
            last_time: last_time.components(),
        });
    }
    sync_vars.sort_by_key(|v| (v.class, v.id));

    let mut inner = ctx.shared.ckpt.inner.lock();
    inner.episodes += 1;
    let epoch = inner.episodes;
    if !epoch.is_multiple_of(every) {
        return None;
    }
    debug_assert!(
        inner.pending.is_none(),
        "previous checkpoint still pending at a new eligible episode"
    );
    // Dead threads' deterministic residue is their output stream (their
    // writes are, by eligibility, already propagated everywhere). Safe
    // to read in-turn: dead threads no longer mutate anything.
    let cfg = &ctx.shared.cfg;
    let mut threads: Vec<CkptThread> = Vec::with_capacity(ctx.shared.meta.num_threads());
    for &tid in &finished {
        threads.push(CkptThread {
            tid,
            alive: false,
            clock: 0,
            vc: Vec::new(),
            slice_seq: 0,
            sync_ops: 0,
            allocs: 0,
            output: ctx.shared.meta.thread(tid).output.lock().clone(),
            heap: CkptHeap::default(),
            pages: Vec::new(),
        });
    }
    inner.pending = Some(PendingCkpt {
        expected: participants.len(),
        ckpt: Checkpoint {
            epoch,
            backend: ctx.shared.backend_name.clone(),
            workload: cfg.trace.clone().unwrap_or_default(),
            seed: cfg.jitter_seed,
            config: cfg.trace_config(),
            upper: upper.components(),
            sync_vars,
            finished,
            threads,
        },
    });
    Some(epoch)
}

/// Contributes the calling thread's fragment to the pending checkpoint
/// for `epoch`. Runs *off turn*, right after the thread's own barrier
/// merge (`op_epilogue`), in both barrier arms. The last contributor
/// seals and persists; every contributor then honors
/// `stop_at_checkpoint` by unwinding with [`CkptStop`].
pub(crate) fn contribute(ctx: &mut RfdetCtx, epoch: u64) {
    // Lazy pending queues hold propagated-but-unapplied bytes; capturing
    // pages without flushing would checkpoint stale memory. The flush
    // shifts *when* fault-counter stats are charged (never the bytes),
    // and only on runs that checkpoint — stats are not captured state.
    ctx.flush_pending();
    let pages: Vec<usize> = ctx.space.materialized_indices().collect();
    let frag = CkptThread {
        tid: ctx.tid,
        alive: true,
        clock: ctx.kendo.clock(),
        vc: ctx.vc.components(),
        slice_seq: ctx.slice_seq,
        sync_ops: ctx.sync_ops,
        allocs: ctx.allocs,
        output: ctx.meta_thread.output.lock().clone(),
        heap: heap_to_ckpt(&ctx.heap.export_state()),
        pages: pages
            .into_iter()
            .map(|idx| CkptPage {
                index: idx as u64,
                data: ctx.space.snapshot_page(idx).into_vec(),
            })
            .collect(),
    };
    ctx.stats.checkpoints_contributed += 1;
    if let Some(sealed) = ctx.shared.ckpt.add_fragment(frag) {
        debug_assert_eq!(sealed.epoch, epoch);
        // Persistence runs outside the collector lock: disk latency must
        // not serialize against other threads' (hypothetical) bookkeeping.
        if ctx.shared.cfg.persist_checkpoints {
            let dir = ctx
                .shared
                .cfg
                .checkpoint_dir
                .clone()
                .unwrap_or_else(persist::trace_dir);
            if let Err(io) = persist::save_checkpoint_in(&dir, &sealed) {
                ctx.shared.ckpt.warn(format!(
                    "checkpoint epoch {} not persisted: {io}",
                    sealed.epoch
                ));
            }
        }
        ctx.shared.ckpt.inner.lock().collected.push(sealed);
    }
    if ctx.shared.cfg.stop_at_checkpoint == Some(epoch) {
        silence_ckpt_stop_panics();
        std::panic::panic_any(CkptStop);
    }
}

/// Installs (once, process-wide) a panic-hook filter that swallows
/// [`CkptStop`] unwinds. They are control flow — every one is caught and
/// turned into a clean slot finish — but the default hook would still
/// print a "thread panicked" banner plus backtrace per stopping thread,
/// burying shard-replay output under pages of noise. All other payloads
/// pass through to whatever hook was installed before.
fn silence_ckpt_stop_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CkptStop>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_class_round_trips() {
        for key in [
            SyncKey::Mutex(7),
            SyncKey::Cond(1),
            SyncKey::Barrier(0),
            SyncKey::Thread(3),
            SyncKey::Atomic(0xdead_beef),
        ] {
            let (class, id) = key_to_class(key);
            assert_eq!(class_to_key(class, id), key);
        }
    }

    #[test]
    fn heap_state_round_trips_through_ckpt_form() {
        let s = HeapState {
            cursor: 0x4000,
            allocated_bytes: 768,
            free: vec![(6, vec![0x100, 0x140]), (8, vec![0x800])],
            live: vec![(0x1000, 9), (0x2000, 6)],
        };
        assert_eq!(ckpt_to_heap(&heap_to_ckpt(&s)), s);
    }

    #[test]
    fn collector_seals_after_last_fragment_in_tid_order() {
        let col = CkptCollector::default();
        {
            let mut inner = col.inner.lock();
            inner.pending = Some(PendingCkpt {
                expected: 2,
                ckpt: Checkpoint {
                    epoch: 1,
                    backend: "RFDet".into(),
                    workload: "w".into(),
                    seed: None,
                    config: rfdet_api::RunConfig::small().trace_config(),
                    upper: vec![1, 1],
                    sync_vars: Vec::new(),
                    finished: Vec::new(),
                    threads: Vec::new(),
                },
            });
        }
        let frag = |tid| CkptThread {
            tid,
            alive: true,
            clock: 5,
            vc: vec![1, 1],
            slice_seq: 0,
            sync_ops: 0,
            allocs: 0,
            output: Vec::new(),
            heap: CkptHeap::default(),
            pages: Vec::new(),
        };
        assert!(col.add_fragment(frag(1)).is_none());
        let sealed = col.add_fragment(frag(0)).expect("last fragment seals");
        assert_eq!(
            sealed.threads.iter().map(|t| t.tid).collect::<Vec<_>>(),
            [0, 1],
            "threads sorted ascending regardless of contribution order"
        );
        let (collected, warnings) = col.take_results();
        assert!(collected.is_empty(), "sealer pushes, not add_fragment");
        assert!(warnings.is_empty());
    }
}
