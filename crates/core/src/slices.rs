//! Slice lifecycle (paper §4.2).
//!
//! A *slice* is a synchronization-free interval of one thread's execution.
//! Every synchronization operation ends the current slice: the pages
//! snapshotted by the store instrumentation are diffed byte-by-byte
//! against their current contents, the resulting modification list is
//! sealed into a [`rfdet_meta::SliceRec`] stamped with the slice's vector
//! time, and the record is published to the metadata space.

use crate::ctx::RfdetCtx;
use rfdet_api::obs::Phase;
use rfdet_api::MonitorMode;
use rfdet_mem::{diff, PageFlags};
use rfdet_meta::SliceRec;

impl RfdetCtx {
    /// Ends the current slice: diff, seal, publish. Runs GC if the
    /// publication crossed the metadata threshold (§4.5). Snapshot
    /// buffers are recycled into the bounded pool after diffing, so the
    /// next slice's first writes snapshot allocation-free.
    pub(crate) fn end_slice(&mut self) {
        // One clock read serves as the end of the *previous* boundary
        // phase (WaitTurn, usually), the slice-wall end, and the diff
        // start (clock reads dominate observation cost on sync-dense
        // runs, so adjacent phase boundaries share them).
        let diff_t0 = self.obs_boundary_start();
        if let (Some(t0), Some(now)) = (self.slice_t0.take(), diff_t0) {
            let ops = (self.stats.loads + self.stats.stores).saturating_sub(self.slice_ops_base);
            self.obs_count(Phase::SliceOps, ops);
            self.obs_count(Phase::SliceWall, now.duration_since(t0).as_nanos() as u64);
        }
        let mut mods = Vec::new();
        let gap = self.shared.cfg.rfdet.diff_gap_coalesce;
        let pool_cap = self.shared.cfg.rfdet.snap_pool_pages;
        let snapshots = std::mem::take(&mut self.snapshots);
        // BTreeMap iteration is page-index order — the deterministic
        // modification order within a slice.
        for (page, snap) in snapshots {
            if let Some(current) = self.space.page(page) {
                let outcome = diff::diff_page_opts(
                    self.space.page_base(page),
                    &snap,
                    current.bytes(),
                    gap,
                    &mut mods,
                );
                self.stats.diff_bytes_scanned += outcome.bytes_scanned;
                self.stats.runs_coalesced += outcome.runs_coalesced;
            }
            // else: snapshot taken but page never materialized —
            // impossible through the write path, and harmless (no diff).
            if self.snap_pool.len() < pool_cap {
                self.snap_pool.push(snap);
            }
        }
        self.stats.slices += 1;
        self.obs_since_boundary(Phase::Diff, diff_t0);
        // Race detection seals the slice's word-read set alongside the
        // diff. Read-only slices must then publish too — a remote read
        // can race a write, and the detecting thread only sees accesses
        // that reach it as published slices. Their empty mod list applies
        // as a no-op everywhere, so propagation results are unchanged.
        let reads = if self.track_reads {
            self.read_set.seal(self.shared.cfg.page_size)
        } else {
            Vec::new()
        };
        if !mods.is_empty() || !reads.is_empty() {
            let mut rec = SliceRec::new(self.tid, self.slice_seq, self.slice_start.clone(), mods);
            if self.track_reads {
                rec = rec.with_access(reads, self.sync_ops, self.in_atomic);
            }
            // Main's own slices never come back to it through propagation
            // — observe them at the seal (the detector lives on tid 0).
            if let Some(det) = self.detect.as_mut() {
                det.observe_slice(&rec);
            }
            let (_slice, gc_needed) = self.shared.meta.publish_slice_for(&self.meta_thread, rec);
            // Defer the pass itself: end_slice runs inside the Kendo
            // turn, and a GC scan there would serialize every thread.
            self.gc_pending |= gc_needed;
        }
        self.slice_seq += 1;
    }

    /// Runs a deferred GC pass (call off-turn).
    pub(crate) fn run_pending_gc(&mut self) {
        if self.gc_pending {
            self.gc_pending = false;
            self.shared.meta.run_gc();
        }
    }

    /// Starts a new slice at the current vector clock. In `pf` mode this
    /// re-protects the whole space so first writes fault (§4.2: "protect
    /// shared memory with no write permission at the beginning of each
    /// slice").
    pub(crate) fn begin_slice(&mut self) {
        // Consume (not re-store) the boundary: the new slice starts at
        // the previous phase's end read, and whatever runs next is user
        // code, not an adjacent instrumented phase.
        self.slice_t0 = self.obs_boundary_start();
        self.slice_ops_base = self.stats.loads + self.stats.stores;
        self.slice_start = self.vc.clone();
        debug_assert!(self.snapshots.is_empty(), "begin_slice with open snapshots");
        if self.shared.cfg.rfdet.monitor == MonitorMode::Pf {
            self.flags.protect_all(PageFlags::WRITE_PROTECT);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::shared::RuntimeShared;
    use crate::RfdetCtx;
    use rfdet_api::{DmtCtx as _, DmtCtxExt, MonitorMode, RunConfig};
    use std::sync::Arc;

    fn ctx_with(monitor: MonitorMode) -> RfdetCtx {
        let mut cfg = RunConfig::small();
        cfg.rfdet.monitor = monitor;
        cfg.rfdet.fault_cost_spins = 0;
        RfdetCtx::new_main(Arc::new(RuntimeShared::new(cfg)))
    }

    #[test]
    fn first_write_snapshots_page_ci() {
        let mut ctx = ctx_with(MonitorMode::Ci);
        ctx.write::<u64>(100, 7);
        assert_eq!(ctx.stats.stores_with_copy, 1);
        ctx.write::<u64>(108, 8); // same page: no second snapshot
        assert_eq!(ctx.stats.stores_with_copy, 1);
        ctx.write::<u64>(5000, 9); // second page
        assert_eq!(ctx.stats.stores_with_copy, 2);
        assert_eq!(ctx.stats.stores, 3);
    }

    #[test]
    fn pf_mode_counts_faults() {
        let mut ctx = ctx_with(MonitorMode::Pf);
        ctx.write::<u64>(100, 7);
        ctx.write::<u64>(108, 8);
        assert_eq!(ctx.stats.page_faults, 1, "one fault per page per slice");
        assert_eq!(ctx.stats.stores_with_copy, 1);
    }

    #[test]
    fn end_slice_publishes_byte_diffs() {
        let mut ctx = ctx_with(MonitorMode::Ci);
        ctx.write::<u32>(16, 0xAABBCCDD);
        ctx.end_slice();
        let list = ctx.shared.meta.snapshot_list(0);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].mod_bytes(), 4);
        assert_eq!(list[0].tid, 0);
        assert_eq!(list[0].time, ctx.vc, "slice stamped with its start time");
    }

    #[test]
    fn redundant_writes_publish_nothing() {
        let mut ctx = ctx_with(MonitorMode::Ci);
        // Write zero over fresh (zero) memory — §4.6: the slice must be
        // empty and is not published.
        ctx.write::<u64>(64, 0);
        ctx.end_slice();
        assert!(ctx.shared.meta.snapshot_list(0).is_empty());
        assert_eq!(ctx.stats.slices, 1, "the slice still happened");
    }

    #[test]
    fn slice_seq_advances_and_snapshots_reset() {
        let mut ctx = ctx_with(MonitorMode::Ci);
        ctx.write::<u8>(0, 1);
        ctx.end_slice();
        ctx.begin_slice();
        ctx.write::<u8>(1, 2);
        assert_eq!(
            ctx.stats.stores_with_copy, 2,
            "same page snapshots again in a new slice"
        );
        ctx.end_slice();
        let list = ctx.shared.meta.snapshot_list(0);
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].seq, 0);
        assert_eq!(list[1].seq, 1);
    }

    #[test]
    fn pf_reprotects_each_slice() {
        let mut ctx = ctx_with(MonitorMode::Pf);
        ctx.write::<u8>(0, 1);
        ctx.end_slice();
        ctx.begin_slice();
        ctx.write::<u8>(0, 2);
        assert_eq!(ctx.stats.page_faults, 2);
    }

    #[test]
    fn steady_state_slices_hit_the_snapshot_pool() {
        let mut ctx = ctx_with(MonitorMode::Ci);
        // First slice: cold pool, one miss per snapshotted page.
        ctx.write::<u64>(0, 1);
        ctx.write::<u64>(4096, 2);
        assert_eq!(ctx.stats.snapshot_pool_misses, 2);
        assert_eq!(ctx.stats.snapshot_pool_hits, 0);
        ctx.end_slice();
        ctx.begin_slice();
        // Steady state: both buffers come back from the pool.
        ctx.write::<u64>(0, 3);
        ctx.write::<u64>(4096, 4);
        assert_eq!(ctx.stats.snapshot_pool_hits, 2);
        assert_eq!(ctx.stats.snapshot_pool_misses, 2);
        let page = ctx.shared.cfg.page_size;
        assert_eq!(ctx.stats.snapshot_bytes_copied, 4 * page);
        ctx.end_slice();
        assert_eq!(ctx.stats.diff_bytes_scanned, 4 * page);
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let mut cfg = RunConfig::small();
        cfg.rfdet.fault_cost_spins = 0;
        cfg.rfdet.snap_pool_pages = 0;
        let mut ctx = RfdetCtx::new_main(Arc::new(RuntimeShared::new(cfg)));
        for i in 0..3 {
            ctx.write::<u64>(0, i);
            ctx.end_slice();
            ctx.begin_slice();
        }
        assert_eq!(ctx.stats.snapshot_pool_hits, 0);
        assert_eq!(ctx.stats.snapshot_pool_misses, 3);
    }

    #[test]
    fn gap_coalescing_knob_merges_runs_and_counts() {
        let mut cfg = RunConfig::small();
        cfg.rfdet.fault_cost_spins = 0;
        cfg.rfdet.diff_gap_coalesce = 8;
        let mut ctx = RfdetCtx::new_main(Arc::new(RuntimeShared::new(cfg)));
        ctx.write::<u8>(100, 1);
        ctx.write::<u8>(104, 2); // 3-byte unchanged gap: coalesces
        ctx.end_slice();
        assert_eq!(ctx.stats.runs_coalesced, 1);
        let list = ctx.shared.meta.snapshot_list(0);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].mods.len(), 1, "one coalesced run");
        assert_eq!(list[0].mod_bytes(), 5, "run carries the gap bytes");
    }

    #[test]
    fn reads_do_not_snapshot() {
        let mut ctx = ctx_with(MonitorMode::Ci);
        let _: u64 = ctx.read(128);
        assert_eq!(ctx.stats.stores_with_copy, 0);
        assert_eq!(ctx.stats.loads, 1);
        ctx.end_slice();
        assert!(ctx.shared.meta.snapshot_list(0).is_empty());
    }

    #[test]
    fn alloc_tracks_shared_bytes() {
        let mut ctx = ctx_with(MonitorMode::Ci);
        let a = ctx.alloc(100, 8);
        assert!(a >= rfdet_mem::heap_base(ctx.shared.cfg.space_bytes));
        assert_eq!(ctx.stats.shared_bytes, 100);
        ctx.dealloc(a);
    }
}
