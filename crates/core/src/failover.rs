//! Crash-failover driver (DESIGN.md §4.12): record, kill, restore,
//! replay, converge.
//!
//! The paper's model makes state-machine replication trivial — two
//! replicas fed the same input converge byte-for-byte with no
//! interleaving log shipped. This module composes checkpoints (§4.11)
//! with fault injection into the recovery half of that story: run a
//! workload with `checkpoint_every` under a [`FaultPlan`] that kills a
//! worker mid-stream, restore the last checkpoint sealed before the
//! crash, replay the input tail through the resume bodies, and compare
//! the recovered replica's digest against an unfaulted replica's.
//! Determinism does all the coordination: recovery needs no
//! interleaving log and no agreement protocol, only the input (which
//! is baked into the workload body) and the last consistent cut.

use crate::RfdetBackend;
use rfdet_api::{DmtBackend, FailureReport, FaultPlan, RunConfig, ThreadFn, Tid};
use rfdet_trace::{persist, Checkpoint};
use std::time::Instant;

/// What one record/kill/restore/replay cycle produced.
#[derive(Clone, Debug)]
pub struct FailoverReport {
    /// Output digest of the unfaulted reference replica.
    pub reference_digest: u64,
    /// The injected failure, when the fault actually fired. `None`
    /// means the faulted run completed cleanly (plan out of range).
    pub crash: Option<FailureReport>,
    /// Epoch of the checkpoint recovery restarted from. `None` when
    /// the crash predated the first checkpoint (recovery re-ran from
    /// scratch) or no crash happened.
    pub recovered_from_epoch: Option<u64>,
    /// Output digest of the recovered (or uninterrupted) replica.
    pub recovered_digest: u64,
    /// Recovered output is byte-identical to the reference, and every
    /// checkpoint sealed after the restore point matches the reference
    /// chain bit-for-bit.
    pub converged: bool,
    /// Wall time of the full unfaulted reference run.
    pub full_run_ms: f64,
    /// Wall time of the recovery leg alone (resume-and-replay, or the
    /// from-scratch re-run when no checkpoint existed).
    pub recovery_ms: f64,
}

impl FailoverReport {
    /// `recovery_ms / full_run_ms` — the time-to-converge ratio the
    /// BENCH_9 `failover_recovery` cell budgets (≤ 0.6 when the crash
    /// lands late enough that the checkpoint skips most of the run).
    #[must_use]
    pub fn recovery_ratio(&self) -> f64 {
        if self.full_run_ms <= 0.0 {
            return f64::NAN;
        }
        self.recovery_ms / self.full_run_ms
    }
}

/// Strips the crash cause from a config, leaving the
/// determinism-relevant knobs intact: recovery replays the tail of the
/// *unfaulted* input, exactly like a standby replica that never saw
/// the fault.
fn clean_cfg(cfg: &RunConfig) -> RunConfig {
    let mut c = cfg.clone();
    c.fault_plan = FaultPlan::new();
    c.persist_checkpoints = false;
    c.checkpoint_dir = None;
    c
}

/// Picks the recovery point: the newest on-disk checkpoint when the
/// faulted run persisted one, else the newest in-memory checkpoint the
/// crashed [`rfdet_api::TracedRun`] carried out.
fn last_checkpoint(cfg: &RunConfig, chain: &[Checkpoint]) -> Option<Checkpoint> {
    if cfg.persist_checkpoints {
        if let (Some(dir), Some(first)) = (cfg.checkpoint_dir.as_ref(), chain.first()) {
            if let Some((_, path)) = persist::latest_checkpoint(dir, first.run_key()) {
                if let Ok(ckpt) = persist::load_checkpoint(&path) {
                    return Some(ckpt);
                }
            }
        }
    }
    chain.last().cloned()
}

/// Runs the full failover cycle on the core backend.
///
/// `cfg` carries the fault plan and checkpoint cadence; `root` builds a
/// fresh root body (called once per full run); `bodies` supplies the
/// per-tid resume bodies for the restored threads. The reference
/// replica runs first under `cfg` minus the fault plan; its wall time
/// is the baseline the recovery leg is measured against.
///
/// # Panics
/// Panics when the *unfaulted* reference run fails — the driver
/// measures recovery from injected faults, so a workload that cannot
/// complete cleanly is a bug in the caller's setup, not an outcome.
pub fn run_failover(
    backend: &RfdetBackend,
    cfg: &RunConfig,
    root: &dyn Fn() -> ThreadFn,
    bodies: &dyn Fn(Tid) -> ThreadFn,
) -> FailoverReport {
    let clean = clean_cfg(cfg);
    let t0 = Instant::now();
    let reference = backend.run_traced(&clean, root());
    let full_run_ms = t0.elapsed().as_secs_f64() * 1e3;
    let reference_out = reference
        .result
        .expect("unfaulted reference replica must complete");

    let faulted = backend.run_traced(cfg, root());
    match faulted.result {
        Ok(out) => {
            // The plan never fired (coordinate past the end of the
            // run): the "recovery" is the run itself.
            let digest = out.output_digest();
            FailoverReport {
                reference_digest: reference_out.output_digest(),
                crash: None,
                recovered_from_epoch: None,
                recovered_digest: digest,
                converged: out.output == reference_out.output,
                full_run_ms,
                recovery_ms: full_run_ms,
            }
        }
        Err(e) => {
            let crash = Some(e.report().clone());
            let ckpt = last_checkpoint(cfg, &faulted.checkpoints);
            let t1 = Instant::now();
            let (recovered, recovered_from_epoch) = match &ckpt {
                Some(c) => (backend.run_resumed(&clean, c, bodies), Some(c.epoch)),
                // Crash before the first cut: a standby replica would
                // simply replay the whole input.
                None => (backend.run_traced(&clean, root()), None),
            };
            let recovery_ms = t1.elapsed().as_secs_f64() * 1e3;
            let out = recovered
                .result
                .expect("fault-free recovery replay must complete");
            // Convergence is byte equality of the final output *and*
            // of every checkpoint sealed after the restore point — the
            // recovered replica rejoins the reference chain exactly.
            let resumed_from = recovered_from_epoch.unwrap_or(0);
            let tail_ok = recovered.checkpoints.iter().all(|c| {
                reference
                    .checkpoints
                    .iter()
                    .find(|r| r.epoch == c.epoch)
                    .is_some_and(|r| r.digest() == c.digest())
                    && c.epoch > resumed_from
            });
            FailoverReport {
                reference_digest: reference_out.output_digest(),
                crash,
                recovered_from_epoch,
                recovered_digest: out.output_digest(),
                converged: out.output == reference_out.output && tail_ok,
                full_run_ms,
                recovery_ms,
            }
        }
    }
}
