//! Deterministic synchronization operations (paper §4.1).
//!
//! Every operation follows the same shape:
//!
//! 1. `wait_for_turn` — Kendo admits the op at a deterministic point in
//!    the global synchronization order;
//! 2. *in turn*: end the current slice, record releases in the internal
//!    sync-var table, tick the vector clock, mutate the deterministic
//!    queues, deposit handoffs into blocked threads' mailboxes, publish
//!    the in-turn clock, and finally tick the Kendo clock (releasing the
//!    turn);
//! 3. *off turn*: the actual memory-modification propagation — the
//!    expensive part — runs in parallel with other threads' turns. This
//!    is exactly what "no global barriers" buys.
//!
//! Blocking operations park **after** their final tick; their waker
//! deposits the acquire edges and reactivates them with a deterministic
//! clock from inside its own turn.

use crate::ctx::RfdetCtx;
use crate::handoff::{AcquireSource, BarrierHandoff};
use crate::shared::SYNC_TICK;
use rfdet_api::{BarrierId, CondId, MutexId, ThreadFn, ThreadHandle, Tid};
use rfdet_meta::{SyncKey, SyncVar};
use rfdet_vclock::VClock;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Ends the slice, optionally records a release, ticks the vector clock.
/// Returns the release time (`lower` — the just-ended slice's timestamp).
fn op_boundary(ctx: &mut RfdetCtx, release: Option<SyncKey>) -> VClock {
    let lower = ctx.vc.clone();
    ctx.end_slice();
    if let Some(key) = release {
        let tid = ctx.tid;
        let time = lower.clone();
        ctx.shared
            .meta
            .with_sync_var(key, |v| v.record_release(tid, time));
    }
    ctx.vc.tick(ctx.tid);
    lower
}

/// Post-propagation epilogue shared by every operation (runs off-turn).
fn op_epilogue(ctx: &mut RfdetCtx) {
    ctx.begin_slice();
    ctx.shared.meta.publish_vc(ctx.tid, &ctx.vc);
    ctx.run_pending_gc();
}

/// Blocks, consumes the wakeup mailbox, and finishes the acquire. When
/// `premerge_source` is set (and the prelock optimization is on), the
/// park loop keeps pre-merging the source's published slices off the
/// critical path (§4.5).
fn block_and_acquire(ctx: &mut RfdetCtx, premerge_source: Option<Tid>) {
    let kendo_handle = ctx.kendo.clone();
    let shared = Arc::clone(&ctx.shared);
    match premerge_source.filter(|_| ctx.shared.cfg.rfdet.prelock) {
        Some(src) => {
            // First round immediately, then periodically while parked.
            ctx.premerge_round(src);
            shared
                .kendo
                .park_until_active_with(&kendo_handle, || ctx.premerge_round(src));
        }
        None => shared.kendo.park_until_active(&kendo_handle),
    }
    let mail = ctx.mailbox.lock().drain();
    debug_assert!(!mail.is_empty(), "woken without a handoff");
    ctx.apply_mailbox(mail);
    debug_assert_eq!(
        ctx.vc,
        ctx.shared.meta.turn_vc(ctx.tid),
        "post-wake clock must equal the in-turn published clock"
    );
    op_epilogue(ctx);
}

enum LockPath {
    /// Lock taken immediately; propagate from the recorded release.
    Fast(SyncVar),
    /// Same-thread re-acquire: keep the slice open (§4.5 slice merging).
    Merged,
    /// Enqueued behind `pred` (the prelock pre-merge source).
    Queued { pred: Tid },
}

pub(crate) fn lock_impl(ctx: &mut RfdetCtx, m: MutexId) {
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    ctx.stats.locks += 1;
    let key = SyncKey::Mutex(m.0);
    let path = {
        let mut q = ctx.shared.queues.lock();
        let mx = q.mutexes.entry(m.0).or_default();
        assert_ne!(
            mx.owner,
            Some(ctx.tid),
            "recursive lock of mutex {} by thread {}",
            m.0,
            ctx.tid
        );
        if mx.owner.is_none() && mx.queue.is_empty() {
            mx.owner = Some(ctx.tid);
            drop(q);
            let sv = ctx.shared.meta.with_sync_var(key, |v| v.clone());
            if ctx.shared.cfg.rfdet.slice_merging && sv.last_tid == Some(ctx.tid) {
                LockPath::Merged
            } else {
                LockPath::Fast(sv)
            }
        } else {
            let pred = mx
                .queue
                .back()
                .copied()
                .or(mx.owner)
                .expect("contended mutex must have an owner or queue");
            mx.queue.push_back(ctx.tid);
            drop(q);
            LockPath::Queued { pred }
        }
    };
    match path {
        LockPath::Merged => {
            ctx.stats.slices_merged += 1;
            ctx.kendo.tick(SYNC_TICK);
        }
        LockPath::Fast(sv) => {
            op_boundary(ctx, None);
            let propagate = sv.needs_propagation(ctx.tid);
            let turn_vc = if propagate {
                ctx.vc.joined(&sv.last_time)
            } else {
                ctx.vc.clone()
            };
            ctx.shared.meta.publish_turn_vc(ctx.tid, &turn_vc);
            ctx.kendo.tick(SYNC_TICK);
            // Turn released — propagation proceeds in parallel with other
            // threads' synchronization. No global barrier anywhere.
            if propagate {
                let lower = ctx.vc.clone();
                ctx.vc.join(&sv.last_time);
                let from = sv.last_tid.expect("needs_propagation implies a releaser");
                ctx.propagate_from(from, &sv.last_time, &lower);
            }
            op_epilogue(ctx);
        }
        LockPath::Queued { pred } => {
            op_boundary(ctx, None);
            ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);
            ctx.shared.kendo.block(&ctx.kendo);
            ctx.kendo.tick(SYNC_TICK);
            // §4.5 Prelock: merge everything that must happen-before our
            // eventual acquire while the lock holder still works.
            block_and_acquire(ctx, Some(pred));
        }
    }
}

pub(crate) fn unlock_impl(ctx: &mut RfdetCtx, m: MutexId) {
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    ctx.stats.unlocks += 1;
    let lower = op_boundary(ctx, Some(SyncKey::Mutex(m.0)));
    ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);
    let next = {
        let mut q = ctx.shared.queues.lock();
        let mx = q
            .mutexes
            .get_mut(&m.0)
            .unwrap_or_else(|| panic!("unlock of never-locked mutex {}", m.0));
        assert_eq!(
            mx.owner,
            Some(ctx.tid),
            "thread {} unlocking mutex {} it does not hold",
            ctx.tid,
            m.0
        );
        mx.owner = mx.queue.pop_front();
        mx.owner
    };
    if let Some(w) = next {
        handoff_release(ctx, w, lower);
        ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
    }
    ctx.kendo.tick(SYNC_TICK);
    op_epilogue(ctx);
}

/// Deposits a release edge into a blocked thread's mailbox and extends its
/// in-turn clock — both inside the caller's turn.
fn handoff_release(ctx: &RfdetCtx, target: Tid, time: VClock) {
    ctx.shared.mailbox(target).lock().sources.push(AcquireSource {
        from: ctx.tid,
        time: time.clone(),
    });
    ctx.shared.meta.join_turn_vc(target, &time);
}

pub(crate) fn wait_impl(ctx: &mut RfdetCtx, c: CondId, m: MutexId) {
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    ctx.stats.waits += 1;
    // cond_wait releases the mutex…
    let lower = op_boundary(ctx, Some(SyncKey::Mutex(m.0)));
    ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);
    let next = {
        let mut q = ctx.shared.queues.lock();
        let mx = q
            .mutexes
            .get_mut(&m.0)
            .unwrap_or_else(|| panic!("cond_wait with never-locked mutex {}", m.0));
        assert_eq!(
            mx.owner,
            Some(ctx.tid),
            "thread {} waiting on cond {} without holding mutex {}",
            ctx.tid,
            c.0,
            m.0
        );
        mx.owner = mx.queue.pop_front();
        let next = mx.owner;
        q.conds.entry(c.0).or_default().push_back((ctx.tid, m.0));
        next
    };
    if let Some(w) = next {
        handoff_release(ctx, w, lower);
        ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
    }
    // …then blocks until signalled (and until it re-owns the mutex: the
    // signaler either grants it immediately or moves us to the mutex
    // queue, in which case the eventual unlocker completes the wakeup).
    ctx.shared.kendo.block(&ctx.kendo);
    ctx.kendo.tick(SYNC_TICK);
    block_and_acquire(ctx, None);
}

pub(crate) fn signal_impl(ctx: &mut RfdetCtx, c: CondId, broadcast: bool) {
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    ctx.stats.signals += 1;
    let lower = op_boundary(ctx, Some(SyncKey::Cond(c.0)));
    ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);
    // Pop waiters deterministically (FIFO — enqueue order was itself
    // turn-ordered) and arrange each one's mutex re-acquisition.
    let mut wake_now: Vec<Tid> = Vec::new();
    {
        let mut q = ctx.shared.queues.lock();
        let queue = q.conds.entry(c.0).or_default();
        let n = if broadcast { queue.len() } else { usize::from(!queue.is_empty()) };
        let popped: Vec<(Tid, u32)> = queue.drain(..n).collect();
        for (w, mid) in popped {
            // The signal edge (release of the condvar).
            ctx.shared.mailbox(w).lock().sources.push(AcquireSource {
                from: ctx.tid,
                time: lower.clone(),
            });
            ctx.shared.meta.join_turn_vc(w, &lower);
            let mx = q.mutexes.entry(mid).or_default();
            if mx.owner.is_none() && mx.queue.is_empty() {
                // Mutex free: grant it to the waiter right now, with the
                // mutex's own release edge.
                mx.owner = Some(w);
                let sv = ctx
                    .shared
                    .meta
                    .with_sync_var(SyncKey::Mutex(mid), |v| v.clone());
                if sv.needs_propagation(w) {
                    ctx.shared.mailbox(w).lock().sources.push(AcquireSource {
                        from: sv.last_tid.expect("propagation implies releaser"),
                        time: sv.last_time.clone(),
                    });
                    ctx.shared.meta.join_turn_vc(w, &sv.last_time);
                }
                wake_now.push(w);
            } else {
                // Mutex busy: park the waiter in the reservation queue;
                // the unlocker will finish the handoff.
                mx.queue.push_back(w);
            }
        }
    }
    for w in wake_now {
        ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
    }
    ctx.kendo.tick(SYNC_TICK);
    op_epilogue(ctx);
}

pub(crate) fn barrier_impl(ctx: &mut RfdetCtx, b: BarrierId, parties: usize) {
    assert!(parties > 0, "barrier with zero parties");
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    ctx.stats.barriers += 1;
    let lower = op_boundary(ctx, Some(SyncKey::Barrier(b.0)));
    ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);
    let arrivals = {
        let mut q = ctx.shared.queues.lock();
        let st = q.barriers.entry(b.0).or_default();
        st.arrivals.push((ctx.tid, lower));
        assert!(
            st.arrivals.len() <= parties,
            "barrier {} overfull: {} arrivals for {} parties",
            b.0,
            st.arrivals.len(),
            parties
        );
        if st.arrivals.len() == parties {
            Some(std::mem::take(&mut st.arrivals))
        } else {
            None
        }
    };
    match arrivals {
        None => {
            ctx.shared.kendo.block(&ctx.kendo);
            ctx.kendo.tick(SYNC_TICK);
            block_and_acquire(ctx, None);
        }
        Some(arrivals) => {
            // Last arriver: compute the merged view and release everyone.
            let mut upper = VClock::new();
            for (_, t) in &arrivals {
                upper.join(t);
            }
            let participants: Vec<Tid> = arrivals.iter().map(|(t, _)| *t).collect();
            let handoff = BarrierHandoff {
                participants: participants.clone(),
                upper: upper.clone(),
            };
            for &w in &participants {
                if w == ctx.tid {
                    continue;
                }
                ctx.shared.mailbox(w).lock().barrier = Some(handoff.clone());
                ctx.shared.meta.join_turn_vc(w, &upper);
                ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
            }
            ctx.shared.meta.join_turn_vc(ctx.tid, &upper);
            ctx.kendo.tick(SYNC_TICK);
            // Own merge, off turn.
            let my_lower = ctx.vc.clone();
            ctx.vc.join(&upper);
            ctx.propagate_barrier(&handoff, &my_lower);
            op_epilogue(ctx);
        }
    }
}

pub(crate) fn spawn_impl(ctx: &mut RfdetCtx, f: ThreadFn) -> ThreadHandle {
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    ctx.stats.forks += 1;
    // Lazy pending must be materialized before the child inherits the
    // space, or the child would read stale bytes.
    ctx.flush_pending();
    op_boundary(ctx, None); // create is a release; the child inherits
                            // memory directly, no sync var needed (§4.1)
    ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);

    // Deterministic registration inside the parent's turn.
    let child_meta = ctx.shared.meta.register_thread();
    let child_tid = child_meta.tid;
    let child_kendo = ctx.shared.kendo.register(ctx.kendo.clock() + 1);
    assert_eq!(child_kendo.tid(), child_tid, "registry tid mismatch");
    let child_mailbox = ctx.shared.register_mailbox();
    let mut child_vc = ctx.vc.clone();
    child_vc.tick(child_tid);
    // The child inherits the parent's memory (COW fork) and, for
    // transitive propagation, the parent's slice-pointer list.
    let child_space = ctx.space.fork();
    child_meta.slice_list.lock().entries = ctx.shared.meta.snapshot_list(ctx.tid);
    // The child has (by inheritance) seen everything the parent saw, so
    // the parent's propagation cursors are valid starting points.
    let child_cursors = ctx.cursors.clone();
    ctx.shared.meta.publish_vc(child_tid, &child_vc);
    ctx.shared.meta.publish_turn_vc(child_tid, &child_vc);

    let shared = Arc::clone(&ctx.shared);
    let handle = std::thread::Builder::new()
        .name(format!("rfdet-{child_tid}"))
        .spawn(move || {
            let mut child = RfdetCtx::from_parts(
                Arc::clone(&shared),
                child_kendo,
                child_meta,
                child_mailbox,
                Some(child_space),
                child_vc,
            );
            child.cursors = child_cursors;
            let result = catch_unwind(AssertUnwindSafe(|| {
                f(&mut child);
                child.on_exit();
            }));
            if let Err(payload) = result {
                shared.record_panic(child_tid, payload);
            }
        })
        .expect("failed to spawn OS thread");
    ctx.shared.os_handles.lock().insert(child_tid, handle);
    ctx.kendo.tick(SYNC_TICK);
    op_epilogue(ctx);
    ThreadHandle(child_tid)
}

pub(crate) fn join_impl(ctx: &mut RfdetCtx, h: ThreadHandle) {
    let target = h.0;
    assert_ne!(target, ctx.tid, "thread joining itself");
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    ctx.stats.joins += 1;
    let already_finished = {
        let mut q = ctx.shared.queues.lock();
        if q.finished.contains(&target) {
            true
        } else {
            q.join_waiters.entry(target).or_default().push(ctx.tid);
            false
        }
    };
    if already_finished {
        let sv = ctx
            .shared
            .meta
            .with_sync_var(SyncKey::Thread(target), |v| v.clone());
        op_boundary(ctx, None);
        let turn_vc = ctx.vc.joined(&sv.last_time);
        ctx.shared.meta.publish_turn_vc(ctx.tid, &turn_vc);
        ctx.kendo.tick(SYNC_TICK);
        let lower = ctx.vc.clone();
        ctx.vc.join(&sv.last_time);
        ctx.propagate_from(target, &sv.last_time, &lower);
        op_epilogue(ctx);
    } else {
        op_boundary(ctx, None);
        ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);
        ctx.shared.kendo.block(&ctx.kendo);
        ctx.kendo.tick(SYNC_TICK);
        // The join target's published clock always precedes its exit
        // time, so it is a sound prelock source for the parked joiner.
        block_and_acquire(ctx, Some(target));
    }
}

/// Low-level atomics (the §4.6/§6 extension).
///
/// An atomic operation is a synchronization operation that both acquires
/// and releases the cell's internal sync var. Unlike mutexes there is no
/// ownership to hand off, so the whole read-modify-write — including the
/// acquire-side propagation — executes inside one Kendo turn; this keeps
/// consecutive atomics on the same cell strictly serialized (otherwise a
/// second thread could read the sync var between our acquire and our
/// release and miss our update). Atomic cells are expected to carry tiny
/// modification sets, so the in-turn propagation is short.
pub(crate) fn atomic_impl(
    ctx: &mut RfdetCtx,
    addr: rfdet_api::Addr,
    op: Option<rfdet_api::AtomicOp>,
    store: Option<u64>,
) -> u64 {
    assert_eq!(addr % 8, 0, "atomic cells must be 8-byte aligned");
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    ctx.stats.locks += 1; // counted with lock-class sync ops
    let key = SyncKey::Atomic(addr);
    let sv = ctx.shared.meta.with_sync_var(key, |v| v.clone());
    // Acquire boundary: close the current slice, join the cell's last
    // release, and propagate — all in turn (see above).
    op_boundary(ctx, None);
    if sv.needs_propagation(ctx.tid) {
        let lower = ctx.vc.clone();
        ctx.vc.join(&sv.last_time);
        let from = sv.last_tid.expect("propagation implies a releaser");
        ctx.propagate_from(from, &sv.last_time, &lower);
    }
    ctx.begin_slice();
    // The modification itself, through the instrumented in-turn path (a
    // normal write would tick the Kendo clock and release the turn).
    let mut buf = [0u8; 8];
    ctx.read_in_turn(addr, &mut buf);
    let old = u64::from_le_bytes(buf);
    match (op, store) {
        (Some(op), None) => ctx.write_in_turn(addr, &op.apply(old).to_le_bytes()),
        (None, Some(v)) => ctx.write_in_turn(addr, &v.to_le_bytes()),
        (None, None) => {} // pure load
        (Some(_), Some(_)) => unreachable!("rmw and store are exclusive"),
    }
    // Release boundary: publish the one-op slice and record the release.
    op_boundary(ctx, Some(key));
    ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);
    ctx.kendo.tick(SYNC_TICK);
    op_epilogue(ctx);
    old
}

/// The implicit exit operation: releases `SyncKey::Thread(tid)` and wakes
/// joiners. Runs when the thread's entry function returns.
pub(crate) fn exit_impl(ctx: &mut RfdetCtx) {
    ctx.jitter_pause();
    ctx.shared.kendo.wait_for_turn(&ctx.kendo);
    let lower = op_boundary(ctx, Some(SyncKey::Thread(ctx.tid)));
    ctx.shared.meta.publish_turn_vc(ctx.tid, &ctx.vc);
    ctx.shared.meta.publish_vc(ctx.tid, &ctx.vc);
    let waiters = {
        let mut q = ctx.shared.queues.lock();
        q.finished.insert(ctx.tid);
        q.join_waiters.remove(&ctx.tid).unwrap_or_default()
    };
    for w in waiters {
        handoff_release(ctx, w, lower.clone());
        ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
    }
    ctx.shared.meta.mark_dead(ctx.tid);
    // Flush thread-local profiling into the shared aggregate.
    ctx.stats.private_pages = ctx.space.materialized_pages() as u64;
    ctx.shared.meta.stats.merge(&ctx.stats);
    ctx.shared.kendo.finish(&ctx.kendo);
}

impl RfdetCtx {
    /// Applies every lazy-pending page (used before forking a child).
    pub(crate) fn flush_pending(&mut self) {
        let pages: Vec<usize> = self.pending.keys().copied().collect();
        for p in pages {
            self.lazy_fault(p);
        }
    }
}
