//! Deterministic synchronization operations (paper §4.1).
//!
//! Every operation follows the same shape:
//!
//! 1. `wait_for_turn` — Kendo admits the op at a deterministic point in
//!    the global synchronization order;
//! 2. *in turn*: end the current slice, record releases in the internal
//!    sync-var table, tick the vector clock, mutate the deterministic
//!    queues, deposit handoffs into blocked threads' mailboxes, publish
//!    the in-turn clock, and finally tick the Kendo clock (releasing the
//!    turn);
//! 3. *off turn*: the actual memory-modification propagation — the
//!    expensive part — runs in parallel with other threads' turns. This
//!    is exactly what "no global barriers" buys.
//!
//! Blocking operations park **after** their final tick; their waker
//! deposits the acquire edges and reactivates them with a deterministic
//! clock from inside its own turn.

use crate::ctx::RfdetCtx;
use crate::handoff::{AcquireSource, BarrierHandoff};
use parking_lot::{Mutex, MutexGuard};
use rfdet_api::{BarrierId, CondId, MutexId, ThreadFn, ThreadHandle, Tid};
use rfdet_meta::SyncKey;
use rfdet_vclock::VClock;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Locks a queue-class mutex, counting the case where another thread held
/// it on arrival (the contention the per-class split is meant to shrink).
fn lock_counted<'a, T>(m: &'a Mutex<T>, contended: &mut u64) -> MutexGuard<'a, T> {
    match m.try_lock() {
        Some(g) => g,
        None => {
            *contended += 1;
            m.lock()
        }
    }
}

/// Ends the slice, optionally records a release, ticks the vector clock.
/// Returns the release time (`lower` — the just-ended slice's timestamp).
fn op_boundary(ctx: &mut RfdetCtx, release: Option<SyncKey>) -> VClock {
    let lower = ctx.vc.clone();
    ctx.end_slice();
    if let Some(key) = release {
        let var = ctx.sync_var(key);
        var.lock().record_release(ctx.tid, lower.clone());
    }
    ctx.vc.tick(ctx.tid);
    lower
}

/// Post-propagation epilogue shared by every operation (runs off-turn).
fn op_epilogue(ctx: &mut RfdetCtx) {
    ctx.begin_slice();
    ctx.meta_thread.set_published_vc(&ctx.vc);
    ctx.run_pending_gc();
}

/// Blocks, consumes the wakeup mailbox, and finishes the acquire. When
/// `premerge_source` is set (and the prelock optimization is on), the
/// park loop keeps pre-merging the source's published slices off the
/// critical path (§4.5).
fn block_and_acquire(ctx: &mut RfdetCtx, premerge_source: Option<Tid>) {
    let kendo_handle = ctx.kendo.clone();
    let shared = Arc::clone(&ctx.shared);
    // Parked threads double as the deadlock detector: the park-idle
    // callback runs the cheap all-blocked scan (supervise.rs), so a
    // stable deadlock is found by the threads inside it — no watchdog
    // thread, no wall clock.
    let idles = match premerge_source.filter(|_| ctx.shared.cfg.rfdet.prelock) {
        Some(src) => {
            // First round immediately, then periodically while parked.
            ctx.premerge_round(src);
            shared.kendo.park_until_active_with(&kendo_handle, || {
                ctx.premerge_round(src);
                shared.check_deadlock();
            })
        }
        None => shared
            .kendo
            .park_until_active_with(&kendo_handle, || shared.check_deadlock()),
    };
    ctx.obs_count(rfdet_api::obs::Phase::IdleWakeups, idles);
    // The boundary stored at sync-op entry predates the park; reseed so
    // the mailbox propagation below is not billed for the blocked time.
    ctx.obs_reseed_boundary();
    let mail = ctx.mailbox.lock().drain();
    debug_assert!(!mail.is_empty(), "woken without a handoff");
    // Peek the checkpoint decision before the mailbox is consumed; the
    // fragment is contributed only after the merge completes below.
    let ckpt_epoch = mail.barrier.as_ref().and_then(|b| b.checkpoint);
    ctx.apply_mailbox(mail);
    debug_assert_eq!(
        ctx.vc,
        ctx.meta_thread.get_turn_vc(),
        "post-wake clock must equal the in-turn published clock"
    );
    op_epilogue(ctx);
    if let Some(epoch) = ckpt_epoch {
        crate::checkpoint::contribute(ctx, epoch);
    }
}

enum LockPath {
    /// Lock taken immediately; propagate from the recorded release edge,
    /// if any (`(releaser, release time)` — only the clock is copied out
    /// of the sync var, never the whole var).
    Fast(Option<(Tid, VClock)>),
    /// Same-thread re-acquire: keep the slice open (§4.5 slice merging).
    Merged,
    /// Enqueued behind `pred` (the prelock pre-merge source).
    Queued { pred: Tid },
}

pub(crate) fn lock_impl(ctx: &mut RfdetCtx, m: MutexId) {
    ctx.fault_point("lock", Some(u64::from(m.0)));
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    ctx.stats.locks += 1;
    let key = SyncKey::Mutex(m.0);
    let enqueued = {
        let mut mxs = lock_counted(
            &ctx.shared.queues.mutexes,
            &mut ctx.stats.queue_lock_contended,
        );
        let mx = mxs.entry(m.0).or_default();
        assert_ne!(
            mx.owner,
            Some(ctx.tid),
            "recursive lock of mutex {} by thread {}",
            m.0,
            ctx.tid
        );
        if mx.owner.is_none() && mx.queue.is_empty() {
            mx.owner = Some(ctx.tid);
            None
        } else {
            let pred = mx
                .queue
                .back()
                .copied()
                .or(mx.owner)
                .expect("contended mutex must have an owner or queue");
            mx.queue.push_back(ctx.tid);
            Some(pred)
        }
    };
    let path = match enqueued {
        Some(pred) => LockPath::Queued { pred },
        None => {
            let var = ctx.sync_var(key);
            let sv = var.lock();
            if ctx.shared.cfg.rfdet.slice_merging && sv.last_tid == Some(ctx.tid) {
                LockPath::Merged
            } else if sv.needs_propagation(ctx.tid) {
                let from = sv.last_tid.expect("needs_propagation implies a releaser");
                LockPath::Fast(Some((from, sv.last_time.clone())))
            } else {
                LockPath::Fast(None)
            }
        }
    };
    match path {
        LockPath::Merged => {
            ctx.stats.slices_merged += 1;
            ctx.release_turn();
        }
        LockPath::Fast(edge) => {
            op_boundary(ctx, None);
            let turn_vc = match &edge {
                Some((_, time)) => ctx.vc.joined(time),
                None => ctx.vc.clone(),
            };
            ctx.meta_thread.set_turn_vc(&turn_vc);
            ctx.release_turn();
            // Turn released — propagation proceeds in parallel with other
            // threads' synchronization. No global barrier anywhere.
            if let Some((from, time)) = edge {
                let lower = ctx.vc.clone();
                ctx.vc.join(&time);
                ctx.propagate_from(from, &time, &lower);
            }
            op_epilogue(ctx);
        }
        LockPath::Queued { pred } => {
            op_boundary(ctx, None);
            ctx.meta_thread.set_turn_vc(&ctx.vc);
            ctx.shared.kendo.block(&ctx.kendo);
            ctx.release_turn();
            // §4.5 Prelock: merge everything that must happen-before our
            // eventual acquire while the lock holder still works.
            block_and_acquire(ctx, Some(pred));
        }
    }
}

pub(crate) fn unlock_impl(ctx: &mut RfdetCtx, m: MutexId) {
    ctx.fault_point("unlock", Some(u64::from(m.0)));
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    ctx.stats.unlocks += 1;
    let lower = op_boundary(ctx, Some(SyncKey::Mutex(m.0)));
    ctx.meta_thread.set_turn_vc(&ctx.vc);
    let next = {
        let mut mxs = lock_counted(
            &ctx.shared.queues.mutexes,
            &mut ctx.stats.queue_lock_contended,
        );
        let mx = mxs
            .get_mut(&m.0)
            .unwrap_or_else(|| panic!("unlock of never-locked mutex {}", m.0));
        assert_eq!(
            mx.owner,
            Some(ctx.tid),
            "thread {} unlocking mutex {} it does not hold",
            ctx.tid,
            m.0
        );
        mx.owner = mx.queue.pop_front();
        mx.owner
    };
    if let Some(w) = next {
        handoff_release(ctx, w, lower);
        ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
    }
    ctx.release_turn();
    op_epilogue(ctx);
}

/// Deposits a release edge into a blocked thread's mailbox and extends its
/// in-turn clock — both inside the caller's turn.
fn handoff_release(ctx: &mut RfdetCtx, target: Tid, time: VClock) {
    let peer = ctx.peer(target);
    peer.mailbox.lock().sources.push(AcquireSource {
        from: ctx.tid,
        time: time.clone(),
    });
    peer.meta.join_turn_vc(&time);
}

pub(crate) fn wait_impl(ctx: &mut RfdetCtx, c: CondId, m: MutexId) {
    ctx.fault_point("cond_wait", Some(u64::from(c.0)));
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    ctx.stats.waits += 1;
    // cond_wait releases the mutex…
    let lower = op_boundary(ctx, Some(SyncKey::Mutex(m.0)));
    ctx.meta_thread.set_turn_vc(&ctx.vc);
    let next = {
        let mut mxs = lock_counted(
            &ctx.shared.queues.mutexes,
            &mut ctx.stats.queue_lock_contended,
        );
        let mx = mxs
            .get_mut(&m.0)
            .unwrap_or_else(|| panic!("cond_wait with never-locked mutex {}", m.0));
        assert_eq!(
            mx.owner,
            Some(ctx.tid),
            "thread {} waiting on cond {} without holding mutex {}",
            ctx.tid,
            c.0,
            m.0
        );
        mx.owner = mx.queue.pop_front();
        mx.owner
    };
    lock_counted(
        &ctx.shared.queues.conds,
        &mut ctx.stats.queue_lock_contended,
    )
    .entry(c.0)
    .or_default()
    .push_back((ctx.tid, m.0));
    if let Some(w) = next {
        handoff_release(ctx, w, lower);
        ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
    }
    // …then blocks until signalled (and until it re-owns the mutex: the
    // signaler either grants it immediately or moves us to the mutex
    // queue, in which case the eventual unlocker completes the wakeup).
    ctx.shared.kendo.block(&ctx.kendo);
    ctx.release_turn();
    block_and_acquire(ctx, None);
}

pub(crate) fn signal_impl(ctx: &mut RfdetCtx, c: CondId, broadcast: bool) {
    ctx.fault_point(
        if broadcast {
            "cond_broadcast"
        } else {
            "cond_signal"
        },
        Some(u64::from(c.0)),
    );
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    ctx.stats.signals += 1;
    let lower = op_boundary(ctx, Some(SyncKey::Cond(c.0)));
    ctx.meta_thread.set_turn_vc(&ctx.vc);
    // Pop waiters deterministically (FIFO — enqueue order was itself
    // turn-ordered) and arrange each one's mutex re-acquisition.
    let popped: Vec<(Tid, u32)> = {
        let mut conds = lock_counted(
            &ctx.shared.queues.conds,
            &mut ctx.stats.queue_lock_contended,
        );
        let queue = conds.entry(c.0).or_default();
        let n = if broadcast {
            queue.len()
        } else {
            usize::from(!queue.is_empty())
        };
        queue.drain(..n).collect()
    };
    let mut wake_now: Vec<Tid> = Vec::new();
    for (w, mid) in popped {
        // The signal edge (release of the condvar).
        let peer = ctx.peer(w);
        peer.mailbox.lock().sources.push(AcquireSource {
            from: ctx.tid,
            time: lower.clone(),
        });
        peer.meta.join_turn_vc(&lower);
        let granted = {
            let mut mxs = lock_counted(
                &ctx.shared.queues.mutexes,
                &mut ctx.stats.queue_lock_contended,
            );
            let mx = mxs.entry(mid).or_default();
            if mx.owner.is_none() && mx.queue.is_empty() {
                // Mutex free: grant it to the waiter right now, with the
                // mutex's own release edge.
                mx.owner = Some(w);
                true
            } else {
                // Mutex busy: park the waiter in the reservation queue;
                // the unlocker will finish the handoff.
                mx.queue.push_back(w);
                false
            }
        };
        if granted {
            let var = ctx.sync_var(SyncKey::Mutex(mid));
            let edge = {
                let sv = var.lock();
                if sv.needs_propagation(w) {
                    let from = sv.last_tid.expect("propagation implies releaser");
                    Some((from, sv.last_time.clone()))
                } else {
                    None
                }
            };
            if let Some((from, time)) = edge {
                peer.mailbox.lock().sources.push(AcquireSource {
                    from,
                    time: time.clone(),
                });
                peer.meta.join_turn_vc(&time);
            }
            wake_now.push(w);
        }
    }
    for w in wake_now {
        ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
    }
    ctx.release_turn();
    op_epilogue(ctx);
}

pub(crate) fn barrier_impl(ctx: &mut RfdetCtx, b: BarrierId, parties: usize) {
    assert!(parties > 0, "barrier with zero parties");
    ctx.fault_point("barrier", Some(u64::from(b.0)));
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    ctx.stats.barriers += 1;
    let lower = op_boundary(ctx, Some(SyncKey::Barrier(b.0)));
    ctx.meta_thread.set_turn_vc(&ctx.vc);
    let arrivals = {
        let mut barriers = lock_counted(
            &ctx.shared.queues.barriers,
            &mut ctx.stats.queue_lock_contended,
        );
        let st = barriers.entry(b.0).or_default();
        st.arrivals.push((ctx.tid, lower));
        assert!(
            st.arrivals.len() <= parties,
            "barrier {} overfull: {} arrivals for {} parties",
            b.0,
            st.arrivals.len(),
            parties
        );
        if st.arrivals.len() == parties {
            Some(std::mem::take(&mut st.arrivals))
        } else {
            None
        }
    };
    match arrivals {
        None => {
            ctx.shared.kendo.block(&ctx.kendo);
            ctx.release_turn();
            block_and_acquire(ctx, None);
        }
        Some(arrivals) => {
            // Last arriver: compute the merged view and release everyone.
            let mut upper = VClock::new();
            for (_, t) in &arrivals {
                upper.join(t);
            }
            let participants: Vec<Tid> = arrivals.iter().map(|(t, _)| *t).collect();
            // Checkpoint eligibility is decided here, inside the last
            // arriver's turn, *before* any deposit or wake: the global
            // seal data (sync-var table, join table, dead outputs) is
            // race-free, and every participant learns the same epoch.
            let checkpoint = crate::checkpoint::decide(ctx, &participants, &upper);
            let handoff = BarrierHandoff {
                participants: participants.clone(),
                upper: upper.clone(),
                checkpoint,
            };
            for &w in &participants {
                if w == ctx.tid {
                    continue;
                }
                let peer = ctx.peer(w);
                peer.mailbox.lock().barrier = Some(handoff.clone());
                peer.meta.join_turn_vc(&upper);
                ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
            }
            ctx.meta_thread.join_turn_vc(&upper);
            ctx.release_turn();
            // Own merge, off turn.
            let my_lower = ctx.vc.clone();
            ctx.vc.join(&upper);
            ctx.propagate_barrier(&handoff, &my_lower);
            op_epilogue(ctx);
            if let Some(epoch) = checkpoint {
                crate::checkpoint::contribute(ctx, epoch);
            }
        }
    }
}

pub(crate) fn spawn_impl(ctx: &mut RfdetCtx, f: ThreadFn) -> ThreadHandle {
    ctx.fault_point("spawn", None);
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    ctx.stats.forks += 1;
    // Lazy pending must be materialized before the child inherits the
    // space, or the child would read stale bytes.
    ctx.flush_pending();
    let lower = op_boundary(ctx, None); // create is a release; the child
                                        // inherits memory directly, no
                                        // sync var needed (§4.1)
    ctx.meta_thread.set_turn_vc(&ctx.vc);

    // Deterministic registration inside the parent's turn.
    let child_meta = ctx.shared.meta.register_thread();
    let child_tid = child_meta.tid;
    let child_kendo = ctx.shared.kendo.register(ctx.kendo.clock() + 1);
    assert_eq!(child_kendo.tid(), child_tid, "registry tid mismatch");
    let child_mailbox = ctx.shared.register_mailbox();
    // The child's clock starts from the *pre-tick* boundary clock, not
    // the parent's post-tick `vc`: slices are stamped with their start
    // time, so the slice the parent opens right after this boundary will
    // carry exactly the post-tick clock. A child seeded with that value
    // would claim the slice as already-seen — yet its writes happen
    // after the fork, so every later filter would drop it and the
    // child would read stale memory forever. Same off-by-one discipline
    // as the pre-merge bound (propagation.rs): exclude the open slice.
    let mut child_vc = lower;
    child_vc.tick(child_tid);
    // The child inherits the parent's memory (COW fork) and, for
    // transitive propagation, the parent's slice-pointer list.
    let child_space = ctx.space.fork();
    child_meta.slice_list.lock().entries = ctx.meta_thread.slice_list.lock().entries.clone();
    // The child has (by inheritance) seen everything the parent saw, so
    // the parent's propagation cursors are valid starting points.
    let child_cursors = ctx.cursors.clone();
    child_meta.set_published_vc(&child_vc);
    child_meta.set_turn_vc(&child_vc);

    let shared = Arc::clone(&ctx.shared);
    let handle = std::thread::Builder::new()
        .name(format!("rfdet-{child_tid}"))
        .spawn(move || {
            let mut child = RfdetCtx::from_parts(
                Arc::clone(&shared),
                child_kendo,
                child_meta,
                child_mailbox,
                Some(child_space),
                child_vc,
            );
            child.cursors = child_cursors;
            let result = catch_unwind(AssertUnwindSafe(|| {
                f(&mut child);
                child.on_exit();
            }));
            if let Err(payload) = result {
                if payload
                    .downcast_ref::<crate::checkpoint::CkptStop>()
                    .is_some()
                {
                    // Clean shard stop (§4.11): the thread contributed
                    // its fragment to the target epoch and is done. Not
                    // a failure, not an exit — just finish the slot so
                    // arbitration ignores it.
                    shared.kendo.finish_forced(child_tid);
                } else {
                    // Capture the unwound thread's deterministic state
                    // while the context is still alive, then abort the
                    // protocol.
                    let state = child.thread_report();
                    shared.record_panic(child_tid, payload, Some(state));
                }
            }
        })
        .expect("failed to spawn OS thread");
    ctx.shared.os_handles.lock().insert(child_tid, handle);
    ctx.release_turn();
    op_epilogue(ctx);
    ThreadHandle(child_tid)
}

pub(crate) fn join_impl(ctx: &mut RfdetCtx, h: ThreadHandle) {
    let target = h.0;
    assert_ne!(target, ctx.tid, "thread joining itself");
    ctx.fault_point("join", Some(u64::from(target)));
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    ctx.stats.joins += 1;
    let already_finished = {
        let mut joins = lock_counted(
            &ctx.shared.queues.joins,
            &mut ctx.stats.queue_lock_contended,
        );
        if joins.finished.contains(&target) {
            true
        } else {
            joins.waiters.entry(target).or_default().push(ctx.tid);
            false
        }
    };
    if already_finished {
        let var = ctx.sync_var(SyncKey::Thread(target));
        let exit_time = var.lock().last_time.clone();
        op_boundary(ctx, None);
        let turn_vc = ctx.vc.joined(&exit_time);
        ctx.meta_thread.set_turn_vc(&turn_vc);
        ctx.release_turn();
        let lower = ctx.vc.clone();
        ctx.vc.join(&exit_time);
        ctx.propagate_from(target, &exit_time, &lower);
        op_epilogue(ctx);
    } else {
        op_boundary(ctx, None);
        ctx.meta_thread.set_turn_vc(&ctx.vc);
        ctx.shared.kendo.block(&ctx.kendo);
        ctx.release_turn();
        // The join target's published clock always precedes its exit
        // time, so it is a sound prelock source for the parked joiner.
        block_and_acquire(ctx, Some(target));
    }
}

/// Low-level atomics (the §4.6/§6 extension).
///
/// An atomic operation is a synchronization operation that both acquires
/// and releases the cell's internal sync var. Unlike mutexes there is no
/// ownership to hand off, so the whole read-modify-write — including the
/// acquire-side propagation — executes inside one Kendo turn; this keeps
/// consecutive atomics on the same cell strictly serialized (otherwise a
/// second thread could read the sync var between our acquire and our
/// release and miss our update). Atomic cells are expected to carry tiny
/// modification sets, so the in-turn propagation is short.
pub(crate) fn atomic_impl(
    ctx: &mut RfdetCtx,
    addr: rfdet_api::Addr,
    op: Option<rfdet_api::AtomicOp>,
    store: Option<u64>,
) -> u64 {
    assert_eq!(addr % 8, 0, "atomic cells must be 8-byte aligned");
    ctx.fault_point("atomic", Some(addr));
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    ctx.stats.atomics += 1;
    let key = SyncKey::Atomic(addr);
    let var = ctx.sync_var(key);
    let edge = {
        let sv = var.lock();
        if sv.needs_propagation(ctx.tid) {
            let from = sv.last_tid.expect("propagation implies a releaser");
            Some((from, sv.last_time.clone()))
        } else {
            None
        }
    };
    // Acquire boundary: close the current slice, join the cell's last
    // release, and propagate — all in turn (see above).
    op_boundary(ctx, None);
    if let Some((from, time)) = edge {
        let lower = ctx.vc.clone();
        ctx.vc.join(&time);
        ctx.propagate_from(from, &time, &lower);
    }
    // The mini-slice between the two boundaries holds only the atomic
    // access itself; tag it so the race detector skips it (an atomic is
    // synchronization — its ordering flows through the release clock
    // recorded below, not through the data-race check).
    ctx.in_atomic = true;
    ctx.begin_slice();
    // The modification itself, through the instrumented in-turn path (a
    // normal write would tick the Kendo clock and release the turn).
    let mut buf = [0u8; 8];
    ctx.read_in_turn(addr, &mut buf);
    let old = u64::from_le_bytes(buf);
    match (op, store) {
        (Some(op), None) => ctx.write_in_turn(addr, &op.apply(old).to_le_bytes()),
        (None, Some(v)) => ctx.write_in_turn(addr, &v.to_le_bytes()),
        (None, None) => {} // pure load
        (Some(_), Some(_)) => unreachable!("rmw and store are exclusive"),
    }
    // Release boundary: publish the one-op slice and record the release.
    op_boundary(ctx, Some(key));
    ctx.in_atomic = false;
    ctx.meta_thread.set_turn_vc(&ctx.vc);
    ctx.release_turn();
    op_epilogue(ctx);
    old
}

/// The implicit exit operation: releases `SyncKey::Thread(tid)` and wakes
/// joiners. Runs when the thread's entry function returns.
pub(crate) fn exit_impl(ctx: &mut RfdetCtx) {
    ctx.fault_point("exit", None);
    ctx.jitter_pause();
    ctx.wait_for_turn_timed();
    let lower = op_boundary(ctx, Some(SyncKey::Thread(ctx.tid)));
    ctx.meta_thread.set_turn_vc(&ctx.vc);
    ctx.meta_thread.set_published_vc(&ctx.vc);
    let waiters = {
        let mut joins = lock_counted(
            &ctx.shared.queues.joins,
            &mut ctx.stats.queue_lock_contended,
        );
        joins.finished.insert(ctx.tid);
        joins.waiters.remove(&ctx.tid).unwrap_or_default()
    };
    for w in waiters {
        handoff_release(ctx, w, lower.clone());
        ctx.shared.kendo.wake(w, ctx.kendo.clock() + 1);
    }
    ctx.shared.meta.mark_dead(ctx.tid);
    // Flush thread-local profiling into the shared aggregate.
    ctx.stats.private_pages = ctx.space.materialized_pages() as u64;
    ctx.shared.meta.stats.merge(&ctx.stats);
    ctx.shared.kendo.finish(&ctx.kendo);
}

impl RfdetCtx {
    /// Applies every lazy-pending page (used before forking a child).
    /// A runtime-initiated flush, not a program access: no fault is
    /// charged (see [`RfdetCtx::drain_pending`]).
    pub(crate) fn flush_pending(&mut self) {
        let pages: Vec<usize> = self.pending.pages().collect();
        for p in pages {
            self.drain_pending(p);
        }
    }
}
