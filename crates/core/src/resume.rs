//! Restore a run from a consistent-cut checkpoint (DESIGN.md §4.11).
//!
//! [`RfdetBackend::run_resumed`] reconstructs every thread's
//! deterministic state — Kendo clock, vector clock, private pages, heap
//! allocator, fault-plan coordinates, output — exactly as it was at the
//! checkpointed barrier episode, then lets the run continue under the
//! normal DLRC protocol. Soundness of the *empty* propagation state
//! (no slice lists, zero cursors) is the checkpoint eligibility
//! invariant: at capture, every participant's clock dominated the
//! episode's upper limit and every recorded release was ≤ upper, so no
//! future acquire can need a pre-cut slice.
//!
//! Thread bodies do not serialize; the caller supplies a *resume body*
//! per tid (see `rfdet-workloads`' resumable workloads), which must
//! continue from deterministic memory — typically a round index each
//! thread keeps in its own private space, restored with the pages.

use crate::backend::{handle_main_unwind, teardown};
use crate::checkpoint::{ckpt_to_heap, class_to_key, CkptStop};
use crate::ctx::RfdetCtx;
use crate::handoff::Mailbox;
use crate::shared::RuntimeShared;
use crate::RfdetBackend;
use parking_lot::Mutex;
use rfdet_api::{DmtBackend, RunConfig, ThreadFn, Tid, TracedRun};
use rfdet_kendo::KendoHandle;
use rfdet_mem::PrivateSpace;
use rfdet_meta::ThreadMeta;
use rfdet_trace::{Checkpoint, CkptThread};
use rfdet_vclock::VClock;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Everything a live thread needs to rebuild its context, prepared in
/// registration order on the coordinating thread before any worker runs.
struct LiveSeed {
    kendo: KendoHandle,
    meta: Arc<ThreadMeta>,
    mailbox: Arc<Mutex<Mailbox>>,
    vc: VClock,
    frag: CkptThread,
}

/// Rebuilds one thread's context from its checkpoint fragment.
fn build_ctx(shared: Arc<RuntimeShared>, seed: LiveSeed) -> RfdetCtx {
    let mut space = PrivateSpace::new(shared.cfg.space_bytes, shared.cfg.page_size);
    // Re-materialize exactly the recorded page set: the next
    // checkpoint's page list must be byte-identical to the original
    // run's, and `write` materializes precisely the page it touches.
    for p in &seed.frag.pages {
        space.write(space.page_base(p.index as usize), &p.data);
    }
    let mut ctx = RfdetCtx::from_parts(
        shared,
        seed.kendo,
        seed.meta,
        seed.mailbox,
        Some(space),
        seed.vc,
    );
    ctx.slice_seq = seed.frag.slice_seq;
    // Restored fault-plan coordinates keep pre-cut faults from
    // re-firing and post-cut faults firing at their recorded ops.
    ctx.sync_ops = seed.frag.sync_ops;
    ctx.allocs = seed.frag.allocs;
    ctx.heap.restore_state(&ckpt_to_heap(&seed.frag.heap));
    ctx
}

impl RfdetBackend {
    /// Resumes a checkpointed run: rebuilds the runtime at `ckpt`'s cut
    /// and executes each live thread's resume body (`body_for(tid)`)
    /// under the normal protocol until completion (or the next
    /// `stop_at_checkpoint`). Determinism gives byte-identical
    /// continuation: output, digests and later checkpoints match the
    /// uninterrupted run's exactly.
    ///
    /// `cfg` must reconstruct the recorded run's determinism-relevant
    /// configuration (use [`RunConfig::from_trace`] or the checkpoint's
    /// own config); the checkpoint knobs on top of it are the caller's
    /// policy (e.g. `stop_at_checkpoint` for shard replay).
    ///
    /// # Panics
    /// Panics when the checkpoint does not belong to this backend/config
    /// pair — resuming under a different protocol would silently
    /// diverge, which is strictly worse than failing loudly.
    pub fn run_resumed(
        &self,
        cfg: &RunConfig,
        ckpt: &Checkpoint,
        body_for: &dyn Fn(Tid) -> ThreadFn,
    ) -> TracedRun {
        let mut cfg = cfg.clone();
        if let Some(m) = self.monitor_override {
            cfg.rfdet.monitor = m;
        }
        let mut shared = RuntimeShared::new(cfg);
        shared.backend_name = self.name();
        assert_eq!(
            ckpt.backend, shared.backend_name,
            "checkpoint was recorded by backend {:?}, resuming under {:?}",
            ckpt.backend, shared.backend_name
        );
        assert_eq!(
            ckpt.config,
            shared.cfg.trace_config(),
            "checkpoint config does not match the resume config"
        );
        // Continue the original epoch numbering, so the resumed run's
        // next checkpoints land at the same epochs with the same ids.
        shared.ckpt.seed_episodes(ckpt.epoch);

        // Dense re-registration in tid order, all on this thread: tids,
        // kendo slots and mailboxes must line up exactly as the original
        // run created them.
        let mut live: Vec<LiveSeed> = Vec::new();
        for t in &ckpt.threads {
            let meta = shared.meta.register_thread();
            assert_eq!(meta.tid, t.tid, "checkpoint tids must be dense, ascending");
            let kendo = shared.kendo.register(t.clock);
            let mailbox = shared.register_mailbox();
            *meta.output.lock() = t.output.clone();
            if t.alive {
                let vc = VClock::from_components(t.vc.clone());
                // Publish both clock views before any thread runs: a
                // peer may premerge against this thread immediately,
                // and a zero clock would misfilter its slices.
                meta.set_published_vc(&vc);
                meta.set_turn_vc(&vc);
                live.push(LiveSeed {
                    kendo,
                    meta,
                    mailbox,
                    vc,
                    frag: t.clone(),
                });
            } else {
                shared.kendo.finish_forced(t.tid);
                shared.meta.mark_dead(t.tid);
            }
        }
        // The sync-var table: every recorded (lastTid, lastTime). The
        // propagation these entries would normally trigger is already in
        // every survivor's memory (eligibility), but the times must be
        // exact so post-resume acquires filter identically.
        for v in &ckpt.sync_vars {
            shared
                .meta
                .sync_var(class_to_key(v.class, v.id))
                .lock()
                .record_release(v.last_tid, VClock::from_components(v.last_time.clone()));
        }
        shared.queues.joins.lock().finished = ckpt.finished.iter().copied().collect();
        // Registration seeded the clocks; hand the arbitration baton to
        // the deterministic front-runner.
        shared.kendo.reseed_baton();

        let shared = Arc::new(shared);
        let mut main_seed = None;
        for seed in live {
            let tid = seed.frag.tid;
            if tid == 0 {
                main_seed = Some(seed);
                continue;
            }
            let body = body_for(tid);
            let shared2 = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("rfdet-{tid}"))
                .spawn(move || {
                    let mut ctx = build_ctx(Arc::clone(&shared2), seed);
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        body(&mut ctx);
                        ctx.on_exit();
                    }));
                    if let Err(payload) = result {
                        if payload.downcast_ref::<CkptStop>().is_some() {
                            shared2.kendo.finish_forced(tid);
                        } else {
                            let state = ctx.thread_report();
                            shared2.record_panic(tid, payload, Some(state));
                        }
                    }
                })
                .expect("failed to spawn OS thread");
            shared.os_handles.lock().insert(tid, handle);
        }
        // Main (tid 0) runs on the calling thread, like a fresh run —
        // but rebuilt from its fragment instead of `new_main`.
        let main_seed = main_seed.expect(
            "checkpoint has no live main thread (full membership requires main at the barrier)",
        );
        let mut main = build_ctx(Arc::clone(&shared), main_seed);
        let body = body_for(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            body(&mut main);
            main.on_exit();
        }));
        if let Err(payload) = result {
            handle_main_unwind(&shared, &mut main, payload);
        }
        teardown(&self.name(), &shared, main)
    }
}
