//! Run-wide shared state.

use crate::handoff::Mailbox;
use crate::supervise::Supervisor;
use parking_lot::{Mutex, RwLock};
use rfdet_api::trace::{op, TraceEvent, TraceSink};
use rfdet_api::{RunConfig, Tid};
use rfdet_kendo::KendoState;
use rfdet_mem::StripAllocator;
use rfdet_meta::MetaSpace;
use rfdet_vclock::VClock;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Logical-clock increment charged per synchronization operation (the
/// paper weights ticks by memory instructions; sync ops get a small fixed
/// surcharge so back-to-back sync ops still rotate turns fairly).
pub(crate) const SYNC_TICK: u64 = 5;

/// State of one application mutex.
#[derive(Debug, Default)]
pub(crate) struct MutexState {
    /// Current owner.
    pub owner: Option<Tid>,
    /// Reservation queue (paper §4.5 *Prelock*): deterministic
    /// acquisition order, fixed at enqueue time inside the Kendo turn.
    pub queue: VecDeque<Tid>,
}

/// State of one application barrier.
#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    /// `(tid, release time)` of each arrival this episode.
    pub arrivals: Vec<(Tid, VClock)>,
}

/// Join bookkeeping: waiters and finished threads are always consulted
/// together, so they share one lock.
#[derive(Debug, Default)]
pub(crate) struct JoinTable {
    /// Joiners parked on a not-yet-finished thread.
    pub waiters: HashMap<Tid, Vec<Tid>>,
    /// Threads that have executed their exit operation.
    pub finished: HashSet<Tid>,
}

/// All deterministic queueing state, one lock per sync-object class so
/// operations on unrelated classes (e.g. a mutex handoff and a barrier
/// arrival) never contend on runtime-internal state. Contents are still
/// mutated **only inside Kendo turns**, so although `Mutex`es guard them
/// physically, they evolve in a deterministic order — which is also why
/// the split cannot deadlock: no two turns run concurrently, so lock
/// acquisition order across classes is irrelevant.
#[derive(Debug, Default)]
pub(crate) struct SyncQueues {
    pub mutexes: Mutex<HashMap<u32, MutexState>>,
    /// Condvar wait queues: `(waiter, mutex to reacquire)` in deterministic
    /// arrival order.
    pub conds: Mutex<HashMap<u32, VecDeque<(Tid, u32)>>>,
    pub barriers: Mutex<HashMap<u32, BarrierState>>,
    pub joins: Mutex<JoinTable>,
}

/// Everything shared by all threads of one RFDet run.
pub(crate) struct RuntimeShared {
    pub cfg: RunConfig,
    /// The running backend's display name ("RFDet", "RFDet-ci",
    /// "RFDet-pf"). Stamped into checkpoints, whose `run_key` covers it:
    /// two monitor modes of the same workload are different runs.
    pub backend_name: String,
    /// Checkpoint assembly state (§4.11); inert when
    /// `cfg.checkpoint_every == 0`.
    pub ckpt: crate::checkpoint::CkptCollector,
    pub kendo: KendoState,
    pub meta: MetaSpace,
    pub strips: StripAllocator,
    pub queues: SyncQueues,
    /// Wakeup mailboxes, indexed by tid.
    pub mailboxes: RwLock<Vec<Arc<Mutex<Mailbox>>>>,
    /// OS join handles of spawned threads, harvested at run teardown.
    pub os_handles: Mutex<HashMap<Tid, std::thread::JoinHandle<()>>>,
    /// Failure recording and teardown coordination (see `supervise`).
    pub supervisor: Supervisor,
    /// Flight-recorder event sink, `Some` iff `cfg.trace` is on. Thread
    /// contexts buffer into it; the Kendo wake tap pushes directly.
    pub trace_sink: Option<Arc<TraceSink>>,
    /// Metrics sink, `Some` iff `cfg.metrics` is on. Thread contexts
    /// record into per-thread `ObsRecorder`s draining into it; timing is
    /// observed strictly off the deterministic decision path.
    pub obs: Option<Arc<rfdet_api::obs::ObsSink>>,
}

impl RuntimeShared {
    pub fn new(cfg: RunConfig) -> Self {
        cfg.validate();
        let heap_base = rfdet_mem::heap_base(cfg.space_bytes);
        // The wall-clock bound is only the *fallback*: structural
        // deadlock detection (supervise.rs) normally fires first.
        let kendo = KendoState::new()
            .with_deadlock_timeout(cfg.deadlock_after())
            .with_idle_poll(cfg.idle_poll())
            .with_arbitration(if cfg.spin_arbitration {
                rfdet_kendo::ArbitrationMode::SpinScan
            } else {
                rfdet_kendo::ArbitrationMode::Handoff
            });
        let trace_sink = rfdet_api::trace_sink(&cfg);
        if let Some(sink) = &trace_sink {
            // Wakes run inside the waker's turn, so they are schedule
            // events in their own right: record (woken tid, new clock).
            let sink = Arc::clone(sink);
            kendo.set_wake_tap(Box::new(move |tid, clock| {
                sink.push(TraceEvent {
                    tid,
                    op: u64::MAX,
                    kind: op::WAKE,
                    arg: None,
                    clock,
                });
            }));
        }
        Self {
            backend_name: "RFDet".to_owned(),
            ckpt: crate::checkpoint::CkptCollector::default(),
            kendo,
            meta: MetaSpace::with_options(
                cfg.meta_capacity_bytes as usize,
                cfg.gc_threshold,
                cfg.meta_max_slices as usize,
                cfg.sync_shards,
            ),
            strips: StripAllocator::new(heap_base, cfg.space_bytes - heap_base),
            queues: SyncQueues::default(),
            mailboxes: RwLock::new(Vec::new()),
            os_handles: Mutex::new(HashMap::new()),
            supervisor: Supervisor::default(),
            trace_sink,
            obs: rfdet_api::obs_sink(&cfg),
            cfg,
        }
    }

    /// Registers the mailbox for the next thread (call in tid order,
    /// inside the creating turn).
    pub fn register_mailbox(&self) -> Arc<Mutex<Mailbox>> {
        let mut boxes = self.mailboxes.write();
        let mb = Arc::new(Mutex::new(Mailbox::default()));
        boxes.push(Arc::clone(&mb));
        mb
    }

    /// Mailbox of an arbitrary thread (for depositing handoffs).
    pub fn mailbox(&self, tid: Tid) -> Arc<Mutex<Mailbox>> {
        Arc::clone(&self.mailboxes.read()[tid as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_construction_validates_config() {
        let s = RuntimeShared::new(RunConfig::small());
        assert_eq!(s.meta.num_threads(), 0);
        assert_eq!(s.kendo.num_threads(), 0);
        assert!(s.strips.strip_size() > 0);
    }

    #[test]
    fn mailboxes_register_in_order() {
        let s = RuntimeShared::new(RunConfig::small());
        let a = s.register_mailbox();
        let _b = s.register_mailbox();
        a.lock().sources.push(crate::handoff::AcquireSource {
            from: 9,
            time: VClock::new(),
        });
        assert_eq!(s.mailbox(0).lock().sources.len(), 1);
        assert!(s.mailbox(1).lock().is_empty());
    }

    #[test]
    fn record_panic_keeps_first_message_and_aborts() {
        let s = RuntimeShared::new(RunConfig::small());
        let _h = s.kendo.register(0);
        s.record_panic(0, Box::new("first"), None);
        s.record_panic(0, Box::new("second"), None);
        assert!(s.kendo.aborted());
        let err = s.take_run_error("test").unwrap();
        assert_eq!(err.report().message, "first");
    }
}
