//! Memory modification propagation (paper §4.3, Figure 5).

use crate::ctx::RfdetCtx;
use crate::handoff::{BarrierHandoff, Mailbox};
use rfdet_api::obs::Phase;
use rfdet_api::Tid;
use rfdet_mem::PageFlags;
use rfdet_meta::SliceRef;
use rfdet_vclock::VClock;
use std::collections::HashSet;

impl RfdetCtx {
    /// `DoMemoryModificationPropagation` (Figure 5): pull from `from`'s
    /// slice-pointer list every slice `S` with
    /// `S.time ≤ upper` (*upperlimit*: S happens-before the release we
    /// synchronized with) and `¬(S.time ≤ lower)` (*lowerlimit*: not
    /// already seen), apply its modifications in list order, and append it
    /// to our own list (transitive propagation).
    pub(crate) fn propagate_from(&mut self, from: Tid, upper: &VClock, lower: &VClock) {
        let t0 = self.obs_start();
        let cursor = self.cursors.get(&from).copied().unwrap_or(0);
        // `upper` is a release time of `from`, so the list is
        // prefix-closed under it: start at the cursor, stop at the first
        // entry above the limit.
        let source = self.peer(from).meta;
        let (batch, redundant, new_cursor) = source.filter_slices_from(upper, lower, cursor, true);
        self.cursors.insert(from, new_cursor);
        self.stats.slices_filtered_redundant += redundant;
        for s in &batch {
            self.stats.slices_propagated += 1;
            self.apply_slice(s);
        }
        self.meta_thread.append_slices(&batch);
        self.obs_since(Phase::Propagation, t0);
    }

    /// Barrier-merge propagation: everything that happened before the
    /// barrier, from every participant, merged in ascending-tid order
    /// (§4.1: "the thread with the smallest ID merges its modifications
    /// first"), deduplicated across lists.
    pub(crate) fn propagate_barrier(&mut self, b: &BarrierHandoff, lower: &VClock) {
        let t0 = self.obs_start();
        let mut seen: HashSet<(Tid, u64)> = HashSet::new();
        let mut participants = b.participants.clone();
        participants.sort_unstable();
        for &p in &participants {
            if p == self.tid {
                continue;
            }
            let source = self.peer(p).meta;
            let (filtered, _, _) = source.filter_slices_from(&b.upper, lower, 0, false);
            let batch: Vec<SliceRef> = filtered
                .into_iter()
                .filter(|s| seen.insert((s.tid, s.seq)))
                .collect();
            for s in &batch {
                self.stats.slices_propagated += 1;
                self.apply_slice(s);
            }
            self.meta_thread.append_slices(&batch);
        }
        self.obs_since(Phase::Propagation, t0);
    }

    /// Applies one slice's modifications to local memory — directly, or
    /// deferred into per-page pending queues when lazy writes are on.
    ///
    /// Both paths are zero-copy over the slice's shared run list: the lazy
    /// path pushes [`rfdet_mem::RunHandle`]s (an `Arc` bump per run, no
    /// byte copies), and the eager path hands the whole list to the
    /// batched `apply_runs`, which resolves each target page once per
    /// per-page run group instead of once per run.
    pub(crate) fn apply_slice(&mut self, s: &SliceRef) {
        if self.shared.cfg.rfdet.lazy_writes {
            // Runs arrive sorted by address (diffing walks pages in index
            // order), so all runs of one page are consecutive and a
            // last-page check suffices to protect each distinct page once
            // per slice instead of once per run.
            let mut last_protected = usize::MAX;
            for (idx, run) in s.mods.iter().enumerate() {
                let page = self.space.page_of(run.addr);
                self.stats.lazy_deferred_bytes += run.len() as u64;
                self.pending
                    .entry(page)
                    .or_default()
                    .push(rfdet_mem::RunHandle::new(&s.mods, idx));
                if page != last_protected {
                    self.flags.protect(page, PageFlags::NO_ACCESS);
                    last_protected = page;
                }
            }
        } else {
            self.stats.mod_bytes_applied += self.space.apply_runs(&s.mods);
        }
    }

    /// Prelock pre-merge (§4.5): while blocked behind `source` (the lock
    /// predecessor, or the join target), merge every slice that must
    /// happen-before our eventual acquire — everything at or below the
    /// source's *published* clock, which always precedes the release we
    /// will synchronize with. Runs fully off the critical path, and also
    /// advances our own published clock so a long park does not pin the
    /// garbage collector (the §5.4 pathology).
    ///
    /// Only the bound is read under our mailbox lock: a waker deposits
    /// its handoff into that mailbox *before* waking us, so a bound read
    /// while the box is verifiably empty was taken before the source
    /// completed its release — a sound pre-release bound, and published
    /// clocks are monotone, so it stays sound after the lock drops. The
    /// merge work itself (filter, apply, append, publish) touches only
    /// our own state and the source list's own lock, so holding the
    /// mailbox lock across it would do nothing but stall the waker's
    /// deposit — which is exactly the critical path prelock exists to
    /// shorten.
    pub(crate) fn premerge_round(&mut self, source: Tid) {
        let source_meta = self.peer(source).meta;
        let mut bound = {
            let guard = self.mailbox.lock();
            if !guard.is_empty() {
                // A handoff is already in flight; the wake path takes over.
                return;
            }
            source_meta.get_published_vc()
        };
        // Off-by-one guard: the source's *open* (unpublished) slice is
        // timestamped with exactly this published value (timestamps are
        // pre-tick clocks), so claiming `≤ bound` as seen would lose its
        // writes. Stepping the source's own component back one excludes
        // precisely that open slice: every published slice of the source
        // is strictly older in the source component, and no foreign slice
        // can reach it.
        let sc = bound.get(source);
        if sc == 0 {
            return;
        }
        bound.set(source, sc - 1);
        let lower = self.vc.clone();
        if bound.leq(&lower) {
            return;
        }
        let cursor = self.cursors.get(&source).copied().unwrap_or(0);
        let (batch, _, new_cursor) = source_meta.filter_slices_from(&bound, &lower, cursor, true);
        self.cursors.insert(source, new_cursor);
        for s in &batch {
            self.stats.prelock_premerged += 1;
            self.apply_slice(s);
        }
        self.meta_thread.append_slices(&batch);
        self.vc.join(&bound);
        // Everything ≤ bound is now reflected (or queued) locally.
        self.meta_thread.set_published_vc(&self.vc);
    }

    /// Consumes a wakeup mailbox: joins each deposited release time into
    /// the vector clock and propagates from its source, in deposit order.
    /// Pre-merged slices are excluded automatically: the pre-merge joined
    /// their times into `vc`, so the lowerlimit filters them.
    pub(crate) fn apply_mailbox(&mut self, mail: Mailbox) {
        if let Some(b) = mail.barrier {
            let lower = self.vc.clone();
            self.vc.join(&b.upper);
            self.propagate_barrier(&b, &lower);
        }
        for src in mail.sources {
            let lower = self.vc.clone();
            self.vc.join(&src.time);
            self.propagate_from(src.from, &src.time, &lower);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::shared::RuntimeShared;
    use crate::RfdetCtx;
    use rfdet_api::{DmtCtxExt, RunConfig};
    use rfdet_vclock::VClock;
    use std::sync::Arc;

    /// Builds two sibling contexts sharing one runtime, bypassing spawn
    /// (unit-level plumbing only; real spawning is tested in sync.rs).
    fn two_ctxs(lazy: bool) -> (RfdetCtx, RfdetCtx) {
        let mut cfg = RunConfig::small();
        cfg.rfdet.lazy_writes = lazy;
        cfg.rfdet.fault_cost_spins = 0;
        let shared = Arc::new(RuntimeShared::new(cfg));
        let a = RfdetCtx::new_main(Arc::clone(&shared));
        let meta = shared.meta.register_thread();
        let kendo = shared.kendo.register(1);
        let mb = shared.register_mailbox();
        let mut vc = VClock::new();
        vc.tick(1);
        let b = RfdetCtx::from_parts(shared, kendo, meta, mb, None, vc);
        (a, b)
    }

    #[test]
    fn propagation_transfers_happens_before_slices() {
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 99);
        let release_time = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        assert_eq!(b.read::<u64>(64), 0, "not visible before propagation");
        let lower = b.vc.clone();
        b.vc.join(&release_time);
        b.propagate_from(0, &release_time, &lower);
        assert_eq!(b.read::<u64>(64), 99);
        assert_eq!(b.stats.slices_propagated, 1);
    }

    #[test]
    fn upperlimit_excludes_later_slices() {
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 1);
        let release_time = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);
        a.begin_slice();
        a.write::<u64>(64, 2); // x=2 after the release: must stay hidden
        a.end_slice();

        let lower = b.vc.clone();
        b.vc.join(&release_time);
        b.propagate_from(0, &release_time, &lower);
        assert_eq!(b.read::<u64>(64), 1, "Figure 6: x=2 is not yet visible");
    }

    #[test]
    fn lowerlimit_filters_already_seen() {
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 1);
        let t1 = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t1);
        b.propagate_from(0, &t1, &lower);
        assert_eq!(b.stats.slices_propagated, 1);

        // Second propagation from the same release: nothing new — the
        // cursor skips the already-consumed prefix outright (and the
        // lowerlimit would filter anything it still scanned).
        let applied_before = b.stats.mod_bytes_applied;
        let lower2 = b.vc.clone();
        b.propagate_from(0, &t1, &lower2);
        assert_eq!(b.stats.slices_propagated, 1);
        assert_eq!(
            b.stats.mod_bytes_applied, applied_before,
            "no re-application"
        );
    }

    #[test]
    fn transitive_propagation_through_middle_thread() {
        // T0 -> T1 -> (T1's list now carries T0's slice) — a third context
        // pulling from T1 sees T0's write without ever talking to T0.
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 42);
        let t_rel = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t_rel);
        b.propagate_from(0, &t_rel, &lower);
        b.end_slice(); // publish b's (empty) slice; list already has T0's
        let b_rel = b.vc.clone();
        b.vc.tick(1);

        // Third thread:
        let shared = Arc::clone(&b.shared);
        let meta = shared.meta.register_thread();
        let kendo = shared.kendo.register(9);
        let mb = shared.register_mailbox();
        let mut vc = VClock::new();
        vc.tick(2);
        let mut c = RfdetCtx::from_parts(shared, kendo, meta, mb, None, vc);
        let lower = c.vc.clone();
        c.vc.join(&b_rel);
        c.propagate_from(1, &b_rel, &lower);
        assert_eq!(c.read::<u64>(64), 42, "transitivity via slice pointers");
    }

    #[test]
    fn lazy_writes_defer_until_access() {
        let (mut a, mut b) = two_ctxs(true);
        a.write::<u64>(64, 7);
        let t = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t);
        b.propagate_from(0, &t, &lower);
        assert!(b.stats.lazy_deferred_bytes >= 1);
        assert_eq!(b.stats.mod_bytes_applied, 0, "nothing applied yet");
        assert_eq!(b.read::<u64>(64), 7, "fault applies on first access");
        assert!(b.stats.mod_bytes_applied >= 1);
        assert_eq!(b.stats.page_faults, 1);
    }

    #[test]
    fn lazy_writes_share_runs_without_deep_copies() {
        let (mut a, mut b) = two_ctxs(true);
        // Two pages, several runs each.
        a.write::<u64>(0, 1);
        a.write::<u64>(64, 2);
        a.write::<u64>(4096, 3);
        let t = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t);
        b.propagate_from(0, &t, &lower);
        let published = b.shared.meta.snapshot_list(0);
        assert_eq!(published.len(), 1);
        // Every pending entry aliases the published slice's run storage —
        // the lazy path defers by Arc bump, not by copying run bytes.
        let queued: usize = b.pending.values().map(Vec::len).sum();
        assert_eq!(queued, published[0].mods.len());
        for handles in b.pending.values() {
            for h in handles {
                assert!(published[0].mods.iter().any(|r| std::ptr::eq(r, h.run())));
            }
        }
    }

    #[test]
    fn lazy_writes_elide_superseded_values() {
        let (mut a, mut b) = two_ctxs(true);
        // Two updates to the same location across two slices.
        a.write::<u64>(64, 1);
        let t1 = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);
        a.begin_slice();
        a.write::<u64>(64, 2);
        let t2 = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t1);
        b.propagate_from(0, &t1, &lower);
        let lower = b.vc.clone();
        b.vc.join(&t2);
        b.propagate_from(0, &t2, &lower);
        assert_eq!(b.read::<u64>(64), 2, "newest value wins");
        // Byte-granularity diffing means each update is one changed byte;
        // the first one is superseded before the fault applies it.
        assert!(
            b.stats.lazy_elided_bytes >= 1,
            "the first update's byte was never written (elided {})",
            b.stats.lazy_elided_bytes
        );
    }

    #[test]
    fn conflicting_concurrent_writes_remote_wins_in_order() {
        // Two propagation sources applied in deposit order: the later one
        // overwrites — the deterministic "remote overwrites local" policy.
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 5);
        let t = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        b.write::<u64>(64, 6); // b's own concurrent write
        b.end_slice();
        b.vc.tick(1);
        b.begin_slice();
        let lower = b.vc.clone();
        b.vc.join(&t);
        b.propagate_from(0, &t, &lower);
        assert_eq!(b.read::<u64>(64), 5, "remote write overwrites local");
    }
}
