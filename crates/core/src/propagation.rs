//! Memory modification propagation (paper §4.3, Figure 5).

use crate::ctx::RfdetCtx;
use crate::handoff::{BarrierHandoff, Mailbox};
use rfdet_api::obs::Phase;
use rfdet_api::Tid;
use rfdet_mem::PageFlags;
use rfdet_meta::SliceRef;
use rfdet_vclock::VClock;
use std::collections::HashSet;

impl RfdetCtx {
    /// `DoMemoryModificationPropagation` (Figure 5): pull from `from`'s
    /// slice-pointer list every slice `S` with
    /// `S.time ≤ upper` (*upperlimit*: S happens-before the release we
    /// synchronized with) and `¬(S.time ≤ lower)` (*lowerlimit*: not
    /// already seen), apply its modifications in list order, and append it
    /// to our own list (transitive propagation).
    pub(crate) fn propagate_from(&mut self, from: Tid, upper: &VClock, lower: &VClock) {
        let t0 = self.obs_boundary_start();
        let cursor = self.cursors.get(&from).copied().unwrap_or(0);
        // `upper` is a release time of `from`, so the list is
        // prefix-closed under it: start at the cursor, stop at the first
        // entry above the limit.
        let source = self.peer(from).meta;
        let (batch, redundant, new_cursor) = source.filter_slices_from(upper, lower, cursor, true);
        self.cursors.insert(from, new_cursor);
        self.stats.slices_filtered_redundant += redundant;
        for s in &batch {
            self.stats.slices_propagated += 1;
            self.apply_slice(s);
        }
        self.meta_thread.append_slices(&batch);
        self.obs_since_boundary(Phase::Propagation, t0);
    }

    /// Barrier-merge propagation: everything that happened before the
    /// barrier, from every participant, merged in ascending-tid order
    /// (§4.1: "the thread with the smallest ID merges its modifications
    /// first"), deduplicated across lists.
    pub(crate) fn propagate_barrier(&mut self, b: &BarrierHandoff, lower: &VClock) {
        let t0 = self.obs_boundary_start();
        let mut seen: HashSet<(Tid, u64)> = HashSet::new();
        let mut participants = b.participants.clone();
        participants.sort_unstable();
        for &p in &participants {
            if p == self.tid {
                continue;
            }
            let source = self.peer(p).meta;
            let (filtered, _, _) = source.filter_slices_from(&b.upper, lower, 0, false);
            let batch: Vec<SliceRef> = filtered
                .into_iter()
                .filter(|s| seen.insert((s.tid, s.seq)))
                .collect();
            for s in &batch {
                self.stats.slices_propagated += 1;
                self.apply_slice(s);
            }
            self.meta_thread.append_slices(&batch);
        }
        self.obs_since_boundary(Phase::Propagation, t0);
    }

    /// Applies one slice's modifications to local memory — directly, or
    /// deferred into per-page pending queues when lazy writes are on.
    ///
    /// Both paths are zero-copy over the slice's shared run list: the lazy
    /// path pushes one [`rfdet_mem::RunRange`] per per-page run group (a
    /// single `Arc` bump per group, no byte copies), and the eager path
    /// hands the whole list to the batched `apply_runs`, which resolves
    /// each target page once per group instead of once per run.
    pub(crate) fn apply_slice(&mut self, s: &SliceRef) {
        // Race detection: main (the only thread with a detector) checks
        // every incoming slice's accesses against its epoch table before
        // merging the bytes. Application order at a thread respects
        // happens-before, which is exactly the discipline the collector
        // needs for its one-directional check.
        if let Some(det) = self.detect.as_mut() {
            det.observe_slice(s);
        }
        if self.shared.cfg.rfdet.lazy_writes {
            let runs = &s.mods;
            let mut k = 0;
            while k < runs.len() {
                let page = self.space.page_of(runs[k].addr);
                let mut end = k + 1;
                while end < runs.len() && self.space.page_of(runs[end].addr) == page {
                    end += 1;
                }
                let group = rfdet_mem::RunRange::new(&s.mods, k, end);
                self.stats.lazy_deferred_bytes += group.byte_len() as u64;
                // The first deposit on a page protects it; repeats add
                // nothing (invariant: a page is `NO_ACCESS` iff it has a
                // pending queue), so run lists that interleave pages, and
                // repeat deposits onto a still-pending page, issue no
                // extra protect calls.
                if self.pending.push(page, group) {
                    debug_assert!(!self.flags.is_protected(page, PageFlags::NO_ACCESS));
                    self.flags.protect(page, PageFlags::NO_ACCESS);
                    self.stats.lazy_protect_calls += 1;
                }
                k = end;
            }
        } else {
            self.stats.mod_bytes_applied += self.space.apply_runs(&s.mods);
        }
    }

    /// [`Self::apply_slice`] for merges performed while the thread is
    /// blocked (prelock, §4.5). Deferral exists to move apply work off
    /// the critical path — but a premerge already *is* off the critical
    /// path, so depositing here would only convert free idle-time work
    /// into a fault the thread pays inside its next turn. Apply eagerly
    /// instead, draining any previously deposited queues on the touched
    /// pages first so per-page application order stays propagation
    /// order.
    pub(crate) fn apply_slice_idle(&mut self, s: &SliceRef) {
        // Premerge applies slices main would otherwise apply at the
        // acquire — same happens-before-consistent order, same check.
        if let Some(det) = self.detect.as_mut() {
            det.observe_slice(s);
        }
        if self.shared.cfg.rfdet.lazy_writes && !self.pending.is_empty() {
            let runs = &s.mods;
            let mut k = 0;
            while k < runs.len() {
                let page = self.space.page_of(runs[k].addr);
                if self.flags.is_protected(page, PageFlags::NO_ACCESS) {
                    self.drain_pending(page);
                }
                let mut end = k + 1;
                while end < runs.len() && self.space.page_of(runs[end].addr) == page {
                    end += 1;
                }
                k = end;
            }
        }
        self.stats.mod_bytes_applied += self.space.apply_runs(&s.mods);
    }

    /// Prelock pre-merge (§4.5): while blocked behind `source` (the lock
    /// predecessor, or the join target), merge every slice that must
    /// happen-before our eventual acquire — everything at or below the
    /// source's *published* clock, which always precedes the release we
    /// will synchronize with. Runs fully off the critical path, and also
    /// advances our own published clock so a long park does not pin the
    /// garbage collector (the §5.4 pathology).
    ///
    /// Only the bound is read under our mailbox lock: a waker deposits
    /// its handoff into that mailbox *before* waking us, so a bound read
    /// while the box is verifiably empty was taken before the source
    /// completed its release — a sound pre-release bound, and published
    /// clocks are monotone, so it stays sound after the lock drops. The
    /// merge work itself (filter, apply, append, publish) touches only
    /// our own state and the source list's own lock, so holding the
    /// mailbox lock across it would do nothing but stall the waker's
    /// deposit — which is exactly the critical path prelock exists to
    /// shorten.
    pub(crate) fn premerge_round(&mut self, source: Tid) {
        let source_meta = self.peer(source).meta;
        let mut bound = {
            let guard = self.mailbox.lock();
            if !guard.is_empty() {
                // A handoff is already in flight; the wake path takes over.
                return;
            }
            source_meta.get_published_vc()
        };
        // Off-by-one guard: the source's *open* (unpublished) slice is
        // timestamped with exactly this published value (timestamps are
        // pre-tick clocks), so claiming `≤ bound` as seen would lose its
        // writes. Stepping the source's own component back one excludes
        // precisely that open slice: every published slice of the source
        // is strictly older in the source component, and no foreign slice
        // can reach it.
        let sc = bound.get(source);
        if sc == 0 {
            return;
        }
        bound.set(source, sc - 1);
        let mut lower = std::mem::take(&mut self.scratch_lower);
        lower.clone_from(&self.vc);
        if bound.leq(&lower) {
            self.scratch_lower = lower;
            return;
        }
        let cursor = self.cursors.get(&source).copied().unwrap_or(0);
        let (batch, _, new_cursor) = source_meta.filter_slices_from(&bound, &lower, cursor, true);
        self.cursors.insert(source, new_cursor);
        for s in &batch {
            self.stats.prelock_premerged += 1;
            self.apply_slice_idle(s);
        }
        self.meta_thread.append_slices(&batch);
        self.vc.join(&bound);
        // Everything ≤ bound is now reflected (or queued) locally.
        self.meta_thread.set_published_vc(&self.vc);
        self.scratch_lower = lower;
    }

    /// Consumes a wakeup mailbox: joins each deposited release time into
    /// the vector clock and propagates from its source, in deposit order.
    /// Pre-merged slices are excluded automatically: the pre-merge joined
    /// their times into `vc`, so the lowerlimit filters them.
    pub(crate) fn apply_mailbox(&mut self, mail: Mailbox) {
        // One scratch buffer serves every lower limit in the box: each
        // round copies `vc` into it in place (`clone_from` reuses the
        // allocation), where a per-round `clone` allocated afresh.
        let mut lower = std::mem::take(&mut self.scratch_lower);
        if let Some(b) = mail.barrier {
            lower.clone_from(&self.vc);
            self.vc.join(&b.upper);
            self.propagate_barrier(&b, &lower);
        }
        for src in mail.sources {
            lower.clone_from(&self.vc);
            self.vc.join(&src.time);
            self.propagate_from(src.from, &src.time, &lower);
        }
        self.scratch_lower = lower;
    }
}

#[cfg(test)]
mod tests {
    use crate::shared::RuntimeShared;
    use crate::RfdetCtx;
    use rfdet_api::{DmtCtxExt, RunConfig};
    use rfdet_vclock::VClock;
    use std::sync::Arc;

    /// Builds two sibling contexts sharing one runtime, bypassing spawn
    /// (unit-level plumbing only; real spawning is tested in sync.rs).
    fn two_ctxs(lazy: bool) -> (RfdetCtx, RfdetCtx) {
        let mut cfg = RunConfig::small();
        cfg.rfdet.lazy_writes = lazy;
        cfg.rfdet.fault_cost_spins = 0;
        let shared = Arc::new(RuntimeShared::new(cfg));
        let a = RfdetCtx::new_main(Arc::clone(&shared));
        let meta = shared.meta.register_thread();
        let kendo = shared.kendo.register(1);
        let mb = shared.register_mailbox();
        let mut vc = VClock::new();
        vc.tick(1);
        let b = RfdetCtx::from_parts(shared, kendo, meta, mb, None, vc);
        (a, b)
    }

    #[test]
    fn propagation_transfers_happens_before_slices() {
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 99);
        let release_time = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        assert_eq!(b.read::<u64>(64), 0, "not visible before propagation");
        let lower = b.vc.clone();
        b.vc.join(&release_time);
        b.propagate_from(0, &release_time, &lower);
        assert_eq!(b.read::<u64>(64), 99);
        assert_eq!(b.stats.slices_propagated, 1);
    }

    #[test]
    fn upperlimit_excludes_later_slices() {
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 1);
        let release_time = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);
        a.begin_slice();
        a.write::<u64>(64, 2); // x=2 after the release: must stay hidden
        a.end_slice();

        let lower = b.vc.clone();
        b.vc.join(&release_time);
        b.propagate_from(0, &release_time, &lower);
        assert_eq!(b.read::<u64>(64), 1, "Figure 6: x=2 is not yet visible");
    }

    #[test]
    fn lowerlimit_filters_already_seen() {
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 1);
        let t1 = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t1);
        b.propagate_from(0, &t1, &lower);
        assert_eq!(b.stats.slices_propagated, 1);

        // Second propagation from the same release: nothing new — the
        // cursor skips the already-consumed prefix outright (and the
        // lowerlimit would filter anything it still scanned).
        let applied_before = b.stats.mod_bytes_applied;
        let lower2 = b.vc.clone();
        b.propagate_from(0, &t1, &lower2);
        assert_eq!(b.stats.slices_propagated, 1);
        assert_eq!(
            b.stats.mod_bytes_applied, applied_before,
            "no re-application"
        );
    }

    #[test]
    fn transitive_propagation_through_middle_thread() {
        // T0 -> T1 -> (T1's list now carries T0's slice) — a third context
        // pulling from T1 sees T0's write without ever talking to T0.
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 42);
        let t_rel = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t_rel);
        b.propagate_from(0, &t_rel, &lower);
        b.end_slice(); // publish b's (empty) slice; list already has T0's
        let b_rel = b.vc.clone();
        b.vc.tick(1);

        // Third thread:
        let shared = Arc::clone(&b.shared);
        let meta = shared.meta.register_thread();
        let kendo = shared.kendo.register(9);
        let mb = shared.register_mailbox();
        let mut vc = VClock::new();
        vc.tick(2);
        let mut c = RfdetCtx::from_parts(shared, kendo, meta, mb, None, vc);
        let lower = c.vc.clone();
        c.vc.join(&b_rel);
        c.propagate_from(1, &b_rel, &lower);
        assert_eq!(c.read::<u64>(64), 42, "transitivity via slice pointers");
    }

    #[test]
    fn lazy_writes_defer_until_access() {
        let (mut a, mut b) = two_ctxs(true);
        a.write::<u64>(64, 7);
        let t = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t);
        b.propagate_from(0, &t, &lower);
        assert!(b.stats.lazy_deferred_bytes >= 1);
        assert_eq!(b.stats.mod_bytes_applied, 0, "nothing applied yet");
        assert_eq!(b.read::<u64>(64), 7, "fault applies on first access");
        assert!(b.stats.mod_bytes_applied >= 1);
        assert_eq!(b.stats.page_faults, 1);
    }

    #[test]
    fn lazy_writes_share_runs_without_deep_copies() {
        let (mut a, mut b) = two_ctxs(true);
        // Two pages, several runs each.
        a.write::<u64>(0, 1);
        a.write::<u64>(64, 2);
        a.write::<u64>(4096, 3);
        let t = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        let lower = b.vc.clone();
        b.vc.join(&t);
        b.propagate_from(0, &t, &lower);
        let published = b.shared.meta.snapshot_list(0);
        assert_eq!(published.len(), 1);
        // Every pending entry aliases the published slice's run storage —
        // the lazy path defers by Arc bump, not by copying run bytes —
        // and one slice contributes exactly one group per touched page.
        let queued_runs: usize = b
            .pending
            .values()
            .flat_map(|groups| groups.iter().map(rfdet_mem::RunRange::len))
            .sum();
        assert_eq!(queued_runs, published[0].mods.len());
        for groups in b.pending.values() {
            assert_eq!(groups.len(), 1, "one RunRange per (slice, page) group");
            for g in groups {
                for r in g.runs() {
                    assert!(published[0].mods.iter().any(|m| std::ptr::eq(m, r)));
                }
            }
        }
        assert_eq!(b.stats.lazy_protect_calls, b.pending.len() as u64);
    }

    #[test]
    fn interleaved_page_runs_protect_each_page_exactly_once() {
        use rfdet_mem::ModRun;
        use rfdet_meta::{SliceRec, SliceRef};
        let (a, mut b) = two_ctxs(true);
        drop(a);
        // A hand-built run list alternating between two pages — the shape
        // the old `last_protected` single-cell dedupe re-protected on
        // every alternation.
        let mods = vec![
            ModRun::new(0, vec![1].into()),
            ModRun::new(4096, vec![2].into()),
            ModRun::new(8, vec![3].into()),
            ModRun::new(4104, vec![4].into()),
            ModRun::new(16, vec![5].into()),
        ];
        let mut t = VClock::new();
        t.tick(0);
        let s: SliceRef = std::sync::Arc::new(SliceRec::new(0, 0, t, mods));
        b.apply_slice(&s);
        assert_eq!(
            b.stats.lazy_protect_calls, 2,
            "two distinct pages, two protection transitions"
        );
        // Alternation costs a group per switch, but a re-deposit on the
        // still-pending pages adds no further protection calls.
        b.apply_slice(&s);
        assert_eq!(b.stats.lazy_protect_calls, 2);
        assert_eq!(b.read::<u64>(0) & 0xFF, 1, "fault still applies runs");
        assert_eq!(b.stats.page_faults, 1);
    }

    #[test]
    fn lazy_writes_elide_superseded_values() {
        let (mut a, mut b) = two_ctxs(true);
        // Enough updates to the same location, one slice each, to push
        // the pending queue past the overlay threshold (shallower queues
        // apply sequentially and skip elision accounting by design).
        let updates = 6u64;
        for v in 1..=updates {
            a.write::<u64>(64, v);
            let t = a.vc.clone();
            a.end_slice();
            a.vc.tick(0);
            a.begin_slice();
            let lower = b.vc.clone();
            b.vc.join(&t);
            b.propagate_from(0, &t, &lower);
        }
        assert_eq!(b.read::<u64>(64), updates, "newest value wins");
        // Byte-granularity diffing means each update is one changed byte;
        // earlier ones are superseded before the fault applies them.
        assert!(
            b.stats.lazy_elided_bytes >= 1,
            "superseded update bytes were never written (elided {})",
            b.stats.lazy_elided_bytes
        );
    }

    #[test]
    fn conflicting_concurrent_writes_remote_wins_in_order() {
        // Two propagation sources applied in deposit order: the later one
        // overwrites — the deterministic "remote overwrites local" policy.
        let (mut a, mut b) = two_ctxs(false);
        a.write::<u64>(64, 5);
        let t = a.vc.clone();
        a.end_slice();
        a.vc.tick(0);

        b.write::<u64>(64, 6); // b's own concurrent write
        b.end_slice();
        b.vc.tick(1);
        b.begin_slice();
        let lower = b.vc.clone();
        b.vc.join(&t);
        b.propagate_from(0, &t, &lower);
        assert_eq!(b.read::<u64>(64), 5, "remote write overwrites local");
    }
}
