//! Deterministic wakeup mailboxes.
//!
//! A blocked thread cannot decide anything for itself, so the thread that
//! deterministically causes its wakeup (the unlocker, signaler, last
//! barrier arriver, or exiting joinee) deposits everything the sleeper
//! needs — which releases it synchronized with, and for barriers the
//! merged upper limit — into the sleeper's mailbox *during the waker's
//! Kendo turn*, before flipping it back to `Active`.

use rfdet_vclock::{Tid, VClock};

/// One release this wakeup synchronizes with: the internal sync var's
/// (`lastTid`, `lastTime`) captured at handoff time (§4.1).
#[derive(Clone, Debug)]
pub struct AcquireSource {
    /// The releasing thread — the propagation source list to read.
    pub from: Tid,
    /// Vector time of the release (the propagation *upperlimit*).
    pub time: VClock,
}

/// Barrier wakeups carry the merged view instead of a single source.
#[derive(Clone, Debug)]
pub struct BarrierHandoff {
    /// Every participant of this barrier episode, ascending tid — the
    /// deterministic merge order of §4.1 ("the thread with the smallest
    /// ID merges its modifications first").
    pub participants: Vec<Tid>,
    /// Join of all participants' release times: the upperlimit.
    pub upper: VClock,
    /// `Some(epoch)` when this episode seeds a checkpoint (§4.11): each
    /// woken participant contributes its fragment right after its merge.
    /// Stamped by the last arriver *before* any mailbox deposit, so
    /// every participant of the episode sees the same decision.
    pub checkpoint: Option<u64>,
}

/// Accumulated wakeup information for one blocking episode.
#[derive(Debug, Default)]
pub struct Mailbox {
    /// Ordinary acquire edges (mutex handoff, condvar signal, join),
    /// in the deterministic order they were deposited.
    pub sources: Vec<AcquireSource>,
    /// Set instead of `sources` for barrier wakeups.
    pub barrier: Option<BarrierHandoff>,
}

impl Mailbox {
    /// Takes the accumulated contents, leaving the mailbox empty for the
    /// next blocking episode.
    pub fn drain(&mut self) -> Mailbox {
        std::mem::take(self)
    }

    /// `true` when nothing was deposited (e.g. joining an
    /// already-finished thread never blocks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty() && self.barrier.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_resets() {
        let mut m = Mailbox::default();
        m.sources.push(AcquireSource {
            from: 1,
            time: VClock::new(),
        });
        let taken = m.drain();
        assert_eq!(taken.sources.len(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn accumulates_multiple_sources() {
        // A cond waiter gets the signal edge first, then the mutex edge
        // from a later unlock — both must survive until the final wake.
        let mut m = Mailbox::default();
        m.sources.push(AcquireSource {
            from: 2,
            time: VClock::from_components(vec![0, 0, 5]),
        });
        m.sources.push(AcquireSource {
            from: 1,
            time: VClock::from_components(vec![0, 9]),
        });
        assert_eq!(m.sources.len(), 2);
        assert_eq!(m.sources[0].from, 2, "deposit order preserved");
    }
}
