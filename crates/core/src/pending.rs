//! Flat per-page store for lazy-write pending queues (§4.5).
//!
//! The first lazy-writes implementation kept pending queues in a
//! `BTreeMap<usize, Vec<RunRange>>`. Profiling the propagate-heavy
//! adversary showed the map itself was the residual cost: the average
//! fault applies only a few bytes, so the `remove` on every fault and
//! the `entry().or_default()` on every deposit — pointer-chasing tree
//! ops — dominated the actual memory work. This table replaces them
//! with direct indexing: a `Vec` of queues addressed by page number,
//! where deposit and take are a bounds check and a slot access.
//!
//! Capacity is never thrown away. [`PendingTable::take`] hands the
//! caller the queue for application and [`PendingTable::put_back`]
//! returns the (cleared) vector to its slot, so steady-state faults
//! allocate nothing — the same recycling discipline as `snap_pool` and
//! the fault-side [`rfdet_mem::PageOverlay`].

use rfdet_mem::RunRange;

/// Per-page pending lazy-write queues, indexed by page number.
#[derive(Debug, Default)]
pub(crate) struct PendingTable {
    /// `slots[page]` holds the page's deposits in propagation order.
    /// Grown on demand to the highest deposited page; empty slots keep
    /// their capacity across fault/deposit cycles.
    slots: Vec<Vec<RunRange>>,
    /// Number of pages with a non-empty queue. The access-path gate:
    /// when zero, reads and writes skip the per-page protection checks
    /// entirely.
    len: usize,
}

impl PendingTable {
    /// True iff no page has pending modifications.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages with pending modifications.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Appends a deposit to `page`'s queue. Returns `true` when this is
    /// the first pending deposit on the page — the caller's cue to set
    /// `NO_ACCESS` (the invariant: a queue is non-empty iff the page is
    /// protected).
    #[inline]
    pub(crate) fn push(&mut self, page: usize, group: RunRange) -> bool {
        if page >= self.slots.len() {
            self.slots.resize_with(page + 1, Vec::new);
        }
        let slot = &mut self.slots[page];
        let first = slot.is_empty();
        if first {
            self.len += 1;
        }
        slot.push(group);
        first
    }

    /// Detaches `page`'s queue for application, or `None` when nothing
    /// is pending. The caller must clear the returned vector and hand
    /// it to [`Self::put_back`] so the slot keeps its capacity.
    #[inline]
    pub(crate) fn take(&mut self, page: usize) -> Option<Vec<RunRange>> {
        let slot = self.slots.get_mut(page)?;
        if slot.is_empty() {
            return None;
        }
        self.len -= 1;
        Some(std::mem::take(slot))
    }

    /// Returns a queue vector taken by [`Self::take`] to its slot,
    /// preserving its capacity for the next deposit burst.
    #[inline]
    pub(crate) fn put_back(&mut self, page: usize, queue: Vec<RunRange>) {
        debug_assert!(queue.is_empty(), "put_back expects a cleared queue");
        debug_assert!(
            self.slots[page].is_empty(),
            "slot {page} re-filled while its queue was detached"
        );
        self.slots[page] = queue;
    }

    /// Pages with pending modifications, in ascending page order (the
    /// deterministic flush order).
    pub(crate) fn pages(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(p, _)| p)
    }

    /// The queues of all pending pages, in ascending page order.
    #[cfg(test)]
    pub(crate) fn values(&self) -> impl Iterator<Item = &Vec<RunRange>> {
        self.slots.iter().filter(|q| !q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfdet_mem::{ModRun, RunList};

    fn group() -> RunRange {
        let list: RunList = vec![ModRun::new(0, vec![1, 2].into())].into();
        RunRange::new(&list, 0, 1)
    }

    #[test]
    fn push_reports_first_deposit_per_page() {
        let mut t = PendingTable::default();
        assert!(t.is_empty());
        assert!(t.push(3, group()), "first deposit");
        assert!(!t.push(3, group()), "second deposit on the same page");
        assert!(t.push(0, group()));
        assert_eq!(t.len(), 2);
        assert_eq!(t.pages().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn take_then_put_back_keeps_capacity() {
        let mut t = PendingTable::default();
        for _ in 0..8 {
            t.push(5, group());
        }
        let mut q = t.take(5).expect("page 5 pending");
        assert_eq!(q.len(), 8);
        assert!(t.is_empty());
        assert!(t.take(5).is_none(), "already drained");
        let cap = q.capacity();
        q.clear();
        t.put_back(5, q);
        // The next deposit burst reuses the recycled buffer: the slot
        // starts with the old capacity, so no allocation below it.
        assert!(t.push(5, group()));
        let q2 = t.take(5).expect("pending again");
        assert_eq!(q2.capacity(), cap);
    }

    #[test]
    fn take_of_unknown_page_is_none() {
        let mut t = PendingTable::default();
        assert!(t.take(0).is_none());
        assert!(t.take(1 << 20).is_none(), "beyond any slot ever grown");
    }
}
