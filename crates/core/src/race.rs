//! The core backend's race-detection harness.
//!
//! Detection runs entirely at the main thread (tid 0), piggybacking on
//! work DLRC does anyway: every published slice is eventually applied at
//! main (or observed locally, for main's own slices), in an order
//! consistent with happens-before — each thread's slice list is causally
//! ordered, mailbox propagation filters already-seen slices by the lower
//! limit, and barrier batches deduplicate by `(tid, seq)`. Under that
//! discipline the [`RaceCollector`]'s one-directional epoch check is
//! sound (see `rfdet_mem::race` module docs).
//!
//! Completeness within a run: workloads join their whole thread tree, so
//! every worker's exit release (and with it the worker's full slice
//! list) propagates to main before main's own exit seals detection.
//! Slices of threads that were never joined may go unchecked — exactly
//! the slices whose effects the program also never observed.

use rfdet_api::RaceReport;
use rfdet_mem::race::{RaceCollector, SliceAccess};
use rfdet_meta::SliceRec;
use rfdet_vclock::Tid;
use std::collections::HashMap;

/// Main-thread detector state: the shared epoch table plus a per-thread
/// sequence guard that makes re-observation of a slice (which the
/// propagation invariants already rule out) a no-op instead of a
/// soundness hazard.
pub(crate) struct CoreDetect {
    collector: RaceCollector,
    /// Next expected slice seq per tid; slices arrive in seq order
    /// (application order is causal, and one thread's slices are totally
    /// ordered), so anything below the cursor was already observed.
    next_seq: HashMap<Tid, u64>,
}

impl CoreDetect {
    pub(crate) fn new(page_size: u64) -> Self {
        Self {
            collector: RaceCollector::new(page_size),
            next_seq: HashMap::new(),
        }
    }

    /// Observes one published slice (called at `apply_slice` for remote
    /// slices, and from `end_slice` for main's own). Atomic mini-slices
    /// carry synchronization, not data accesses — skipped entirely.
    pub(crate) fn observe_slice(&mut self, s: &SliceRec) {
        if s.atomic {
            return;
        }
        let next = self.next_seq.entry(s.tid).or_insert(0);
        if s.seq < *next {
            return;
        }
        *next = s.seq + 1;
        self.collector.observe(&SliceAccess {
            tid: s.tid,
            time: &s.time,
            sync_op: s.sync_op,
            writes: &s.mods,
            reads: &s.reads,
        });
    }

    /// Seals detection: canonically-sorted reports plus whether the
    /// report cap truncated the list.
    pub(crate) fn finish(self) -> (Vec<RaceReport>, bool) {
        let truncated = self.collector.truncated();
        (self.collector.finish(), truncated)
    }
}
