//! The [`RfdetBackend`] entry point.

use crate::ctx::RfdetCtx;
use crate::shared::RuntimeShared;
use rfdet_api::{DmtBackend, MonitorMode, RunConfig, RunOutput, ThreadFn, TracedRun};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The RFDet deterministic-multithreading backend.
///
/// Each [`DmtBackend::run`] call builds a fresh isolated runtime:
/// metadata space, Kendo arbitration state, and a main-thread context on
/// the calling thread. Worker threads are real OS threads; determinism
/// comes from the DLRC protocol, not from scheduling control.
#[derive(Clone, Copy, Debug, Default)]
pub struct RfdetBackend {
    /// Optional monitor-mode override applied on top of the run config
    /// (`Some(Ci)` → "RFDet-ci", `Some(Pf)` → "RFDet-pf").
    pub monitor_override: Option<MonitorMode>,
}

impl RfdetBackend {
    /// Backend preconfigured for compile-time-instrumentation monitoring.
    #[must_use]
    pub fn ci() -> Self {
        Self {
            monitor_override: Some(MonitorMode::Ci),
        }
    }

    /// Backend preconfigured for page-protection monitoring.
    #[must_use]
    pub fn pf() -> Self {
        Self {
            monitor_override: Some(MonitorMode::Pf),
        }
    }
}

impl DmtBackend for RfdetBackend {
    fn name(&self) -> String {
        match self.monitor_override {
            Some(MonitorMode::Ci) => "RFDet-ci".to_owned(),
            Some(MonitorMode::Pf) => "RFDet-pf".to_owned(),
            None => "RFDet".to_owned(),
        }
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn supports_lazy_writes(&self) -> bool {
        true
    }

    fn supports_checkpoints(&self) -> bool {
        true
    }

    fn supports_race_detection(&self) -> bool {
        true
    }

    fn run_traced(&self, cfg: &RunConfig, root: ThreadFn) -> TracedRun {
        let mut cfg = cfg.clone();
        if let Some(m) = self.monitor_override {
            cfg.rfdet.monitor = m;
        }
        if cfg.detect_races {
            // Race detection's logical coordinates ride the supervision
            // sync-op counter, and must mean the same thing on every
            // backend: supervision on, one sealed slice per sync op (no
            // merged slices spanning several ops), exact byte diffs (no
            // coalesced gap bytes widening the written-word set). All
            // three adjustments are semantics-neutral — the schedule and
            // every digest are unchanged — which is what lets a detecting
            // run stand in for a plain one.
            cfg.supervise = true;
            cfg.rfdet.slice_merging = false;
            cfg.rfdet.diff_gap_coalesce = 0;
        }
        let mut shared = RuntimeShared::new(cfg);
        shared.backend_name = self.name();
        let shared = Arc::new(shared);
        let mut main = RfdetCtx::new_main(Arc::clone(&shared));
        let result = catch_unwind(AssertUnwindSafe(|| {
            root(&mut main);
            main.on_exit();
        }));
        if let Err(payload) = result {
            handle_main_unwind(&shared, &mut main, payload);
        }
        teardown(&self.name(), &shared, main)
    }
}

/// Routes the main thread's unwind: a [`crate::checkpoint::CkptStop`]
/// token is a clean shard stop (finish the slot, no failure); anything
/// else is a recorded panic.
pub(crate) fn handle_main_unwind(
    shared: &Arc<RuntimeShared>,
    main: &mut RfdetCtx,
    payload: Box<dyn std::any::Any + Send>,
) {
    if payload
        .downcast_ref::<crate::checkpoint::CkptStop>()
        .is_some()
    {
        shared.kendo.finish_forced(0);
    } else {
        let state = main.thread_report();
        shared.record_panic(0, payload, Some(state));
    }
}

/// The shared tail of every core-backend run (fresh or resumed): harvest
/// workers, assemble the result, finish the trace and metrics, and drain
/// the checkpoint collector.
pub(crate) fn teardown(name: &str, shared: &Arc<RuntimeShared>, mut main: RfdetCtx) -> TracedRun {
    // Harvest every worker; children may keep spawning while we join,
    // so loop until the handle map stays empty. Workers never unwind
    // out of their closure (panics route through record_panic), so
    // these joins cannot themselves fail.
    loop {
        let handles: Vec<_> = {
            let mut map = shared.os_handles.lock();
            map.drain().map(|(_, h)| h).collect()
        };
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    // Harvest the detector (main-thread state) before dropping the
    // context. By this point every joined worker's slices have been
    // applied at main, so the report list is sealed.
    let (races, races_truncated) = match main.detect.take() {
        Some(det) => {
            let (races, truncated) = det.finish();
            (races, truncated)
        }
        None => (Vec::new(), false),
    };
    // Flush the main context's trace buffer before assembling the
    // trace (worker buffers flushed when their contexts dropped).
    drop(main);
    let mut result = match shared.take_run_error(name) {
        Some(err) => Err(err),
        None => Ok(RunOutput {
            output: shared.meta.collect_output(),
            stats: {
                let mut stats = shared.meta.stats.snapshot();
                // Arbitration counters live on the Kendo state, not
                // the per-thread contexts: fold them in here.
                (stats.handoff_scans, stats.handoff_wakes, stats.turn_parks) =
                    shared.kendo.handoff_counters();
                stats
            },
            metrics: None,
            races,
        }),
    };
    let trace = rfdet_api::finish_trace(name, &shared.cfg, shared.trace_sink.as_ref(), &mut result);
    rfdet_api::finish_metrics(name, shared.obs.as_ref(), &mut result);
    let (checkpoints, mut warnings) = shared.ckpt.take_results();
    if races_truncated {
        warnings.push(format!(
            "race reports truncated at {} — distinct racy pairs beyond the cap were not materialized",
            rfdet_mem::race::RaceCollector::DEFAULT_CAP
        ));
    }
    if let Err(e) = &mut result {
        e.report_mut().warnings.extend(warnings.iter().cloned());
    }
    TracedRun {
        result,
        trace,
        checkpoints,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfdet_api::{DmtCtx as _, DmtCtxExt, MutexId, RunError};

    fn small() -> RunConfig {
        let mut cfg = RunConfig::small();
        cfg.rfdet.fault_cost_spins = 0;
        cfg
    }

    #[test]
    fn names_reflect_monitor_mode() {
        assert_eq!(RfdetBackend::ci().name(), "RFDet-ci");
        assert_eq!(RfdetBackend::pf().name(), "RFDet-pf");
        assert_eq!(RfdetBackend::default().name(), "RFDet");
        assert!(RfdetBackend::ci().is_deterministic());
    }

    #[test]
    fn single_threaded_run_produces_output() {
        let out = RfdetBackend::ci().run_expect(
            &small(),
            Box::new(|ctx| {
                ctx.write::<u64>(128, 9);
                let v: u64 = ctx.read(128);
                ctx.emit_str(&format!("v={v}"));
            }),
        );
        assert_eq!(out.output, b"v=9");
        assert_eq!(out.stats.stores, 1);
        assert_eq!(out.stats.loads, 1);
    }

    #[test]
    fn spawn_join_propagates_child_writes() {
        let out = RfdetBackend::ci().run_expect(
            &small(),
            Box::new(|ctx| {
                let h = ctx.spawn(Box::new(|ctx| {
                    ctx.write::<u64>(256, 1234);
                }));
                ctx.join(h);
                let v: u64 = ctx.read(256);
                ctx.emit_str(&format!("{v}"));
            }),
        );
        assert_eq!(out.output, b"1234");
        assert_eq!(out.stats.forks, 1);
        assert_eq!(out.stats.joins, 1);
    }

    #[test]
    fn child_inherits_parent_memory_at_fork() {
        let out = RfdetBackend::ci().run_expect(
            &small(),
            Box::new(|ctx| {
                ctx.write::<u64>(64, 77);
                let h = ctx.spawn(Box::new(|ctx| {
                    let v: u64 = ctx.read(64);
                    ctx.emit_str(&format!("child={v};"));
                }));
                ctx.write::<u64>(64, 88); // after fork: child must not see
                ctx.join(h);
                ctx.emit_str("done;");
            }),
        );
        // Output streams concatenate in tid order: main (0) then child (1).
        assert_eq!(out.output, b"done;child=77;");
    }

    #[test]
    fn mutex_critical_sections_compose() {
        let out = RfdetBackend::ci().run_expect(
            &small(),
            Box::new(|ctx| {
                let m = MutexId(1);
                let handles: Vec<_> = (0..3)
                    .map(|_| {
                        ctx.spawn(Box::new(move |ctx| {
                            for _ in 0..50 {
                                ctx.lock(m);
                                let v: u64 = ctx.read(512);
                                ctx.tick(5);
                                ctx.write(512, v + 1);
                                ctx.unlock(m);
                            }
                        }))
                    })
                    .collect();
                for h in handles {
                    ctx.join(h);
                }
                let v: u64 = ctx.read(512);
                ctx.emit_str(&format!("{v}"));
            }),
        );
        assert_eq!(out.output, b"150");
        assert_eq!(out.stats.locks, 150);
        assert_eq!(out.stats.unlocks, 150);
    }

    /// Runs a mixed locked/racy workload on a hand-built runtime (the
    /// backend doesn't expose its `RuntimeShared`) and returns the full
    /// published slice stream as `(tid, seq, mods)` triples.
    fn published_mods(seed: Option<u64>) -> Vec<(u32, u64, Vec<rfdet_mem::ModRun>)> {
        let mut cfg = small();
        cfg.jitter_seed = seed;
        cfg.jitter_max_us = 20;
        cfg.meta_capacity_bytes = 64 << 20; // headroom: no GC pruning mid-run
        let shared = Arc::new(RuntimeShared::new(cfg));
        let mut main = RfdetCtx::new_main(Arc::clone(&shared));
        let m = MutexId(3);
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                main.spawn(Box::new(move |ctx| {
                    for k in 0..40u64 {
                        ctx.lock(m);
                        let v: u64 = ctx.read(2048);
                        ctx.write(2048, v.wrapping_mul(31).wrapping_add(i + k));
                        ctx.unlock(m);
                        // Racy unlocked traffic on a second page.
                        ctx.write(6144 + 8 * i, k + 1);
                        ctx.tick(i + 1);
                    }
                }))
            })
            .collect();
        for h in handles {
            main.join(h);
        }
        main.on_exit();
        loop {
            let hs: Vec<_> = {
                let mut map = shared.os_handles.lock();
                map.drain().map(|(_, h)| h).collect()
            };
            if hs.is_empty() {
                break;
            }
            for h in hs {
                let _ = h.join();
            }
        }
        let mut all = Vec::new();
        for tid in 0..4 {
            for s in shared.meta.snapshot_list(tid) {
                all.push((s.tid, s.seq, s.mods.to_vec()));
            }
        }
        all
    }

    /// Determinism at the metadata layer: the published `ModRun` stream —
    /// not just program output — must be bit-identical across jittered
    /// schedules. Identical output can mask divergent propagation;
    /// identical run lists cannot. This also pins the chunked diff kernel
    /// and snapshot pooling as schedule-independent.
    #[test]
    fn published_mod_run_lists_are_identical_across_jittered_schedules() {
        let baseline = published_mods(None);
        assert!(
            baseline.len() > 100,
            "workload must publish a real slice stream, got {} slices",
            baseline.len()
        );
        for seed in [4u64, 5, 42] {
            assert_eq!(
                published_mods(Some(seed)),
                baseline,
                "jitter seed {seed} changed the published ModRun stream"
            );
        }
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        let err = RfdetBackend::ci()
            .run(
                &small(),
                Box::new(|ctx| {
                    let h = ctx.spawn(Box::new(|_ctx| {
                        panic!("worker exploded");
                    }));
                    ctx.join(h);
                }),
            )
            .expect_err("worker panic must fail the run");
        assert!(matches!(err, RunError::WorkerPanicked(_)));
        let r = err.report();
        assert_eq!(r.tid, 1, "the worker, not the joining main thread");
        assert_eq!(r.message, "worker exploded");
        assert!(r.culprit.is_some(), "culprit state captured");
    }
}
