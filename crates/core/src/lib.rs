//! RFDet — deterministic multithreading without global barriers.
//!
//! This crate is the paper's primary contribution: a runtime implementing
//! **deterministic lazy release consistency** (DLRC, §3):
//!
//! 1. synchronization operations execute in a deterministic total order
//!    (Kendo arbitration, `rfdet-kendo`);
//! 2. each thread runs in a private memory space (`rfdet-mem`), and a
//!    modification by thread T1 is visible in T2 **iff** it happens-before
//!    T2's current instruction — enforced by slicing execution at
//!    synchronization operations, timestamping slices with vector clocks,
//!    and propagating slice modification lists at acquire operations with
//!    the upper/lower-limit filter of paper Figure 5.
//!
//! There are **no global barriers anywhere in this crate** — the property
//! the paper's title advertises. A thread that performs no synchronization
//! never blocks; threads contending on one lock never delay a third.
//!
//! # Quick start
//!
//! ```
//! use rfdet_api::{DmtBackend, DmtCtxExt, MutexId, RunConfig};
//! use rfdet_core::RfdetBackend;
//!
//! let backend = RfdetBackend::default();
//! let out = backend.run_expect(&RunConfig::small(), Box::new(|ctx| {
//!     let m = MutexId(0);
//!     let counter = 4096; // an address in the static region
//!     let children: Vec<_> = (0..2)
//!         .map(|_| {
//!             ctx.spawn(Box::new(move |ctx| {
//!                 for _ in 0..100 {
//!                     ctx.lock(m);
//!                     let v: u64 = ctx.read(counter);
//!                     ctx.write(counter, v + 1);
//!                     ctx.unlock(m);
//!                 }
//!             }))
//!         })
//!         .collect();
//!     for c in children {
//!         ctx.join(c);
//!     }
//!     let total: u64 = ctx.read(counter);
//!     ctx.emit_str(&format!("total={total}"));
//! }));
//! assert_eq!(out.output, b"total=200");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod backend;
mod checkpoint;
mod ctx;
pub mod failover;
mod handoff;
mod pending;
mod propagation;
mod race;
mod resume;
mod shared;
mod slices;
mod supervise;
mod sync;

pub use backend::RfdetBackend;
pub use ctx::RfdetCtx;
pub use failover::{run_failover, FailoverReport};
