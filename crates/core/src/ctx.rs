//! The per-thread RFDet context: memory access paths and `DmtCtx` glue.

use crate::handoff::Mailbox;
use crate::shared::RuntimeShared;
use parking_lot::Mutex;
use rfdet_api::{
    Addr, BarrierId, CondId, DmtCtx, MonitorMode, MutexId, Stats, ThreadFn, ThreadHandle, Tid,
};
use rfdet_kendo::{Jitter, KendoHandle};
use rfdet_mem::{PageFlags, PageOverlay, PrivateSpace, ThreadHeap};
use rfdet_meta::{SyncKey, SyncVarRef, ThreadMeta};
use rfdet_vclock::VClock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Cached handles to another thread's metadata and mailbox, so the sync
/// hot path pays each registry `RwLock` read at most once per (thread,
/// peer) pair instead of once per operation.
#[derive(Clone)]
pub(crate) struct Peer {
    pub meta: Arc<ThreadMeta>,
    pub mailbox: Arc<Mutex<Mailbox>>,
}

/// The per-thread view of the RFDet runtime.
///
/// Owns the thread's private memory space, the in-progress slice (page
/// snapshots taken at first write, paper Figure 4), the vector clock, the
/// lazy-write pending queues, and the thread-local profiling counters.
pub struct RfdetCtx {
    pub(crate) shared: Arc<RuntimeShared>,
    pub(crate) kendo: KendoHandle,
    pub(crate) tid: Tid,
    pub(crate) space: PrivateSpace,
    /// Emulated page protection: `WRITE_PROTECT` drives `pf` monitoring,
    /// `NO_ACCESS` marks pages with pending lazy-write modifications.
    pub(crate) flags: PageFlags,
    /// Lazy-writes pending queues, per page, in propagation order. The
    /// entries are zero-copy handles to per-page run *groups* inside
    /// published slices' shared run lists (one `Arc` bump per group, not
    /// per run); the handles keep the backing runs alive, so GC dropping
    /// a slice from every slice-pointer list never invalidates them.
    /// Flat page-indexed storage: deposit and fault are O(1) slot hits,
    /// not tree walks (see [`crate::pending::PendingTable`]).
    pub(crate) pending: crate::pending::PendingTable,
    /// Recycled lazy-fault merge buffer (page bytes + occupancy bitmap),
    /// the `snap_pool` idiom applied to §4.5: steady-state faults merge
    /// and apply pending runs with zero allocations.
    pub(crate) lazy_overlay: PageOverlay,
    /// Current vector clock.
    pub(crate) vc: VClock,
    /// Timestamp of the in-progress slice (the clock at its start).
    pub(crate) slice_start: VClock,
    pub(crate) slice_seq: u64,
    /// Pages snapshotted in the current slice (sorted for deterministic
    /// diff order).
    pub(crate) snapshots: BTreeMap<usize, Box<[u8]>>,
    /// Recycled page-sized snapshot buffers (bounded by
    /// `RfdetOpts::snap_pool_pages`): `end_slice` returns buffers here
    /// after diffing, so steady-state slices snapshot with zero
    /// allocations.
    pub(crate) snap_pool: Vec<Box<[u8]>>,
    /// Per-source absolute positions in other threads' slice lists:
    /// everything before the cursor was already filtered-or-propagated
    /// under an earlier upper limit (see `SliceList` for the closure
    /// property that makes this sound).
    pub(crate) cursors: HashMap<Tid, u64>,
    /// Lazily filled peer-handle cache, indexed by tid (see [`Peer`]).
    peers: Vec<Option<Peer>>,
    /// Per-thread cache of sync-var handles: the steady-state acquire
    /// path locks only the var itself — no table shard, no registry.
    sync_cache: HashMap<SyncKey, SyncVarRef>,
    pub(crate) heap: ThreadHeap,
    pub(crate) stats: Stats,
    pub(crate) jitter: Option<Jitter>,
    pub(crate) meta_thread: Arc<ThreadMeta>,
    pub(crate) mailbox: Arc<Mutex<Mailbox>>,
    /// A slice publication crossed the GC threshold; a pass runs at the
    /// next off-turn point.
    pub(crate) gc_pending: bool,
    /// Synchronization operations started (the `FaultPlan` trigger
    /// coordinate and the `sync_ops` field of failure reports).
    pub(crate) sync_ops: u64,
    /// The last sync op started, as `(kind, argument)` (for reports).
    pub(crate) last_op: Option<(&'static str, Option<u64>)>,
    /// Allocations performed (the `FaultPlan::fail_alloc` coordinate).
    pub(crate) allocs: u64,
    /// Flight-recorder buffer, `Some` iff the run is recording. Flushes
    /// to the shared sink on drop — which covers panic unwinds, since
    /// the context outlives the `catch_unwind` around the thread body.
    pub(crate) trace: Option<rfdet_api::trace::TraceBuf>,
    /// Metrics recorder, `Some` iff the run is collecting metrics. Like
    /// `trace`, it flushes to the shared sink on drop. Timing read when
    /// this is `Some` flows only into these buffers, never into a
    /// scheduling decision.
    pub(crate) obs: Option<rfdet_api::obs::ObsRecorder>,
    /// Wall-clock start of the in-progress slice; `Some` iff metrics on.
    pub(crate) slice_t0: Option<std::time::Instant>,
    /// `loads + stores` at slice start (metrics-only baseline).
    pub(crate) slice_ops_base: u64,
    /// Shared phase-boundary timestamp: the end instant of the last
    /// recorded phase, reused as the start of the adjacent one. Clock
    /// reads dominate observation cost on sync-dense runs, so adjacent
    /// boundaries (sync-op entry → WaitTurn, slice-wall end → Diff,
    /// Diff end → Arbitration, Arbitration end → Propagation) share one
    /// read; phases bounded by shared reads absorb the small in-turn
    /// bookkeeping between them. Every reader `take()`s it — a boundary
    /// never leaks across sync ops (each op entry re-seeds it). `None`
    /// whenever metrics are off.
    pub(crate) obs_boundary: Option<std::time::Instant>,
    /// Reusable scratch buffer for propagation lower limits — avoids a
    /// fresh `VClock` allocation per mailbox source / premerge round.
    pub(crate) scratch_lower: VClock,
    /// `cfg.detect_races`, cached: the one branch the read path pays
    /// when detection is off.
    pub(crate) track_reads: bool,
    /// Word-granular read set of the in-progress slice (marked only when
    /// `track_reads`), sealed into the published slice at `end_slice`.
    pub(crate) read_set: rfdet_mem::ReadTracker,
    /// `true` while executing an atomic operation's mini-slice. The
    /// sealed mini-slice is tagged atomic so the race detector skips it
    /// (atomics are synchronization, not data accesses).
    pub(crate) in_atomic: bool,
    /// The happens-before race detector — main thread (tid 0) only,
    /// `Some` iff `cfg.detect_races`. Detection runs entirely at main:
    /// every published slice reaches main exactly once (workloads join
    /// their whole thread tree, and metadata GC never collects a slice
    /// below the glb of all live published clocks, main's included), and
    /// main applies slices in a happens-before-consistent order — the
    /// discipline [`rfdet_mem::RaceCollector`] requires.
    pub(crate) detect: Option<Box<crate::race::CoreDetect>>,
    exited: bool,
}

impl RfdetCtx {
    /// Bootstraps the main-thread context (tid 0). Must be called exactly
    /// once per [`RuntimeShared`].
    pub(crate) fn new_main(shared: Arc<RuntimeShared>) -> Self {
        assert_eq!(shared.meta.num_threads(), 0, "main context already exists");
        let meta_thread = shared.meta.register_thread();
        let kendo = shared.kendo.register(0);
        let mailbox = shared.register_mailbox();
        let mut vc = VClock::new();
        vc.tick(0);
        let mut ctx = Self::from_parts(shared, kendo, meta_thread, mailbox, None, vc);
        if ctx.shared.cfg.detect_races {
            ctx.detect = Some(Box::new(crate::race::CoreDetect::new(
                ctx.shared.cfg.page_size,
            )));
        }
        ctx.publish_vcs();
        ctx.begin_slice();
        ctx
    }

    /// Builds a child context from pieces prepared inside the parent's
    /// turn (see `sync::spawn_impl`).
    pub(crate) fn from_parts(
        shared: Arc<RuntimeShared>,
        kendo: KendoHandle,
        meta_thread: Arc<ThreadMeta>,
        mailbox: Arc<Mutex<Mailbox>>,
        space: Option<PrivateSpace>,
        vc: VClock,
    ) -> Self {
        let tid = kendo.tid();
        let cfg = &shared.cfg;
        let space = space.unwrap_or_else(|| PrivateSpace::new(cfg.space_bytes, cfg.page_size));
        let flags = PageFlags::new(space.num_pages());
        let heap = shared.strips.heap_for(tid);
        let jitter = cfg
            .jitter_seed
            .map(|seed| Jitter::new(seed, tid, cfg.jitter_max_us));
        let slice_start = vc.clone();
        let mut ctx = Self {
            shared,
            kendo,
            tid,
            space,
            flags,
            pending: crate::pending::PendingTable::default(),
            lazy_overlay: PageOverlay::new(),
            vc,
            slice_start,
            slice_seq: 0,
            snapshots: BTreeMap::new(),
            snap_pool: Vec::new(),
            cursors: HashMap::new(),
            peers: Vec::new(),
            sync_cache: HashMap::new(),
            heap,
            stats: Stats::default(),
            jitter,
            meta_thread,
            mailbox,
            gc_pending: false,
            sync_ops: 0,
            last_op: None,
            allocs: 0,
            trace: None,
            obs: None,
            slice_t0: None,
            slice_ops_base: 0,
            obs_boundary: None,
            scratch_lower: VClock::new(),
            track_reads: false,
            read_set: rfdet_mem::ReadTracker::new(),
            in_atomic: false,
            detect: None,
            exited: false,
        };
        ctx.track_reads = ctx.shared.cfg.detect_races;
        ctx.trace = ctx
            .shared
            .trace_sink
            .as_ref()
            .map(|s| rfdet_api::trace::TraceBuf::new(Arc::clone(s)));
        ctx.obs = ctx
            .shared
            .obs
            .as_ref()
            .map(|s| rfdet_api::obs::ObsRecorder::new(Arc::clone(s)));
        // `begin_slice` applies pf protection; safe to call here because
        // the slice state is empty.
        ctx.begin_slice();
        ctx
    }

    /// The deterministic thread ID.
    #[must_use]
    pub fn thread_id(&self) -> Tid {
        self.tid
    }

    /// Publishes both clocks (post-propagation and in-turn views agree at
    /// this point).
    pub(crate) fn publish_vcs(&self) {
        self.meta_thread.set_published_vc(&self.vc);
        self.meta_thread.set_turn_vc(&self.vc);
    }

    /// Cached handles to `tid`'s metadata and mailbox. The first call per
    /// peer takes the two registry read-locks; every later call is two
    /// `Arc` clones. Returns by value so callers can keep using `self`.
    pub(crate) fn peer(&mut self, tid: Tid) -> Peer {
        let idx = tid as usize;
        if idx >= self.peers.len() {
            self.peers.resize(idx + 1, None);
        }
        if self.peers[idx].is_none() {
            self.peers[idx] = Some(Peer {
                meta: self.shared.meta.thread(tid),
                mailbox: self.shared.mailbox(tid),
            });
        }
        self.peers[idx].clone().expect("just filled")
    }

    /// Cached sync-var handle for `key` (see `MetaSpace::sync_var`).
    pub(crate) fn sync_var(&mut self, key: SyncKey) -> SyncVarRef {
        if let Some(v) = self.sync_cache.get(&key) {
            self.stats.sync_var_cache_hits += 1;
            return Arc::clone(v);
        }
        self.stats.sync_var_cache_misses += 1;
        let v = self.shared.meta.sync_var(key);
        self.sync_cache.insert(key, Arc::clone(&v));
        v
    }

    /// The pages an access of `len` bytes at `addr` touches. A
    /// zero-length access touches no page at all — it must neither fault
    /// a lazily-pending page nor snapshot one (it cannot observe or
    /// modify anything), and the previous `(first, last)` encoding had no
    /// way to say "nothing", silently rounding `len == 0` up to a 1-byte
    /// access.
    #[inline]
    fn page_range(&self, addr: Addr, len: usize) -> std::ops::Range<usize> {
        if len == 0 {
            return 0..0;
        }
        let first = self.space.page_of(addr);
        let last = self.space.page_of(addr + (len - 1) as u64);
        first..last + 1
    }

    /// Queue depth at which a fault merges its deposits through the
    /// [`PageOverlay`] instead of applying them group-by-group. Shallow
    /// queues (the common case under active sharing: a page re-accessed
    /// within a few slices of being deposited on) are cheaper to apply
    /// sequentially — deposit order is propagation order, so the last
    /// writer wins byte-for-byte identically, and the double-write cost
    /// of a rare overlap is a few bytes. Deep queues (a page untouched
    /// for many epochs — the case lazy writes exist for) amortize the
    /// overlay's reset/merge/scan over real elision.
    const OVERLAY_MIN_GROUPS: usize = 4;

    /// Applies the pending lazy-write modifications of `page` and lifts
    /// its protection (paper §4.5 *Lazy Writes*: "when a memory access
    /// hits one of these pages, we write the modifications of the page
    /// into the local memory and unprotect the page").
    ///
    /// Allocation-free on the steady state, and adaptive: queues below
    /// [`Self::OVERLAY_MIN_GROUPS`] apply their groups in deposit order
    /// directly; deeper queues are merged into the thread's recycled
    /// [`PageOverlay`] (last writer wins, superseded bytes counted by
    /// word-level popcounts) and the occupied spans are copied into the
    /// page in one pass. Both orders produce identical bytes — the
    /// overlay only changes how many times an overwritten byte is
    /// touched (and makes the saving measurable as `lazy_elided_bytes`).
    #[cold]
    pub(crate) fn lazy_fault(&mut self, page: usize) {
        let Some(queue) = self.pending.take(page) else {
            return;
        };
        let t0 = self.obs_start();
        self.stats.page_faults += 1;
        // Only `pf` monitoring pays the simulated trap + `mprotect` cost:
        // there the fault is a real protection fault. Under `ci`
        // monitoring the pending check is compiled-in instrumentation on
        // the access path (like the Figure-4 store checks), and the eager
        // path pays nothing equivalent — charging it here is how the
        // "optimization" lost to eager at the default cost model.
        if self.shared.cfg.rfdet.monitor == MonitorMode::Pf {
            self.pay_fault_cost();
        }
        self.apply_pending(page, queue);
        self.obs_since(rfdet_api::obs::Phase::LazyFault, t0);
    }

    /// Drains `page`'s detached queue into local memory and lifts the
    /// protection — the work of a lazy fault without its cost model.
    /// Called from [`Self::lazy_fault`] (an access hit the page: trap +
    /// fault accounting apply) and from runtime-initiated flushes
    /// (prelock idle merges, pre-fork flush), which write through the
    /// runtime's own view and therefore never trap.
    fn apply_pending(&mut self, page: usize, mut queue: Vec<rfdet_mem::RunRange>) {
        if queue.len() < Self::OVERLAY_MIN_GROUPS {
            for group in &queue {
                self.stats.mod_bytes_applied += self.space.apply_runs(group.runs());
            }
        } else {
            let base = self.space.page_base(page);
            let mut overlay = std::mem::take(&mut self.lazy_overlay);
            overlay.reset(self.space.page_size());
            let mut superseded: u64 = 0;
            for group in &queue {
                for run in group.runs() {
                    let off = (run.addr - base) as usize;
                    superseded += overlay.write(off, &run.data);
                }
            }
            self.stats.lazy_elided_bytes += superseded;
            self.stats.mod_bytes_applied += self.space.apply_overlay(page, &overlay);
            self.lazy_overlay = overlay;
        }
        self.flags.unprotect(page, PageFlags::NO_ACCESS);
        queue.clear();
        self.pending.put_back(page, queue);
    }

    /// Runtime-initiated drain of `page`'s pending queue, if any. Unlike
    /// [`Self::lazy_fault`] this charges no fault (nothing trapped — the
    /// runtime is writing, not the program), so flushing pages while
    /// blocked or before a fork costs only the memory work itself.
    pub(crate) fn drain_pending(&mut self, page: usize) {
        if let Some(queue) = self.pending.take(page) {
            self.apply_pending(page, queue);
        }
    }

    /// Simulated cost of a page fault (trap + `mprotect` syscalls).
    pub(crate) fn pay_fault_cost(&self) {
        for _ in 0..self.shared.cfg.rfdet.fault_cost_spins {
            std::hint::spin_loop();
        }
    }

    /// Takes a page snapshot (Figure 4 line 6) into a recycled buffer
    /// from the pool when one is available — the steady-state path costs
    /// one page memcpy and zero allocations.
    fn take_snapshot(&mut self, page: usize) -> Box<[u8]> {
        let t0 = self.obs_start();
        let mut buf = match self.snap_pool.pop() {
            Some(b) => {
                self.stats.snapshot_pool_hits += 1;
                b
            }
            None => {
                self.stats.snapshot_pool_misses += 1;
                vec![0u8; self.space.page_size()].into_boxed_slice()
            }
        };
        self.space.snapshot_page_into(page, &mut buf);
        self.stats.snapshot_bytes_copied += buf.len() as u64;
        self.obs_since(rfdet_api::obs::Phase::Snapshot, t0);
        buf
    }

    /// The Figure-4 store instrumentation: snapshot the page the first
    /// time it is written within the current slice.
    #[inline]
    fn record_store(&mut self, page: usize) {
        match self.shared.cfg.rfdet.monitor {
            MonitorMode::Ci => {
                if !self.snapshots.contains_key(&page) {
                    let snap = self.take_snapshot(page);
                    self.snapshots.insert(page, snap);
                    self.stats.stores_with_copy += 1;
                }
            }
            MonitorMode::Pf => {
                if self.flags.is_protected(page, PageFlags::WRITE_PROTECT) {
                    // Simulated write fault.
                    self.stats.page_faults += 1;
                    self.pay_fault_cost();
                    let snap = self.take_snapshot(page);
                    self.snapshots.insert(page, snap);
                    self.stats.stores_with_copy += 1;
                    self.flags.unprotect(page, PageFlags::WRITE_PROTECT);
                }
            }
        }
    }

    /// Read without advancing the Kendo clock — for use *inside* a turn
    /// (atomic operations), where a tick would release the turn early.
    pub(crate) fn read_in_turn(&mut self, addr: Addr, buf: &mut [u8]) {
        if !self.pending.is_empty() {
            for page in self.page_range(addr, buf.len()) {
                if self.flags.is_protected(page, PageFlags::NO_ACCESS) {
                    self.lazy_fault(page);
                }
            }
        }
        self.stats.loads += 1;
        if self.track_reads {
            self.read_set
                .mark(addr, buf.len() as u64, self.shared.cfg.page_size);
        }
        self.space.read(addr, buf);
    }

    /// Write without advancing the Kendo clock (see [`Self::read_in_turn`]);
    /// still goes through the Figure-4 store instrumentation. A
    /// zero-length write touches no page (empty `page_range`), so it
    /// neither faults nor snapshots.
    pub(crate) fn write_in_turn(&mut self, addr: Addr, data: &[u8]) {
        for page in self.page_range(addr, data.len()) {
            if !self.pending.is_empty() && self.flags.is_protected(page, PageFlags::NO_ACCESS) {
                self.lazy_fault(page);
            }
            self.record_store(page);
        }
        self.stats.stores += 1;
        self.space.write(addr, data);
    }

    /// `Instant::now()` iff the run is collecting metrics — the only
    /// gate under which this backend reads the clock. Pair with
    /// [`Self::obs_since`].
    #[inline]
    pub(crate) fn obs_start(&self) -> Option<std::time::Instant> {
        self.obs.as_ref().map(|_| std::time::Instant::now())
    }

    /// Records the elapsed nanoseconds since `t0` into `phase`.
    #[inline]
    pub(crate) fn obs_since(
        &mut self,
        phase: rfdet_api::obs::Phase,
        t0: Option<std::time::Instant>,
    ) {
        if let (Some(obs), Some(t0)) = (self.obs.as_mut(), t0) {
            obs.record(phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Records a raw count into `phase` (metrics on only).
    #[inline]
    pub(crate) fn obs_count(&mut self, phase: rfdet_api::obs::Phase, n: u64) {
        if let Some(obs) = self.obs.as_mut() {
            obs.record(phase, n);
        }
    }

    /// Start instant for a phase adjacent to the previously recorded
    /// one: reuses the stored boundary read when there is one (see
    /// `obs_boundary`), otherwise reads the clock.
    #[inline]
    pub(crate) fn obs_boundary_start(&mut self) -> Option<std::time::Instant> {
        self.obs.as_ref()?;
        self.obs_boundary
            .take()
            .or_else(|| Some(std::time::Instant::now()))
    }

    /// Records `phase` from `t0` to now, storing the end instant as the
    /// boundary for the next adjacent phase.
    #[inline]
    pub(crate) fn obs_since_boundary(
        &mut self,
        phase: rfdet_api::obs::Phase,
        t0: Option<std::time::Instant>,
    ) {
        if let (Some(obs), Some(t0)) = (self.obs.as_mut(), t0) {
            let now = std::time::Instant::now();
            obs.record(phase, now.duration_since(t0).as_nanos() as u64);
            self.obs_boundary = Some(now);
        }
    }

    /// Invalidate-and-reseed the shared boundary after an untimed gap (a
    /// park, a wake wait): whatever boundary was stored predates the gap,
    /// and letting the next adjacent phase start from it would attribute
    /// the whole gap to that phase. The gap stays inside the `SyncOp`
    /// envelope, unattributed — which is the honest label for blocked
    /// time.
    #[inline]
    pub(crate) fn obs_reseed_boundary(&mut self) {
        if self.obs.is_some() {
            self.obs_boundary = Some(std::time::Instant::now());
        }
    }

    /// [`KendoState::wait_for_turn`] with the stall attributed to
    /// [`Phase::WaitTurn`](rfdet_api::obs::Phase::WaitTurn). The stall
    /// starts at the sync-op envelope's clock read and its end seeds the
    /// next boundary.
    pub(crate) fn wait_for_turn_timed(&mut self) {
        let t0 = self.obs_boundary_start();
        self.shared.kendo.wait_for_turn(&self.kendo);
        self.obs_since_boundary(rfdet_api::obs::Phase::WaitTurn, t0);
    }

    /// Releases the Kendo turn after a sync operation — the final tick
    /// plus, in handoff mode, the successor scan and targeted unpark —
    /// attributed to [`Phase::Arbitration`](rfdet_api::obs::Phase::Arbitration).
    #[inline]
    pub(crate) fn release_turn(&mut self) {
        let t0 = self.obs_boundary_start();
        self.shared
            .kendo
            .release_turn(&self.kendo, crate::shared::SYNC_TICK);
        self.obs_since_boundary(rfdet_api::obs::Phase::Arbitration, t0);
    }

    /// Runs one sync operation under the end-to-end
    /// [`Phase::SyncOp`](rfdet_api::obs::Phase::SyncOp) envelope. The
    /// envelope's start read doubles as the WaitTurn boundary.
    #[inline]
    fn sync_timed<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = self.obs_start();
        self.obs_boundary = t0;
        let r = f(self);
        self.obs_since(rfdet_api::obs::Phase::SyncOp, t0);
        r
    }

    pub(crate) fn jitter_pause(&mut self) {
        if let Some(j) = &mut self.jitter {
            j.pause();
        }
    }

    /// The thread-exit operation (release of `SyncKey::Thread(tid)`).
    /// Idempotent; called by the runtime when the entry function returns.
    pub(crate) fn on_exit(&mut self) {
        if self.exited {
            return;
        }
        self.exited = true;
        crate::sync::exit_impl(self);
    }
}

impl DmtCtx for RfdetCtx {
    fn tid(&self) -> Tid {
        self.tid
    }

    #[inline]
    fn tick(&mut self, n: u64) {
        self.shared.kendo.tick_off_turn(&self.kendo, n);
    }

    fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.shared.kendo.tick_off_turn(&self.kendo, 1);
        self.read_in_turn(addr, buf);
    }

    fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        self.shared.kendo.tick_off_turn(&self.kendo, 1);
        self.write_in_turn(addr, data);
    }

    fn lock(&mut self, m: MutexId) {
        self.sync_timed(|ctx| crate::sync::lock_impl(ctx, m));
    }

    fn unlock(&mut self, m: MutexId) {
        self.sync_timed(|ctx| crate::sync::unlock_impl(ctx, m));
    }

    fn cond_wait(&mut self, c: CondId, m: MutexId) {
        self.sync_timed(|ctx| crate::sync::wait_impl(ctx, c, m));
    }

    fn cond_signal(&mut self, c: CondId) {
        self.sync_timed(|ctx| crate::sync::signal_impl(ctx, c, false));
    }

    fn cond_broadcast(&mut self, c: CondId) {
        self.sync_timed(|ctx| crate::sync::signal_impl(ctx, c, true));
    }

    fn barrier(&mut self, b: BarrierId, parties: usize) {
        self.sync_timed(|ctx| crate::sync::barrier_impl(ctx, b, parties));
    }

    fn spawn(&mut self, f: ThreadFn) -> ThreadHandle {
        self.sync_timed(|ctx| crate::sync::spawn_impl(ctx, f))
    }

    fn join(&mut self, h: ThreadHandle) {
        self.sync_timed(|ctx| crate::sync::join_impl(ctx, h));
    }

    fn alloc(&mut self, size: u64, align: u64) -> Addr {
        self.shared.kendo.tick_off_turn(&self.kendo, 1);
        self.alloc_fault_point();
        self.stats.shared_bytes += size;
        self.heap.alloc(size, align)
    }

    fn dealloc(&mut self, addr: Addr) {
        self.shared.kendo.tick_off_turn(&self.kendo, 1);
        self.heap.dealloc(addr);
    }

    fn emit(&mut self, bytes: &[u8]) {
        self.meta_thread.output.lock().extend_from_slice(bytes);
    }

    fn atomic_rmw(&mut self, addr: Addr, op: rfdet_api::AtomicOp) -> u64 {
        self.sync_timed(|ctx| crate::sync::atomic_impl(ctx, addr, Some(op), None))
    }

    fn atomic_load(&mut self, addr: Addr) -> u64 {
        self.sync_timed(|ctx| crate::sync::atomic_impl(ctx, addr, None, None))
    }

    fn atomic_store(&mut self, addr: Addr, value: u64) {
        self.sync_timed(|ctx| crate::sync::atomic_impl(ctx, addr, None, Some(value)));
    }

    fn count_app_events(&mut self, retries: u64, shed: u64) {
        self.stats.app_retries += retries;
        self.stats.app_shed += shed;
    }
}

#[cfg(test)]
mod tests {
    use crate::shared::RuntimeShared;
    use crate::RfdetCtx;
    use rfdet_api::RunConfig;
    use std::sync::Arc;

    fn ctx() -> RfdetCtx {
        let mut cfg = RunConfig::small();
        cfg.rfdet.lazy_writes = true;
        cfg.rfdet.fault_cost_spins = 0;
        RfdetCtx::new_main(Arc::new(RuntimeShared::new(cfg)))
    }

    #[test]
    fn page_range_covers_touched_pages() {
        let c = ctx();
        assert_eq!(c.page_range(0, 1), 0..1);
        assert_eq!(c.page_range(4095, 1), 0..1);
        assert_eq!(c.page_range(4095, 2), 0..2, "straddles the boundary");
        assert_eq!(c.page_range(4096, 4096), 1..2, "exactly one full page");
        assert_eq!(c.page_range(100, 8192), 0..3);
    }

    #[test]
    fn page_range_of_zero_length_access_is_empty() {
        let c = ctx();
        assert!(c.page_range(0, 0).is_empty());
        assert!(c.page_range(4096, 0).is_empty());
        // The old `(first, last)` encoding rounded len==0 up to one byte;
        // at the very end of the space that byte names a page past the
        // flag table. The empty range makes the boundary a no-op instead.
        let space_end = c.shared.cfg.space_bytes;
        assert!(c.page_range(space_end, 0).is_empty());
    }

    #[test]
    fn zero_length_accesses_do_not_fault_pending_pages() {
        use rfdet_mem::ModRun;
        use rfdet_meta::{SliceRec, SliceRef};
        use rfdet_vclock::VClock;
        let mut c = ctx();
        let mut t = VClock::new();
        t.tick(1);
        let mods = vec![ModRun::new(64, vec![7].into())];
        let s: SliceRef = Arc::new(SliceRec::new(1, 0, t, mods));
        c.apply_slice(&s);
        assert_eq!(c.pending.len(), 1);

        c.read_in_turn(64, &mut []);
        c.write_in_turn(64, &[]);
        assert_eq!(c.stats.page_faults, 0, "no fault for a no-op access");
        assert_eq!(c.pending.len(), 1, "queue still pending");
        assert_eq!(c.stats.stores_with_copy, 0, "no snapshot taken");

        // Zero-length access at the space boundary: must not panic.
        let space_end = c.shared.cfg.space_bytes;
        c.read_in_turn(space_end, &mut []);
        c.write_in_turn(space_end, &[]);

        // A real access still faults and applies.
        let mut buf = [0u8; 1];
        c.read_in_turn(64, &mut buf);
        assert_eq!(buf[0], 7);
        assert_eq!(c.stats.page_faults, 1);
        assert!(c.pending.is_empty());
    }
}
