//! Run supervision: panics, deadlocks and wedges become typed failures.
//!
//! The supervisor turns the three ways a deterministic run can die into
//! a [`RunError`] with every parked thread woken in bounded time:
//!
//! * **Panic** — the unwinding thread records its payload and
//!   deterministic state here, then flips the Kendo abort flag, which
//!   wakes every thread spinning in `wait_for_turn` or parked on a slot
//!   condvar. First panic wins; the secondary "run aborted" unwinds it
//!   triggers in peers only contribute best-effort peer diagnostics.
//! * **Deadlock** — parked threads periodically run [`RuntimeShared::
//!   check_deadlock`] from their idle callback. An epoch-stable Kendo
//!   scan showing *every* live thread `Blocked` proves a stable
//!   deadlock (a blocked thread never wakes another, so the state can
//!   only persist); the wait-for graph is then read off the
//!   deterministic sync queues — no wall clock involved.
//! * **Wedge** — the wall-clock fallback (`deadlock_after_ms`) still
//!   exists for runs that starve without a provable deadlock; the
//!   kendo timeout panic is classified here by its message prefix.

use crate::ctx::RfdetCtx;
use crate::shared::RuntimeShared;
use parking_lot::Mutex;
use rfdet_api::{FailureKind, FailureReport, RunError, ThreadReport, Tid, WaitEdge, WaitTarget};
use std::collections::BTreeMap;

/// A failure recorded mid-run, before it is assembled into a
/// [`FailureReport`] at teardown.
#[derive(Debug)]
pub(crate) struct PendingFailure {
    pub kind: FailureKind,
    pub tid: Tid,
    pub message: String,
    pub culprit: Option<ThreadReport>,
    pub wait_graph: Vec<WaitEdge>,
    pub cycle: Vec<Tid>,
}

/// Shared supervision state (one per run).
#[derive(Debug, Default)]
pub(crate) struct Supervisor {
    /// The root cause. First writer wins.
    pub failure: Mutex<Option<PendingFailure>>,
    /// Best-effort states of threads that unwound *after* the root
    /// cause was recorded (excluded from the report digest).
    pub peers: Mutex<BTreeMap<Tid, ThreadReport>>,
}

/// Extracts a printable message from a panic payload.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// Classifies a panic message into a root-cause kind, or `None` for the
/// secondary unwinds the abort flag itself produces.
fn classify(message: &str) -> Option<FailureKind> {
    if message.starts_with("kendo: run aborted") {
        None
    } else if message.starts_with("kendo: thread") {
        // The wall-clock starvation/park timeouts.
        Some(FailureKind::Wedged)
    } else {
        Some(FailureKind::Panic)
    }
}

impl RuntimeShared {
    /// Records a thread's unwind (first root cause wins) and aborts the
    /// arbitration protocol so every other thread wakes and unwinds too.
    pub fn record_panic(
        &self,
        tid: Tid,
        payload: Box<dyn std::any::Any + Send>,
        state: Option<ThreadReport>,
    ) {
        let message = payload_message(payload.as_ref());
        {
            let mut slot = self.supervisor.failure.lock();
            match (slot.is_none(), classify(&message)) {
                (true, Some(kind)) => {
                    *slot = Some(PendingFailure {
                        kind,
                        tid,
                        message,
                        culprit: state,
                        wait_graph: Vec::new(),
                        cycle: Vec::new(),
                    });
                }
                _ => {
                    // Secondary unwind: keep the state as a diagnostic.
                    if let Some(s) = state {
                        self.supervisor.peers.lock().entry(tid).or_insert(s);
                    }
                }
            }
        }
        self.kendo.set_abort();
        self.kendo.finish_forced(tid);
    }

    /// Structural deadlock detection, run by parked threads from their
    /// park-idle callback. Cheap when the run is alive: one epoch-stable
    /// status scan that bails at the first `Active` thread.
    pub fn check_deadlock(&self) {
        if !self.cfg.supervise || self.kendo.aborted() {
            return;
        }
        let Some(blocked) = self.kendo.blocked_snapshot() else {
            return;
        };
        // Every live thread is provably, permanently blocked. Read the
        // wait-for graph off the deterministic queues: this state is a
        // pure function of the schedule, so the resulting report (and
        // its digest) reproduces across reruns.
        let wait_graph = self.wait_graph();
        let cycle = FailureReport::find_cycle(&wait_graph);
        let tid = blocked.first().copied().unwrap_or(0);
        let message = if cycle.is_empty() {
            format!(
                "all {} live threads blocked with no possible waker",
                blocked.len()
            )
        } else {
            let cyc: Vec<String> = cycle.iter().map(|t| format!("t{t}")).collect();
            format!("wait-for cycle {}", cyc.join(" -> "))
        };
        {
            let mut slot = self.supervisor.failure.lock();
            if slot.is_none() {
                *slot = Some(PendingFailure {
                    kind: FailureKind::Deadlock,
                    tid,
                    message,
                    culprit: None,
                    wait_graph,
                    cycle,
                });
            }
        }
        self.kendo.set_abort();
    }

    /// One wait-for edge per blocked thread, read from the sync queues,
    /// sorted by waiter tid. Only sound once `blocked_snapshot`
    /// succeeded (the queues are then quiescent).
    fn wait_graph(&self) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        {
            let mxs = self.queues.mutexes.lock();
            let mut ids: Vec<u32> = mxs.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let mx = &mxs[&id];
                for &w in &mx.queue {
                    edges.push(WaitEdge {
                        waiter: w,
                        target: WaitTarget::Mutex {
                            id,
                            holder: mx.owner,
                        },
                    });
                }
            }
        }
        {
            let conds = self.queues.conds.lock();
            let mut ids: Vec<u32> = conds.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                for &(w, _) in &conds[&id] {
                    edges.push(WaitEdge {
                        waiter: w,
                        target: WaitTarget::Cond { id },
                    });
                }
            }
        }
        {
            let barriers = self.queues.barriers.lock();
            let mut ids: Vec<u32> = barriers.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                for &(w, _) in barriers[&id].arrivals.iter() {
                    edges.push(WaitEdge {
                        waiter: w,
                        target: WaitTarget::Barrier { id },
                    });
                }
            }
        }
        {
            let joins = self.queues.joins.lock();
            let mut targets: Vec<Tid> = joins.waiters.keys().copied().collect();
            targets.sort_unstable();
            for target in targets {
                for &w in &joins.waiters[&target] {
                    edges.push(WaitEdge {
                        waiter: w,
                        target: WaitTarget::Join { target },
                    });
                }
            }
        }
        edges.sort_by_key(|e| e.waiter);
        edges
    }

    /// Assembles the final [`RunError`] at teardown, if the run failed.
    pub fn take_run_error(&self, backend: &str) -> Option<RunError> {
        let f = self.supervisor.failure.lock().take()?;
        let peers = std::mem::take(&mut *self.supervisor.peers.lock());
        Some(RunError::from_report(FailureReport {
            backend: backend.to_owned(),
            kind: f.kind,
            tid: f.tid,
            message: f.message,
            culprit: f.culprit,
            wait_graph: f.wait_graph,
            cycle: f.cycle,
            peers: peers
                .into_iter()
                .filter(|&(t, _)| t != f.tid)
                .map(|(_, r)| r)
                .collect(),
            trace_path: None,
            warnings: Vec::new(),
        }))
    }
}

impl RfdetCtx {
    /// Entry hook of every synchronization operation: counts the op,
    /// remembers it for failure reports, and applies any fault the
    /// configured [`rfdet_api::FaultPlan`] attaches to this point.
    /// Runs *before* `wait_for_turn`, so an injected panic lands at a
    /// deterministic point of this thread's execution regardless of the
    /// global turn order. Gated on `supervise` so the bookkeeping can be
    /// A/B-measured.
    pub(crate) fn fault_point(&mut self, kind: &'static str, arg: Option<u64>) {
        if !self.shared.cfg.supervise {
            return;
        }
        let op = self.sync_ops;
        self.sync_ops += 1;
        self.last_op = Some((kind, arg));
        if let Some(buf) = &mut self.trace {
            // The clock read here is deterministic: a thread's clock
            // changes only through its own ticks and deterministic wake
            // handoffs, so its value at a program point is schedule-pure.
            // Recorded *before* plan jitter ticks, so recorded and
            // replayed streams key to the same pre-fault clocks.
            buf.push(rfdet_api::trace::TraceEvent {
                tid: self.tid,
                op,
                kind: rfdet_api::trace::op::code(kind),
                arg,
                clock: self.kendo.clock(),
            });
        }
        let plan = &self.shared.cfg.fault_plan;
        if !plan.is_empty() {
            let f = plan.on_sync_op(self.tid, op);
            if f.jitter_ticks > 0 {
                self.shared.kendo.tick_off_turn(&self.kendo, f.jitter_ticks);
            }
            if f.panic {
                panic!("{}", rfdet_api::FaultPlan::panic_message(self.tid, op));
            }
        }
    }

    /// Allocation hook for `FaultPlan::fail_alloc`.
    pub(crate) fn alloc_fault_point(&mut self) {
        if !self.shared.cfg.supervise {
            return;
        }
        let nth = self.allocs;
        self.allocs += 1;
        if let Some(buf) = &mut self.trace {
            buf.push(rfdet_api::trace::TraceEvent {
                tid: self.tid,
                op: nth,
                kind: rfdet_api::trace::op::ALLOC,
                arg: None,
                clock: self.kendo.clock(),
            });
        }
        if !self.shared.cfg.fault_plan.is_empty()
            && self.shared.cfg.fault_plan.on_alloc(self.tid, nth)
        {
            panic!(
                "{}",
                rfdet_api::FaultPlan::alloc_panic_message(self.tid, nth)
            );
        }
    }

    /// This thread's deterministic progress summary for failure reports.
    pub(crate) fn thread_report(&self) -> ThreadReport {
        ThreadReport {
            tid: self.tid,
            vc: self.vc.clone(),
            slices: self.slice_seq,
            sync_ops: self.sync_ops,
            last_op: self.last_op.map(|(k, a)| match a {
                Some(a) => format!("{k}({a})"),
                None => k.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfdet_api::RunConfig;

    fn shared() -> RuntimeShared {
        let mut cfg = RunConfig::small();
        cfg.rfdet.fault_cost_spins = 0;
        RuntimeShared::new(cfg)
    }

    #[test]
    fn first_panic_wins_later_ones_become_peer_diagnostics() {
        let s = shared();
        let _h = s.kendo.register(0);
        let _h2 = s.kendo.register(1);
        s.record_panic(0, Box::new("first"), None);
        s.record_panic(
            1,
            Box::new("second".to_owned()),
            Some(ThreadReport {
                tid: 1,
                ..ThreadReport::default()
            }),
        );
        assert!(s.kendo.aborted());
        let err = s.take_run_error("test").expect("failure recorded");
        let r = err.report();
        assert_eq!(r.kind, FailureKind::Panic);
        assert_eq!(r.tid, 0);
        assert_eq!(r.message, "first");
        assert_eq!(r.peers.len(), 1, "second panic kept as diagnostic");
        assert_eq!(r.peers[0].tid, 1);
    }

    #[test]
    fn secondary_abort_unwinds_are_not_root_causes() {
        let s = shared();
        let _h = s.kendo.register(0);
        s.record_panic(
            0,
            Box::new(
                "kendo: run aborted by supervisor (peer panic, deadlock, or wedge)".to_owned(),
            ),
            None,
        );
        assert!(s.kendo.aborted(), "abort still propagates");
        assert!(
            s.take_run_error("test").is_none(),
            "no root cause recorded from a secondary unwind"
        );
    }

    #[test]
    fn kendo_timeout_classifies_as_wedged() {
        let s = shared();
        let _h = s.kendo.register(0);
        s.record_panic(
            0,
            Box::new("kendo: thread 0 starved waiting for its turn".to_owned()),
            None,
        );
        let err = s.take_run_error("test").expect("wedge recorded");
        assert!(matches!(err, RunError::Wedged(_)));
    }

    #[test]
    fn check_deadlock_builds_graph_and_cycle_from_queues() {
        let s = shared();
        let a = s.kendo.register(0);
        let b = s.kendo.register(1);
        // AB-BA: t0 owns mutex 0 and queues on 1; t1 owns 1, queues on 0.
        {
            let mut mxs = s.queues.mutexes.lock();
            let m0 = mxs.entry(0).or_default();
            m0.owner = Some(0);
            m0.queue.push_back(1);
            let m1 = mxs.entry(1).or_default();
            m1.owner = Some(1);
            m1.queue.push_back(0);
        }
        s.kendo.block(&a);
        s.kendo.block(&b);
        s.check_deadlock();
        let err = s.take_run_error("test").expect("deadlock detected");
        let r = err.report().clone();
        assert!(matches!(err, RunError::Deadlock(_)));
        assert_eq!(r.cycle, vec![0, 1]);
        assert_eq!(r.wait_graph.len(), 2);
        assert!(s.kendo.aborted());
    }

    #[test]
    fn check_deadlock_is_a_noop_while_threads_are_active() {
        let s = shared();
        let _a = s.kendo.register(0);
        s.check_deadlock();
        assert!(!s.kendo.aborted());
        assert!(s.take_run_error("test").is_none());
    }

    #[test]
    fn check_deadlock_respects_supervise_flag() {
        let mut cfg = RunConfig::small();
        cfg.rfdet.fault_cost_spins = 0;
        cfg.supervise = false;
        let s = RuntimeShared::new(cfg);
        let a = s.kendo.register(0);
        s.kendo.block(&a);
        s.check_deadlock();
        assert!(!s.kendo.aborted(), "supervision off: no structural scan");
    }
}
