//! Decode robustness sweep: a corrupted trace or checkpoint buffer must
//! always come back as a typed [`TraceError`], never as a panic and
//! never as a silently-wrong value.
//!
//! Crash recovery reads these files at the worst possible moment — right
//! after a process died mid-write or mid-fsync — so the codec's failure
//! behaviour is as load-bearing as its happy path. Three corruption
//! families are swept here:
//!
//! * truncation at an arbitrary byte (torn file),
//! * a single bit flip at an arbitrary position (media corruption; the
//!   trailing FNV checksum makes any flip detectable, including flips
//!   inside the checksum itself), and
//! * wholly random buffers (wrong file fed to the loader), where the
//!   only obligation is "no panic, and anything accepted must re-encode
//!   to exactly the bytes that were decoded".

use proptest::prelude::*;
use rfdet_trace::{
    op, Checkpoint, CkptFreeList, CkptHeap, CkptPage, CkptSyncVar, CkptThread, FailureSummary,
    RunTrace, TraceConfig, TraceEvent, TraceFault, FAULT_PANIC, KIND_PANIC,
};

fn config() -> TraceConfig {
    TraceConfig {
        space_bytes: 1 << 20,
        page_size: 4096,
        meta_capacity_bytes: 1 << 16,
        gc_threshold_bits: 0.5f64.to_bits(),
        meta_max_slices: 64,
        sync_shards: 8,
        monitor: 0,
        slice_merging: true,
        prelock: false,
        lazy_writes: true,
        fault_cost_spins: 50,
        diff_gap_coalesce: 32,
        snap_pool_pages: 16,
        quantum_ticks: 1000,
        jitter_max_us: 0,
        supervise: true,
        deadlock_after_ms: Some(2000),
    }
}

/// A trace with every field class populated (faults, events with and
/// without args, a failure summary) so corruption lands on all of them.
fn sample_trace() -> RunTrace {
    RunTrace {
        backend: "RFDet-ci".into(),
        workload: "chaos.long_haul@3".into(),
        seed: Some(7),
        config: config(),
        faults: vec![TraceFault {
            tid: 2,
            code: FAULT_PANIC,
            a: 30,
            b: 0,
        }],
        events: vec![
            TraceEvent {
                tid: 0,
                op: 0,
                kind: op::SPAWN,
                arg: None,
                clock: 5,
            },
            TraceEvent {
                tid: 1,
                op: 3,
                kind: op::LOCK,
                arg: Some(1),
                clock: 41,
            },
        ],
        failure: FailureSummary {
            kind: KIND_PANIC,
            tid: 2,
            report_digest: 0x1234_5678_9abc_def0,
        },
    }
}

/// A checkpoint with every nested structure populated — sync vars,
/// live and dead threads, heap free lists, pages — so truncation points
/// and bit flips exercise every reader path.
fn sample_checkpoint() -> Checkpoint {
    Checkpoint {
        epoch: 8,
        backend: "RFDet-ci".into(),
        workload: "chaos.long_haul@3".into(),
        seed: None,
        config: config(),
        upper: vec![12, 9, 9, 9],
        sync_vars: vec![CkptSyncVar {
            class: 0,
            id: 1,
            last_tid: 2,
            last_time: vec![3, 0, 7, 0],
        }],
        finished: vec![3],
        threads: vec![
            CkptThread {
                tid: 0,
                alive: true,
                clock: 97,
                vc: vec![12, 9, 9, 9],
                slice_seq: 8,
                sync_ops: 24,
                allocs: 1,
                output: b"t0 partial".to_vec(),
                heap: CkptHeap {
                    cursor: 0x2_0000,
                    allocated_bytes: 128,
                    free: vec![CkptFreeList {
                        class: 7,
                        addrs: vec![0x2_0080, 0x2_0100],
                    }],
                    live: vec![(0x2_0000, 7)],
                },
                pages: vec![
                    CkptPage {
                        index: 1,
                        data: vec![0xAB; 64],
                    },
                    CkptPage {
                        index: 9,
                        data: vec![0x00; 64],
                    },
                ],
            },
            CkptThread {
                tid: 3,
                alive: false,
                clock: 0,
                vc: vec![],
                slice_seq: 0,
                sync_ops: 11,
                allocs: 0,
                output: b"t3 done".to_vec(),
                heap: CkptHeap::default(),
                pages: vec![],
            },
        ],
    }
}

proptest! {
    /// A torn trace file (any strict prefix) decodes to a typed error.
    #[test]
    fn truncated_trace_is_a_typed_error(raw in any::<u64>()) {
        let bytes = sample_trace().encode();
        let cut = (raw as usize) % bytes.len();
        prop_assert!(RunTrace::decode(&bytes[..cut]).is_err());
    }

    /// A torn checkpoint file (any strict prefix) decodes to a typed
    /// error.
    #[test]
    fn truncated_checkpoint_is_a_typed_error(raw in any::<u64>()) {
        let bytes = sample_checkpoint().encode();
        let cut = (raw as usize) % bytes.len();
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }

    /// Any single bit flip in a trace buffer is caught — the trailing
    /// FNV checksum covers every preceding byte, and a flip inside the
    /// checksum itself breaks the comparison from the other side.
    #[test]
    fn bitflipped_trace_is_a_typed_error(raw in any::<u64>(), bit in 0u8..8) {
        let mut bytes = sample_trace().encode();
        let pos = (raw as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(RunTrace::decode(&bytes).is_err());
    }

    /// Any single bit flip in a checkpoint buffer is caught.
    #[test]
    fn bitflipped_checkpoint_is_a_typed_error(raw in any::<u64>(), bit in 0u8..8) {
        let mut bytes = sample_checkpoint().encode();
        let pos = (raw as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(Checkpoint::decode(&bytes).is_err());
    }

    /// Feeding arbitrary bytes to either decoder never panics, and the
    /// astronomically-unlikely accept must be exact: whatever decodes
    /// must re-encode to the very bytes that were decoded.
    #[test]
    fn random_buffers_never_panic(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(t) = RunTrace::decode(&buf) {
            prop_assert_eq!(t.encode(), buf.clone());
        }
        if let Ok(c) = Checkpoint::decode(&buf) {
            prop_assert_eq!(c.encode(), buf);
        }
    }

    /// Splicing a random byte run over a trace buffer either errors or
    /// (when the splice happened to be an identity write) decodes the
    /// original value back.
    #[test]
    fn spliced_trace_never_panics(
        raw in any::<u64>(),
        junk in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let clean = sample_trace();
        let mut bytes = clean.encode();
        let pos = (raw as usize) % bytes.len();
        let end = (pos + junk.len()).min(bytes.len());
        bytes[pos..end].copy_from_slice(&junk[..end - pos]);
        if let Ok(t) = RunTrace::decode(&bytes) {
            prop_assert_eq!(t, clean);
        }
    }
}

/// The fixtures above must themselves be codec-clean, or the corruption
/// sweeps would be vacuous (corrupting an already-invalid buffer).
#[test]
fn fixtures_round_trip() {
    let t = sample_trace();
    assert_eq!(RunTrace::decode(&t.encode()).unwrap(), t);
    let c = sample_checkpoint();
    assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    assert_ne!(c.digest(), 0);
}
