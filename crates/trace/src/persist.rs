//! Crash persistence with a torn-write guarantee.
//!
//! Traces are written to a temporary file in the destination directory
//! and then `rename`d into place. On POSIX a same-directory rename is
//! atomic, so readers only ever observe either no file or a complete
//! one — a process that dies mid-write leaves at most an orphaned
//! `.tmp-` file, never a torn `.trace`. The codec's trailing checksum
//! backstops the remaining ways a file can be damaged after the fact.

use crate::{Checkpoint, RunTrace, TraceError};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Default trace directory, overridable with `RFDET_TRACE_DIR`.
#[must_use]
pub fn trace_dir() -> PathBuf {
    std::env::var_os("RFDET_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/rfdet-traces"))
}

/// The canonical file name of a trace: its digest in hex, plus an
/// optional tag (the shrinker saves minimized traces as `<digest>.min`).
#[must_use]
pub fn file_name(trace: &RunTrace, tag: &str) -> String {
    format!("{:016x}{tag}.trace", trace.failure.report_digest)
}

/// Saves `trace` into [`trace_dir`] under its canonical name.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write, rename).
pub fn save(trace: &RunTrace) -> std::io::Result<PathBuf> {
    save_in(&trace_dir(), trace, "")
}

/// Saves `trace` into `dir` as `<digest><tag>.trace`, atomically: the
/// bytes land in a unique temporary file first and are renamed into
/// place, so a crash never leaves a torn `.trace`.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write, rename).
pub fn save_in(dir: &Path, trace: &RunTrace, tag: &str) -> std::io::Result<PathBuf> {
    write_atomic(dir, &file_name(trace, tag), &trace.encode())
}

/// Saves a human-readable sidecar (e.g. the race report the `replay
/// races` verb emits) beside the traces in `dir`, with the same
/// torn-write guarantee the binary artifacts get.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write, rename).
pub fn save_sidecar(dir: &Path, name: &str, text: &str) -> std::io::Result<PathBuf> {
    write_atomic(dir, name, text.as_bytes())
}

/// Writes `bytes` into `dir/name` atomically: unique temporary first,
/// then rename, so a crash never leaves a torn file. Shared by trace and
/// checkpoint persistence.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<PathBuf> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let tmp = dir.join(format!(
        ".{name}.tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Relaxed)
    ));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, &path) {
        Ok(()) => Ok(path),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The canonical file name of a checkpoint: the run key (the FNV of the
/// run's schedule-determining inputs) plus the epoch, so the chain of
/// one run sorts lexicographically and crash recovery can find the
/// latest epoch by name alone.
#[must_use]
pub fn ckpt_file_name(ckpt: &Checkpoint) -> String {
    format!("{:016x}.e{:06}.ckpt", ckpt.run_key(), ckpt.epoch)
}

/// Saves `ckpt` into [`trace_dir`] under its canonical name, atomically.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write, rename).
pub fn save_checkpoint(ckpt: &Checkpoint) -> std::io::Result<PathBuf> {
    save_checkpoint_in(&trace_dir(), ckpt)
}

/// Saves `ckpt` into `dir` under its canonical name, atomically.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write, rename).
pub fn save_checkpoint_in(dir: &Path, ckpt: &Checkpoint) -> std::io::Result<PathBuf> {
    write_atomic(dir, &ckpt_file_name(ckpt), &ckpt.encode())
}

/// Loads and decodes a checkpoint file.
///
/// # Errors
/// Returns [`LoadError::Io`] when the file cannot be read and
/// [`LoadError::Codec`] when its contents are not a valid checkpoint.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, LoadError> {
    let bytes = std::fs::read(path).map_err(LoadError::Io)?;
    Checkpoint::decode(&bytes).map_err(LoadError::Codec)
}

/// The on-disk checkpoint chain of one run in `dir`: every
/// `<run_key>.e*.ckpt`, as `(epoch, path)` ascending by epoch. Files
/// that fail to parse by name are skipped (they are not chain members).
#[must_use]
pub fn checkpoint_chain(dir: &Path, run_key: u64) -> Vec<(u64, PathBuf)> {
    let prefix = format!("{run_key:016x}.e");
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(epoch_str) = rest.strip_suffix(".ckpt") else {
            continue;
        };
        if let Ok(epoch) = epoch_str.parse::<u64>() {
            out.push((epoch, entry.path()));
        }
    }
    out.sort();
    out
}

/// The latest on-disk checkpoint of a run — crash recovery's resume
/// point. `None` when the run has no checkpoints in `dir`.
#[must_use]
pub fn latest_checkpoint(dir: &Path, run_key: u64) -> Option<(u64, PathBuf)> {
    checkpoint_chain(dir, run_key).into_iter().next_back()
}

/// Why a trace file failed to load.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes did not decode as a trace.
    Codec(TraceError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "cannot read trace file: {e}"),
            LoadError::Codec(e) => write!(f, "cannot decode trace file: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads and decodes a trace file.
///
/// # Errors
/// Returns [`LoadError::Io`] when the file cannot be read and
/// [`LoadError::Codec`] when its contents are not a valid trace.
pub fn load(path: &Path) -> Result<RunTrace, LoadError> {
    let bytes = std::fs::read(path).map_err(LoadError::Io)?;
    RunTrace::decode(&bytes).map_err(LoadError::Codec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_config;
    use crate::{FailureSummary, KIND_DEADLOCK};

    fn sample(digest: u64) -> RunTrace {
        RunTrace {
            backend: "RFDet-ci".into(),
            workload: "abba".into(),
            seed: None,
            config: test_config(),
            faults: Vec::new(),
            events: Vec::new(),
            failure: FailureSummary {
                kind: KIND_DEADLOCK,
                tid: 1,
                report_digest: digest,
            },
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rfdet-trace-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir("roundtrip");
        let t = sample(0xabcd);
        let path = save_in(&dir, &t, "").unwrap();
        assert_eq!(path.file_name().unwrap(), "000000000000abcd.trace");
        assert_eq!(load(&path).unwrap(), t);
        // No stray temporaries survive a successful save.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains("tmp")
            })
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resave_overwrites_atomically() {
        let dir = tmpdir("resave");
        let t = sample(0x77);
        let a = save_in(&dir, &t, "").unwrap();
        let b = save_in(&dir, &t, "").unwrap();
        assert_eq!(a, b);
        assert_eq!(load(&a).unwrap(), t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn min_tag_lands_beside_the_original() {
        let dir = tmpdir("mintag");
        let t = sample(0x99);
        let orig = save_in(&dir, &t, "").unwrap();
        let min = save_in(&dir, &t, ".min").unwrap();
        assert_eq!(orig.parent(), min.parent());
        assert_eq!(min.file_name().unwrap(), "0000000000000099.min.trace");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_file_fails_to_load() {
        let dir = tmpdir("torn");
        let t = sample(0x1234);
        let path = save_in(&dir, &t, "").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load(&path), Err(LoadError::Codec(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            load(Path::new("/nonexistent/zzz.trace")),
            Err(LoadError::Io(_))
        ));
    }

    fn sample_ckpt(epoch: u64) -> Checkpoint {
        Checkpoint {
            epoch,
            backend: "RFDet-ci".into(),
            workload: "chaos.long_haul@4".into(),
            seed: Some(1),
            config: test_config(),
            upper: vec![1, 2],
            sync_vars: Vec::new(),
            finished: Vec::new(),
            threads: Vec::new(),
        }
    }

    #[test]
    fn checkpoint_save_load_round_trip() {
        let dir = tmpdir("ckpt-roundtrip");
        let c = sample_ckpt(2);
        let path = save_checkpoint_in(&dir, &c).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .ends_with(".e000002.ckpt"));
        assert_eq!(load_checkpoint(&path).unwrap(), c);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_chain_sorts_and_finds_latest() {
        let dir = tmpdir("ckpt-chain");
        for epoch in [3, 1, 2] {
            save_checkpoint_in(&dir, &sample_ckpt(epoch)).unwrap();
        }
        // A foreign run's checkpoint and junk files are not chain members.
        let mut other = sample_ckpt(9);
        other.seed = Some(99);
        save_checkpoint_in(&dir, &other).unwrap();
        std::fs::write(dir.join("junk.ckpt"), b"x").unwrap();
        let key = sample_ckpt(1).run_key();
        let chain = checkpoint_chain(&dir, key);
        assert_eq!(chain.iter().map(|(e, _)| *e).collect::<Vec<_>>(), [1, 2, 3]);
        let (latest, path) = latest_checkpoint(&dir, key).unwrap();
        assert_eq!(latest, 3);
        assert_eq!(load_checkpoint(&path).unwrap().epoch, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_lands_atomically_beside_traces() {
        let dir = tmpdir("sidecar");
        let path = save_sidecar(&dir, "races_demo@4.races", "1 race(s)\n").unwrap();
        assert_eq!(path.file_name().unwrap(), "races_demo@4.races");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1 race(s)\n");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains("tmp")
            })
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_save_into_unwritable_dir_is_an_error_not_a_panic() {
        let c = sample_ckpt(1);
        assert!(save_checkpoint_in(Path::new("/proc/nonexistent-rfdet"), &c).is_err());
    }
}
