//! Delta debugging (`ddmin`) over fault lists.
//!
//! The repro-minimization problem: a recorded `FaultPlan` may contain
//! dozens of specs (chaos sweeps inject jitter everywhere) of which only
//! one or two actually cause the failure. `ddmin` finds a small —
//! 1-minimal — sublist for which the caller's oracle still returns
//! `true`, using Zeller's complement-partition strategy, then a final
//! drop-one pass. Item order is preserved throughout, so the minimized
//! list is a subsequence of the input: every surviving spec appeared in
//! the original plan verbatim.

/// Minimizes `items` to a 1-minimal subsequence for which `oracle` still
/// returns `true` (1-minimal: removing any single remaining item makes
/// the oracle fail). The oracle must hold on the full input; callers
/// should verify that before paying for the search. Runs the oracle
/// O(n²) times in the worst case, each call typically a full re-run of
/// the workload.
pub fn ddmin<T: Clone>(items: &[T], oracle: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    // The failure may not need the fault plan at all (e.g. an
    // application deadlock recorded alongside injected jitter).
    if items.is_empty() || oracle(&[]) {
        return Vec::new();
    }
    let mut current: Vec<T> = items.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Complement: everything except current[start..end].
            let mut complement: Vec<T> = Vec::with_capacity(current.len() - (end - start));
            complement.extend_from_slice(&current[..start]);
            complement.extend_from_slice(&current[end..]);
            if !complement.is_empty() && oracle(&complement) {
                current = complement;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    // Final drop-one pass establishes 1-minimality even for oracles that
    // depend on item combinations the partition schedule skipped.
    loop {
        let mut dropped = false;
        for i in 0..current.len() {
            if current.len() <= 1 {
                break;
            }
            let mut cand = current.clone();
            cand.remove(i);
            if oracle(&cand) {
                current = cand;
                dropped = true;
                break;
            }
        }
        if !dropped {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_single_culprit() {
        let items: Vec<u32> = (0..20).collect();
        let mut calls = 0;
        let min = ddmin(&items, &mut |s| {
            calls += 1;
            s.contains(&13)
        });
        assert_eq!(min, vec![13]);
        assert!(calls < 200, "ddmin ran the oracle {calls} times");
    }

    #[test]
    fn finds_a_pair_of_interacting_culprits() {
        let items: Vec<u32> = (0..16).collect();
        let min = ddmin(&items, &mut |s| s.contains(&3) && s.contains(&11));
        assert_eq!(min, vec![3, 11], "order preserved, both kept");
    }

    #[test]
    fn returns_empty_when_nothing_is_needed() {
        let items = vec![1, 2, 3];
        assert!(ddmin(&items, &mut |_| true).is_empty());
        assert!(ddmin::<u32>(&[], &mut |_| false).is_empty());
    }

    #[test]
    fn keeps_everything_when_all_items_matter() {
        let items = vec![1, 2, 3, 4];
        let min = ddmin(&items, &mut |s| s.len() == 4);
        assert_eq!(min, items);
    }

    #[test]
    fn result_is_one_minimal() {
        let items: Vec<u32> = (0..12).collect();
        // Oracle: needs at least 3 even numbers.
        let mut oracle = |s: &[u32]| s.iter().filter(|x| *x % 2 == 0).count() >= 3;
        let min = ddmin(&items, &mut oracle);
        assert!(oracle(&min));
        for i in 0..min.len() {
            let mut cand = min.clone();
            cand.remove(i);
            assert!(!oracle(&cand), "removing {} kept the oracle true", min[i]);
        }
    }
}
