//! The flight recorder: compact, versioned traces of one run.
//!
//! A deterministic run is a pure function of its inputs — configuration,
//! jitter seed and [`FaultPlan`](struct@crate::TraceFault) — so a
//! "recording" does not need instruction-level logging the way replay
//! systems for nondeterministic runtimes do. A [`RunTrace`] captures
//! exactly those inputs plus two derived artifacts that make the trace
//! *checkable*:
//!
//! * the per-thread synchronization-op schedule ([`TraceEvent`]s keyed to
//!   Kendo logical clocks on the core backend), so a replay can verify it
//!   re-executed the same schedule, not merely the same failure text, and
//! * the terminal failure digest ([`FailureSummary`]), the rerun-stable
//!   projection of the `FailureReport`.
//!
//! Traces serialize through a serde-free little-endian binary codec
//! ([`RunTrace::encode`] / [`RunTrace::decode`]) with a magic, a version
//! and a trailing checksum, and persist via atomic rename so a crashing
//! process never leaves a torn `.trace` file (see [`persist`]).
//!
//! This crate deliberately depends only on `rfdet-vclock` (for [`Tid`]):
//! `rfdet-api` layers the `RunConfig`/`FaultPlan` conversions and the
//! `DmtBackend::replay` / shrink drivers on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod ckpt;
mod codec;
pub mod persist;
mod shrink;
mod sink;

pub use ckpt::{
    sync_class, Checkpoint, CkptFreeList, CkptHeap, CkptPage, CkptSyncVar, CkptThread, CKPT_MAGIC,
    CKPT_VERSION,
};
pub use codec::TraceError;
pub use shrink::ddmin;
pub use sink::{TraceBuf, TraceSink};

use rfdet_vclock::Tid;

/// Failure-kind code: a thread panicked.
pub const KIND_PANIC: u8 = 0;
/// Failure-kind code: provable deadlock.
pub const KIND_DEADLOCK: u8 = 1;
/// Failure-kind code: wall-clock wedge.
pub const KIND_WEDGED: u8 = 2;
/// Failure-kind code: the run completed cleanly (the trace's digest is
/// then the output digest, not a report digest).
pub const KIND_NONE: u8 = 255;

/// Operation-kind codes for [`TraceEvent::kind`].
pub mod op {
    /// `lock`.
    pub const LOCK: u8 = 0;
    /// `unlock`.
    pub const UNLOCK: u8 = 1;
    /// `cond_wait`.
    pub const COND_WAIT: u8 = 2;
    /// `cond_signal`.
    pub const COND_SIGNAL: u8 = 3;
    /// `cond_broadcast`.
    pub const COND_BROADCAST: u8 = 4;
    /// `barrier`.
    pub const BARRIER: u8 = 5;
    /// `spawn`.
    pub const SPAWN: u8 = 6;
    /// `join`.
    pub const JOIN: u8 = 7;
    /// `atomic` (load, store or rmw).
    pub const ATOMIC: u8 = 8;
    /// Thread exit.
    pub const EXIT: u8 = 9;
    /// Shared allocation (`TraceEvent::op` is the per-thread allocation
    /// index, a separate counter from sync ops).
    pub const ALLOC: u8 = 10;
    /// A Kendo wakeup: `tid` is the woken thread, `clock` its new clock,
    /// `op` is [`u64::MAX`] (wakes are not sync ops of the woken thread).
    pub const WAKE: u8 = 11;
    /// A sync-op kind this trace version does not know by name.
    pub const OTHER: u8 = 254;

    /// Maps a backend's `fault_point` kind string to its code.
    #[must_use]
    pub fn code(kind: &str) -> u8 {
        match kind {
            "lock" => LOCK,
            "unlock" => UNLOCK,
            "cond_wait" => COND_WAIT,
            "cond_signal" => COND_SIGNAL,
            "cond_broadcast" => COND_BROADCAST,
            "barrier" => BARRIER,
            "spawn" => SPAWN,
            "join" => JOIN,
            "atomic" => ATOMIC,
            "exit" => EXIT,
            _ => OTHER,
        }
    }

    /// Human-readable name of a code (for trace dumps).
    #[must_use]
    pub fn name(code: u8) -> &'static str {
        match code {
            LOCK => "lock",
            UNLOCK => "unlock",
            COND_WAIT => "cond_wait",
            COND_SIGNAL => "cond_signal",
            COND_BROADCAST => "cond_broadcast",
            BARRIER => "barrier",
            SPAWN => "spawn",
            JOIN => "join",
            ATOMIC => "atomic",
            EXIT => "exit",
            ALLOC => "alloc",
            WAKE => "wake",
            _ => "other",
        }
    }
}

/// One recorded schedule event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The thread the event belongs to (for wakes: the *woken* thread).
    pub tid: Tid,
    /// Per-thread operation index, in program order (sync-op count for
    /// sync events, allocation count for [`op::ALLOC`], [`u64::MAX`] for
    /// [`op::WAKE`]).
    pub op: u64,
    /// Operation kind (see [`op`]).
    pub kind: u8,
    /// Operation argument (mutex/cond/barrier id, atomic address,
    /// joined tid), when the operation has one.
    pub arg: Option<u64>,
    /// Kendo logical clock at the event. Zero on backends without
    /// logical clocks (native, dthreads, quantum) — their per-thread
    /// `op` indices order the stream instead.
    pub clock: u64,
}

impl TraceEvent {
    /// The deterministic sort key used by [`TraceSink::drain_sorted`]:
    /// per-thread streams ordered by clock then op index. Wake events
    /// (`op == u64::MAX`) sort after the same-clock sync op that
    /// performed them, which keeps ties deterministic.
    #[must_use]
    pub fn sort_key(&self) -> (Tid, u64, u64, u8, u64) {
        (
            self.tid,
            self.clock,
            self.op,
            self.kind,
            self.arg.unwrap_or(u64::MAX),
        )
    }
}

/// Fault-code for [`TraceFault`]: panic at a sync op (`a` = op index).
pub const FAULT_PANIC: u8 = 0;
/// Fault-code for [`TraceFault`]: fail an allocation (`a` = alloc index).
pub const FAULT_FAIL_ALLOC: u8 = 1;
/// Fault-code for [`TraceFault`]: jitter ticks (`a` = op, `b` = ticks).
pub const FAULT_JITTER: u8 = 2;

/// One serialized `FaultSpec` (the codec-stable mirror of
/// `rfdet_api::FaultAction`, kept numeric so this crate stays
/// api-independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFault {
    /// Target thread.
    pub tid: Tid,
    /// One of [`FAULT_PANIC`], [`FAULT_FAIL_ALLOC`], [`FAULT_JITTER`].
    pub code: u8,
    /// First operand (op / alloc index).
    pub a: u64,
    /// Second operand (jitter ticks; zero otherwise).
    pub b: u64,
}

/// The determinism-relevant `RunConfig` fields, codec-stable. Floats are
/// stored as IEEE-754 bits so round-trips are exact.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror RunConfig; see its docs
pub struct TraceConfig {
    pub space_bytes: u64,
    pub page_size: u64,
    pub meta_capacity_bytes: u64,
    /// `RunConfig::gc_threshold` as `f64::to_bits`.
    pub gc_threshold_bits: u64,
    pub meta_max_slices: u64,
    pub sync_shards: u64,
    /// Monitor mode: 0 = compile-time instrumentation, 1 = page faults.
    pub monitor: u8,
    pub slice_merging: bool,
    pub prelock: bool,
    pub lazy_writes: bool,
    pub fault_cost_spins: u32,
    pub diff_gap_coalesce: u64,
    pub snap_pool_pages: u64,
    pub quantum_ticks: u64,
    pub jitter_max_us: u64,
    pub supervise: bool,
    pub deadlock_after_ms: Option<u64>,
}

/// The terminal state of the recorded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureSummary {
    /// [`KIND_PANIC`], [`KIND_DEADLOCK`], [`KIND_WEDGED`] or
    /// [`KIND_NONE`] for a clean run.
    pub kind: u8,
    /// The culprit thread (0 for clean runs).
    pub tid: Tid,
    /// `FailureReport::report_digest()` for failed runs,
    /// `RunOutput::output_digest()` for clean ones.
    pub report_digest: u64,
}

impl FailureSummary {
    /// `true` when the recorded run failed.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        self.kind != KIND_NONE
    }
}

/// A complete recording of one run: every input that determines the
/// schedule, the observed schedule itself, and the terminal digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunTrace {
    /// `DmtBackend::name()` of the recording backend.
    pub backend: String,
    /// Workload label (`RunConfig::trace`); closures are not
    /// serializable, so replay resolves the root function by this name.
    pub workload: String,
    /// The jitter seed (`RunConfig::jitter_seed`).
    pub seed: Option<u64>,
    /// The determinism-relevant configuration.
    pub config: TraceConfig,
    /// The injected fault plan.
    pub faults: Vec<TraceFault>,
    /// The recorded schedule, sorted by [`TraceEvent::sort_key`].
    pub events: Vec<TraceEvent>,
    /// How the run ended.
    pub failure: FailureSummary,
}

impl RunTrace {
    /// The culprit thread's event stream — the rerun-stable slice of the
    /// schedule. Peer threads may record extra events between the root
    /// cause and the abort reaching them (physical timing), but the
    /// culprit's own program-order history up to the failure point, and
    /// every wake *of* the culprit (wakes happen inside deterministic
    /// turns), reproduce exactly. Replay verification compares this.
    #[must_use]
    pub fn culprit_events(&self) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.tid == self.failure.tid)
            .copied()
            .collect()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A short human-readable summary line.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "trace: backend={} workload={:?} events={} faults={} kind={} digest={:#018x}",
            self.backend,
            self.workload,
            self.events.len(),
            self.faults.len(),
            self.failure.kind,
            self.failure.report_digest,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codes_round_trip_names() {
        for kind in [
            "lock",
            "unlock",
            "cond_wait",
            "cond_signal",
            "cond_broadcast",
            "barrier",
            "spawn",
            "join",
            "atomic",
            "exit",
        ] {
            assert_eq!(op::name(op::code(kind)), kind);
        }
        assert_eq!(op::code("frobnicate"), op::OTHER);
    }

    #[test]
    fn sort_key_orders_wakes_after_same_clock_ops() {
        let sync = TraceEvent {
            tid: 1,
            op: 3,
            kind: op::LOCK,
            arg: Some(0),
            clock: 40,
        };
        let wake = TraceEvent {
            tid: 1,
            op: u64::MAX,
            kind: op::WAKE,
            arg: None,
            clock: 40,
        };
        assert!(sync.sort_key() < wake.sort_key());
    }

    #[test]
    fn culprit_events_filter_by_failure_tid() {
        let ev = |tid| TraceEvent {
            tid,
            op: 0,
            kind: op::LOCK,
            arg: None,
            clock: 0,
        };
        let t = RunTrace {
            backend: "b".into(),
            workload: "w".into(),
            seed: None,
            config: test_config(),
            faults: vec![],
            events: vec![ev(0), ev(1), ev(1), ev(2)],
            failure: FailureSummary {
                kind: KIND_PANIC,
                tid: 1,
                report_digest: 7,
            },
        };
        assert_eq!(t.culprit_events().len(), 2);
        assert!(t.failure.is_failure());
    }

    pub(crate) fn test_config() -> TraceConfig {
        TraceConfig {
            space_bytes: 1 << 20,
            page_size: 4096,
            meta_capacity_bytes: 4 << 20,
            gc_threshold_bits: 0.9f64.to_bits(),
            meta_max_slices: 1024,
            sync_shards: 16,
            monitor: 0,
            slice_merging: true,
            prelock: true,
            lazy_writes: false,
            fault_cost_spins: 0,
            diff_gap_coalesce: 0,
            snap_pool_pages: 256,
            quantum_ticks: 10_000,
            jitter_max_us: 50,
            supervise: true,
            deadlock_after_ms: Some(30_000),
        }
    }
}
