//! Serde-free binary codec for [`RunTrace`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "RFDT" | version u32 | payload | checksum u64
//! ```
//!
//! The checksum is FNV-1a over every preceding byte, so a torn or
//! bit-flipped file fails decoding even if the length happens to line
//! up. Strings and lists are length-prefixed; `Option<u64>` is a flag
//! byte plus the value. Version bumps are decode-rejected rather than
//! migrated: a trace is a debugging artifact of one build lineage, not a
//! long-term archive format.

use crate::{FailureSummary, RunTrace, TraceConfig, TraceEvent, TraceFault};
use std::fmt;

/// File magic.
pub const MAGIC: [u8; 4] = *b"RFDT";
/// Current format version.
pub const VERSION: u32 = 1;

/// Why a byte buffer failed to decode as a [`RunTrace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with the `RFDT` magic.
    BadMagic,
    /// The format version is not [`VERSION`].
    UnsupportedVersion(u32),
    /// The buffer ended mid-field (torn file).
    Truncated,
    /// The trailing checksum does not match the content.
    BadChecksum,
    /// Bytes remain after the checksum (corrupt or concatenated file).
    TrailingBytes,
    /// A length prefix is implausibly large for the buffer.
    BadLength,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a RFDT trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "truncated trace file"),
            TraceError::BadChecksum => write!(f, "trace checksum mismatch (corrupt file)"),
            TraceError::TrailingBytes => write!(f, "trailing bytes after trace checksum"),
            TraceError::BadLength => write!(f, "implausible length prefix in trace file"),
        }
    }
}

impl std::error::Error for TraceError {}

pub(crate) fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn boolean(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::BadLength)?;
        if end > self.buf.len() {
            return Err(TraceError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, TraceError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, TraceError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    pub(crate) fn boolean(&mut self) -> Result<bool, TraceError> {
        Ok(self.u8()? != 0)
    }
    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, TraceError> {
        Ok(if self.u8()? != 0 {
            Some(self.u64()?)
        } else {
            None
        })
    }
    pub(crate) fn str(&mut self) -> Result<String, TraceError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::BadLength)
    }
    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, TraceError> {
        let len = self.list_len(1)?;
        Ok(self.take(len)?.to_vec())
    }
    /// Guards list length prefixes against absurd values before any
    /// allocation: each element needs at least `min_elem` bytes.
    pub(crate) fn list_len(&mut self, min_elem: usize) -> Result<usize, TraceError> {
        let len = self.u64()? as usize;
        if len.saturating_mul(min_elem.max(1)) > self.buf.len() {
            return Err(TraceError::BadLength);
        }
        Ok(len)
    }
}

pub(crate) fn write_config(w: &mut Writer, c: &TraceConfig) {
    w.u64(c.space_bytes);
    w.u64(c.page_size);
    w.u64(c.meta_capacity_bytes);
    w.u64(c.gc_threshold_bits);
    w.u64(c.meta_max_slices);
    w.u64(c.sync_shards);
    w.u8(c.monitor);
    w.boolean(c.slice_merging);
    w.boolean(c.prelock);
    w.boolean(c.lazy_writes);
    w.u32(c.fault_cost_spins);
    w.u64(c.diff_gap_coalesce);
    w.u64(c.snap_pool_pages);
    w.u64(c.quantum_ticks);
    w.u64(c.jitter_max_us);
    w.boolean(c.supervise);
    w.opt_u64(c.deadlock_after_ms);
}

pub(crate) fn read_config(r: &mut Reader<'_>) -> Result<TraceConfig, TraceError> {
    Ok(TraceConfig {
        space_bytes: r.u64()?,
        page_size: r.u64()?,
        meta_capacity_bytes: r.u64()?,
        gc_threshold_bits: r.u64()?,
        meta_max_slices: r.u64()?,
        sync_shards: r.u64()?,
        monitor: r.u8()?,
        slice_merging: r.boolean()?,
        prelock: r.boolean()?,
        lazy_writes: r.boolean()?,
        fault_cost_spins: r.u32()?,
        diff_gap_coalesce: r.u64()?,
        snap_pool_pages: r.u64()?,
        quantum_ticks: r.u64()?,
        jitter_max_us: r.u64()?,
        supervise: r.boolean()?,
        deadlock_after_ms: r.opt_u64()?,
    })
}

impl RunTrace {
    /// Serializes the trace (see the module docs for the layout).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        w.str(&self.backend);
        w.str(&self.workload);
        w.opt_u64(self.seed);
        write_config(&mut w, &self.config);
        w.u64(self.faults.len() as u64);
        for f in &self.faults {
            w.u32(f.tid);
            w.u8(f.code);
            w.u64(f.a);
            w.u64(f.b);
        }
        w.u64(self.events.len() as u64);
        for e in &self.events {
            w.u32(e.tid);
            w.u64(e.op);
            w.u8(e.kind);
            w.opt_u64(e.arg);
            w.u64(e.clock);
        }
        w.u8(self.failure.kind);
        w.u32(self.failure.tid);
        w.u64(self.failure.report_digest);
        let checksum = fnv(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Decodes a buffer produced by [`RunTrace::encode`].
    ///
    /// # Errors
    /// Returns a [`TraceError`] for any malformed input: wrong magic or
    /// version, truncation, checksum mismatch, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(if bytes.starts_with(&MAGIC) || MAGIC.starts_with(bytes) {
                TraceError::Truncated
            } else {
                TraceError::BadMagic
            });
        }
        if bytes[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 8];
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bytes[bytes.len() - 8..]);
        if fnv(body) != u64::from_le_bytes(tail) {
            return Err(TraceError::BadChecksum);
        }
        let mut r = Reader { buf: body, pos: 4 };
        let version = r.u32()?;
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let backend = r.str()?;
        let workload = r.str()?;
        let seed = r.opt_u64()?;
        let config = read_config(&mut r)?;
        let n_faults = r.list_len(21)?;
        let mut faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            faults.push(TraceFault {
                tid: r.u32()?,
                code: r.u8()?,
                a: r.u64()?,
                b: r.u64()?,
            });
        }
        let n_events = r.list_len(22)?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(TraceEvent {
                tid: r.u32()?,
                op: r.u64()?,
                kind: r.u8()?,
                arg: r.opt_u64()?,
                clock: r.u64()?,
            });
        }
        let failure = FailureSummary {
            kind: r.u8()?,
            tid: r.u32()?,
            report_digest: r.u64()?,
        };
        if r.pos != body.len() {
            return Err(TraceError::TrailingBytes);
        }
        Ok(RunTrace {
            backend,
            workload,
            seed,
            config,
            faults,
            events,
            failure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_config;
    use crate::{op, FAULT_JITTER, FAULT_PANIC, KIND_PANIC};

    fn sample() -> RunTrace {
        RunTrace {
            backend: "RFDet-ci".into(),
            workload: "lock_panic".into(),
            seed: Some(42),
            config: test_config(),
            faults: vec![
                TraceFault {
                    tid: 1,
                    code: FAULT_PANIC,
                    a: 4,
                    b: 0,
                },
                TraceFault {
                    tid: 2,
                    code: FAULT_JITTER,
                    a: 1,
                    b: 50,
                },
            ],
            events: vec![
                TraceEvent {
                    tid: 0,
                    op: 0,
                    kind: op::SPAWN,
                    arg: None,
                    clock: 5,
                },
                TraceEvent {
                    tid: 1,
                    op: 0,
                    kind: op::LOCK,
                    arg: Some(3),
                    clock: 12,
                },
                TraceEvent {
                    tid: 1,
                    op: u64::MAX,
                    kind: op::WAKE,
                    arg: None,
                    clock: 30,
                },
            ],
            failure: FailureSummary {
                kind: KIND_PANIC,
                tid: 1,
                report_digest: 0xdead_beef_cafe_f00d,
            },
        }
    }

    #[test]
    fn round_trips_exactly() {
        let t = sample();
        let bytes = t.encode();
        assert_eq!(RunTrace::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(RunTrace::decode(&bytes), Err(TraceError::BadMagic));
    }

    #[test]
    fn rejects_unknown_version() {
        let t = sample();
        let mut bytes = t.encode();
        bytes[4] = 99;
        // Fix up the checksum so the version check is what fires.
        let body_len = bytes.len() - 8;
        let sum = super::fnv(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            RunTrace::decode(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn rejects_every_truncation_point() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                RunTrace::decode(&bytes[..len]).is_err(),
                "decode accepted a {len}-byte prefix of a {}-byte trace",
                bytes.len()
            );
        }
    }

    #[test]
    fn rejects_single_bit_flips() {
        let bytes = sample().encode();
        for i in [5, 20, bytes.len() / 2, bytes.len() - 9] {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(
                RunTrace::decode(&b).is_err(),
                "decode accepted a bit flip at byte {i}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().encode();
        bytes.extend_from_slice(b"junk");
        // Trailing bytes shift the checksum window, so this surfaces as
        // a checksum failure — still an error, which is what matters.
        assert!(RunTrace::decode(&bytes).is_err());
    }

    #[test]
    fn empty_lists_round_trip() {
        let mut t = sample();
        t.faults.clear();
        t.events.clear();
        t.seed = None;
        assert_eq!(RunTrace::decode(&t.encode()).unwrap(), t);
    }
}
