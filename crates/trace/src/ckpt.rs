//! Deterministic checkpoints: a consistent cut of one run, on disk.
//!
//! A [`Checkpoint`] captures everything the core backend needs to
//! reconstruct every thread's `DmtCtx` at an *eligible* full-membership
//! barrier episode (see DESIGN.md §4.11 for eligibility): per-thread
//! Kendo clocks and vector clocks, the sync-var table, the thread
//! heaps, emitted output, and the materialized pages of each private
//! space. Because the runtime is deterministic, resuming from a
//! checkpoint and running to the next one reproduces that next
//! checkpoint *byte-identically* — which is what lets sharded replay
//! verify each shard against the recorded chain instead of re-running
//! the whole schedule serially.
//!
//! Layout mirrors the [`RunTrace`](crate::RunTrace) codec: magic
//! `RFCK` | version | payload | trailing FNV-1a checksum, all integers
//! little-endian, decode rejecting torn, bit-flipped, trailing-garbage
//! and future-version buffers with a typed [`TraceError`].

use crate::codec::{fnv, read_config, write_config, Reader, Writer};
use crate::{TraceConfig, TraceError};
use rfdet_vclock::Tid;

/// Checkpoint file magic.
pub const CKPT_MAGIC: [u8; 4] = *b"RFCK";
/// Current checkpoint format version.
pub const CKPT_VERSION: u32 = 1;

/// Sync-var class codes (mirror `rfdet_meta::SyncKey`, kept numeric so
/// this crate stays meta-independent).
pub mod sync_class {
    /// `SyncKey::Mutex`.
    pub const MUTEX: u8 = 0;
    /// `SyncKey::Cond`.
    pub const COND: u8 = 1;
    /// `SyncKey::Barrier`.
    pub const BARRIER: u8 = 2;
    /// `SyncKey::Thread`.
    pub const THREAD: u8 = 3;
    /// `SyncKey::Atomic`.
    pub const ATOMIC: u8 = 4;
}

/// One internal sync variable's `(lastTid, lastTime)` at the cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptSyncVar {
    /// Class code (see [`sync_class`]).
    pub class: u8,
    /// The id within the class (mutex/cond/barrier id, tid, address).
    pub id: u64,
    /// The last releasing thread.
    pub last_tid: Tid,
    /// Its vector time at the release (stored components, exact).
    pub last_time: Vec<u64>,
}

/// One size-classed free list of a thread heap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptFreeList {
    /// The size class (log2 of the block size).
    pub class: u32,
    /// Free block addresses in LIFO order (order is allocation-visible:
    /// the next alloc of this class pops the back).
    pub addrs: Vec<u64>,
}

/// A thread heap's allocator state at the cut.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CkptHeap {
    /// The bump cursor.
    pub cursor: u64,
    /// Total live allocated bytes (stats only).
    pub allocated_bytes: u64,
    /// Per-class free lists, ascending class.
    pub free: Vec<CkptFreeList>,
    /// Live blocks as `(addr, class)`, ascending addr.
    pub live: Vec<(u64, u32)>,
}

/// One materialized page of a thread's private space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptPage {
    /// Page index within the space.
    pub index: u64,
    /// The full page contents (`config.page_size` bytes).
    pub data: Vec<u8>,
}

/// One thread's deterministic state at the cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptThread {
    /// The thread id.
    pub tid: Tid,
    /// `false` for threads that had already exited: only `output` (and
    /// the implied join-table entry) carries information for them.
    pub alive: bool,
    /// The Kendo logical clock (0 for dead threads).
    pub clock: u64,
    /// The vector clock, stored components exact.
    pub vc: Vec<u64>,
    /// Slices published so far.
    pub slice_seq: u64,
    /// Sync ops performed so far (the `FaultPlan` coordinate — restoring
    /// it is what keeps pre-cut faults from re-firing).
    pub sync_ops: u64,
    /// Allocations performed so far (`FaultPlan::fail_alloc` coordinate).
    pub allocs: u64,
    /// Bytes emitted so far.
    pub output: Vec<u8>,
    /// Heap allocator state (empty default for dead threads).
    pub heap: CkptHeap,
    /// Every materialized page, ascending index. The exact set matters:
    /// restore re-materializes precisely these pages so the next
    /// checkpoint's page list is byte-identical.
    pub pages: Vec<CkptPage>,
}

/// A consistent cut of one deterministic run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// The eligible-episode counter value at capture (1-based; the Nth
    /// eligible full-membership barrier episode).
    pub epoch: u64,
    /// Recording backend name.
    pub backend: String,
    /// Workload label (resume resolves restartable bodies by this name).
    pub workload: String,
    /// The jitter seed.
    pub seed: Option<u64>,
    /// The determinism-relevant configuration.
    pub config: TraceConfig,
    /// The barrier episode's merged upper limit, stored components exact.
    pub upper: Vec<u64>,
    /// Every sync var with a recorded release, sorted by `(class, id)`.
    pub sync_vars: Vec<CkptSyncVar>,
    /// Tids that had exited before the cut, ascending.
    pub finished: Vec<Tid>,
    /// Per-thread state, ascending tid, one entry per registered tid.
    pub threads: Vec<CkptThread>,
}

impl Checkpoint {
    /// A stable identity for the *run* this checkpoint belongs to: the
    /// FNV of the schedule-determining inputs (backend, workload, seed,
    /// config). Checkpoints of the same logical run — including a crashed
    /// attempt and its re-record — share a key, which is how crash
    /// recovery finds "the latest checkpoint of this run" on disk
    /// without knowing the (yet-unwritten) trace digest.
    #[must_use]
    pub fn run_key(&self) -> u64 {
        let mut w = Writer { buf: Vec::new() };
        w.str(&self.backend);
        w.str(&self.workload);
        w.opt_u64(self.seed);
        write_config(&mut w, &self.config);
        fnv(&w.buf)
    }

    /// FNV digest of the encoded checkpoint — the shard-verification
    /// token: a replayed shard's terminal checkpoint must reproduce the
    /// recorded one's digest exactly.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv(&self.encode())
    }

    /// Serializes the checkpoint (see the module docs for the layout).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&CKPT_MAGIC);
        w.u32(CKPT_VERSION);
        w.u64(self.epoch);
        w.str(&self.backend);
        w.str(&self.workload);
        w.opt_u64(self.seed);
        write_config(&mut w, &self.config);
        w.u64(self.upper.len() as u64);
        for &c in &self.upper {
            w.u64(c);
        }
        w.u64(self.sync_vars.len() as u64);
        for v in &self.sync_vars {
            w.u8(v.class);
            w.u64(v.id);
            w.u32(v.last_tid);
            w.u64(v.last_time.len() as u64);
            for &c in &v.last_time {
                w.u64(c);
            }
        }
        w.u64(self.finished.len() as u64);
        for &t in &self.finished {
            w.u32(t);
        }
        w.u64(self.threads.len() as u64);
        for t in &self.threads {
            w.u32(t.tid);
            w.boolean(t.alive);
            w.u64(t.clock);
            w.u64(t.vc.len() as u64);
            for &c in &t.vc {
                w.u64(c);
            }
            w.u64(t.slice_seq);
            w.u64(t.sync_ops);
            w.u64(t.allocs);
            w.bytes(&t.output);
            w.u64(t.heap.cursor);
            w.u64(t.heap.allocated_bytes);
            w.u64(t.heap.free.len() as u64);
            for fl in &t.heap.free {
                w.u32(fl.class);
                w.u64(fl.addrs.len() as u64);
                for &a in &fl.addrs {
                    w.u64(a);
                }
            }
            w.u64(t.heap.live.len() as u64);
            for &(addr, class) in &t.heap.live {
                w.u64(addr);
                w.u32(class);
            }
            w.u64(t.pages.len() as u64);
            for p in &t.pages {
                w.u64(p.index);
                w.bytes(&p.data);
            }
        }
        let checksum = fnv(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Decodes a buffer produced by [`Checkpoint::encode`].
    ///
    /// # Errors
    /// Returns a [`TraceError`] for any malformed input: wrong magic or
    /// version, truncation, checksum mismatch, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < CKPT_MAGIC.len() + 4 + 8 {
            return Err(
                if bytes.starts_with(&CKPT_MAGIC) || CKPT_MAGIC.starts_with(bytes) {
                    TraceError::Truncated
                } else {
                    TraceError::BadMagic
                },
            );
        }
        if bytes[..4] != CKPT_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 8];
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bytes[bytes.len() - 8..]);
        if fnv(body) != u64::from_le_bytes(tail) {
            return Err(TraceError::BadChecksum);
        }
        let mut r = Reader { buf: body, pos: 4 };
        let version = r.u32()?;
        if version != CKPT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let epoch = r.u64()?;
        let backend = r.str()?;
        let workload = r.str()?;
        let seed = r.opt_u64()?;
        let config = read_config(&mut r)?;
        let n_upper = r.list_len(8)?;
        let mut upper = Vec::with_capacity(n_upper);
        for _ in 0..n_upper {
            upper.push(r.u64()?);
        }
        let n_vars = r.list_len(21)?;
        let mut sync_vars = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            let class = r.u8()?;
            let id = r.u64()?;
            let last_tid = r.u32()?;
            let n = r.list_len(8)?;
            let mut last_time = Vec::with_capacity(n);
            for _ in 0..n {
                last_time.push(r.u64()?);
            }
            sync_vars.push(CkptSyncVar {
                class,
                id,
                last_tid,
                last_time,
            });
        }
        let n_fin = r.list_len(4)?;
        let mut finished = Vec::with_capacity(n_fin);
        for _ in 0..n_fin {
            finished.push(r.u32()?);
        }
        let n_threads = r.list_len(8)?;
        let mut threads = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let tid = r.u32()?;
            let alive = r.boolean()?;
            let clock = r.u64()?;
            let n = r.list_len(8)?;
            let mut vc = Vec::with_capacity(n);
            for _ in 0..n {
                vc.push(r.u64()?);
            }
            let slice_seq = r.u64()?;
            let sync_ops = r.u64()?;
            let allocs = r.u64()?;
            let output = r.bytes()?;
            let cursor = r.u64()?;
            let allocated_bytes = r.u64()?;
            let n_free = r.list_len(12)?;
            let mut free = Vec::with_capacity(n_free);
            for _ in 0..n_free {
                let class = r.u32()?;
                let n = r.list_len(8)?;
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    addrs.push(r.u64()?);
                }
                free.push(CkptFreeList { class, addrs });
            }
            let n_live = r.list_len(12)?;
            let mut live = Vec::with_capacity(n_live);
            for _ in 0..n_live {
                let addr = r.u64()?;
                let class = r.u32()?;
                live.push((addr, class));
            }
            let n_pages = r.list_len(16)?;
            let mut pages = Vec::with_capacity(n_pages);
            for _ in 0..n_pages {
                let index = r.u64()?;
                let data = r.bytes()?;
                pages.push(CkptPage { index, data });
            }
            threads.push(CkptThread {
                tid,
                alive,
                clock,
                vc,
                slice_seq,
                sync_ops,
                allocs,
                output,
                heap: CkptHeap {
                    cursor,
                    allocated_bytes,
                    free,
                    live,
                },
                pages,
            });
        }
        if r.pos != body.len() {
            return Err(TraceError::TrailingBytes);
        }
        Ok(Checkpoint {
            epoch,
            backend,
            workload,
            seed,
            config,
            upper,
            sync_vars,
            finished,
            threads,
        })
    }

    /// A short human-readable summary line.
    #[must_use]
    pub fn summary(&self) -> String {
        let live = self.threads.iter().filter(|t| t.alive).count();
        let pages: usize = self.threads.iter().map(|t| t.pages.len()).sum();
        format!(
            "checkpoint: epoch={} workload={:?} threads={} ({live} live) pages={pages} digest={:#018x}",
            self.epoch,
            self.workload,
            self.threads.len(),
            self.digest(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_config;

    pub(crate) fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 3,
            backend: "RFDet-ci".into(),
            workload: "chaos.long_haul@4".into(),
            seed: Some(7),
            config: test_config(),
            upper: vec![10, 22, 0, 31],
            sync_vars: vec![
                CkptSyncVar {
                    class: sync_class::MUTEX,
                    id: 0,
                    last_tid: 2,
                    last_time: vec![4, 9],
                },
                CkptSyncVar {
                    class: sync_class::BARRIER,
                    id: 1,
                    last_tid: 3,
                    last_time: vec![10, 22, 0, 31],
                },
            ],
            finished: vec![1],
            threads: vec![
                CkptThread {
                    tid: 0,
                    alive: true,
                    clock: 812,
                    vc: vec![10, 22, 0, 31],
                    slice_seq: 12,
                    sync_ops: 40,
                    allocs: 3,
                    output: b"partial".to_vec(),
                    heap: CkptHeap {
                        cursor: 0x1000,
                        allocated_bytes: 256,
                        free: vec![CkptFreeList {
                            class: 6,
                            addrs: vec![0x40, 0x80],
                        }],
                        live: vec![(0x100, 8)],
                    },
                    pages: vec![CkptPage {
                        index: 2,
                        data: vec![0xAB; 64],
                    }],
                },
                CkptThread {
                    tid: 1,
                    alive: false,
                    clock: 0,
                    vc: vec![],
                    slice_seq: 0,
                    sync_ops: 0,
                    allocs: 0,
                    output: b"done".to_vec(),
                    heap: CkptHeap::default(),
                    pages: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let c = sample();
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let c = sample();
        assert_eq!(c.digest(), sample().digest());
        let mut d = sample();
        d.threads[0].clock += 1;
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn run_key_ignores_epoch_and_state() {
        let a = sample();
        let mut b = sample();
        b.epoch = 99;
        b.threads.clear();
        b.upper.clear();
        assert_eq!(a.run_key(), b.run_key(), "same run inputs, same key");
        let mut c = sample();
        c.seed = Some(8);
        assert_ne!(a.run_key(), c.run_key(), "different seed, different run");
    }

    #[test]
    fn rejects_bad_magic_and_trace_magic() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(Checkpoint::decode(&bytes), Err(TraceError::BadMagic));
        // A RunTrace buffer must not decode as a checkpoint.
        let mut t = bytes.clone();
        t[..4].copy_from_slice(b"RFDT");
        assert_eq!(Checkpoint::decode(&t), Err(TraceError::BadMagic));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = sample().encode();
        bytes[4] = 99;
        let body_len = bytes.len() - 8;
        let sum = fnv(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn rejects_every_truncation_point() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..len]).is_err(),
                "decode accepted a {len}-byte prefix of a {}-byte checkpoint",
                bytes.len()
            );
        }
    }

    #[test]
    fn rejects_single_bit_flips() {
        let bytes = sample().encode();
        for i in [5, 20, bytes.len() / 2, bytes.len() - 9] {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(
                Checkpoint::decode(&b).is_err(),
                "decode accepted a bit flip at byte {i}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().encode();
        bytes.extend_from_slice(b"junk");
        assert!(Checkpoint::decode(&bytes).is_err());
    }
}
