//! Event collection: per-thread buffers draining into a shared sink.
//!
//! The recording hot path must cost one branch when disabled and one
//! `Vec::push` when enabled, so events buffer thread-locally in a
//! [`TraceBuf`] and flush to the run-wide [`TraceSink`] in bulk — on
//! drop, which also covers panic unwinds (the whole point of a flight
//! recorder is surviving the crash). Kendo wake taps push straight into
//! the sink; they fire inside serialized turns, so the sink mutex is
//! effectively uncontended.

use crate::TraceEvent;
use std::sync::{Arc, Mutex, MutexGuard};

/// Run-wide event store shared by every thread's [`TraceBuf`].
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

/// A poisoned sink mutex only means some unrelated panic unwound past a
/// guard; the event data itself is append-only and stays coherent.
fn lock(m: &Mutex<Vec<TraceEvent>>) -> MutexGuard<'_, Vec<TraceEvent>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl TraceSink {
    /// Pushes one event directly (used by wake taps).
    pub fn push(&self, e: TraceEvent) {
        lock(&self.events).push(e);
    }

    /// Moves a buffer's events into the sink.
    pub fn append(&self, buf: &mut Vec<TraceEvent>) {
        lock(&self.events).append(buf);
    }

    /// Takes every event collected so far, sorted by
    /// [`TraceEvent::sort_key`] — a deterministic order for a
    /// deterministic event multiset, independent of flush timing.
    #[must_use]
    pub fn drain_sorted(&self) -> Vec<TraceEvent> {
        let mut events = std::mem::take(&mut *lock(&self.events));
        events.sort_unstable_by_key(TraceEvent::sort_key);
        events
    }
}

/// A thread's private event buffer; flushes to the sink on drop (normal
/// exit and panic unwind alike).
#[derive(Debug)]
pub struct TraceBuf {
    buf: Vec<TraceEvent>,
    sink: Arc<TraceSink>,
}

impl TraceBuf {
    /// A new buffer draining into `sink`.
    #[must_use]
    pub fn new(sink: Arc<TraceSink>) -> Self {
        Self {
            buf: Vec::new(),
            sink,
        }
    }

    /// Records one event (thread-local, no locking).
    #[inline]
    pub fn push(&mut self, e: TraceEvent) {
        self.buf.push(e);
    }

    /// Flushes buffered events to the sink early (drop does this too).
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.sink.append(&mut self.buf);
        }
    }
}

impl Drop for TraceBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op;

    fn ev(tid: u32, op_idx: u64, clock: u64) -> TraceEvent {
        TraceEvent {
            tid,
            op: op_idx,
            kind: op::LOCK,
            arg: None,
            clock,
        }
    }

    #[test]
    fn buffers_flush_on_drop_and_drain_sorts() {
        let sink = Arc::new(TraceSink::default());
        {
            let mut b1 = TraceBuf::new(Arc::clone(&sink));
            let mut b0 = TraceBuf::new(Arc::clone(&sink));
            b1.push(ev(1, 1, 20));
            b1.push(ev(1, 0, 10));
            b0.push(ev(0, 0, 5));
        }
        let events = sink.drain_sorted();
        assert_eq!(
            events,
            vec![ev(0, 0, 5), ev(1, 0, 10), ev(1, 1, 20)],
            "sorted by (tid, clock, op) regardless of flush order"
        );
        assert!(sink.drain_sorted().is_empty(), "drain empties the sink");
    }

    #[test]
    fn buffers_flush_during_panic_unwind() {
        let sink = Arc::new(TraceSink::default());
        let s2 = Arc::clone(&sink);
        let result = std::panic::catch_unwind(move || {
            let mut b = TraceBuf::new(s2);
            b.push(ev(3, 0, 0));
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(sink.drain_sorted().len(), 1, "event survived the unwind");
    }

    #[test]
    fn direct_push_interleaves_with_buffers() {
        let sink = Arc::new(TraceSink::default());
        sink.push(TraceEvent {
            tid: 1,
            op: u64::MAX,
            kind: op::WAKE,
            arg: None,
            clock: 15,
        });
        let mut b = TraceBuf::new(Arc::clone(&sink));
        b.push(ev(1, 0, 15));
        b.flush();
        let events = sink.drain_sorted();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, op::LOCK, "sync op before same-clock wake");
        assert_eq!(events[1].kind, op::WAKE);
    }
}
