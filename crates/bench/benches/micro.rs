//! Criterion micro-benchmarks of the runtime's building blocks: the
//! costs Figure 7 decomposes into (store instrumentation, page
//! snapshot + diff, propagation filtering, Kendo arbitration).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rfdet_mem::{diff, PrivateSpace};
use rfdet_meta::{MetaSpace, SliceRec};
use rfdet_vclock::VClock;
use std::hint::black_box;

fn bench_vclock(c: &mut Criterion) {
    let a = VClock::from_components(vec![5, 3, 9, 1, 7, 2, 8, 4]);
    let b = VClock::from_components(vec![6, 3, 9, 2, 7, 2, 8, 4]);
    c.bench_function("vclock/leq", |bench| {
        bench.iter(|| black_box(black_box(&a).leq(black_box(&b))))
    });
    c.bench_function("vclock/join", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.join(black_box(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_space(c: &mut Criterion) {
    c.bench_function("space/write_u64", |bench| {
        let mut s = PrivateSpace::new(1 << 20, 4096);
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 8) % (1 << 16);
            s.write(i, &7u64.to_le_bytes());
        })
    });
    c.bench_function("space/read_u64", |bench| {
        let mut s = PrivateSpace::new(1 << 20, 4096);
        s.write(0, &[1u8; 4096]);
        let mut buf = [0u8; 8];
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 8) % 4096;
            s.read(i, &mut buf);
            black_box(buf);
        })
    });
    c.bench_function("space/fork_cow", |bench| {
        let mut s = PrivateSpace::new(1 << 20, 4096);
        for p in 0..64u64 {
            s.write(p * 4096, &[1u8]);
        }
        bench.iter(|| black_box(s.fork()))
    });
}

fn bench_diff(c: &mut Criterion) {
    // The chunked/scalar pairs are the A/B evidence for the word-at-a-time
    // kernel: same inputs, same output run lists (pinned by the
    // differential proptests), different scan loop.
    let snapshot = vec![0u8; 4096];
    let mut sparse = snapshot.clone();
    for i in (0..4096).step_by(512) {
        sparse[i] = 1;
    }
    let dense: Vec<u8> = (0..4096).map(|i| (i % 251) as u8 + 1).collect();
    let cases = [
        ("sparse", &sparse),
        ("dense", &dense),
        ("identical", &snapshot),
    ];
    for (name, current) in cases {
        c.bench_function(format!("diff/page_{name}"), |bench| {
            bench.iter(|| {
                let mut out = Vec::new();
                diff::diff_page(0, black_box(&snapshot), black_box(current), &mut out);
                black_box(out)
            })
        });
        c.bench_function(format!("diff/page_{name}_scalar"), |bench| {
            bench.iter(|| {
                let mut out = Vec::new();
                diff::diff_page_scalar(0, black_box(&snapshot), black_box(current), &mut out);
                black_box(out)
            })
        });
    }
    // Fragmented page: short runs separated by short gaps — the shape gap
    // coalescing exists for.
    let mut frag = snapshot.clone();
    for i in (0..4096).step_by(24) {
        frag[i..i + 8].copy_from_slice(&[7u8; 8]);
    }
    c.bench_function("diff/page_fragmented", |bench| {
        bench.iter(|| {
            let mut out = Vec::new();
            diff::diff_page(0, black_box(&snapshot), black_box(&frag), &mut out);
            black_box(out)
        })
    });
    c.bench_function("diff/page_fragmented_coalesce32", |bench| {
        bench.iter(|| {
            let mut out = Vec::new();
            diff::diff_page_opts(0, black_box(&snapshot), black_box(&frag), 32, &mut out);
            black_box(out)
        })
    });
}

fn bench_meta(c: &mut Criterion) {
    c.bench_function("meta/publish_slice", |bench| {
        let meta = MetaSpace::new(1 << 30, 0.9);
        meta.register_thread();
        let mut seq = 0u64;
        bench.iter(|| {
            seq += 1;
            let rec = SliceRec::new(
                0,
                seq,
                VClock::from_components(vec![seq]),
                vec![rfdet_mem::ModRun::new(0, vec![1, 2, 3, 4].into())],
            );
            black_box(meta.publish_slice(rec))
        })
    });
    c.bench_function("meta/propagation_cursor_1000", |bench| {
        // Same 1000-slice list, but scanned the way the runtime does:
        // from a cursor with prefix-closed early exit — this is why
        // propagation is O(new slices) instead of O(list).
        let meta = MetaSpace::new(1 << 30, 0.9);
        meta.register_thread();
        for seq in 0..1000u64 {
            let rec = SliceRec::new(0, seq, VClock::from_components(vec![seq + 1]), vec![]);
            meta.publish_slice(rec);
        }
        let upper = VClock::from_components(vec![805]);
        let lower = VClock::from_components(vec![800]);
        bench.iter(|| {
            let (batch, _, cursor) =
                meta.filter_list_from(0, black_box(&upper), black_box(&lower), 800, true);
            black_box((batch, cursor))
        })
    });
    c.bench_function("meta/propagation_filter_1000", |bench| {
        // Filtering cost over a 1000-slice list (the Figure-5 loop body).
        let meta = MetaSpace::new(1 << 30, 0.9);
        meta.register_thread();
        for seq in 0..1000u64 {
            let rec = SliceRec::new(
                0,
                seq,
                VClock::from_components(vec![seq + 1, seq / 2]),
                vec![],
            );
            meta.publish_slice(rec);
        }
        let upper = VClock::from_components(vec![800, 400]);
        let lower = VClock::from_components(vec![300, 150]);
        bench.iter(|| {
            let list = meta.snapshot_list(0);
            let picked: usize = list
                .iter()
                .filter(|s| s.time.leq(&upper) && !s.time.leq(&lower))
                .count();
            black_box(picked)
        })
    });
}

fn bench_kendo(c: &mut Criterion) {
    c.bench_function("kendo/tick", |bench| {
        let k = rfdet_kendo::KendoState::new();
        let h = k.register(0);
        bench.iter(|| h.tick(1))
    });
    c.bench_function("kendo/uncontended_turn", |bench| {
        let k = rfdet_kendo::KendoState::new();
        let h = k.register(0);
        bench.iter(|| {
            k.wait_for_turn(&h);
            h.tick(1);
        })
    });
}

fn bench_sync_ops(c: &mut Criterion) {
    use rfdet_api::{AtomicOp, DmtBackend, DmtCtx, MutexId, RunConfig};
    // End-to-end cost of one uncontended deterministic sync op (the unit
    // the Figure-7 overheads are made of). Measured by running a fixed
    // batch inside one RFDet instance per iteration.
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    c.bench_function("rfdet/1000_uncontended_lock_unlock", |bench| {
        bench.iter(|| {
            rfdet_core::RfdetBackend::ci().run(
                &cfg,
                Box::new(|ctx: &mut dyn DmtCtx| {
                    for _ in 0..1000 {
                        ctx.lock(MutexId(1));
                        ctx.unlock(MutexId(1));
                    }
                }),
            )
        })
    });
    c.bench_function("rfdet/1000_atomic_fetch_add", |bench| {
        bench.iter(|| {
            rfdet_core::RfdetBackend::ci().run(
                &cfg,
                Box::new(|ctx: &mut dyn DmtCtx| {
                    for _ in 0..1000 {
                        ctx.atomic_rmw(4096, AtomicOp::Add(1));
                    }
                }),
            )
        })
    });
}

fn bench_contended_sync(c: &mut Criterion) {
    use rfdet_api::{AtomicOp, DmtBackend, DmtCtx, MutexId, RunConfig};
    // The de-contention benchmarks: 4 threads hammering the sync-op hot
    // path. Per-thread-distinct objects isolate the runtime's own shared
    // structures (sync-var table, queue locks, registries) — the paper's
    // point is that independent sync objects must not serialize on
    // runtime-internal state. The shared-object variants add the
    // propagation work on top.
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    const THREADS: u64 = 4;
    const OPS: u64 = 250;
    let spawn_workers = |ctx: &mut dyn DmtCtx, body: fn(&mut dyn DmtCtx, u64)| {
        let hs: Vec<_> = (0..THREADS)
            .map(|i| ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| body(ctx, i))))
            .collect();
        for h in hs {
            ctx.join(h);
        }
    };
    c.bench_function("rfdet/4t_atomics_distinct_cells", |bench| {
        bench.iter(|| {
            rfdet_core::RfdetBackend::ci().run(
                &cfg,
                Box::new(move |ctx: &mut dyn DmtCtx| {
                    spawn_workers(ctx, |ctx, i| {
                        for _ in 0..OPS {
                            ctx.atomic_rmw(4096 + i * 64, AtomicOp::Add(1));
                        }
                    });
                }),
            )
        })
    });
    c.bench_function("rfdet/4t_atomics_shared_cell", |bench| {
        bench.iter(|| {
            rfdet_core::RfdetBackend::ci().run(
                &cfg,
                Box::new(move |ctx: &mut dyn DmtCtx| {
                    spawn_workers(ctx, |ctx, _| {
                        for _ in 0..OPS {
                            ctx.atomic_rmw(4096, AtomicOp::Add(1));
                        }
                    });
                }),
            )
        })
    });
    c.bench_function("rfdet/4t_locks_distinct_mutexes", |bench| {
        bench.iter(|| {
            rfdet_core::RfdetBackend::ci().run(
                &cfg,
                Box::new(move |ctx: &mut dyn DmtCtx| {
                    spawn_workers(ctx, |ctx, i| {
                        #[allow(clippy::cast_possible_truncation)]
                        let m = MutexId(i as u32);
                        for _ in 0..OPS {
                            ctx.lock(m);
                            ctx.unlock(m);
                        }
                    });
                }),
            )
        })
    });
    c.bench_function("rfdet/4t_locks_shared_mutex", |bench| {
        bench.iter(|| {
            rfdet_core::RfdetBackend::ci().run(
                &cfg,
                Box::new(move |ctx: &mut dyn DmtCtx| {
                    spawn_workers(ctx, |ctx, _| {
                        for _ in 0..OPS {
                            ctx.lock(MutexId(0));
                            ctx.unlock(MutexId(0));
                        }
                    });
                }),
            )
        })
    });
}

fn bench_propagation_heavy(c: &mut Criterion) {
    use rfdet_api::{DmtBackend, DmtCtx, DmtCtxExt, MutexId, RunConfig};
    // Propagate-heavy workload: 4 threads pass one lock around while every
    // slice dirties several pages, so each acquire pulls the other
    // threads' run lists through apply_slice. This is the end-to-end
    // surface for zero-copy propagation (eager: batched apply_runs; lazy:
    // pending RunHandles, no deep copies).
    const THREADS: u64 = 4;
    const OPS: u64 = 100;
    for lazy in [false, true] {
        let mut cfg = RunConfig::small();
        cfg.rfdet.fault_cost_spins = 0;
        cfg.rfdet.lazy_writes = lazy;
        let id = if lazy {
            "rfdet/4t_propagate_heavy_lazy"
        } else {
            "rfdet/4t_propagate_heavy_eager"
        };
        c.bench_function(id, |bench| {
            bench.iter(|| {
                rfdet_core::RfdetBackend::ci().run(
                    &cfg,
                    Box::new(move |ctx: &mut dyn DmtCtx| {
                        let hs: Vec<_> = (0..THREADS)
                            .map(|i| {
                                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                                    for k in 0..OPS {
                                        ctx.lock(MutexId(0));
                                        for p in 0..4u64 {
                                            ctx.write(8192 + p * 4096 + 8 * i, k + 1);
                                        }
                                        ctx.unlock(MutexId(0));
                                    }
                                }))
                            })
                            .collect();
                        for h in hs {
                            ctx.join(h);
                        }
                    }),
                )
            })
        });
    }
}

criterion_group!(
    benches,
    bench_vclock,
    bench_space,
    bench_diff,
    bench_meta,
    bench_kendo,
    bench_sync_ops,
    bench_contended_sync,
    bench_propagation_heavy
);
criterion_main!(benches);
