//! Criterion end-to-end benchmarks: representative applications on each
//! backend at test scale (fast enough for criterion's sampling). The
//! full paper-scale sweeps live in the `fig7`/`fig8`/`fig9` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfdet_api::{DmtBackend, RunConfig};
use rfdet_core::RfdetBackend;
use rfdet_dthreads::DthreadsBackend;
use rfdet_native::NativeBackend;
use rfdet_quantum::QuantumBackend;
use rfdet_workloads::{by_name, Params, Size};

fn cfg() -> RunConfig {
    let mut c = RunConfig::small();
    c.space_bytes = 4 << 20;
    c
}

fn backends() -> Vec<Box<dyn DmtBackend>> {
    vec![
        Box::new(NativeBackend),
        Box::new(RfdetBackend::ci()),
        Box::new(RfdetBackend::pf()),
        Box::new(DthreadsBackend),
        Box::new(QuantumBackend),
    ]
}

fn bench_apps(c: &mut Criterion) {
    // One sync-light and one sync-heavy representative per suite.
    for app in ["fft", "ocean", "linear_regression", "racey"] {
        let w = by_name(app).expect("workload registered");
        let mut group = c.benchmark_group(format!("app/{app}"));
        group.sample_size(10);
        for backend in backends() {
            group.bench_function(BenchmarkId::from_parameter(backend.name()), |bench| {
                bench.iter(|| backend.run(&cfg(), (w.factory)(Params::new(2, Size::Test))))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
