//! Experiment harness shared by the `fig7`/`fig8`/`fig9`/`table1`/
//! `racey_det`/`ablation_barriers` binaries (one per paper table/figure —
//! see DESIGN.md §5 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rfdet_api::{DmtBackend, RunConfig, RunOutput};
use rfdet_workloads::{Params, Size, Workload};
use std::time::{Duration, Instant};

/// Command-line options shared by the experiment binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Worker thread count (paper default: 4).
    pub threads: usize,
    /// Timed repetitions per cell (mean is reported).
    pub reps: u32,
    /// Input scale.
    pub size: Size,
    /// Run only workloads whose name contains this substring.
    pub filter: Option<String>,
    /// Repetition count for determinism checks.
    pub runs: u32,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            threads: 4,
            reps: 3,
            size: Size::Bench,
            filter: None,
            runs: 30,
        }
    }
}

impl BenchOpts {
    /// Parses `--threads N --reps N --runs N --size test|bench
    /// --filter S --quick` from `std::env::args`.
    #[must_use]
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--threads" => {
                    opts.threads = args[i + 1].parse().expect("--threads N");
                    i += 2;
                }
                "--reps" => {
                    opts.reps = args[i + 1].parse().expect("--reps N");
                    i += 2;
                }
                "--runs" => {
                    opts.runs = args[i + 1].parse().expect("--runs N");
                    i += 2;
                }
                "--size" => {
                    opts.size = match args[i + 1].as_str() {
                        "test" => Size::Test,
                        "bench" => Size::Bench,
                        other => panic!("unknown size {other}"),
                    };
                    i += 2;
                }
                "--filter" => {
                    opts.filter = Some(args[i + 1].clone());
                    i += 2;
                }
                "--quick" => {
                    opts.reps = 1;
                    opts.runs = 5;
                    opts.size = Size::Test;
                    i += 1;
                }
                other => panic!("unknown argument {other} (see --threads/--reps/--runs/--size/--filter/--quick)"),
            }
        }
        opts
    }

    /// Applies the workload filter.
    #[must_use]
    pub fn selected(&self, all: Vec<Workload>) -> Vec<Workload> {
        match &self.filter {
            None => all,
            Some(f) => all
                .into_iter()
                .filter(|w| w.name.contains(f.as_str()))
                .collect(),
        }
    }
}

/// The standard experiment configuration (16 MiB space, paper-like
/// 256 MiB metadata cap).
#[must_use]
pub fn bench_config() -> RunConfig {
    RunConfig::default()
}

/// Times `reps` runs of a workload on a backend; returns the mean wall
/// time and the last run's output (for stats and checksums).
pub fn time_workload(
    backend: &dyn DmtBackend,
    cfg: &RunConfig,
    w: &Workload,
    params: Params,
    reps: u32,
) -> (Duration, RunOutput) {
    assert!(reps > 0);
    let mut total = Duration::ZERO;
    let mut last = RunOutput::default();
    for _ in 0..reps {
        let start = Instant::now();
        last = backend.run_expect(cfg, (w.factory)(params));
        total += start.elapsed();
    }
    (total / reps, last)
}

/// Geometric mean of a nonempty slice of positive ratios.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Renders an aligned text table.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a duration as fractional milliseconds.
#[must_use]
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    fn default_opts_match_paper() {
        let o = BenchOpts::default();
        assert_eq!(o.threads, 4);
        assert_eq!(o.size, Size::Bench);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }
}
