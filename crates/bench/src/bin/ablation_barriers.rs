//! Figure 1 / §3.1 ablation: the cost of global barriers.
//!
//! The scenario from the paper: threads T1 and T3 repeatedly acquire the
//! same lock while T2 only computes. Under DLRC, T1/T3 arbitrate through
//! Kendo and finish on their own schedule; under DThreads neither can
//! acquire the lock "until T2 reaches some synchronization operation,
//! which may be far in the future"; under quantum designs everybody
//! fences every quantum.
//!
//! We measure (a) the wall time until the two lock threads are joined
//! (the serialization the paper describes — visible even on one CPU,
//! because in DThreads T1's *first* lock cannot complete before T2's
//! exit) and (b) the structural counters.

use parking_lot::Mutex;
use rfdet_api::{DmtBackend, DmtCtx, DmtCtxExt, MutexId};
use rfdet_bench::{bench_config, ms, render_table, BenchOpts};
use rfdet_core::RfdetBackend;
use rfdet_dthreads::DthreadsBackend;
use rfdet_native::NativeBackend;
use rfdet_quantum::QuantumBackend;
use std::sync::Arc;
use std::time::{Duration, Instant};

const LOCK_ITERS: u64 = 300;
const COMPUTE_ITERS: u64 = 400_000_000;

/// Builds the scenario root; stores the elapsed time until both lock
/// threads were joined into `lockers_done`.
fn scenario(lockers_done: Arc<Mutex<Option<Duration>>>, start: Instant) -> rfdet_api::ThreadFn {
    Box::new(move |ctx: &mut dyn DmtCtx| {
        let m = MutexId(7);
        let t1 = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            for _ in 0..LOCK_ITERS {
                ctx.lock(m);
                ctx.update::<u64>(64, |v| v + 1);
                ctx.unlock(m);
            }
        }));
        let t2 = ctx.spawn(Box::new(|ctx: &mut dyn DmtCtx| {
            let mut acc = 1u64;
            for i in 0..COMPUTE_ITERS {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                if i % 64 == 0 {
                    ctx.tick(64);
                }
            }
            ctx.write(128, acc);
        }));
        let t3 = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            for _ in 0..LOCK_ITERS {
                ctx.lock(m);
                ctx.update::<u64>(64, |v| v + 1);
                ctx.unlock(m);
            }
        }));
        ctx.join(t1);
        ctx.join(t3);
        *lockers_done.lock() = Some(start.elapsed());
        ctx.join(t2);
        let v: u64 = ctx.read(64);
        ctx.emit_str(&format!("locks={v}"));
    })
}

fn main() {
    let _opts = BenchOpts::from_args();
    let cfg = bench_config();
    // RFDet appears twice: handoff arbitration (default) and the
    // broadcast-spin foil, so the §3.1 shape is checked under both.
    let mut spin_cfg = bench_config();
    spin_cfg.spin_arbitration = true;
    let backends: Vec<(Box<dyn DmtBackend>, &rfdet_api::RunConfig, &str)> = vec![
        (Box::new(NativeBackend), &cfg, ""),
        (Box::new(RfdetBackend::ci()), &cfg, ""),
        (Box::new(RfdetBackend::ci()), &spin_cfg, " (spin)"),
        (Box::new(DthreadsBackend), &cfg, ""),
        (Box::new(QuantumBackend), &cfg, ""),
    ];
    println!(
        "Barrier-cost ablation (paper §3.1): 2 lock threads ({LOCK_ITERS} \
         acquisitions each) + 1 compute thread\n"
    );
    let mut rows = Vec::new();
    for (b, cfg, suffix) in &backends {
        let done = Arc::new(Mutex::new(None));
        let start = Instant::now();
        let out = b.run_expect(cfg, scenario(Arc::clone(&done), start));
        let total = start.elapsed();
        let lockers = done.lock().expect("scenario records locker time");
        assert_eq!(out.output, format!("locks={}", 2 * LOCK_ITERS).as_bytes());
        rows.push(vec![
            format!("{}{suffix}", b.name()),
            ms(lockers),
            ms(total),
            format!(
                "{:.0}%",
                100.0 * lockers.as_secs_f64() / total.as_secs_f64()
            ),
            out.stats.global_fences.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "backend",
                "lockers done (ms)",
                "total (ms)",
                "lockers/total",
                "global fences",
            ],
            &rows
        )
    );
    println!(
        "\nexpected shape: under RFDet the lock threads finish long before the\n\
         compute thread (small lockers/total, zero fences); under DThreads the\n\
         first lock acquisition already waits for the compute thread's only\n\
         synchronization point — its exit — so lockers/total ≈ 100%."
    );
}
