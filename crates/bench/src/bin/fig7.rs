//! Figure 7: execution time of all 16 applications at 4 threads,
//! normalized to pthreads, for RFDet-ci, RFDet-pf, DThreads (and,
//! beyond the paper, the CoreDet-style quantum backend).
//!
//! The paper's headline numbers on a 12-core Opteron: RFDet-ci 1.35×,
//! RFDet-pf 1.73×, DThreads ~2.5× (geometric aggregate), with worst
//! cases 2.6× (ocean) vs ~10× (lu-non). On a single-CPU host the
//! *parallel-overlap* component of RFDet's advantage cannot appear in
//! wall clock (see EXPERIMENTS.md); the table therefore also reports the
//! machine-independent structural counters: global fences (RFDet: always
//! zero) and serial commits.

use rfdet_api::DmtBackend;
use rfdet_bench::{bench_config, geomean, ms, render_table, time_workload, BenchOpts};
use rfdet_core::RfdetBackend;
use rfdet_dthreads::DthreadsBackend;
use rfdet_native::NativeBackend;
use rfdet_quantum::QuantumBackend;
use rfdet_workloads::{benchmarks, Params};

fn main() {
    let opts = BenchOpts::from_args();
    let cfg = bench_config();
    let backends: Vec<Box<dyn DmtBackend>> = vec![
        Box::new(RfdetBackend::ci()),
        Box::new(RfdetBackend::pf()),
        Box::new(DthreadsBackend),
        Box::new(QuantumBackend),
    ];
    println!(
        "Figure 7: normalized execution time vs pthreads ({} threads, {} reps, {:?} inputs)\n",
        opts.threads, opts.reps, opts.size
    );
    let mut rows = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); backends.len()];
    for w in opts.selected(benchmarks()) {
        let params = Params::new(opts.threads, opts.size);
        let (base_time, base_out) = time_workload(&NativeBackend, &cfg, &w, params, opts.reps);
        let mut row = vec![w.name.to_owned(), ms(base_time)];
        for (i, b) in backends.iter().enumerate() {
            let (t, out) = time_workload(b.as_ref(), &cfg, &w, params, opts.reps);
            let ratio = t.as_secs_f64() / base_time.as_secs_f64();
            ratios[i].push(ratio);
            let fences = out.stats.global_fences;
            row.push(format!("{ratio:.2}x"));
            if i == backends.len() - 1 {
                // Structural evidence columns from the last backend pass.
                row.push(fences.to_string());
            }
            // Sanity: deterministic backends must agree on results for
            // race-free programs.
            assert_eq!(
                out.output,
                base_out.output,
                "{} result mismatch on {}",
                w.name,
                b.name()
            );
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "pthreads(ms)",
                "RFDet-ci",
                "RFDet-pf",
                "DThreads",
                "CoreDet-q",
                "CoreDet fences",
            ],
            &rows
        )
    );
    println!("geometric-mean slowdown vs pthreads:");
    for (i, b) in backends.iter().enumerate() {
        println!("  {:<10} {:.2}x", b.name(), geomean(&ratios[i]));
    }
    let ci = geomean(&ratios[0]);
    let pf = geomean(&ratios[1]);
    println!(
        "\nshape checks: RFDet-ci {} RFDet-pf (paper: ci < pf) — {}",
        if ci < pf { "<" } else { ">=" },
        if ci < pf { "OK" } else { "MISMATCH" }
    );
}
