//! Flight-recorder CLI: record failing runs, replay persisted traces,
//! and shrink their fault plans to minimal repros.
//!
//! ```text
//! replay record <workload>[@threads] [--backend NAME] [--seed S]
//!               [--checkpoint-every N] [--ckpt-dir DIR] [--timeout MS]
//!               [--panic TID:OP]... [--jitter TID:OP:TICKS]...
//!               [--fail-alloc TID:NTH]...
//! replay replay <trace-file> [--timeout MS]
//! replay shrink <trace-file>
//! replay resume <ckpt-file> [--every N] [--timeout MS]
//! replay shard  <ckpt-file> [-j N] [--timeout MS]
//! replay failover <workload>[@threads] [--backend NAME] [--every N]
//!               [--ckpt-dir DIR] [--timeout MS] [--panic TID:OP]...
//!               [--fail-alloc TID:NTH]...
//! replay sweep <workload>[@threads] [--backend NAME] [--plans N]
//!              [--every N] [--timeout MS] [--out PATH]
//! replay metrics <workload>[@threads] [--backend NAME] [--format json|prom]
//! replay races <workload>[@threads] [--backend NAME] [--timeout MS]
//! ```
//!
//! `record` runs a workload with the recorder on; if the run fails the
//! trace is persisted (honouring `RFDET_TRACE_DIR`, default
//! `target/rfdet-traces/`) and the path printed as `TRACE <path>`. With
//! `--checkpoint-every N` the core backend also persists a consistent-cut
//! checkpoint every N eligible barrier episodes (DESIGN.md §4.11).
//! `replay` re-executes a persisted trace pinned to its recorded inputs
//! and exits non-zero unless the terminal digest (and, where recorded,
//! the culprit's schedule) reproduces. `shrink` delta-debugs the
//! recorded fault plan and writes the minimized trace beside the
//! original with a `.min` tag.
//!
//! `resume` restarts a run from one persisted checkpoint and lets it
//! finish — crash recovery. `shard` takes any checkpoint of a chain,
//! replays every inter-checkpoint window in parallel (`-j`), and proves
//! each shard's terminal checkpoint bit-identical to the recorded chain
//! — the serial replay runs too, for the wall-time comparison.
//!
//! `failover` runs the full crash-failover cycle (DESIGN.md §4.12):
//! an unfaulted reference replica, a faulted replica killed at the
//! given FaultPlan coordinate, restore from the last checkpoint, tail
//! replay, and a byte-identical convergence check — exit 0 only when
//! the recovered digest matches the reference. `sweep` enumerates a
//! whole fault-plan grid (panic/fail_alloc/jitter × thread × sync-op
//! strata), runs every plan under supervision, classifies each outcome
//! into {converged, recovered, diverged, wedged}, and writes a JSON
//! report (default under `results/`); diverged or wedged outcomes fail
//! the sweep.
//!
//! `metrics` runs a workload once with the deterministic-safe metrics
//! layer enabled and prints the phase rollup — `json` (default) for
//! tooling, `prom` for a Prometheus text-format scrape body.
//!
//! `races` runs a workload under the deterministic race detector
//! (DESIGN.md §4.13) and prints every typed report. The report text is
//! persisted as a sidecar beside the flight-recorder traces (honouring
//! `RFDET_TRACE_DIR`), and for the seeded corpus (`races.*`) the
//! worker-enable mask is ddmin-shrunk to a 1-minimal set of workers
//! that still reproduces the first race.
//!
//! Workloads resolve through `rfdet_workloads::by_name`; the `chaos.*`
//! scenarios exist specifically to fail on demand (and
//! `chaos.long_haul` specifically to checkpoint and resume).
//!
//! Exit codes are distinct per failure class so scripts can branch:
//! `0` success, `1` divergence (digest or schedule mismatch), `2` usage
//! or unsupported configuration, `3` file I/O or codec failure, `4`
//! wedged (the run blew its `--timeout`, or ended [`RunError::Wedged`]).

use rfdet_api::trace::Checkpoint;
use rfdet_api::{trace::persist, DmtBackend, FaultPlan, RunConfig, RunError, RunTrace, ThreadFn};
use rfdet_core::RfdetBackend;
use rfdet_workloads::{by_name, Params, Size, Workload};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Divergence: a digest or schedule did not reproduce.
const EXIT_DIVERGED: i32 = 1;
/// Usage error or unsupported backend/workload combination.
const EXIT_USAGE: i32 = 2;
/// File I/O or codec failure.
const EXIT_IO: i32 = 3;
/// The run wedged: `--timeout` exceeded or [`RunError::Wedged`].
const EXIT_WEDGED: i32 = 4;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         replay record <workload>[@threads] [--backend NAME] [--seed S]\n    \
           [--checkpoint-every N] [--ckpt-dir DIR] [--timeout MS]\n    \
           [--panic TID:OP]... [--jitter TID:OP:TICKS]... [--fail-alloc TID:NTH]...\n  \
         replay replay <trace-file> [--timeout MS]\n  \
         replay shrink <trace-file>\n  \
         replay resume <ckpt-file> [--every N] [--timeout MS]\n  \
         replay shard  <ckpt-file> [-j N] [--timeout MS]\n  \
         replay failover <workload>[@threads] [--backend NAME] [--every N]\n    \
           [--ckpt-dir DIR] [--timeout MS] [--panic TID:OP]... [--fail-alloc TID:NTH]...\n  \
         replay sweep <workload>[@threads] [--backend NAME] [--plans N]\n    \
           [--every N] [--timeout MS] [--out PATH]\n  \
         replay metrics <workload>[@threads] [--backend NAME] [--format json|prom]\n  \
         replay races <workload>[@threads] [--backend NAME] [--timeout MS]\n\
         exit codes: 0 ok, 1 diverged, 2 usage, 3 io, 4 wedged"
    );
    exit(EXIT_USAGE);
}

/// Runs `f` on a worker thread, bounding it to `ms` when given. A run
/// that cannot finish in time is wedged by definition here: the process
/// exits `4` and the stuck thread dies with it.
fn run_with_timeout<T: Send + 'static>(
    ms: Option<u64>,
    what: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let Some(ms) = ms else { return f() };
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_millis(ms)) {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: {what} did not finish within {ms} ms: wedged");
            exit(EXIT_WEDGED);
        }
    }
}

/// Maps a run failure to its exit code: wedged runs are a distinct
/// class (retryable, usually environmental) from divergence.
fn failure_code(e: &RunError) -> i32 {
    if matches!(e, RunError::Wedged(_)) {
        EXIT_WEDGED
    } else {
        EXIT_DIVERGED
    }
}

/// Backend registry keyed by the names backends report (and traces
/// store).
fn backend_by_name(name: &str) -> Option<Box<dyn DmtBackend>> {
    match name {
        "pthreads" => Some(Box::new(rfdet_native::NativeBackend)),
        "RFDet" | "RFDet-ci" => Some(Box::new(RfdetBackend::ci())),
        "RFDet-pf" => Some(Box::new(RfdetBackend::pf())),
        "DThreads" => Some(Box::new(rfdet_dthreads::DthreadsBackend)),
        "CoreDet-q" => Some(Box::new(rfdet_quantum::QuantumBackend)),
        _ => None,
    }
}

/// Checkpoint restore needs the concrete core backend (`run_resumed` is
/// not on the [`DmtBackend`] trait — no other backend can implement it).
fn core_backend(name: &str) -> Option<RfdetBackend> {
    match name {
        "RFDet" => Some(RfdetBackend::default()),
        "RFDet-ci" => Some(RfdetBackend::ci()),
        "RFDet-pf" => Some(RfdetBackend::pf()),
        _ => None,
    }
}

/// Resolves a `name[@threads]` workload string (the form `record` puts
/// in the trace) to its registry entry and parameters.
fn resolve_workload(spec: &str) -> Option<(Workload, Params)> {
    let (name, threads) = match spec.split_once('@') {
        Some((n, t)) => (n, t.parse().ok()?),
        None => (spec, 2),
    };
    Some((by_name(name)?, Params::new(threads, Size::Test)))
}

fn make_root(w: &Workload, p: Params) -> ThreadFn {
    (w.factory)(p)
}

fn parse_pair(s: &str) -> Option<(u32, u64)> {
    let (a, b) = s.split_once(':')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_triple(s: &str) -> Option<(u32, u64, u64)> {
    let mut it = s.splitn(3, ':');
    let a = it.next()?.parse().ok()?;
    let b = it.next()?.parse().ok()?;
    let c = it.next()?.parse().ok()?;
    Some((a, b, c))
}

fn load_or_die(path: &str) -> RunTrace {
    match persist::load(Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot load trace {path}: {e}");
            exit(EXIT_IO);
        }
    }
}

fn load_ckpt_or_die(path: &Path) -> Checkpoint {
    match persist::load_checkpoint(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot load checkpoint {}: {e}", path.display());
            exit(EXIT_IO);
        }
    }
}

/// Resolves a checkpoint's workload to its per-tid resume bodies, or
/// exits: both failures are configuration errors, not divergence.
fn resume_setup(ckpt: &Checkpoint) -> (RfdetBackend, ResumeBodies) {
    let Some(backend) = core_backend(&ckpt.backend) else {
        eprintln!(
            "error: backend {:?} does not support checkpoint restore",
            ckpt.backend
        );
        exit(EXIT_USAGE);
    };
    let Some((workload, params)) = resolve_workload(&ckpt.workload) else {
        eprintln!(
            "error: checkpoint names unknown workload {:?}",
            ckpt.workload
        );
        exit(EXIT_USAGE);
    };
    let Some(bodies) = rfdet_workloads::resume_bodies(workload.name, params) else {
        eprintln!(
            "error: workload {:?} is not resumable (its control state does not \
             live in deterministic memory)",
            workload.name
        );
        exit(EXIT_USAGE);
    };
    (backend, bodies)
}

type ResumeBodies = Box<dyn Fn(rfdet_api::Tid) -> ThreadFn + Send + Sync>;

fn cmd_record(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return 2;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut plan = FaultPlan::new();
    let mut seed = None;
    let mut checkpoint_every = 0u64;
    let mut ckpt_dir: Option<PathBuf> = None;
    let mut timeout = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--timeout" => {
                timeout = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--checkpoint-every" => {
                checkpoint_every = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--ckpt-dir" => {
                ckpt_dir = Some(PathBuf::from(
                    args.get(i + 1).cloned().unwrap_or_else(|| usage()),
                ));
                i += 2;
            }
            "--panic" => {
                let (tid, op) = args
                    .get(i + 1)
                    .and_then(|s| parse_pair(s))
                    .unwrap_or_else(|| usage());
                plan = plan.panic_at(tid, op);
                i += 2;
            }
            "--jitter" => {
                let (tid, op, ticks) = args
                    .get(i + 1)
                    .and_then(|s| parse_triple(s))
                    .unwrap_or_else(|| usage());
                plan = plan.jitter_at(tid, op, ticks);
                i += 2;
            }
            "--fail-alloc" => {
                let (tid, nth) = args
                    .get(i + 1)
                    .and_then(|s| parse_pair(s))
                    .unwrap_or_else(|| usage());
                plan = plan.fail_alloc(tid, nth);
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(backend) = backend_by_name(&backend_name) else {
        eprintln!("error: unknown backend {backend_name:?}");
        return 2;
    };
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.fault_plan = plan;
    cfg.jitter_seed = seed;
    cfg.trace = Some(format!("{}@{}", workload.name, params.threads));
    cfg.checkpoint_every = checkpoint_every;
    cfg.checkpoint_dir = ckpt_dir;
    if checkpoint_every > 0 && !backend.supports_checkpoints() {
        eprintln!("error: backend {backend_name:?} does not support checkpoints");
        return EXIT_USAGE;
    }
    let run = run_with_timeout(timeout, "record", move || {
        backend.run_traced(&cfg, make_root(&workload, params))
    });
    for w in &run.warnings {
        eprintln!("warning: {w}");
    }
    if let Some(first) = run.checkpoints.first() {
        println!(
            "checkpoints: {} (epochs {:?}, run key {:016x})",
            run.checkpoints.len(),
            run.checkpoints.iter().map(|c| c.epoch).collect::<Vec<_>>(),
            first.run_key()
        );
    }
    match &run.result {
        Ok(out) => {
            println!(
                "clean run: output digest {:#018x} ({} bytes)",
                out.output_digest(),
                out.output.len()
            );
            0
        }
        Err(e) => {
            println!("{e}");
            if let Some(path) = &e.report().trace_path {
                println!("TRACE {}", path.display());
            } else {
                eprintln!("warning: run failed but no trace was persisted");
            }
            failure_code(e)
        }
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let timeout = parse_timeout(&args[1..]);
    let trace = load_or_die(path);
    println!("{}", trace.summary());
    let Some(backend) = backend_by_name(&trace.backend) else {
        eprintln!("error: trace names unknown backend {:?}", trace.backend);
        return EXIT_USAGE;
    };
    let Some((workload, params)) = resolve_workload(&trace.workload) else {
        eprintln!("error: trace names unknown workload {:?}", trace.workload);
        return EXIT_USAGE;
    };
    let replay = {
        let root = make_root(&workload, params);
        let trace = trace.clone();
        run_with_timeout(timeout, "replay", move || backend.replay(&trace, root))
    };
    let digest = match &replay.result {
        Ok(out) => out.output_digest(),
        Err(e) => e.report_digest(),
    };
    println!(
        "replay digest {:#018x} vs recorded {:#018x}: {}",
        digest,
        trace.failure.report_digest,
        if replay.digest_match {
            "MATCH"
        } else {
            "DIVERGED"
        }
    );
    match replay.schedule_match {
        Some(true) => println!("culprit schedule: MATCH"),
        Some(false) => println!("culprit schedule: DIVERGED"),
        None => println!("culprit schedule: not comparable (no events recorded)"),
    }
    if replay.reproduced() {
        println!("REPLAY OK");
        0
    } else {
        println!("REPLAY FAILED");
        match &replay.result {
            // A replay that wedged did not diverge — it never finished.
            Err(RunError::Wedged(_)) => EXIT_WEDGED,
            _ => EXIT_DIVERGED,
        }
    }
}

/// Parses a trailing `--timeout MS` flag (shared by the run-executing
/// verbs); any other flag here is a usage error.
fn parse_timeout(args: &[String]) -> Option<u64> {
    let mut timeout = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                timeout = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            _ => usage(),
        }
    }
    timeout
}

/// `replay resume <ckpt-file>`: crash recovery. Rebuilds the run at the
/// checkpoint's consistent cut and lets it finish under the recorded
/// config — minus the fault plan, because the plan is what killed it.
fn cmd_resume(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let mut timeout = None;
    let mut every = 0u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                timeout = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--every" => {
                every = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let ckpt = load_ckpt_or_die(Path::new(path));
    println!("{}", ckpt.summary());
    let (backend, bodies) = resume_setup(&ckpt);
    let mut cfg = RunConfig::from_checkpoint(&ckpt);
    cfg.checkpoint_every = every;
    let run = run_with_timeout(timeout, "resume", move || {
        backend.run_resumed(&cfg, &ckpt, &|tid| bodies(tid))
    });
    for w in &run.warnings {
        eprintln!("warning: {w}");
    }
    match run.result {
        Ok(out) => {
            println!(
                "resumed run completed: output digest {:#018x} ({} bytes)",
                out.output_digest(),
                out.output.len()
            );
            0
        }
        Err(e) => {
            println!("{e}");
            failure_code(&e)
        }
    }
}

/// `replay shard <ckpt-file> -j N`: replays every inter-checkpoint
/// window of the chain in parallel and proves each shard's terminal
/// checkpoint bit-identical to the recorded one; the tail shard's
/// output must match the serial replay, which also provides the
/// wall-time baseline.
fn cmd_shard(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let mut jobs = 4usize;
    let mut timeout = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-j" => {
                jobs = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--timeout" => {
                timeout = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            _ => usage(),
        }
    }
    let anchor_path = Path::new(path);
    let anchor = load_ckpt_or_die(anchor_path);
    let dir = anchor_path.parent().unwrap_or_else(|| Path::new("."));
    let files = persist::checkpoint_chain(dir, anchor.run_key());
    let chain: Vec<Checkpoint> = files.iter().map(|(_, p)| load_ckpt_or_die(p)).collect();
    assert!(!chain.is_empty(), "the anchor itself is on the chain");
    // Shard windows come from the recording cadence; a gappy chain
    // (deleted files) cannot schedule its stop points.
    let every = chain[0].epoch;
    for (k, c) in chain.iter().enumerate() {
        if every == 0 || c.epoch != every * (k as u64 + 1) {
            eprintln!(
                "error: checkpoint chain is not a uniform cadence \
                 (epochs {:?}); cannot shard",
                chain.iter().map(|c| c.epoch).collect::<Vec<_>>()
            );
            return EXIT_USAGE;
        }
    }
    println!(
        "chain: {} checkpoints, cadence {every} (run key {:016x})",
        chain.len(),
        anchor.run_key()
    );
    let (backend, bodies) = resume_setup(&chain[0]);
    let Some((workload, params)) = resolve_workload(&chain[0].workload) else {
        unreachable!("resume_setup already resolved the workload");
    };
    let mut cfg = RunConfig::from_checkpoint(&chain[0]);
    cfg.checkpoint_every = every;
    cfg.persist_checkpoints = false;

    run_with_timeout(timeout, "shard replay", move || {
        // Serial baseline: the full run, start to finish.
        let t0 = Instant::now();
        let serial = backend.run_traced(&cfg, (workload.factory)(params));
        let serial_ms = t0.elapsed().as_millis();
        let serial_digest = match &serial.result {
            Ok(out) => out.output_digest(),
            Err(e) => {
                println!("{e}");
                eprintln!("error: serial replay failed; chain is not replayable");
                return failure_code(e);
            }
        };
        for (k, c) in chain.iter().enumerate() {
            let Some(own) = serial.checkpoints.get(k) else {
                eprintln!(
                    "error: serial replay produced no epoch-{} checkpoint",
                    c.epoch
                );
                return EXIT_DIVERGED;
            };
            if own.digest() != c.digest() {
                eprintln!("error: serial replay diverged at epoch {}", c.epoch);
                return EXIT_DIVERGED;
            }
        }

        // Parallel shards: 0 replays from the start to the first
        // checkpoint, k resumes at checkpoint k-1 and stops at k, and
        // the tail shard (id == chain.len()) runs to completion.
        let n_shards = chain.len() + 1;
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<rfdet_api::TracedRun>>> =
            (0..n_shards).map(|_| Mutex::new(None)).collect();
        let t1 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..jobs.clamp(1, n_shards) {
                s.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n_shards {
                        break;
                    }
                    let mut shard_cfg = cfg.clone();
                    shard_cfg.stop_at_checkpoint = chain.get(k).map(|c| c.epoch);
                    let run = if k == 0 {
                        backend.run_traced(&shard_cfg, (workload.factory)(params))
                    } else {
                        backend.run_resumed(&shard_cfg, &chain[k - 1], &|tid| bodies(tid))
                    };
                    *results[k].lock().expect("shard result lock") = Some(run);
                });
            }
        });
        let sharded_ms = t1.elapsed().as_millis();

        for (k, slot) in results.iter().enumerate() {
            let run = slot
                .lock()
                .expect("shard result lock")
                .take()
                .expect("shard ran");
            match &run.result {
                Err(e) => {
                    println!("shard {k}: {e}");
                    return failure_code(e);
                }
                Ok(out) if k == n_shards - 1 => {
                    if out.output_digest() != serial_digest {
                        eprintln!("error: tail shard output diverged from serial replay");
                        return EXIT_DIVERGED;
                    }
                }
                Ok(_) => {
                    let Some(last) = run.checkpoints.last() else {
                        eprintln!("error: shard {k} produced no terminal checkpoint");
                        return EXIT_DIVERGED;
                    };
                    if last.digest() != chain[k].digest() {
                        eprintln!(
                            "error: shard {k} terminal checkpoint diverged at epoch {}",
                            chain[k].epoch
                        );
                        return EXIT_DIVERGED;
                    }
                }
            }
        }
        println!(
            "SHARD OK: {n_shards} shards (j={jobs}) digest-identical to serial; \
             serial {serial_ms} ms, sharded {sharded_ms} ms"
        );
        0
    })
}

fn cmd_shrink(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let trace = load_or_die(path);
    println!("{}", trace.summary());
    let Some(backend) = backend_by_name(&trace.backend) else {
        eprintln!("error: trace names unknown backend {:?}", trace.backend);
        return 2;
    };
    let Some((workload, params)) = resolve_workload(&trace.workload) else {
        eprintln!("error: trace names unknown workload {:?}", trace.workload);
        return 2;
    };
    let mut mk = || make_root(&workload, params);
    match backend.shrink_plan(&trace, &mut mk) {
        Some(min) => {
            let dir = Path::new(path)
                .parent()
                .unwrap_or_else(|| Path::new("."))
                .to_path_buf();
            match persist::save_in(&dir, &min, ".min") {
                Ok(out) => {
                    println!(
                        "shrunk fault plan {} -> {} entries",
                        trace.faults.len(),
                        min.faults.len()
                    );
                    println!("MINTRACE {}", out.display());
                    0
                }
                Err(e) => {
                    eprintln!("error: cannot save minimized trace: {e}");
                    2
                }
            }
        }
        None => {
            println!("plan is already minimal (or the trace did not fail); nothing written");
            0
        }
    }
}

/// Like [`run_with_timeout`] but non-fatal: returns `None` on timeout
/// (the stuck worker thread is leaked) so a sweep can classify one
/// wedged plan and keep going instead of killing the whole process.
fn try_with_timeout<T: Send + 'static>(
    ms: u64,
    f: impl FnOnce() -> T + Send + 'static,
) -> Option<T> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_millis(ms)).ok()
}

/// `replay failover <workload>`: the full record/kill/restore/replay
/// cycle via [`rfdet_core::run_failover`], reported and exit-coded on
/// byte-identical convergence.
fn cmd_failover(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return EXIT_USAGE;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut plan = FaultPlan::new();
    let mut every = 2u64;
    let mut ckpt_dir: Option<PathBuf> = None;
    let mut timeout = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--every" => {
                every = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--ckpt-dir" => {
                ckpt_dir = Some(PathBuf::from(
                    args.get(i + 1).cloned().unwrap_or_else(|| usage()),
                ));
                i += 2;
            }
            "--timeout" => {
                timeout = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--panic" => {
                let (tid, op) = args
                    .get(i + 1)
                    .and_then(|s| parse_pair(s))
                    .unwrap_or_else(|| usage());
                plan = plan.panic_at(tid, op);
                i += 2;
            }
            "--fail-alloc" => {
                let (tid, nth) = args
                    .get(i + 1)
                    .and_then(|s| parse_pair(s))
                    .unwrap_or_else(|| usage());
                plan = plan.fail_alloc(tid, nth);
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(backend) = core_backend(&backend_name) else {
        eprintln!("error: backend {backend_name:?} does not support checkpoint restore");
        return EXIT_USAGE;
    };
    let Some(bodies) = rfdet_workloads::resume_bodies(workload.name, params) else {
        eprintln!("error: workload {:?} is not resumable", workload.name);
        return EXIT_USAGE;
    };
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.fault_plan = plan;
    cfg.trace = Some(format!("{}@{}", workload.name, params.threads));
    cfg.checkpoint_every = every;
    if let Some(dir) = ckpt_dir {
        cfg.persist_checkpoints = true;
        cfg.checkpoint_dir = Some(dir);
    }
    let report = run_with_timeout(timeout, "failover", move || {
        rfdet_core::run_failover(
            &backend,
            &cfg,
            &move || make_root(&workload, params),
            &*bodies,
        )
    });
    match &report.crash {
        Some(r) => println!("crash: tid {} ({:?})", r.tid, r.kind),
        None => println!("crash: fault plan never fired (clean run)"),
    }
    match report.recovered_from_epoch {
        Some(e) => println!("recovered from checkpoint epoch {e}"),
        None => println!("recovered from scratch (no checkpoint before the crash)"),
    }
    println!(
        "reference digest {:#018x}, recovered digest {:#018x}",
        report.reference_digest, report.recovered_digest
    );
    println!(
        "full run {:.1} ms, recovery {:.1} ms (ratio {:.2})",
        report.full_run_ms,
        report.recovery_ms,
        report.recovery_ratio()
    );
    if report.converged {
        println!("FAILOVER CONVERGED");
        0
    } else {
        println!("FAILOVER DIVERGED");
        EXIT_DIVERGED
    }
}

/// One sweep row: a fault-plan coordinate and its classified outcome.
struct PlanRow {
    kind: &'static str,
    tid: u32,
    op: u64,
    outcome: &'static str,
    epoch: Option<u64>,
}

/// Classifies one non-jitter plan: converged (clean, digest matches the
/// reference), recovered (typed failure, checkpoint-restored replay
/// matches), diverged, or wedged.
fn classify_kill_plan(
    backend: &RfdetBackend,
    cfg: &RunConfig,
    reference: &[u8],
    workload: Workload,
    params: Params,
) -> (&'static str, Option<u64>) {
    let run = backend.run_traced(cfg, make_root(&workload, params));
    match run.result {
        Ok(out) => {
            if out.output == reference {
                ("converged", None)
            } else {
                ("diverged", None)
            }
        }
        Err(RunError::Wedged(_)) => ("wedged", None),
        Err(_) => {
            let mut clean = cfg.clone();
            clean.fault_plan = FaultPlan::new();
            let (resumed, epoch) = match run.checkpoints.last() {
                Some(ckpt) => {
                    let bodies = rfdet_workloads::resume_bodies(workload.name, params)
                        .expect("sweep workloads are resumable");
                    (
                        backend.run_resumed(&clean, ckpt, &|tid| bodies(tid)),
                        Some(ckpt.epoch),
                    )
                }
                None => (
                    backend.run_traced(&clean, make_root(&workload, params)),
                    None,
                ),
            };
            match resumed.result {
                Ok(out) if out.output == reference => ("recovered", epoch),
                Ok(_) => ("diverged", epoch),
                Err(_) => ("diverged", epoch),
            }
        }
    }
}

/// Classifies one jitter plan. Jitter legitimately perturbs the
/// deterministic schedule, so the run may differ from the unjittered
/// reference; the contract is *rerun stability* — the identical plan
/// run twice must produce byte-identical results. A typed failure
/// under jitter must still checkpoint-recover to a clean completion.
fn classify_jitter_plan(
    backend: &RfdetBackend,
    cfg: &RunConfig,
    workload: Workload,
    params: Params,
) -> (&'static str, Option<u64>) {
    let a = backend.run_traced(cfg, make_root(&workload, params));
    let b = backend.run_traced(cfg, make_root(&workload, params));
    match (&a.result, &b.result) {
        (Ok(x), Ok(y)) => {
            if x.output == y.output {
                ("converged", None)
            } else {
                ("diverged", None)
            }
        }
        (Err(RunError::Wedged(_)), _) | (_, Err(RunError::Wedged(_))) => ("wedged", None),
        (Err(x), Err(y)) => {
            if x.report().report_digest() != y.report().report_digest() {
                return ("diverged", None);
            }
            let mut clean = cfg.clone();
            clean.fault_plan = FaultPlan::new();
            match a.checkpoints.last() {
                Some(ckpt) => {
                    let bodies = rfdet_workloads::resume_bodies(workload.name, params)
                        .expect("sweep workloads are resumable");
                    let resumed = backend.run_resumed(&clean, ckpt, &|tid| bodies(tid));
                    match resumed.result {
                        Ok(_) => ("recovered", Some(ckpt.epoch)),
                        Err(_) => ("diverged", Some(ckpt.epoch)),
                    }
                }
                None => ("recovered", None),
            }
        }
        _ => ("diverged", None),
    }
}

/// `replay sweep <workload>`: enumerate the fault-plan grid
/// (kind × thread × sync-op stratum), classify every plan, write the
/// JSON report, and fail on any diverged or wedged outcome.
fn cmd_sweep(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return EXIT_USAGE;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut every = 2u64;
    let mut timeout_ms = 10_000u64;
    let mut max_plans: Option<usize> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--every" => {
                every = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--timeout" => {
                timeout_ms = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--plans" => {
                max_plans = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--out" => {
                out_path = Some(PathBuf::from(
                    args.get(i + 1).cloned().unwrap_or_else(|| usage()),
                ));
                i += 2;
            }
            _ => usage(),
        }
    }
    if core_backend(&backend_name).is_none() {
        eprintln!("error: sweep needs a checkpoint-capable backend (RFDet*), got {backend_name:?}");
        return EXIT_USAGE;
    }
    if rfdet_workloads::resume_bodies(workload.name, params).is_none() {
        eprintln!("error: workload {:?} is not resumable", workload.name);
        return EXIT_USAGE;
    }

    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.trace = Some(format!("{}@{}", workload.name, params.threads));
    cfg.checkpoint_every = every;

    // The unfaulted reference replica every kill plan must converge to.
    let reference = {
        let backend = core_backend(&backend_name).expect("checked above");
        let cfg = cfg.clone();
        let Some(run) = try_with_timeout(timeout_ms, move || {
            backend.run_traced(&cfg, make_root(&workload, params))
        }) else {
            eprintln!("error: unfaulted reference run wedged");
            return EXIT_WEDGED;
        };
        match run.result {
            Ok(out) => out.output,
            Err(e) => {
                eprintln!("error: unfaulted reference run failed: {e}");
                return EXIT_DIVERGED;
            }
        }
    };

    // The grid: every fault kind × every thread (main included) × a
    // Fibonacci ladder of sync-op (or allocation) strata, so plans land
    // in the init round, every request-round phase, and past the end.
    const STRATA: [u64; 14] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610];
    const JITTER_TICKS: u64 = 17;
    let kinds = ["panic", "fail_alloc", "jitter"];
    let mut coords: Vec<(&'static str, u32, u64)> = Vec::new();
    for kind in kinds {
        for tid in 0..=u32::try_from(params.threads).unwrap_or(u32::MAX) {
            for op in STRATA {
                coords.push((kind, tid, op));
            }
        }
    }
    if let Some(n) = max_plans {
        coords.truncate(n);
    }

    println!(
        "sweep: {} plans on {}@{} ({backend_name}, checkpoint every {every}, {timeout_ms} ms/plan)",
        coords.len(),
        workload.name,
        params.threads
    );
    let mut rows: Vec<PlanRow> = Vec::new();
    let mut counts = [0usize; 4]; // converged, recovered, diverged, wedged
    for (kind, tid, op) in coords {
        let mut plan_cfg = cfg.clone();
        plan_cfg.fault_plan = match kind {
            "panic" => FaultPlan::new().panic_at(tid, op),
            "fail_alloc" => FaultPlan::new().fail_alloc(tid, op),
            _ => FaultPlan::new().jitter_at(tid, op, JITTER_TICKS),
        };
        let reference = reference.clone();
        let backend_name = backend_name.clone();
        let (outcome, epoch) = try_with_timeout(timeout_ms, move || {
            let backend = core_backend(&backend_name).expect("checked above");
            if kind == "jitter" {
                classify_jitter_plan(&backend, &plan_cfg, workload, params)
            } else {
                classify_kill_plan(&backend, &plan_cfg, &reference, workload, params)
            }
        })
        .unwrap_or(("wedged", None));
        let slot = match outcome {
            "converged" => 0,
            "recovered" => 1,
            "diverged" => 2,
            _ => 3,
        };
        counts[slot] += 1;
        if outcome == "diverged" || outcome == "wedged" {
            eprintln!("plan {kind} tid={tid} op={op}: {outcome}");
        }
        rows.push(PlanRow {
            kind,
            tid,
            op,
            outcome,
            epoch,
        });
    }

    let out_path = out_path.unwrap_or_else(|| {
        PathBuf::from(format!(
            "results/sweep_{}_{}t.json",
            workload.name, params.threads
        ))
    });
    let mut json = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"workload\": \"{}\",", workload.name);
    let _ = writeln!(json, "  \"threads\": {},", params.threads);
    let _ = writeln!(json, "  \"backend\": \"{backend_name}\",");
    let _ = writeln!(json, "  \"checkpoint_every\": {every},");
    let _ = writeln!(json, "  \"timeout_ms\": {timeout_ms},");
    let _ = writeln!(
        json,
        "  \"grid\": {{\"kinds\": [\"panic\", \"fail_alloc\", \"jitter\"], \
         \"jitter_ticks\": {JITTER_TICKS}, \"tids\": {}, \"op_strata\": {STRATA:?}}},",
        params.threads + 1
    );
    let _ = writeln!(json, "  \"plans\": {},", rows.len());
    let _ = writeln!(
        json,
        "  \"outcomes\": {{\"converged\": {}, \"recovered\": {}, \"diverged\": {}, \"wedged\": {}}},",
        counts[0], counts[1], counts[2], counts[3]
    );
    let _ = writeln!(json, "  \"rows\": [");
    for (k, r) in rows.iter().enumerate() {
        let epoch = r.epoch.map_or("null".to_owned(), |e| e.to_string());
        let _ = writeln!(
            json,
            "    {{\"kind\": \"{}\", \"tid\": {}, \"op\": {}, \"outcome\": \"{}\", \
             \"recovered_from_epoch\": {}}}{}",
            r.kind,
            r.tid,
            r.op,
            r.outcome,
            epoch,
            if k + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Some(parent) = out_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!(
            "error: cannot write sweep report {}: {e}",
            out_path.display()
        );
        return EXIT_IO;
    }
    println!(
        "SWEEP {}: {} converged, {} recovered, {} diverged, {} wedged -> {}",
        if counts[2] == 0 && counts[3] == 0 {
            "OK"
        } else {
            "FAILED"
        },
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        out_path.display()
    );
    if counts[3] > 0 {
        EXIT_WEDGED
    } else if counts[2] > 0 {
        EXIT_DIVERGED
    } else {
        0
    }
}

fn cmd_metrics(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return 2;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut format = "json".to_owned();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--format" => {
                format = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    if format != "json" && format != "prom" {
        eprintln!("error: unknown format {format:?} (expected json or prom)");
        return 2;
    }
    let Some(backend) = backend_by_name(&backend_name) else {
        eprintln!("error: unknown backend {backend_name:?}");
        return 2;
    };
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.metrics = true;
    match backend.run(&cfg, make_root(&workload, params)) {
        Ok(out) => {
            let Some(snap) = out.metrics else {
                eprintln!("error: metrics requested but no snapshot attached");
                return 2;
            };
            if format == "prom" {
                print!("{}", snap.to_prometheus());
            } else {
                println!("{}", snap.to_json());
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// `replay races <workload>`: one detecting run, a printed + persisted
/// typed race report, and — for the seeded corpus — a ddmin-shrunk
/// 1-minimal worker set that still reproduces the first race.
fn cmd_races(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return EXIT_USAGE;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut timeout = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--timeout" => {
                timeout = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(backend) = backend_by_name(&backend_name) else {
        eprintln!("error: unknown backend {backend_name:?}");
        return EXIT_USAGE;
    };
    if !backend.supports_race_detection() {
        eprintln!(
            "error: backend {backend_name:?} has no happens-before substrate to check against"
        );
        return EXIT_USAGE;
    }
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.detect_races = true;
    let out = {
        let cfg = cfg.clone();
        let root = make_root(&workload, params);
        run_with_timeout(timeout, "race detection", move || backend.run(&cfg, root))
    };
    let out = match out {
        Ok(out) => out,
        Err(e) => {
            println!("{e}");
            return failure_code(&e);
        }
    };
    print!("{}", rfdet_api::render_races(&out.races));
    println!(
        "race digest {:016x} (output digest {:#018x})",
        rfdet_api::races_digest(&out.races),
        out.output_digest()
    );
    let sidecar = format!(
        "workload {}@{}\nbackend {}\nrace digest {:016x}\n{}",
        workload.name,
        params.threads,
        backend_name,
        rfdet_api::races_digest(&out.races),
        rfdet_api::render_races(&out.races)
    );
    let name = format!(
        "races_{}@{}.{}.races",
        workload.name, params.threads, backend_name
    );
    match persist::save_sidecar(&persist::trace_dir(), &name, &sidecar) {
        Ok(path) => println!("RACES {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot persist race report: {e}");
            return EXIT_IO;
        }
    }
    if out.races.is_empty() {
        println!("no races detected");
        return 0;
    }
    // 1-minimal reproducer, corpus entries only: every `races.*`
    // workload takes a worker-enable mask (disabled workers still spawn,
    // so surviving tids and sync-op counts — and hence the target race's
    // digest — are unchanged under shrinking).
    if rfdet_workloads::races::root_masked(workload.name, params, u64::MAX).is_some() {
        let target = out.races[0].digest();
        let workers: Vec<usize> = (0..params.threads).collect();
        let mut oracle = |subset: &[usize]| {
            let mask = subset.iter().fold(0u64, |m, &t| m | (1 << t));
            let root = rfdet_workloads::races::root_masked(workload.name, params, mask)
                .expect("corpus entry");
            let b = backend_by_name(&backend_name).expect("resolved above");
            b.run(&cfg, root)
                .map(|out| out.races.iter().any(|r| r.digest() == target))
                .unwrap_or(false)
        };
        let min = rfdet_api::trace::ddmin(&workers, &mut oracle);
        let mask = min.iter().fold(0u64, |m, &t| m | (1 << t));
        println!("MINWORKERS {min:?} (enable mask {mask:#x}) still reproduce race {target:016x}");
    } else {
        println!(
            "(worker-mask shrinking is corpus-only; {} has no masked variant)",
            workload.name
        );
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("shrink") => cmd_shrink(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("failover") => cmd_failover(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("races") => cmd_races(&args[1..]),
        _ => usage(),
    };
    exit(code);
}
