//! Flight-recorder CLI: record failing runs, replay persisted traces,
//! and shrink their fault plans to minimal repros.
//!
//! ```text
//! replay record <workload>[@threads] [--backend NAME] [--seed S]
//!               [--checkpoint-every N] [--ckpt-dir DIR]
//!               [--panic TID:OP]... [--jitter TID:OP:TICKS]...
//!               [--fail-alloc TID:NTH]...
//! replay replay <trace-file> [--timeout MS]
//! replay shrink <trace-file>
//! replay resume <ckpt-file> [--every N] [--timeout MS]
//! replay shard  <ckpt-file> [-j N] [--timeout MS]
//! replay metrics <workload>[@threads] [--backend NAME] [--format json|prom]
//! ```
//!
//! `record` runs a workload with the recorder on; if the run fails the
//! trace is persisted (honouring `RFDET_TRACE_DIR`, default
//! `target/rfdet-traces/`) and the path printed as `TRACE <path>`. With
//! `--checkpoint-every N` the core backend also persists a consistent-cut
//! checkpoint every N eligible barrier episodes (DESIGN.md §4.11).
//! `replay` re-executes a persisted trace pinned to its recorded inputs
//! and exits non-zero unless the terminal digest (and, where recorded,
//! the culprit's schedule) reproduces. `shrink` delta-debugs the
//! recorded fault plan and writes the minimized trace beside the
//! original with a `.min` tag.
//!
//! `resume` restarts a run from one persisted checkpoint and lets it
//! finish — crash recovery. `shard` takes any checkpoint of a chain,
//! replays every inter-checkpoint window in parallel (`-j`), and proves
//! each shard's terminal checkpoint bit-identical to the recorded chain
//! — the serial replay runs too, for the wall-time comparison.
//!
//! `metrics` runs a workload once with the deterministic-safe metrics
//! layer enabled and prints the phase rollup — `json` (default) for
//! tooling, `prom` for a Prometheus text-format scrape body.
//!
//! Workloads resolve through `rfdet_workloads::by_name`; the `chaos.*`
//! scenarios exist specifically to fail on demand (and
//! `chaos.long_haul` specifically to checkpoint and resume).
//!
//! Exit codes are distinct per failure class so scripts can branch:
//! `0` success, `1` divergence (digest or schedule mismatch), `2` usage
//! or unsupported configuration, `3` file I/O or codec failure, `4`
//! wedged (the run blew its `--timeout`, or ended [`RunError::Wedged`]).

use rfdet_api::trace::Checkpoint;
use rfdet_api::{trace::persist, DmtBackend, FaultPlan, RunConfig, RunError, RunTrace, ThreadFn};
use rfdet_core::RfdetBackend;
use rfdet_workloads::{by_name, Params, Size, Workload};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Divergence: a digest or schedule did not reproduce.
const EXIT_DIVERGED: i32 = 1;
/// Usage error or unsupported backend/workload combination.
const EXIT_USAGE: i32 = 2;
/// File I/O or codec failure.
const EXIT_IO: i32 = 3;
/// The run wedged: `--timeout` exceeded or [`RunError::Wedged`].
const EXIT_WEDGED: i32 = 4;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         replay record <workload>[@threads] [--backend NAME] [--seed S]\n    \
           [--checkpoint-every N] [--ckpt-dir DIR]\n    \
           [--panic TID:OP]... [--jitter TID:OP:TICKS]... [--fail-alloc TID:NTH]...\n  \
         replay replay <trace-file> [--timeout MS]\n  \
         replay shrink <trace-file>\n  \
         replay resume <ckpt-file> [--every N] [--timeout MS]\n  \
         replay shard  <ckpt-file> [-j N] [--timeout MS]\n  \
         replay metrics <workload>[@threads] [--backend NAME] [--format json|prom]\n\
         exit codes: 0 ok, 1 diverged, 2 usage, 3 io, 4 wedged"
    );
    exit(EXIT_USAGE);
}

/// Runs `f` on a worker thread, bounding it to `ms` when given. A run
/// that cannot finish in time is wedged by definition here: the process
/// exits `4` and the stuck thread dies with it.
fn run_with_timeout<T: Send + 'static>(
    ms: Option<u64>,
    what: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let Some(ms) = ms else { return f() };
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_millis(ms)) {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: {what} did not finish within {ms} ms: wedged");
            exit(EXIT_WEDGED);
        }
    }
}

/// Maps a run failure to its exit code: wedged runs are a distinct
/// class (retryable, usually environmental) from divergence.
fn failure_code(e: &RunError) -> i32 {
    if matches!(e, RunError::Wedged(_)) {
        EXIT_WEDGED
    } else {
        EXIT_DIVERGED
    }
}

/// Backend registry keyed by the names backends report (and traces
/// store).
fn backend_by_name(name: &str) -> Option<Box<dyn DmtBackend>> {
    match name {
        "pthreads" => Some(Box::new(rfdet_native::NativeBackend)),
        "RFDet" | "RFDet-ci" => Some(Box::new(RfdetBackend::ci())),
        "RFDet-pf" => Some(Box::new(RfdetBackend::pf())),
        "DThreads" => Some(Box::new(rfdet_dthreads::DthreadsBackend)),
        "CoreDet-q" => Some(Box::new(rfdet_quantum::QuantumBackend)),
        _ => None,
    }
}

/// Checkpoint restore needs the concrete core backend (`run_resumed` is
/// not on the [`DmtBackend`] trait — no other backend can implement it).
fn core_backend(name: &str) -> Option<RfdetBackend> {
    match name {
        "RFDet" => Some(RfdetBackend::default()),
        "RFDet-ci" => Some(RfdetBackend::ci()),
        "RFDet-pf" => Some(RfdetBackend::pf()),
        _ => None,
    }
}

/// Resolves a `name[@threads]` workload string (the form `record` puts
/// in the trace) to its registry entry and parameters.
fn resolve_workload(spec: &str) -> Option<(Workload, Params)> {
    let (name, threads) = match spec.split_once('@') {
        Some((n, t)) => (n, t.parse().ok()?),
        None => (spec, 2),
    };
    Some((by_name(name)?, Params::new(threads, Size::Test)))
}

fn make_root(w: &Workload, p: Params) -> ThreadFn {
    (w.factory)(p)
}

fn parse_pair(s: &str) -> Option<(u32, u64)> {
    let (a, b) = s.split_once(':')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_triple(s: &str) -> Option<(u32, u64, u64)> {
    let mut it = s.splitn(3, ':');
    let a = it.next()?.parse().ok()?;
    let b = it.next()?.parse().ok()?;
    let c = it.next()?.parse().ok()?;
    Some((a, b, c))
}

fn load_or_die(path: &str) -> RunTrace {
    match persist::load(Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot load trace {path}: {e}");
            exit(EXIT_IO);
        }
    }
}

fn load_ckpt_or_die(path: &Path) -> Checkpoint {
    match persist::load_checkpoint(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot load checkpoint {}: {e}", path.display());
            exit(EXIT_IO);
        }
    }
}

/// Resolves a checkpoint's workload to its per-tid resume bodies, or
/// exits: both failures are configuration errors, not divergence.
fn resume_setup(ckpt: &Checkpoint) -> (RfdetBackend, ResumeBodies) {
    let Some(backend) = core_backend(&ckpt.backend) else {
        eprintln!(
            "error: backend {:?} does not support checkpoint restore",
            ckpt.backend
        );
        exit(EXIT_USAGE);
    };
    let Some((workload, params)) = resolve_workload(&ckpt.workload) else {
        eprintln!(
            "error: checkpoint names unknown workload {:?}",
            ckpt.workload
        );
        exit(EXIT_USAGE);
    };
    let Some(bodies) = rfdet_workloads::resume_bodies(workload.name, params) else {
        eprintln!(
            "error: workload {:?} is not resumable (its control state does not \
             live in deterministic memory)",
            workload.name
        );
        exit(EXIT_USAGE);
    };
    (backend, bodies)
}

type ResumeBodies = Box<dyn Fn(rfdet_api::Tid) -> ThreadFn + Send + Sync>;

fn cmd_record(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return 2;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut plan = FaultPlan::new();
    let mut seed = None;
    let mut checkpoint_every = 0u64;
    let mut ckpt_dir: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--checkpoint-every" => {
                checkpoint_every = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--ckpt-dir" => {
                ckpt_dir = Some(PathBuf::from(
                    args.get(i + 1).cloned().unwrap_or_else(|| usage()),
                ));
                i += 2;
            }
            "--panic" => {
                let (tid, op) = args
                    .get(i + 1)
                    .and_then(|s| parse_pair(s))
                    .unwrap_or_else(|| usage());
                plan = plan.panic_at(tid, op);
                i += 2;
            }
            "--jitter" => {
                let (tid, op, ticks) = args
                    .get(i + 1)
                    .and_then(|s| parse_triple(s))
                    .unwrap_or_else(|| usage());
                plan = plan.jitter_at(tid, op, ticks);
                i += 2;
            }
            "--fail-alloc" => {
                let (tid, nth) = args
                    .get(i + 1)
                    .and_then(|s| parse_pair(s))
                    .unwrap_or_else(|| usage());
                plan = plan.fail_alloc(tid, nth);
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(backend) = backend_by_name(&backend_name) else {
        eprintln!("error: unknown backend {backend_name:?}");
        return 2;
    };
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.fault_plan = plan;
    cfg.jitter_seed = seed;
    cfg.trace = Some(format!("{}@{}", workload.name, params.threads));
    cfg.checkpoint_every = checkpoint_every;
    cfg.checkpoint_dir = ckpt_dir;
    if checkpoint_every > 0 && !backend.supports_checkpoints() {
        eprintln!("error: backend {backend_name:?} does not support checkpoints");
        return EXIT_USAGE;
    }
    let run = backend.run_traced(&cfg, make_root(&workload, params));
    for w in &run.warnings {
        eprintln!("warning: {w}");
    }
    if let Some(first) = run.checkpoints.first() {
        println!(
            "checkpoints: {} (epochs {:?}, run key {:016x})",
            run.checkpoints.len(),
            run.checkpoints.iter().map(|c| c.epoch).collect::<Vec<_>>(),
            first.run_key()
        );
    }
    match &run.result {
        Ok(out) => {
            println!(
                "clean run: output digest {:#018x} ({} bytes)",
                out.output_digest(),
                out.output.len()
            );
            0
        }
        Err(e) => {
            println!("{e}");
            if let Some(path) = &e.report().trace_path {
                println!("TRACE {}", path.display());
            } else {
                eprintln!("warning: run failed but no trace was persisted");
            }
            1
        }
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let timeout = parse_timeout(&args[1..]);
    let trace = load_or_die(path);
    println!("{}", trace.summary());
    let Some(backend) = backend_by_name(&trace.backend) else {
        eprintln!("error: trace names unknown backend {:?}", trace.backend);
        return EXIT_USAGE;
    };
    let Some((workload, params)) = resolve_workload(&trace.workload) else {
        eprintln!("error: trace names unknown workload {:?}", trace.workload);
        return EXIT_USAGE;
    };
    let replay = {
        let root = make_root(&workload, params);
        let trace = trace.clone();
        run_with_timeout(timeout, "replay", move || backend.replay(&trace, root))
    };
    let digest = match &replay.result {
        Ok(out) => out.output_digest(),
        Err(e) => e.report_digest(),
    };
    println!(
        "replay digest {:#018x} vs recorded {:#018x}: {}",
        digest,
        trace.failure.report_digest,
        if replay.digest_match {
            "MATCH"
        } else {
            "DIVERGED"
        }
    );
    match replay.schedule_match {
        Some(true) => println!("culprit schedule: MATCH"),
        Some(false) => println!("culprit schedule: DIVERGED"),
        None => println!("culprit schedule: not comparable (no events recorded)"),
    }
    if replay.reproduced() {
        println!("REPLAY OK");
        0
    } else {
        println!("REPLAY FAILED");
        match &replay.result {
            // A replay that wedged did not diverge — it never finished.
            Err(RunError::Wedged(_)) => EXIT_WEDGED,
            _ => EXIT_DIVERGED,
        }
    }
}

/// Parses a trailing `--timeout MS` flag (shared by the run-executing
/// verbs); any other flag here is a usage error.
fn parse_timeout(args: &[String]) -> Option<u64> {
    let mut timeout = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                timeout = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            _ => usage(),
        }
    }
    timeout
}

/// `replay resume <ckpt-file>`: crash recovery. Rebuilds the run at the
/// checkpoint's consistent cut and lets it finish under the recorded
/// config — minus the fault plan, because the plan is what killed it.
fn cmd_resume(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let mut timeout = None;
    let mut every = 0u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                timeout = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--every" => {
                every = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let ckpt = load_ckpt_or_die(Path::new(path));
    println!("{}", ckpt.summary());
    let (backend, bodies) = resume_setup(&ckpt);
    let mut cfg = RunConfig::from_checkpoint(&ckpt);
    cfg.checkpoint_every = every;
    let run = run_with_timeout(timeout, "resume", move || {
        backend.run_resumed(&cfg, &ckpt, &|tid| bodies(tid))
    });
    for w in &run.warnings {
        eprintln!("warning: {w}");
    }
    match run.result {
        Ok(out) => {
            println!(
                "resumed run completed: output digest {:#018x} ({} bytes)",
                out.output_digest(),
                out.output.len()
            );
            0
        }
        Err(e) => {
            println!("{e}");
            failure_code(&e)
        }
    }
}

/// `replay shard <ckpt-file> -j N`: replays every inter-checkpoint
/// window of the chain in parallel and proves each shard's terminal
/// checkpoint bit-identical to the recorded one; the tail shard's
/// output must match the serial replay, which also provides the
/// wall-time baseline.
fn cmd_shard(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let mut jobs = 4usize;
    let mut timeout = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-j" => {
                jobs = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--timeout" => {
                timeout = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            _ => usage(),
        }
    }
    let anchor_path = Path::new(path);
    let anchor = load_ckpt_or_die(anchor_path);
    let dir = anchor_path.parent().unwrap_or_else(|| Path::new("."));
    let files = persist::checkpoint_chain(dir, anchor.run_key());
    let chain: Vec<Checkpoint> = files.iter().map(|(_, p)| load_ckpt_or_die(p)).collect();
    assert!(!chain.is_empty(), "the anchor itself is on the chain");
    // Shard windows come from the recording cadence; a gappy chain
    // (deleted files) cannot schedule its stop points.
    let every = chain[0].epoch;
    for (k, c) in chain.iter().enumerate() {
        if every == 0 || c.epoch != every * (k as u64 + 1) {
            eprintln!(
                "error: checkpoint chain is not a uniform cadence \
                 (epochs {:?}); cannot shard",
                chain.iter().map(|c| c.epoch).collect::<Vec<_>>()
            );
            return EXIT_USAGE;
        }
    }
    println!(
        "chain: {} checkpoints, cadence {every} (run key {:016x})",
        chain.len(),
        anchor.run_key()
    );
    let (backend, bodies) = resume_setup(&chain[0]);
    let Some((workload, params)) = resolve_workload(&chain[0].workload) else {
        unreachable!("resume_setup already resolved the workload");
    };
    let mut cfg = RunConfig::from_checkpoint(&chain[0]);
    cfg.checkpoint_every = every;
    cfg.persist_checkpoints = false;

    run_with_timeout(timeout, "shard replay", move || {
        // Serial baseline: the full run, start to finish.
        let t0 = Instant::now();
        let serial = backend.run_traced(&cfg, (workload.factory)(params));
        let serial_ms = t0.elapsed().as_millis();
        let serial_digest = match &serial.result {
            Ok(out) => out.output_digest(),
            Err(e) => {
                println!("{e}");
                eprintln!("error: serial replay failed; chain is not replayable");
                return failure_code(e);
            }
        };
        for (k, c) in chain.iter().enumerate() {
            let Some(own) = serial.checkpoints.get(k) else {
                eprintln!(
                    "error: serial replay produced no epoch-{} checkpoint",
                    c.epoch
                );
                return EXIT_DIVERGED;
            };
            if own.digest() != c.digest() {
                eprintln!("error: serial replay diverged at epoch {}", c.epoch);
                return EXIT_DIVERGED;
            }
        }

        // Parallel shards: 0 replays from the start to the first
        // checkpoint, k resumes at checkpoint k-1 and stops at k, and
        // the tail shard (id == chain.len()) runs to completion.
        let n_shards = chain.len() + 1;
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<rfdet_api::TracedRun>>> =
            (0..n_shards).map(|_| Mutex::new(None)).collect();
        let t1 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..jobs.clamp(1, n_shards) {
                s.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n_shards {
                        break;
                    }
                    let mut shard_cfg = cfg.clone();
                    shard_cfg.stop_at_checkpoint = chain.get(k).map(|c| c.epoch);
                    let run = if k == 0 {
                        backend.run_traced(&shard_cfg, (workload.factory)(params))
                    } else {
                        backend.run_resumed(&shard_cfg, &chain[k - 1], &|tid| bodies(tid))
                    };
                    *results[k].lock().expect("shard result lock") = Some(run);
                });
            }
        });
        let sharded_ms = t1.elapsed().as_millis();

        for (k, slot) in results.iter().enumerate() {
            let run = slot
                .lock()
                .expect("shard result lock")
                .take()
                .expect("shard ran");
            match &run.result {
                Err(e) => {
                    println!("shard {k}: {e}");
                    return failure_code(e);
                }
                Ok(out) if k == n_shards - 1 => {
                    if out.output_digest() != serial_digest {
                        eprintln!("error: tail shard output diverged from serial replay");
                        return EXIT_DIVERGED;
                    }
                }
                Ok(_) => {
                    let Some(last) = run.checkpoints.last() else {
                        eprintln!("error: shard {k} produced no terminal checkpoint");
                        return EXIT_DIVERGED;
                    };
                    if last.digest() != chain[k].digest() {
                        eprintln!(
                            "error: shard {k} terminal checkpoint diverged at epoch {}",
                            chain[k].epoch
                        );
                        return EXIT_DIVERGED;
                    }
                }
            }
        }
        println!(
            "SHARD OK: {n_shards} shards (j={jobs}) digest-identical to serial; \
             serial {serial_ms} ms, sharded {sharded_ms} ms"
        );
        0
    })
}

fn cmd_shrink(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let trace = load_or_die(path);
    println!("{}", trace.summary());
    let Some(backend) = backend_by_name(&trace.backend) else {
        eprintln!("error: trace names unknown backend {:?}", trace.backend);
        return 2;
    };
    let Some((workload, params)) = resolve_workload(&trace.workload) else {
        eprintln!("error: trace names unknown workload {:?}", trace.workload);
        return 2;
    };
    let mut mk = || make_root(&workload, params);
    match backend.shrink_plan(&trace, &mut mk) {
        Some(min) => {
            let dir = Path::new(path)
                .parent()
                .unwrap_or_else(|| Path::new("."))
                .to_path_buf();
            match persist::save_in(&dir, &min, ".min") {
                Ok(out) => {
                    println!(
                        "shrunk fault plan {} -> {} entries",
                        trace.faults.len(),
                        min.faults.len()
                    );
                    println!("MINTRACE {}", out.display());
                    0
                }
                Err(e) => {
                    eprintln!("error: cannot save minimized trace: {e}");
                    2
                }
            }
        }
        None => {
            println!("plan is already minimal (or the trace did not fail); nothing written");
            0
        }
    }
}

fn cmd_metrics(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return 2;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut format = "json".to_owned();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--format" => {
                format = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    if format != "json" && format != "prom" {
        eprintln!("error: unknown format {format:?} (expected json or prom)");
        return 2;
    }
    let Some(backend) = backend_by_name(&backend_name) else {
        eprintln!("error: unknown backend {backend_name:?}");
        return 2;
    };
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.metrics = true;
    match backend.run(&cfg, make_root(&workload, params)) {
        Ok(out) => {
            let Some(snap) = out.metrics else {
                eprintln!("error: metrics requested but no snapshot attached");
                return 2;
            };
            if format == "prom" {
                print!("{}", snap.to_prometheus());
            } else {
                println!("{}", snap.to_json());
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("shrink") => cmd_shrink(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        _ => usage(),
    };
    exit(code);
}
