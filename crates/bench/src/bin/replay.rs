//! Flight-recorder CLI: record failing runs, replay persisted traces,
//! and shrink their fault plans to minimal repros.
//!
//! ```text
//! replay record <workload>[@threads] [--backend NAME] [--seed S]
//!               [--panic TID:OP]... [--jitter TID:OP:TICKS]...
//!               [--fail-alloc TID:NTH]...
//! replay replay <trace-file>
//! replay shrink <trace-file>
//! replay metrics <workload>[@threads] [--backend NAME] [--format json|prom]
//! ```
//!
//! `record` runs a workload with the recorder on; if the run fails the
//! trace is persisted (honouring `RFDET_TRACE_DIR`, default
//! `target/rfdet-traces/`) and the path printed as `TRACE <path>`.
//! `replay` re-executes a persisted trace pinned to its recorded inputs
//! and exits non-zero unless the terminal digest (and, where recorded,
//! the culprit's schedule) reproduces. `shrink` delta-debugs the
//! recorded fault plan and writes the minimized trace beside the
//! original with a `.min` tag.
//!
//! `metrics` runs a workload once with the deterministic-safe metrics
//! layer enabled and prints the phase rollup — `json` (default) for
//! tooling, `prom` for a Prometheus text-format scrape body.
//!
//! Workloads resolve through `rfdet_workloads::by_name`; the `chaos.*`
//! scenarios exist specifically to fail on demand.

use rfdet_api::{trace::persist, DmtBackend, FaultPlan, RunConfig, RunTrace, ThreadFn};
use rfdet_workloads::{by_name, Params, Size, Workload};
use std::path::Path;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         replay record <workload>[@threads] [--backend NAME] [--seed S]\n    \
           [--panic TID:OP]... [--jitter TID:OP:TICKS]... [--fail-alloc TID:NTH]...\n  \
         replay replay <trace-file>\n  \
         replay shrink <trace-file>\n  \
         replay metrics <workload>[@threads] [--backend NAME] [--format json|prom]"
    );
    exit(2);
}

/// Backend registry keyed by the names backends report (and traces
/// store).
fn backend_by_name(name: &str) -> Option<Box<dyn DmtBackend>> {
    match name {
        "pthreads" => Some(Box::new(rfdet_native::NativeBackend)),
        "RFDet" | "RFDet-ci" => Some(Box::new(rfdet_core::RfdetBackend::ci())),
        "RFDet-pf" => Some(Box::new(rfdet_core::RfdetBackend::pf())),
        "DThreads" => Some(Box::new(rfdet_dthreads::DthreadsBackend)),
        "CoreDet-q" => Some(Box::new(rfdet_quantum::QuantumBackend)),
        _ => None,
    }
}

/// Resolves a `name[@threads]` workload string (the form `record` puts
/// in the trace) to its registry entry and parameters.
fn resolve_workload(spec: &str) -> Option<(Workload, Params)> {
    let (name, threads) = match spec.split_once('@') {
        Some((n, t)) => (n, t.parse().ok()?),
        None => (spec, 2),
    };
    Some((by_name(name)?, Params::new(threads, Size::Test)))
}

fn make_root(w: &Workload, p: Params) -> ThreadFn {
    (w.factory)(p)
}

fn parse_pair(s: &str) -> Option<(u32, u64)> {
    let (a, b) = s.split_once(':')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_triple(s: &str) -> Option<(u32, u64, u64)> {
    let mut it = s.splitn(3, ':');
    let a = it.next()?.parse().ok()?;
    let b = it.next()?.parse().ok()?;
    let c = it.next()?.parse().ok()?;
    Some((a, b, c))
}

fn load_or_die(path: &str) -> RunTrace {
    match persist::load(Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot load trace {path}: {e:?}");
            exit(2);
        }
    }
}

fn cmd_record(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return 2;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut plan = FaultPlan::new();
    let mut seed = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--panic" => {
                let (tid, op) = args
                    .get(i + 1)
                    .and_then(|s| parse_pair(s))
                    .unwrap_or_else(|| usage());
                plan = plan.panic_at(tid, op);
                i += 2;
            }
            "--jitter" => {
                let (tid, op, ticks) = args
                    .get(i + 1)
                    .and_then(|s| parse_triple(s))
                    .unwrap_or_else(|| usage());
                plan = plan.jitter_at(tid, op, ticks);
                i += 2;
            }
            "--fail-alloc" => {
                let (tid, nth) = args
                    .get(i + 1)
                    .and_then(|s| parse_pair(s))
                    .unwrap_or_else(|| usage());
                plan = plan.fail_alloc(tid, nth);
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(backend) = backend_by_name(&backend_name) else {
        eprintln!("error: unknown backend {backend_name:?}");
        return 2;
    };
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.fault_plan = plan;
    cfg.jitter_seed = seed;
    cfg.trace = Some(format!("{}@{}", workload.name, params.threads));
    let run = backend.run_traced(&cfg, make_root(&workload, params));
    match &run.result {
        Ok(out) => {
            println!(
                "clean run: output digest {:#018x} ({} bytes)",
                out.output_digest(),
                out.output.len()
            );
            0
        }
        Err(e) => {
            println!("{e}");
            if let Some(path) = &e.report().trace_path {
                println!("TRACE {}", path.display());
            } else {
                eprintln!("warning: run failed but no trace was persisted");
            }
            1
        }
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let trace = load_or_die(path);
    println!("{}", trace.summary());
    let Some(backend) = backend_by_name(&trace.backend) else {
        eprintln!("error: trace names unknown backend {:?}", trace.backend);
        return 2;
    };
    let Some((workload, params)) = resolve_workload(&trace.workload) else {
        eprintln!("error: trace names unknown workload {:?}", trace.workload);
        return 2;
    };
    let replay = backend.replay(&trace, make_root(&workload, params));
    let digest = match &replay.result {
        Ok(out) => out.output_digest(),
        Err(e) => e.report_digest(),
    };
    println!(
        "replay digest {:#018x} vs recorded {:#018x}: {}",
        digest,
        trace.failure.report_digest,
        if replay.digest_match {
            "MATCH"
        } else {
            "DIVERGED"
        }
    );
    match replay.schedule_match {
        Some(true) => println!("culprit schedule: MATCH"),
        Some(false) => println!("culprit schedule: DIVERGED"),
        None => println!("culprit schedule: not comparable (no events recorded)"),
    }
    if replay.reproduced() {
        println!("REPLAY OK");
        0
    } else {
        println!("REPLAY FAILED");
        1
    }
}

fn cmd_shrink(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let trace = load_or_die(path);
    println!("{}", trace.summary());
    let Some(backend) = backend_by_name(&trace.backend) else {
        eprintln!("error: trace names unknown backend {:?}", trace.backend);
        return 2;
    };
    let Some((workload, params)) = resolve_workload(&trace.workload) else {
        eprintln!("error: trace names unknown workload {:?}", trace.workload);
        return 2;
    };
    let mut mk = || make_root(&workload, params);
    match backend.shrink_plan(&trace, &mut mk) {
        Some(min) => {
            let dir = Path::new(path)
                .parent()
                .unwrap_or_else(|| Path::new("."))
                .to_path_buf();
            match persist::save_in(&dir, &min, ".min") {
                Ok(out) => {
                    println!(
                        "shrunk fault plan {} -> {} entries",
                        trace.faults.len(),
                        min.faults.len()
                    );
                    println!("MINTRACE {}", out.display());
                    0
                }
                Err(e) => {
                    eprintln!("error: cannot save minimized trace: {e}");
                    2
                }
            }
        }
        None => {
            println!("plan is already minimal (or the trace did not fail); nothing written");
            0
        }
    }
}

fn cmd_metrics(args: &[String]) -> i32 {
    let Some(spec) = args.first() else { usage() };
    let Some((workload, params)) = resolve_workload(spec) else {
        eprintln!("error: unknown workload {spec:?}");
        return 2;
    };
    let mut backend_name = "RFDet-ci".to_owned();
    let mut format = "json".to_owned();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--format" => {
                format = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    if format != "json" && format != "prom" {
        eprintln!("error: unknown format {format:?} (expected json or prom)");
        return 2;
    }
    let Some(backend) = backend_by_name(&backend_name) else {
        eprintln!("error: unknown backend {backend_name:?}");
        return 2;
    };
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.deadlock_after_ms = Some(5_000);
    cfg.metrics = true;
    match backend.run(&cfg, make_root(&workload, params)) {
        Ok(out) => {
            let Some(snap) = out.metrics else {
                eprintln!("error: metrics requested but no snapshot attached");
                return 2;
            };
            if format == "prom" {
                print!("{}", snap.to_prometheus());
            } else {
                println!("{}", snap.to_json());
            }
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("shrink") => cmd_shrink(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        _ => usage(),
    };
    exit(code);
}
