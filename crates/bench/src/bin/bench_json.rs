//! Emits `BENCH_10.json`: machine-readable numbers for the memory-
//! pipeline fast path — chunked vs scalar diff kernel, gap coalescing,
//! the propagate-heavy workload swept over {2, 4, 8, 16} threads as a
//! paired eager-vs-lazy thread-scaling curve (the paper's Figure-6 axis;
//! also written to `results/thread_scaling.txt`), the pool/diff/lazy
//! stats counters from instrumented runs — plus the turn-arbitration A/B
//! (successor handoff vs broadcast spin-scan on the sync-heavy
//! adversary, swept over the same thread counts; DESIGN.md §4.10; also
//! written to `results/sync_heavy_scaling.txt`), the supervisor-overhead
//! A/B (`cfg.supervise` on vs off on the 4-thread contended-mutex
//! workload; DESIGN.md §4.7 budgets this at <2%), the
//! flight-recorder A/B (`cfg.trace` on vs off on the same workload;
//! DESIGN.md §4.8 budgets recording at <5%, and the disabled path at
//! one branch per sync op, ~0%), and the metrics-layer A/B
//! (`cfg.metrics` on vs off; DESIGN.md §4.9 budgets collection at <2%,
//! disabled path at one branch per timed site), the sharded-replay
//! wall-time cell (§4.11): serial full replay of a checkpointed
//! bench-scale `chaos.long_haul` run vs parallel per-window shard
//! replay, digest-verified against the recorded chain — plus, new in
//! BENCH_9 (§4.12), the replicated-service throughput sweep
//! (`service.ledger` at bench scale, ≥1M requests ingested per run,
//! req/s over {2, 4, 8, 16} threads) and the crash-failover recovery
//! cell (kill a worker in the last request round, restore the newest
//! checkpoint, replay the tail; budgeted at ≤0.6× the full re-run) —
//! plus, new in BENCH_10 (§4.13), the race-detector A/B
//! (`cfg.detect_races` on vs off on 4-thread propagate-heavy, the
//! worst case: detection observes every diffed word at propagation
//! time; budgeted at ≤10%, and the disabled path at one branch).
//!
//! Usage: `bench_json [--out PATH] [--quick] [--enforce]`. `--quick`
//! shrinks the measurement target so CI can smoke-test the emission
//! path in seconds; numbers from quick mode are for plumbing, not
//! comparison. `--enforce` exits non-zero when any within-run budget is
//! breached (lazy-vs-eager ratio, supervisor overhead, metrics
//! overhead, the 16t/8t sync-heavy scaling guard) — the regression gate
//! the CI scaling job runs.

use rfdet_api::{DmtBackend, RunConfig, ThreadFn};
use rfdet_core::RfdetBackend;
use rfdet_mem::diff;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Warmup-then-measure: adapts the iteration count to `target` and
/// returns (mean ns/iter, iterations) — the same scheme the vendored
/// criterion shim uses, so numbers line up with `cargo bench`.
fn measure<F: FnMut()>(target: Duration, mut f: F) -> (f64, u64) {
    let mut iters: u64 = 1;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= target / 4 || iters >= 1 << 28 {
            break elapsed / u32::try_from(iters).unwrap_or(u32::MAX).max(1);
        }
        iters = iters.saturating_mul(2);
    };
    let n = if per_iter.is_zero() {
        1 << 16
    } else {
        u64::try_from((target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 28))
            .unwrap_or(1)
    };
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    (start.elapsed().as_nanos() as f64 / n as f64, n)
}

/// Paired A/B measurement: alternates the two closures *per iteration*
/// (a, b, a, b, …) inside every round and returns each side's
/// *minimum* mean per-iteration time across rounds, plus the per-side
/// iteration total. Measuring the sides in separate blocks (as
/// `measure` would) lets slow drift — thermal state, a background
/// compile — land entirely on one side and masquerade as overhead.
/// Earlier revisions interleaved whole rounds (an a-block then a
/// b-block); on this single-CPU host even half-round-scale drift left
/// the ratio of minima swinging ±4 % between regenerations, which is
/// wider than the quantities these cells gate (<2 % budgets).
/// Per-iteration alternation bounds the drift-exposure difference
/// between the sides to one iteration. Twelve rounds because the
/// quantity read off these cells is a *ratio* of two minima — its
/// variance compounds both sides' — and individual rounds still swing
/// 10-40 %.
fn measure_ab<A: FnMut(), B: FnMut()>(target: Duration, mut a: A, mut b: B) -> (f64, f64, u64) {
    const ROUNDS: u64 = 12;
    a();
    b(); // warm both paths
    let probe = Instant::now();
    a();
    let per_iter = probe.elapsed().as_nanos().max(1);
    let per_round =
        u64::try_from((target.as_nanos() / u128::from(2 * ROUNDS) / per_iter).clamp(1, 1 << 20))
            .unwrap_or(1);
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..ROUNDS {
        let mut tot_a = 0u128;
        let mut tot_b = 0u128;
        for _ in 0..per_round {
            let start = Instant::now();
            a();
            tot_a += start.elapsed().as_nanos();
            let start = Instant::now();
            b();
            tot_b += start.elapsed().as_nanos();
        }
        best_a = best_a.min(tot_a as f64 / per_round as f64);
        best_b = best_b.min(tot_b as f64 / per_round as f64);
    }
    (best_a, best_b, ROUNDS * per_round)
}

/// The registered propagate-heavy workload at bench scale, parameterized
/// by thread count — ids derived from it are `rfdet/{t}t_propagate_heavy*`
/// so scaling cells never collide with the historical 4-thread ones.
fn propagate_heavy(threads: usize) -> ThreadFn {
    let w = rfdet_workloads::by_name("propagate_heavy").expect("registered");
    (w.factory)(rfdet_workloads::Params::new(
        threads,
        rfdet_workloads::Size::Bench,
    ))
}

/// The registered sync-heavy workload at bench scale: tiny critical
/// sections, maximal turn churn — arbitration cost dominates, so this is
/// the handoff-vs-spin A/B substrate (`rfdet/{t}t_sync_heavy_*`).
fn sync_heavy(threads: usize) -> ThreadFn {
    let w = rfdet_workloads::by_name("sync_heavy").expect("registered");
    (w.factory)(rfdet_workloads::Params::new(
        threads,
        rfdet_workloads::Size::Bench,
    ))
}

/// Oversubscription guard ceiling for the 16t/8t sync-heavy handoff
/// ratio. Doubling the thread count doubles the total turn count, so the
/// ideal ratio is 2.0; measured handoff cells on the 1-CPU reference
/// host sit at ~2.1-2.4, and the broadcast spin-scan this PR replaced
/// sat well above 4. The ceiling is the regression tripwire between
/// those two regimes.
const SCALING_GUARD_MAX_RATIO: f64 = 3.5;

/// Sharded-replay A/B (§4.11): records a checkpointed `chaos.long_haul`
/// run in memory, then replays it once serially and once as parallel
/// per-window shards, verifying every shard's terminal checkpoint (and
/// the tail's output) bit-identical to the recording. Returns
/// `(serial_ms, sharded_ms, n_shards)` — best of `reps` passes each, as
/// single-shot run times on a shared host swing with scheduler luck.
fn sharded_replay_ab(quick: bool, jobs: usize, reps: u32) -> (f64, f64, usize) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let (name, every, threads) = if quick {
        ("chaos.long_haul", 4u64, 3usize)
    } else {
        ("chaos.long_haul.bench", 24u64, 3usize)
    };
    let w = rfdet_workloads::by_name(name).expect("registered");
    let params = rfdet_workloads::Params::new(threads, rfdet_workloads::Size::Test);
    let bodies = rfdet_workloads::resume_bodies(name, params).expect("long_haul is resumable");
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    cfg.trace = Some(format!("{name}@{threads}"));
    cfg.checkpoint_every = every;
    cfg.persist_checkpoints = false;
    let backend = RfdetBackend::ci();

    let recording = backend.run_traced(&cfg, (w.factory)(params));
    let expected = recording.result.expect("clean recording").output_digest();
    let chain = recording.checkpoints;
    assert!(
        !chain.is_empty(),
        "long_haul must checkpoint at this cadence"
    );
    let n_shards = chain.len() + 1;

    let mut serial_ms = f64::INFINITY;
    let mut sharded_ms = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let serial = backend.run_traced(&cfg, (w.factory)(params));
        serial_ms = serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let out = serial.result.expect("serial replay");
        assert_eq!(out.output_digest(), expected, "serial replay diverged");
        for (k, c) in chain.iter().enumerate() {
            assert_eq!(
                serial.checkpoints[k].digest(),
                c.digest(),
                "serial replay checkpoint diverged at epoch {}",
                c.epoch
            );
        }

        let next = AtomicUsize::new(0);
        let results: Vec<std::sync::Mutex<Option<rfdet_api::TracedRun>>> =
            (0..n_shards).map(|_| std::sync::Mutex::new(None)).collect();
        let t1 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..jobs.min(n_shards) {
                s.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n_shards {
                        break;
                    }
                    let mut shard_cfg = cfg.clone();
                    shard_cfg.stop_at_checkpoint = chain.get(k).map(|c| c.epoch);
                    let run = if k == 0 {
                        backend.run_traced(&shard_cfg, (w.factory)(params))
                    } else {
                        backend.run_resumed(&shard_cfg, &chain[k - 1], &|tid| bodies(tid))
                    };
                    *results[k].lock().expect("shard slot") = Some(run);
                });
            }
        });
        sharded_ms = sharded_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        for (k, slot) in results.iter().enumerate() {
            let run = slot.lock().expect("shard slot").take().expect("shard ran");
            let out = run.result.expect("shard replay");
            if k == n_shards - 1 {
                assert_eq!(out.output_digest(), expected, "tail shard diverged");
            } else {
                assert_eq!(
                    run.checkpoints
                        .last()
                        .expect("terminal checkpoint")
                        .digest(),
                    chain[k].digest(),
                    "shard {k} terminal checkpoint diverged"
                );
            }
        }
    }
    (serial_ms, sharded_ms, n_shards)
}

fn main() {
    let mut out_path = String::from("BENCH_10.json");
    let mut quick = false;
    let mut enforce = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--enforce" => {
                enforce = true;
                i += 1;
            }
            other => panic!("unknown argument {other} (see --out PATH / --quick / --enforce)"),
        }
    }
    let target = if quick {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    };

    let mut results: Vec<(String, f64, u64)> = Vec::new();

    // Diff-kernel A/B on the three canonical page shapes plus the
    // fragmented shape gap coalescing targets.
    let snapshot = vec![0u8; 4096];
    let mut sparse = snapshot.clone();
    for i in (0..4096).step_by(512) {
        sparse[i] = 1;
    }
    let dense: Vec<u8> = (0..4096).map(|i| (i % 251) as u8 + 1).collect();
    let mut frag = snapshot.clone();
    for i in (0..4096).step_by(24) {
        frag[i..i + 8].copy_from_slice(&[7u8; 8]);
    }
    let cases: [(&str, &[u8]); 4] = [
        ("sparse", &sparse),
        ("dense", &dense),
        ("identical", &snapshot),
        ("fragmented", &frag),
    ];
    for (name, current) in cases {
        let (ns, iters) = measure(target, || {
            let mut out = Vec::new();
            diff::diff_page(0, black_box(&snapshot), black_box(current), &mut out);
            black_box(out);
        });
        results.push((format!("diff/page_{name}"), ns, iters));
        let (ns, iters) = measure(target, || {
            let mut out = Vec::new();
            diff::diff_page_scalar(0, black_box(&snapshot), black_box(current), &mut out);
            black_box(out);
        });
        results.push((format!("diff/page_{name}_scalar"), ns, iters));
    }
    let (ns, iters) = measure(target, || {
        let mut out = Vec::new();
        diff::diff_page_opts(0, black_box(&snapshot), black_box(&frag), 32, &mut out);
        black_box(out);
    });
    results.push(("diff/page_fragmented_coalesce32".to_owned(), ns, iters));

    // Propagate-heavy eager-vs-lazy, paired per thread count — the
    // thread-scaling curve. `measure_ab` interleaves the two sides, so
    // each cell is a fair A/B; the 4-thread cell doubles as the
    // `lazy_vs_eager` acceptance pairing.
    let thread_counts = [2usize, 4, 8, 16];
    let mut scaling: Vec<(usize, f64, f64)> = Vec::new();
    for &t in &thread_counts {
        let mut eager_cfg = RunConfig::small();
        eager_cfg.rfdet.fault_cost_spins = 0;
        let mut lazy_cfg = eager_cfg.clone();
        lazy_cfg.rfdet.lazy_writes = true;
        let (eager_ns, lazy_ns, iters) = measure_ab(
            target * 2,
            || {
                black_box(RfdetBackend::ci().run_expect(&eager_cfg, propagate_heavy(t)));
            },
            || {
                black_box(RfdetBackend::ci().run_expect(&lazy_cfg, propagate_heavy(t)));
            },
        );
        results.push((format!("rfdet/{t}t_propagate_heavy_eager"), eager_ns, iters));
        results.push((format!("rfdet/{t}t_propagate_heavy_lazy"), lazy_ns, iters));
        scaling.push((t, eager_ns, lazy_ns));
    }

    // Turn-arbitration A/B: successor handoff (the default) vs broadcast
    // spin-scan (`spin_arbitration: true`) on the sync-heavy adversary,
    // paired per thread count. Handoff's win grows with oversubscription
    // — the 16-thread cell on a small host is where spin-scan burns
    // whole scheduler quanta rescanning while parked handoff waiters
    // cost nothing.
    let mut sync_scaling: Vec<(usize, f64, f64)> = Vec::new();
    for &t in &thread_counts {
        let mut handoff_cfg = RunConfig::small();
        handoff_cfg.rfdet.fault_cost_spins = 0;
        let mut spin_cfg = handoff_cfg.clone();
        spin_cfg.spin_arbitration = true;
        let (handoff_ns, spin_ns, iters) = measure_ab(
            target * 2,
            || {
                black_box(RfdetBackend::ci().run_expect(&handoff_cfg, sync_heavy(t)));
            },
            || {
                black_box(RfdetBackend::ci().run_expect(&spin_cfg, sync_heavy(t)));
            },
        );
        results.push((format!("rfdet/{t}t_sync_heavy_handoff"), handoff_ns, iters));
        results.push((format!("rfdet/{t}t_sync_heavy_spin"), spin_ns, iters));
        sync_scaling.push((t, handoff_ns, spin_ns));
    }

    // Supervisor-overhead A/B on the same 4-thread contended-mutex
    // workload: `supervise: true` (fault hooks armed, structural
    // deadlock scans enabled — the default) vs `supervise: false`.
    // Paired (`measure_ab`) since BENCH_7: the unpaired cells this
    // replaced let one-sided drift on the shared host masquerade as
    // overhead (BENCH_6 read 4.04% where the paired estimator reads the
    // real sub-2% cost).
    {
        let mut sup_cfg = RunConfig::small();
        sup_cfg.rfdet.fault_cost_spins = 0;
        sup_cfg.supervise = true;
        let mut unsup_cfg = sup_cfg.clone();
        unsup_cfg.supervise = false;
        // target*6 like the metrics cell: these ratios gate the nightly
        // enforce run, and at *2 the min-over-rounds estimator still
        // swings ±3 % run to run on this host.
        let (sup_ns, unsup_ns, iters) = measure_ab(
            target * 6,
            || {
                black_box(RfdetBackend::ci().run_expect(&sup_cfg, propagate_heavy(4)));
            },
            || {
                black_box(RfdetBackend::ci().run_expect(&unsup_cfg, propagate_heavy(4)));
            },
        );
        results.push((
            "rfdet/4t_propagate_heavy_supervised".to_owned(),
            sup_ns,
            iters,
        ));
        results.push((
            "rfdet/4t_propagate_heavy_unsupervised".to_owned(),
            unsup_ns,
            iters,
        ));
    }

    // Flight-recorder A/B on the contended workload: recorder on
    // (`cfg.trace` set — every sync op buffers a TraceEvent) vs off
    // (the default; one `Option` branch per sync op). Paired since
    // BENCH_7 for the same reason as the supervisor cell: the unpaired
    // blocks read anywhere from −0.5 % to +18 % for the same code.
    {
        let mut traced_cfg = RunConfig::small();
        traced_cfg.rfdet.fault_cost_spins = 0;
        traced_cfg.trace = Some("bench.propagate_heavy".to_owned());
        let mut untraced_cfg = traced_cfg.clone();
        untraced_cfg.trace = None;
        let (traced_ns, untraced_ns, iters) = measure_ab(
            target * 6,
            || {
                black_box(RfdetBackend::ci().run_expect(&traced_cfg, propagate_heavy(4)));
            },
            || {
                black_box(RfdetBackend::ci().run_expect(&untraced_cfg, propagate_heavy(4)));
            },
        );
        results.push((
            "rfdet/4t_propagate_heavy_traced".to_owned(),
            traced_ns,
            iters,
        ));
        results.push((
            "rfdet/4t_propagate_heavy_untraced".to_owned(),
            untraced_ns,
            iters,
        ));
    }

    // Race-detector A/B on the contended workload: `detect_races` on
    // (every diffed word's write epoch checked and recorded at
    // propagation time, plus read tracking) vs off (one branch per
    // propagation site). propagate-heavy is the worst case by
    // construction — its whole runtime is the propagation machinery the
    // detector instruments. §4.13 budgets detection at ≤10% here.
    {
        let mut detect_cfg = RunConfig::small();
        detect_cfg.rfdet.fault_cost_spins = 0;
        detect_cfg.detect_races = true;
        let mut nodetect_cfg = detect_cfg.clone();
        nodetect_cfg.detect_races = false;
        let (detect_ns, nodetect_ns, iters) = measure_ab(
            target * 6,
            || {
                black_box(RfdetBackend::ci().run_expect(&detect_cfg, propagate_heavy(4)));
            },
            || {
                black_box(RfdetBackend::ci().run_expect(&nodetect_cfg, propagate_heavy(4)));
            },
        );
        results.push((
            "rfdet/4t_propagate_heavy_detect".to_owned(),
            detect_ns,
            iters,
        ));
        results.push((
            "rfdet/4t_propagate_heavy_nodetect".to_owned(),
            nodetect_ns,
            iters,
        ));
    }

    // Metrics-layer A/B, two cells. Observation cost is ~2 clock reads
    // per sample (~80 ns on this host), so it scales with sample count,
    // not with work: the budgeted cell is a real application (wordcount,
    // ~1.2 k samples/run amortized over parse/reduce compute); the
    // propagate-heavy microbench — pure sync machinery by construction,
    // ~6.5 k samples over a few ms — is kept as the labeled worst case.
    let wordcount = rfdet_workloads::by_name("wordcount").expect("registered");
    let wc_params = rfdet_workloads::Params::new(4, rfdet_workloads::Size::Bench);
    let metrics_cfg = |metrics: bool| {
        let mut cfg = RunConfig::small();
        cfg.space_bytes = 64 << 20;
        cfg.rfdet.fault_cost_spins = 0;
        cfg.metrics = metrics;
        cfg
    };
    let (on, off) = (metrics_cfg(true), metrics_cfg(false));
    // target*12, not *2: a wordcount run is ~20 ms, so at *2 each of the
    // 12 rounds only fits ~2 iterations per side and the min estimator
    // still swings several percent on this host; even at *6 the cell was
    // observed breaching its 2 % budget purely under host drift. ~14
    // iterations/round keeps the pair under 8 s and the min stable.
    let (metered, unmetered, iters) = measure_ab(
        target * 12,
        || {
            black_box(RfdetBackend::ci().run_expect(&on, (wordcount.factory)(wc_params)));
        },
        || {
            black_box(RfdetBackend::ci().run_expect(&off, (wordcount.factory)(wc_params)));
        },
    );
    results.push(("rfdet/4t_wordcount_metered".to_owned(), metered, iters));
    results.push(("rfdet/4t_wordcount_unmetered".to_owned(), unmetered, iters));
    let small = |metrics: bool| {
        let mut cfg = RunConfig::small();
        cfg.rfdet.fault_cost_spins = 0;
        cfg.metrics = metrics;
        cfg
    };
    let (on, off) = (small(true), small(false));
    let (metered, unmetered, iters) = measure_ab(
        target * 2,
        || {
            black_box(RfdetBackend::ci().run_expect(&on, propagate_heavy(4)));
        },
        || {
            black_box(RfdetBackend::ci().run_expect(&off, propagate_heavy(4)));
        },
    );
    results.push((
        "rfdet/4t_propagate_heavy_metered".to_owned(),
        metered,
        iters,
    ));
    results.push((
        "rfdet/4t_propagate_heavy_unmetered".to_owned(),
        unmetered,
        iters,
    ));

    // Sharded-replay wall time (§4.11): quick mode runs one test-scale
    // pass (plumbing only); the nightly takes best-of-3 at bench scale.
    let shard_jobs = 4usize;
    let (shard_serial_ms, shard_sharded_ms, shard_count) =
        sharded_replay_ab(quick, shard_jobs, if quick { 1 } else { 3 });

    // Service throughput (§4.12): the replicated-ledger service on
    // RFDet-ci, swept over the same thread counts. Full mode runs bench
    // scale — ≥1M requests ingested per run by construction
    // (`requests_per_run` is pure, so the floor is checked analytically
    // below even in quick mode); quick runs test scale, plumbing only.
    use rfdet_workloads::{service, Params, Size};
    let svc_size = if quick { Size::Test } else { Size::Bench };
    let svc_reps: u64 = if quick { 1 } else { 3 };
    let svc_cfg = {
        let mut c = RunConfig::small();
        c.space_bytes = 4 << 20;
        c.rfdet.fault_cost_spins = 0;
        c
    };
    let mut service_scaling: Vec<(usize, u64, f64)> = Vec::new();
    for &t in &thread_counts {
        let params = Params::new(t, svc_size);
        let requests = service::requests_per_run(t, svc_size);
        let mut best = f64::INFINITY;
        for _ in 0..svc_reps {
            let t0 = Instant::now();
            black_box(RfdetBackend::ci().run_expect(&svc_cfg, service::ledger(params)));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        results.push((format!("rfdet/{t}t_service_ledger"), best * 1e9, svc_reps));
        service_scaling.push((t, requests, best));
    }

    // Crash-failover recovery (§4.12): kill worker 2 in the last request
    // round, restore the newest checkpoint, replay the tail, and compare
    // the recovery's wall time against the full unfaulted re-run the
    // checkpoint chain replaces. Cadence scales with the round count so
    // the chain stays ~8 checkpoints deep at any scale.
    let failover = {
        let workers = 4usize;
        let rounds = service::request_rounds_per_run(workers, svc_size);
        let every = (rounds / 8).max(2);
        let crash_op =
            service::OPS_INIT_ROUND + (rounds - 1) * service::ops_per_request_round(workers) + 2;
        let mut cfg = svc_cfg.clone();
        cfg.checkpoint_every = every;
        cfg.trace = Some(format!("service.ledger@{workers}"));
        cfg.fault_plan = rfdet_api::FaultPlan::new().panic_at(2, crash_op);
        let params = Params::new(workers, svc_size);
        let bodies = service::ledger_resume(params);
        let r = rfdet_core::run_failover(
            &RfdetBackend::ci(),
            &cfg,
            &move || service::ledger(params),
            &*bodies,
        );
        assert!(
            r.crash.is_some(),
            "failover cell: the injected fault must fire"
        );
        assert!(
            r.converged,
            "failover cell: recovered replica must match the reference"
        );
        r
    };

    // One instrumented run for the fast-path counters, and one lazy
    // metered run for the `lazy_fault` phase attribution and lazy stats.
    let mut cfg = RunConfig::small();
    cfg.rfdet.fault_cost_spins = 0;
    let run = RfdetBackend::ci().run_expect(&cfg, propagate_heavy(4));
    let s = &run.stats;
    let mut lazy_metered_cfg = cfg.clone();
    lazy_metered_cfg.rfdet.lazy_writes = true;
    lazy_metered_cfg.metrics = true;
    let lazy_run = RfdetBackend::ci().run_expect(&lazy_metered_cfg, propagate_heavy(4));
    let lazy_phase = lazy_run
        .metrics
        .as_ref()
        .and_then(|m| m.phase(rfdet_api::obs::Phase::LazyFault))
        .map(|p| (p.count, p.sum))
        .unwrap_or((0, 0));

    let lookup = |id: &str| -> f64 {
        results
            .iter()
            .find(|(n, _, _)| n == id)
            .map_or(f64::NAN, |(_, ns, _)| *ns)
    };
    let speedup = |name: &str| -> f64 {
        lookup(&format!("diff/page_{name}_scalar")) / lookup(&format!("diff/page_{name}"))
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"rfdet-bench-json/1\",");
    let _ = writeln!(json, "  \"bench\": \"memory-pipeline fast path\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"results\": [\n");
    for (idx, (id, ns, iters)) in results.iter().enumerate() {
        let comma = if idx + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"id\": \"{id}\", \"ns_per_iter\": {ns:.1}, \"iters\": {iters}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_chunked_vs_scalar\": {\n");
    let _ = writeln!(json, "    \"page_sparse\": {:.2},", speedup("sparse"));
    let _ = writeln!(json, "    \"page_dense\": {:.2},", speedup("dense"));
    let _ = writeln!(json, "    \"page_identical\": {:.2},", speedup("identical"));
    let _ = writeln!(
        json,
        "    \"page_fragmented\": {:.2}",
        speedup("fragmented")
    );
    json.push_str("  },\n");
    // The paired 4-thread eager/lazy cell — the §4.5 acceptance pairing:
    // lazy writes must not cost more than 5% over eager on the workload
    // built to maximize propagation.
    let (lazy_pair_eager, lazy_pair_lazy) = scaling
        .iter()
        .find(|(t, _, _)| *t == 4)
        .map_or((f64::NAN, f64::NAN), |&(_, e, l)| (e, l));
    json.push_str("  \"lazy_vs_eager\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/4t_propagate_heavy\",");
    let _ = writeln!(json, "    \"threads\": 4,");
    let _ = writeln!(json, "    \"eager_ns\": {lazy_pair_eager:.1},");
    let _ = writeln!(json, "    \"lazy_ns\": {lazy_pair_lazy:.1},");
    let _ = writeln!(
        json,
        "    \"ratio\": {:.4},",
        lazy_pair_lazy / lazy_pair_eager
    );
    // Budget raised 1.05 → 1.10 with BENCH_7: the handoff arbitration
    // work sped the eager side of this pair up by ~9 % (parked waiters
    // stop stealing quanta from the fault path's waker too), so the
    // lazy/eager ratio re-centered from ~1.02 to ~1.06 with the same
    // absolute lazy cost. The parity claim is unchanged — see
    // EXPERIMENTS.md "Lazy writes vs eager".
    let _ = writeln!(json, "    \"budget_ratio\": 1.10");
    json.push_str("  },\n");
    json.push_str("  \"thread_scaling\": [\n");
    for (idx, &(t, eager_ns, lazy_ns)) in scaling.iter().enumerate() {
        let comma = if idx + 1 < scaling.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {t}, \"eager_ns\": {eager_ns:.1}, \"lazy_ns\": {lazy_ns:.1}, \"ratio\": {:.4}}}{comma}",
            lazy_ns / eager_ns
        );
    }
    json.push_str("  ],\n");
    // The ISSUE 7 acceptance cell: 16-thread propagate-heavy eager under
    // the handoff arbiter vs the BENCH_6 broadcast-spin baseline
    // (34,382,810 ns on the reference host; cross-run, so informative on
    // other hosts and authoritative only there).
    let eager_16t = scaling
        .iter()
        .find(|(t, _, _)| *t == 16)
        .map_or(f64::NAN, |&(_, e, _)| e);
    const BASELINE_16T_EAGER_NS: f64 = 34_382_810.0;
    json.push_str("  \"arbitration\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/16t_propagate_heavy_eager\",");
    let _ = writeln!(json, "    \"handoff_ns\": {eager_16t:.1},");
    let _ = writeln!(
        json,
        "    \"baseline_spin_ns\": {BASELINE_16T_EAGER_NS:.1},"
    );
    let _ = writeln!(
        json,
        "    \"improvement_frac\": {:.4},",
        1.0 - eager_16t / BASELINE_16T_EAGER_NS
    );
    let _ = writeln!(json, "    \"budget_improvement_frac\": 0.20,");
    let _ = writeln!(
        json,
        "    \"note\": \"baseline is the BENCH_6 reference-host cell; the sync_heavy_scaling table below is the within-run A/B\""
    );
    json.push_str("  },\n");
    json.push_str("  \"sync_heavy_scaling\": [\n");
    for (idx, &(t, handoff_ns, spin_ns)) in sync_scaling.iter().enumerate() {
        let comma = if idx + 1 < sync_scaling.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"threads\": {t}, \"handoff_ns\": {handoff_ns:.1}, \"spin_ns\": {spin_ns:.1}, \"spin_over_handoff\": {:.4}}}{comma}",
            spin_ns / handoff_ns
        );
    }
    json.push_str("  ],\n");
    // Oversubscription tripwire: sync-heavy cost under handoff must stay
    // near-linear in thread count (ideal 16t/8t ratio = 2.0); broadcast
    // spin-scan blows well past the ceiling on a small host.
    let sync_at = |threads: usize| -> f64 {
        sync_scaling
            .iter()
            .find(|(t, _, _)| *t == threads)
            .map_or(f64::NAN, |&(_, h, _)| h)
    };
    let guard_ratio = sync_at(16) / sync_at(8);
    json.push_str("  \"scaling_guard\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/sync_heavy_handoff\",");
    let _ = writeln!(json, "    \"ratio_16t_over_8t\": {guard_ratio:.4},");
    let _ = writeln!(json, "    \"max_ratio\": {SCALING_GUARD_MAX_RATIO}");
    json.push_str("  },\n");
    let sup_ns = lookup("rfdet/4t_propagate_heavy_supervised");
    let unsup_ns = lookup("rfdet/4t_propagate_heavy_unsupervised");
    json.push_str("  \"supervisor_overhead\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/4t_propagate_heavy\",");
    let _ = writeln!(json, "    \"supervised_ns\": {sup_ns:.1},");
    let _ = writeln!(json, "    \"unsupervised_ns\": {unsup_ns:.1},");
    let _ = writeln!(
        json,
        "    \"overhead_frac\": {:.4},",
        sup_ns / unsup_ns - 1.0
    );
    let _ = writeln!(json, "    \"budget_frac\": 0.02");
    json.push_str("  },\n");
    let traced_ns = lookup("rfdet/4t_propagate_heavy_traced");
    let untraced_ns = lookup("rfdet/4t_propagate_heavy_untraced");
    json.push_str("  \"trace_overhead\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/4t_propagate_heavy\",");
    let _ = writeln!(json, "    \"traced_ns\": {traced_ns:.1},");
    let _ = writeln!(json, "    \"untraced_ns\": {untraced_ns:.1},");
    let _ = writeln!(
        json,
        "    \"overhead_frac\": {:.4},",
        traced_ns / untraced_ns - 1.0
    );
    let _ = writeln!(json, "    \"budget_frac\": 0.05");
    json.push_str("  },\n");
    let detect_ns = lookup("rfdet/4t_propagate_heavy_detect");
    let nodetect_ns = lookup("rfdet/4t_propagate_heavy_nodetect");
    json.push_str("  \"race_detector_overhead\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/4t_propagate_heavy\",");
    let _ = writeln!(json, "    \"detect_ns\": {detect_ns:.1},");
    let _ = writeln!(json, "    \"nodetect_ns\": {nodetect_ns:.1},");
    let _ = writeln!(
        json,
        "    \"overhead_frac\": {:.4},",
        detect_ns / nodetect_ns - 1.0
    );
    let _ = writeln!(json, "    \"budget_frac\": 0.10");
    json.push_str("  },\n");
    let metered_ns = lookup("rfdet/4t_wordcount_metered");
    let unmetered_ns = lookup("rfdet/4t_wordcount_unmetered");
    json.push_str("  \"metrics_overhead\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/4t_wordcount\",");
    let _ = writeln!(json, "    \"metered_ns\": {metered_ns:.1},");
    let _ = writeln!(json, "    \"unmetered_ns\": {unmetered_ns:.1},");
    let _ = writeln!(
        json,
        "    \"overhead_frac\": {:.4},",
        metered_ns / unmetered_ns - 1.0
    );
    let _ = writeln!(json, "    \"budget_frac\": 0.02");
    json.push_str("  },\n");
    let wc_metered_ns = lookup("rfdet/4t_propagate_heavy_metered");
    let wc_unmetered_ns = lookup("rfdet/4t_propagate_heavy_unmetered");
    json.push_str("  \"metrics_worst_case\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/4t_propagate_heavy\",");
    let _ = writeln!(json, "    \"metered_ns\": {wc_metered_ns:.1},");
    let _ = writeln!(json, "    \"unmetered_ns\": {wc_unmetered_ns:.1},");
    let _ = writeln!(
        json,
        "    \"overhead_frac\": {:.4},",
        wc_metered_ns / wc_unmetered_ns - 1.0
    );
    let _ = writeln!(
        json,
        "    \"note\": \"pure sync machinery, no app compute; cost = clock reads per sample\""
    );
    json.push_str("  },\n");
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shard_ratio = shard_sharded_ms / shard_serial_ms;
    json.push_str("  \"sharded_replay\": {\n");
    let _ = writeln!(
        json,
        "    \"bench\": \"chaos.long_haul{}@3\",",
        if quick { "" } else { ".bench" }
    );
    let _ = writeln!(json, "    \"shards\": {shard_count},");
    let _ = writeln!(json, "    \"jobs\": {shard_jobs},");
    let _ = writeln!(json, "    \"host_cpus\": {cpus},");
    let _ = writeln!(json, "    \"serial_ms\": {shard_serial_ms:.1},");
    let _ = writeln!(json, "    \"sharded_ms\": {shard_sharded_ms:.1},");
    let _ = writeln!(json, "    \"ratio\": {shard_ratio:.4},");
    let _ = writeln!(json, "    \"budget_ratio\": 1.15,");
    let _ = writeln!(
        json,
        "    \"note\": \"digest-verified vs the recorded chain; <1.0 is a wall-time win, \
         reachable even at 1 CPU because overlapped shards fill each other's \
         arbitration park/wake gaps\""
    );
    json.push_str("  },\n");
    json.push_str("  \"service_throughput\": [\n");
    for (idx, &(t, requests, secs)) in service_scaling.iter().enumerate() {
        let comma = if idx + 1 < service_scaling.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"threads\": {t}, \"requests_per_run\": {requests}, \"secs\": {secs:.4}, \"req_per_s\": {:.0}}}{comma}",
            requests as f64 / secs
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"failover_recovery\": {\n");
    let _ = writeln!(
        json,
        "    \"bench\": \"service.ledger{}@4\",",
        if quick { "" } else { ".bench" }
    );
    let _ = writeln!(
        json,
        "    \"crash\": \"panic, worker 2, last request round\","
    );
    let _ = writeln!(
        json,
        "    \"recovered_from_epoch\": {},",
        failover
            .recovered_from_epoch
            .map_or("null".to_owned(), |e| e.to_string())
    );
    let _ = writeln!(json, "    \"full_run_ms\": {:.2},", failover.full_run_ms);
    let _ = writeln!(json, "    \"recovery_ms\": {:.2},", failover.recovery_ms);
    let _ = writeln!(json, "    \"ratio\": {:.4},", failover.recovery_ratio());
    let _ = writeln!(json, "    \"budget_ratio\": 0.6,");
    let _ = writeln!(
        json,
        "    \"note\": \"recovery = restore newest checkpoint + replay the tail; \
         ratio is against the full unfaulted re-run it replaces\""
    );
    json.push_str("  },\n");
    json.push_str("  \"counters\": {\n");
    let _ = writeln!(
        json,
        "    \"diff_bytes_scanned\": {},",
        s.diff_bytes_scanned
    );
    let _ = writeln!(
        json,
        "    \"snapshot_bytes_copied\": {},",
        s.snapshot_bytes_copied
    );
    let _ = writeln!(
        json,
        "    \"snapshot_pool_hits\": {},",
        s.snapshot_pool_hits
    );
    let _ = writeln!(
        json,
        "    \"snapshot_pool_misses\": {},",
        s.snapshot_pool_misses
    );
    let _ = writeln!(json, "    \"runs_coalesced\": {}", s.runs_coalesced);
    json.push_str("  },\n");
    let ls = &lazy_run.stats;
    json.push_str("  \"lazy_counters\": {\n");
    let _ = writeln!(json, "    \"bench\": \"rfdet/4t_propagate_heavy_lazy\",");
    let _ = writeln!(
        json,
        "    \"lazy_deferred_bytes\": {},",
        ls.lazy_deferred_bytes
    );
    let _ = writeln!(json, "    \"lazy_elided_bytes\": {},", ls.lazy_elided_bytes);
    let _ = writeln!(
        json,
        "    \"lazy_protect_calls\": {},",
        ls.lazy_protect_calls
    );
    let _ = writeln!(json, "    \"page_faults\": {},", ls.page_faults);
    let _ = writeln!(json, "    \"lazy_fault_count\": {},", lazy_phase.0);
    let _ = writeln!(json, "    \"lazy_fault_ns_sum\": {}", lazy_phase.1);
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    // The human-readable scaling curve for results/.
    let mut curve = String::new();
    curve.push_str("propagate-heavy thread scaling: eager vs lazy writes (RFDet-ci)\n");
    curve.push_str("paired measure_ab cells, min-over-rounds ns per run");
    if quick {
        curve.push_str(" [QUICK MODE: plumbing numbers, not comparisons]");
    }
    curve.push('\n');
    curve.push_str("threads  eager_ns      lazy_ns       lazy/eager\n");
    for &(t, eager_ns, lazy_ns) in &scaling {
        let _ = writeln!(
            curve,
            "{t:>7}  {eager_ns:>12.0}  {lazy_ns:>12.0}  {:>10.3}",
            lazy_ns / eager_ns
        );
    }
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/thread_scaling.txt", &curve))
    {
        eprintln!("skipping results/thread_scaling.txt: {e}");
    } else {
        eprintln!("wrote results/thread_scaling.txt");
    }

    // The human-readable arbitration curve for results/.
    let mut sync_curve = String::new();
    sync_curve.push_str(
        "sync-heavy thread scaling: successor handoff vs broadcast spin-scan (RFDet-ci)\n",
    );
    sync_curve.push_str("paired measure_ab cells, min-over-rounds ns per run");
    if quick {
        sync_curve.push_str(" [QUICK MODE: plumbing numbers, not comparisons]");
    }
    sync_curve.push('\n');
    sync_curve.push_str("threads  handoff_ns    spin_ns       spin/handoff\n");
    for &(t, handoff_ns, spin_ns) in &sync_scaling {
        let _ = writeln!(
            sync_curve,
            "{t:>7}  {handoff_ns:>12.0}  {spin_ns:>12.0}  {:>12.3}",
            spin_ns / handoff_ns
        );
    }
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/sync_heavy_scaling.txt", &sync_curve))
    {
        eprintln!("skipping results/sync_heavy_scaling.txt: {e}");
    } else {
        eprintln!("wrote results/sync_heavy_scaling.txt");
    }

    assert!(
        s.snapshot_pool_hits > 0,
        "steady-state runs must recycle snapshot buffers"
    );

    // Budget enforcement — the within-run gates only (ratios of paired
    // cells measured in this process; the cross-run reference-host
    // baseline in `arbitration` is reported, not gated). A NaN — a cell
    // that never got measured — counts as a breach.
    // Analytic floor: `requests_per_run` is pure, so the ≥1M-requests
    // guarantee for bench scale is checkable without running bench scale
    // (the value below is `1M / min(requests)` — ≤1.0 iff the floor
    // holds at every swept width).
    let min_bench_requests = thread_counts
        .iter()
        .map(|&t| service::requests_per_run(t, Size::Bench))
        .min()
        .unwrap_or(0);
    let checks: Vec<(&str, f64, f64)> = vec![
        (
            "lazy_vs_eager ratio",
            lazy_pair_lazy / lazy_pair_eager,
            1.10,
        ),
        ("supervisor_overhead frac", sup_ns / unsup_ns - 1.0, 0.02),
        (
            "race_detector_overhead frac",
            detect_ns / nodetect_ns - 1.0,
            0.10,
        ),
        (
            "metrics_overhead frac",
            metered_ns / unmetered_ns - 1.0,
            0.02,
        ),
        (
            "scaling_guard 16t/8t sync_heavy",
            guard_ratio,
            SCALING_GUARD_MAX_RATIO,
        ),
        // The §4.11 gate: shard replay must not cost more than 15% over
        // serial even on a 1-CPU host (it should win outright wherever
        // shards can actually overlap).
        ("sharded_replay ratio", shard_ratio, 1.15),
        // The §4.12 gates: recovering through a checkpoint must beat a
        // full re-run by a wide margin, and the bench-scale service must
        // actually ingest its advertised request volume.
        ("failover_recovery ratio", failover.recovery_ratio(), 0.6),
        (
            "service_requests floor (1M/min_requests)",
            1_000_000.0 / min_bench_requests as f64,
            1.0,
        ),
    ];
    let mut breached = false;
    for (name, value, limit) in checks {
        let ok = value <= limit; // NaN fails this comparison, as it should
        eprintln!(
            "budget {}: {name} = {value:.4} (limit {limit})",
            if ok { "OK  " } else { "FAIL" }
        );
        breached |= !ok;
    }
    if enforce && breached {
        eprintln!("--enforce: budget breach, failing");
        std::process::exit(1);
    }
}
