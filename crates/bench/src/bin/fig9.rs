//! Figure 9: effect of the *prelock* and *lazy writes* optimizations
//! (§4.5) on the SPLASH-2 applications ("we chose these applications
//! because they use plenty of synchronization operations"). Method as in
//! the paper: baseline = both optimizations disabled; enable one at a
//! time; report the improvement over baseline.
//!
//! Besides wall time (whose prelock component needs parallel hardware),
//! we report the paper's own effectiveness metric for prelock: the
//! fraction of propagated slices pre-merged off the critical path
//! ("almost 80 % in our experiment"), and for lazy writes the fraction
//! of deferred bytes whose writes were elided.

use rfdet_api::RunConfig;
use rfdet_bench::{bench_config, ms, render_table, time_workload, BenchOpts};
use rfdet_core::RfdetBackend;
use rfdet_workloads::{benchmarks, Params, Suite};

fn cfg_with(prelock: bool, lazy: bool) -> RunConfig {
    let mut c = bench_config();
    c.rfdet.prelock = prelock;
    c.rfdet.lazy_writes = lazy;
    c
}

fn main() {
    let opts = BenchOpts::from_args();
    let splash: Vec<_> = opts
        .selected(benchmarks())
        .into_iter()
        .filter(|w| w.suite == Suite::Splash2)
        .collect();
    println!(
        "Figure 9: prelock / lazy-writes optimization effect on SPLASH-2 \
         ({} threads, {} reps, {:?} inputs)\n",
        opts.threads, opts.reps, opts.size
    );
    let backend = RfdetBackend::ci();
    let mut rows = Vec::new();
    for w in splash {
        let params = Params::new(opts.threads, opts.size);
        let (t_base, _) = time_workload(&backend, &cfg_with(false, false), &w, params, opts.reps);
        let (t_pre, out_pre) =
            time_workload(&backend, &cfg_with(true, false), &w, params, opts.reps);
        let (t_lazy, out_lazy) =
            time_workload(&backend, &cfg_with(false, true), &w, params, opts.reps);
        let imp = |t: std::time::Duration| {
            100.0 * (t_base.as_secs_f64() - t.as_secs_f64()) / t_base.as_secs_f64()
        };
        let prelock_frac = out_pre.stats.prelock_fraction() * 100.0;
        let lazy_stats = out_lazy.stats;
        let elide_frac = if lazy_stats.lazy_deferred_bytes == 0 {
            0.0
        } else {
            100.0 * lazy_stats.lazy_elided_bytes as f64 / lazy_stats.lazy_deferred_bytes as f64
        };
        rows.push(vec![
            w.name.to_owned(),
            ms(t_base),
            format!("{:+.1}%", imp(t_pre)),
            format!("{prelock_frac:.0}%"),
            format!("{:+.1}%", imp(t_lazy)),
            format!("{elide_frac:.0}%"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "baseline(ms)",
                "prelock speedup",
                "premerged slices",
                "lazy-writes speedup",
                "elided bytes",
            ],
            &rows
        )
    );
    println!(
        "(speedups are wall-time improvements over the both-disabled baseline;\n\
         'premerged slices' is the paper's ~80% off-critical-path metric)"
    );
}
