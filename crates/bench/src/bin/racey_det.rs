//! §5.1 determinism experiment: run *racey* repeatedly with 2, 4 and 8
//! threads under both RFDet monitoring modes (plus DThreads and the
//! quantum backend for comparison) and verify every run produces the
//! same signature. The paper runs 1000 repetitions per configuration;
//! default here is 30 (`--runs N` to change), with jitter injection
//! varied across runs to stress physical timing.
//!
//! Since ISSUE 10 every run also carries the race detector
//! (DESIGN.md §4.13): racey is the deliberately racy stress test, so
//! each configuration must report a nonzero race count *and* a
//! rerun-stable race digest — the detector's reports are as
//! deterministic as the output signature they ride alongside. Race
//! counts are per-backend facts here (interval boundaries differ across
//! backend families on an always-racing program); the cross-backend
//! digest oracle lives in `tests/races.rs` against the seeded corpus.

use rfdet_api::{races_digest, DmtBackend, RunError, RunOutput};
use rfdet_bench::{bench_config, render_table, BenchOpts};
use rfdet_core::RfdetBackend;
use rfdet_dthreads::DthreadsBackend;
use rfdet_quantum::QuantumBackend;
use rfdet_workloads::{by_name, Params};

fn main() {
    let opts = BenchOpts::from_args();
    let racey = by_name("racey").expect("racey registered");
    let backends: Vec<Box<dyn DmtBackend>> = vec![
        Box::new(RfdetBackend::ci()),
        Box::new(RfdetBackend::pf()),
        Box::new(DthreadsBackend),
        Box::new(QuantumBackend),
    ];
    println!(
        "racey determinism: {} runs per configuration, jitter varied per run, race detector on\n",
        opts.runs
    );
    let mut rows = Vec::new();
    let mut all_ok = true;
    for backend in &backends {
        for threads in [2usize, 4, 8] {
            let mut signatures = std::collections::HashSet::new();
            let mut race_digests = std::collections::HashSet::new();
            let mut races = 0usize;
            let mut first = String::new();
            let mut failed = false;
            for run in 0..opts.runs {
                let mut cfg = bench_config();
                cfg.detect_races = true;
                // Vary physical timing run to run.
                cfg.jitter_seed = if run % 2 == 0 {
                    None
                } else {
                    Some(u64::from(run))
                };
                let result: Result<RunOutput, RunError> =
                    backend.run(&cfg, (racey.factory)(Params::new(threads, opts.size)));
                let out = match result {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("{} @{threads} run {run}: {e}", backend.name());
                        failed = true;
                        break;
                    }
                };
                let sig = String::from_utf8_lossy(&out.output).trim().to_owned();
                if run == 0 {
                    first = sig.clone();
                    races = out.races.len();
                }
                signatures.insert(sig);
                race_digests.insert(races_digest(&out.races));
            }
            let ok = !failed && signatures.len() == 1 && race_digests.len() == 1;
            all_ok &= ok;
            rows.push(vec![
                backend.name(),
                threads.to_string(),
                opts.runs.to_string(),
                signatures.len().to_string(),
                races.to_string(),
                race_digests.len().to_string(),
                if failed {
                    "RUN FAILED".into()
                } else if ok {
                    "DETERMINISTIC".into()
                } else {
                    "NONDETERMINISTIC".into()
                },
                first,
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "backend",
                "threads",
                "runs",
                "distinct",
                "races",
                "race_digests",
                "verdict",
                "signature"
            ],
            &rows
        )
    );
    if all_ok {
        println!(
            "PASS: every configuration produced one signature and one race digest across all runs."
        );
    } else {
        println!("FAIL: some configuration diverged!");
        std::process::exit(1);
    }
}
