//! §5.1 determinism experiment: run *racey* repeatedly with 2, 4 and 8
//! threads under both RFDet monitoring modes (plus DThreads and the
//! quantum backend for comparison) and verify every run produces the
//! same signature. The paper runs 1000 repetitions per configuration;
//! default here is 30 (`--runs N` to change), with jitter injection
//! varied across runs to stress physical timing.

use rfdet_api::DmtBackend;
use rfdet_bench::{bench_config, render_table, BenchOpts};
use rfdet_core::RfdetBackend;
use rfdet_dthreads::DthreadsBackend;
use rfdet_quantum::QuantumBackend;
use rfdet_workloads::{by_name, Params};

fn main() {
    let opts = BenchOpts::from_args();
    let racey = by_name("racey").expect("racey registered");
    let backends: Vec<Box<dyn DmtBackend>> = vec![
        Box::new(RfdetBackend::ci()),
        Box::new(RfdetBackend::pf()),
        Box::new(DthreadsBackend),
        Box::new(QuantumBackend),
    ];
    println!(
        "racey determinism: {} runs per configuration, jitter varied per run\n",
        opts.runs
    );
    let mut rows = Vec::new();
    let mut all_ok = true;
    for backend in &backends {
        for threads in [2usize, 4, 8] {
            let mut signatures = std::collections::HashSet::new();
            let mut first = String::new();
            for run in 0..opts.runs {
                let mut cfg = bench_config();
                // Vary physical timing run to run.
                cfg.jitter_seed = if run % 2 == 0 {
                    None
                } else {
                    Some(u64::from(run))
                };
                let out =
                    backend.run_expect(&cfg, (racey.factory)(Params::new(threads, opts.size)));
                let sig = String::from_utf8_lossy(&out.output).trim().to_owned();
                if run == 0 {
                    first = sig.clone();
                }
                signatures.insert(sig);
            }
            let ok = signatures.len() == 1;
            all_ok &= ok;
            rows.push(vec![
                backend.name(),
                threads.to_string(),
                opts.runs.to_string(),
                signatures.len().to_string(),
                if ok {
                    "DETERMINISTIC".into()
                } else {
                    "NONDETERMINISTIC".into()
                },
                first,
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "backend",
                "threads",
                "runs",
                "distinct",
                "verdict",
                "signature"
            ],
            &rows
        )
    );
    if all_ok {
        println!("PASS: every configuration produced one signature across all runs.");
    } else {
        println!("FAIL: some configuration diverged!");
        std::process::exit(1);
    }
}
