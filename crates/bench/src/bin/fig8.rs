//! Figure 8: scalability — speedup of 4- and 8-thread executions over
//! the 2-thread execution, for RFDet-ci and pthreads. The paper's claim:
//! RFDet's scalability is comparable to pthreads' (and `dedup`/`ferret`
//! are excluded at 8 threads; `lu-con` stands in for both LU variants).
//!
//! NOTE: on a single-CPU host neither backend can show real speedup;
//! the reproducible claim becomes "RFDet's thread-count scaling curve
//! tracks pthreads'", i.e. the RFDet/pthreads ratio stays roughly flat
//! across thread counts (see EXPERIMENTS.md).

use rfdet_api::DmtBackend;
use rfdet_bench::{bench_config, ms, render_table, time_workload, BenchOpts};
use rfdet_core::RfdetBackend;
use rfdet_native::NativeBackend;
use rfdet_workloads::{benchmarks, Params};

fn main() {
    let opts = BenchOpts::from_args();
    let cfg = bench_config();
    // Paper: dedup and ferret dropped (memory at 8 threads), lu-con
    // represents lu-non.
    let apps: Vec<_> = opts
        .selected(benchmarks())
        .into_iter()
        .filter(|w| !matches!(w.name, "dedup" | "ferret" | "lu-non"))
        .collect();
    println!(
        "Figure 8: speedup over the 2-thread run ({} reps, {:?} inputs)\n",
        opts.reps, opts.size
    );
    let mut rows = Vec::new();
    for w in apps {
        let mut cells = vec![w.name.to_owned()];
        let mut base2 = [0.0f64; 2];
        for (bi, backend) in [
            &RfdetBackend::ci() as &dyn DmtBackend,
            &NativeBackend as &dyn DmtBackend,
        ]
        .iter()
        .enumerate()
        {
            for (ti, threads) in [2usize, 4, 8].iter().enumerate() {
                let (t, _) = time_workload(
                    *backend,
                    &cfg,
                    &w,
                    Params::new(*threads, opts.size),
                    opts.reps,
                );
                if ti == 0 {
                    base2[bi] = t.as_secs_f64();
                    cells.push(ms(t));
                } else {
                    cells.push(format!("{:.2}x", base2[bi] / t.as_secs_f64()));
                }
            }
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "RFDet 2t(ms)",
                "RFDet 4t",
                "RFDet 8t",
                "pthreads 2t(ms)",
                "pthreads 4t",
                "pthreads 8t",
            ],
            &rows
        )
    );
    println!("(values >1x = faster than the 2-thread run of the same backend)");
}
