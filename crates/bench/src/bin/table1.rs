//! Table 1: profiling data of benchmark executions at 4 threads —
//! synchronization-operation counts, memory-operation counts, stores
//! that triggered a page copy, memory footprint, and GC activity.
//!
//! Columns mirror the paper: lock/unlock, wait/signal, fork/join, mem
//! (loads+stores), loads, stores, store-w/copy, then footprint for
//! pthreads / RFDet / DThreads and the RFDet GC count — plus the
//! metrics layer's phase attribution for the RFDet run (each
//! deterministic phase's share of attributable runtime overhead).

use rfdet_api::obs::Phase;
use rfdet_api::DmtBackend;
use rfdet_bench::{bench_config, render_table, BenchOpts};
use rfdet_core::RfdetBackend;
use rfdet_dthreads::DthreadsBackend;
use rfdet_native::NativeBackend;
use rfdet_workloads::{benchmarks, Params};

fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

fn main() {
    let opts = BenchOpts::from_args();
    let cfg = bench_config();
    println!(
        "Table 1: profiling data ({} threads, {:?} inputs)\n",
        opts.threads, opts.size
    );
    let mut rows = Vec::new();
    let mut rf_cfg = cfg.clone();
    rf_cfg.metrics = true; // phase-attribution columns ride on the RFDet run
    for w in opts.selected(benchmarks()) {
        let params = Params::new(opts.threads, opts.size);
        let rf = RfdetBackend::ci().run_expect(&rf_cfg, (w.factory)(params));
        let dt = DthreadsBackend.run_expect(&cfg, (w.factory)(params));
        let nat = NativeBackend.run_expect(&cfg, (w.factory)(params));
        let s = rf.stats;
        let page = cfg.page_size;
        // Footprints: pthreads = the app's real shared footprint (the
        // DThreads engine's materialized global store stands in for it,
        // since workloads lay out static data directly); RFDet = private
        // page copies + metadata peak; DThreads = private pages + global
        // store.
        let _ = nat;
        let pthreads_fp = dt.stats.shared_bytes;
        let rfdet_fp = s.private_pages * page + s.peak_meta_bytes;
        let dthreads_fp = dt.stats.private_pages * page + dt.stats.shared_bytes;
        let frac = |p: Phase| -> String {
            rf.metrics
                .as_ref()
                .and_then(|m| {
                    m.attribution()
                        .into_iter()
                        .find(|(name, _, _)| name == p.metric_name())
                })
                .map_or_else(|| "-".to_owned(), |(_, _, f)| format!("{:.0}", f * 100.0))
        };
        rows.push(vec![
            w.name.to_owned(),
            format!("{}/{}", s.locks, s.unlocks),
            format!("{}/{}", s.waits, s.signals),
            s.atomics.to_string(),
            format!("{}/{}", s.forks, s.joins),
            s.mem_ops().to_string(),
            s.loads.to_string(),
            s.stores.to_string(),
            s.stores_with_copy.to_string(),
            mb(s.diff_bytes_scanned),
            mb(s.snapshot_bytes_copied),
            format!("{:.0}", s.snapshot_pool_hit_rate() * 100.0),
            mb(pthreads_fp),
            mb(rfdet_fp),
            mb(dthreads_fp),
            s.gc_count.to_string(),
            frac(Phase::WaitTurn),
            frac(Phase::Diff),
            frac(Phase::Snapshot),
            frac(Phase::Propagation),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "lock/unlock",
                "wait/signal",
                "atomic",
                "fork/join",
                "mem",
                "load",
                "store",
                "store w/copy",
                "diff(MB)",
                "snap(MB)",
                "pool hit%",
                "pthreads(MB)",
                "RFDet(MB)",
                "DThreads(MB)",
                "GC",
                "wait%",
                "diff%",
                "snap%",
                "prop%",
            ],
            &rows
        )
    );
    println!(
        "notes: footprints are the materialized global store (pthreads), private pages\n\
         + peak metadata (RFDet), private pages + global store (DThreads);\n\
         diff(MB)/snap(MB) are bytes the end-slice diff kernel scanned and bytes the\n\
         first-write instrumentation snapshotted; pool hit% is how often a snapshot\n\
         buffer came from the recycling pool instead of a fresh allocation;\n\
         the paper's expectations to check: stores ≪ loads, store-w/copy ≪ stores,\n\
         RFDet footprint > DThreads footprint > pthreads footprint;\n\
         wait%/diff%/snap%/prop% attribute the RFDet run's deterministic-machinery\n\
         time (turn stalls, end-slice diffs, page snapshots, propagation) as shares\n\
         of total attributable overhead, from the metrics layer."
    );
}
