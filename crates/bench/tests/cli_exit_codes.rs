//! Direct coverage of the replay CLI's exit-code contract, in
//! particular the wedged path (code 4): a deliberately-hung workload
//! under `--timeout` must exit 4 — not 1 (diverged) and not 3 (io).
//! Exercised against the real binary so the process-level `exit` calls
//! are what's tested, not library plumbing.

use std::process::Command;

fn replay(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_replay"))
        .args(args)
        .env("RUST_BACKTRACE", "0")
        .output()
        .expect("spawn replay binary")
}

#[test]
fn hung_workload_under_timeout_exits_wedged_not_diverged() {
    let out = replay(&["record", "chaos.hang@2", "--timeout", "500"]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("wedged"),
        "the wedged verdict is stated"
    );
}

#[test]
fn clean_run_exits_zero() {
    let out = replay(&["record", "chaos.lock_panic@2", "--timeout", "30000"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean run"));
}

#[test]
fn injected_failure_exits_diverged() {
    let out = replay(&["record", "chaos.lock_panic@2", "--panic", "1:3"]);
    assert_eq!(out.status.code(), Some(1), "typed failure is class 1");
}

#[test]
fn unknown_workload_exits_usage() {
    let out = replay(&["record", "nonesuch@2"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unreadable_trace_exits_io() {
    let out = replay(&["replay", "/nonexistent/trace.bin"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn failover_on_the_service_ledger_converges() {
    // Crash worker 2 in the last request round at 4 threads (op
    // 1 + 5·23 + 2): restore from epoch 6, replay the tail, converge.
    let out = replay(&[
        "failover",
        "service.ledger@4",
        "--panic",
        "2:118",
        "--every",
        "2",
        "--timeout",
        "60000",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("FAILOVER CONVERGED"), "{stdout}");
    assert!(
        stdout.contains("recovered from checkpoint epoch 6"),
        "{stdout}"
    );
}

#[test]
fn tiny_sweep_classifies_without_wedge_or_divergence() {
    let dir = std::env::temp_dir().join(format!("rfdet-sweep-test-{}", std::process::id()));
    let out_path = dir.join("sweep.json");
    std::fs::create_dir_all(&dir).expect("create sweep dir");
    let out = replay(&[
        "sweep",
        "service.ledger@2",
        "--plans",
        "12",
        "--timeout",
        "30000",
        "--out",
        out_path.to_str().expect("utf8 path"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("SWEEP OK"), "{stdout}");
    let report = std::fs::read_to_string(&out_path).expect("sweep report written");
    assert!(report.contains("\"diverged\": 0"), "{report}");
    assert!(report.contains("\"wedged\": 0"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}
