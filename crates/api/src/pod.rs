//! Plain-old-data values that can live in the logical shared space.

/// A fixed-size value with a defined little-endian byte representation.
///
/// The C++ memory model defines memory actions over scalars, and the paper
/// tracks modifications at byte granularity for exactly that reason (§4.6).
/// `Pod` is the typed veneer: every access is converted to/from bytes at
/// the API boundary, so backends only ever see byte reads and writes.
///
/// Implemented without `unsafe` via the integer `to_le_bytes` family.
pub trait Pod: Copy + Sized + 'static {
    /// Size of the value in bytes (`== std::mem::size_of::<Self>()` for all
    /// provided impls).
    const SIZE: usize;

    /// Serializes into `out`, which has length `Self::SIZE`.
    fn store(self, out: &mut [u8]);

    /// Deserializes from `bytes`, which has length `Self::SIZE`.
    fn load(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn store(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn load(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("Pod::load length"))
            }
        }
    )*};
}

impl_pod_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Pod for bool {
    const SIZE: usize = 1;
    #[inline]
    fn store(self, out: &mut [u8]) {
        out[0] = u8::from(self);
    }
    #[inline]
    fn load(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Pod + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.store(&mut buf);
        assert_eq!(T::load(&buf), v);
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0xABu8);
        roundtrip(-7i8);
        roundtrip(0xBEEFu16);
        roundtrip(-12345i16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(i32::MIN);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN + 1);
    }

    #[test]
    fn float_roundtrips() {
        roundtrip(std::f32::consts::PI);
        roundtrip(-0.0f64);
        roundtrip(f64::MAX);
    }

    #[test]
    fn bool_roundtrip() {
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn little_endian_layout() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.store(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }

    #[test]
    fn byte_granularity_merge_example_from_paper() {
        // §4.6: y=256 (thread T2) and y=255 (thread T3) merged at byte
        // granularity over initial y=0 yields 511. Reproduce the arithmetic
        // that makes that happen: T3's diff touches byte 0 only, T2's diff
        // touches byte 1 only.
        let mut base = [0u8; 4];
        let mut w2 = [0u8; 4];
        256u32.store(&mut w2);
        let mut w3 = [0u8; 4];
        255u32.store(&mut w3);
        // diff-and-apply both writers' modified bytes onto the base
        for i in 0..4 {
            if w3[i] != 0 {
                base[i] = w3[i];
            }
            if w2[i] != 0 {
                base[i] = w2[i];
            }
        }
        assert_eq!(u32::load(&base), 511);
    }
}
