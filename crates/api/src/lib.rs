//! The backend-independent DMT programming surface.
//!
//! RFDet (the paper) interposes on POSIX pthreads: programs call
//! `pthread_mutex_lock`, `pthread_create`, … and the runtime substitutes
//! deterministic implementations. In this reproduction the equivalent
//! surface is the [`DmtCtx`] trait: workloads are written once against
//! `&mut dyn DmtCtx` and can then run on any backend —
//!
//! * `rfdet-core` — the paper's contribution (DLRC, no global barriers),
//! * `rfdet-dthreads` — the DThreads comparison point,
//! * `rfdet-quantum` — a CoreDet/DMP-style lockstep-quantum design,
//! * `rfdet-native` — plain nondeterministic "pthreads".
//!
//! Shared memory is a flat logical byte space addressed by [`Addr`];
//! deterministic backends give every thread a private view of it and
//! propagate modifications according to their memory model. `tick`
//! models the compile-time instruction-count instrumentation the paper
//! inserts in every basic block (§4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod backend;
mod config;
mod ctx;
mod error;
mod fault;
mod metrics;
mod pod;
mod race;
mod record;
mod retry;
mod rng;
mod stats;

pub use backend::{DmtBackend, Replay, RunOutput, TracedRun};
pub use config::{MonitorMode, RfdetOpts, RunConfig};
pub use ctx::{AtomicOp, BarrierId, CondId, DmtCtx, DmtCtxExt, MutexId, ThreadFn, ThreadHandle};
pub use error::{FailureKind, FailureReport, RunError, ThreadReport, WaitEdge, WaitTarget};
pub use fault::{FaultAction, FaultPlan, FaultSpec, SyncOpFault};
pub use metrics::{finish_metrics, obs_sink};
pub use pod::Pod;
pub use race::{races_digest, render_races, AccessKind, RaceReport, RaceSite};
pub use record::{finish_trace, trace_sink};
pub use retry::RetryPolicy;
pub use rng::DetRng;
pub use stats::Stats;

pub use rfdet_obs as obs;
pub use rfdet_trace as trace;
pub use rfdet_trace::RunTrace;
pub use rfdet_vclock::Tid;

/// A byte address in the logical shared memory space.
pub type Addr = u64;
