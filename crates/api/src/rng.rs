//! A tiny deterministic PRNG for workloads and jitter injection.

/// SplitMix64 — a fast, high-quality 64-bit PRNG with trivially
/// reproducible state.
///
/// Workloads use this (never wall-clock or OS entropy) so that a workload's
/// behaviour is a pure function of its inputs — the paper's broad notion of
/// *input* includes pseudo-random seeds (§3.4).
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift: adequate uniformity for workload generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Splits off an independent generator (for per-thread streams).
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = DetRng::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn next_below_zero_panics() {
        DetRng::new(0).next_below(0);
    }

    #[test]
    fn rough_uniformity() {
        // Not a statistical test — just a sanity check that all buckets of
        // next_below are reachable.
        let mut r = DetRng::new(123);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
