//! Flight-recorder assembly, shared by every backend.
//!
//! A backend's `run_traced` does three recorder-specific things, all
//! through this module: create the sink when [`RunConfig::trace`] is on
//! ([`trace_sink`]), hand each thread context a `TraceBuf` draining into
//! it, and call [`finish_trace`] once the run has a result — which
//! assembles the [`RunTrace`], persists it when the run failed, and
//! stamps the persisted path into the `FailureReport`.

use crate::{RunConfig, RunError, RunOutput};
use rfdet_trace::{persist, FailureSummary, RunTrace, TraceSink, KIND_NONE};
use std::sync::Arc;

/// The run's event sink — `Some` exactly when the config asks for a
/// recording. Backends thread the `Arc` into every context they create.
#[must_use]
pub fn trace_sink(cfg: &RunConfig) -> Option<Arc<TraceSink>> {
    cfg.trace.as_ref().map(|_| Arc::new(TraceSink::default()))
}

/// Assembles the run's [`RunTrace`] from the drained sink, persists it
/// when the run failed (atomic rename; best effort — a full disk must
/// not turn a reproducible failure into an I/O panic), and stamps the
/// persisted path into the error's report. A persist failure degrades
/// to a warning on the report instead of vanishing silently. Returns
/// `None` when the run was not recording.
pub fn finish_trace(
    backend: &str,
    cfg: &RunConfig,
    sink: Option<&Arc<TraceSink>>,
    result: &mut Result<RunOutput, RunError>,
) -> Option<Box<RunTrace>> {
    let sink = sink?;
    let failure = match result {
        Ok(out) => FailureSummary {
            kind: KIND_NONE,
            tid: 0,
            report_digest: out.output_digest(),
        },
        Err(e) => FailureSummary {
            kind: e.report().kind.code(),
            tid: e.report().tid,
            report_digest: e.report_digest(),
        },
    };
    let trace = RunTrace {
        backend: backend.to_owned(),
        workload: cfg.trace.clone().unwrap_or_default(),
        seed: cfg.jitter_seed,
        config: cfg.trace_config(),
        faults: cfg.fault_plan.to_trace_faults(),
        events: sink.drain_sorted(),
        failure,
    };
    if let Err(e) = result {
        match persist::save(&trace) {
            Ok(path) => e.report_mut().trace_path = Some(path),
            Err(io) => e
                .report_mut()
                .warnings
                .push(format!("trace not persisted: {io}")),
        }
    }
    Some(Box::new(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureKind, FailureReport, FaultPlan};
    use rfdet_trace::KIND_PANIC;

    fn failing_result() -> Result<RunOutput, RunError> {
        Err(RunError::from_report(FailureReport {
            backend: "test".to_owned(),
            kind: FailureKind::Panic,
            tid: 1,
            message: "boom".to_owned(),
            culprit: None,
            wait_graph: Vec::new(),
            cycle: Vec::new(),
            peers: Vec::new(),
            trace_path: None,
            warnings: Vec::new(),
        }))
    }

    #[test]
    fn disabled_recorder_yields_no_trace() {
        let cfg = RunConfig::small();
        assert!(trace_sink(&cfg).is_none());
        let mut result = failing_result();
        assert!(finish_trace("test", &cfg, None, &mut result).is_none());
        assert!(result.unwrap_err().report().trace_path.is_none());
    }

    #[test]
    fn failing_run_persists_and_stamps_the_path() {
        let dir = std::env::temp_dir().join(format!("rfdet-record-test-{}", std::process::id()));
        // Serialized by test name uniqueness; the env var is process-wide
        // so this is the only test in the crate that may set it.
        std::env::set_var("RFDET_TRACE_DIR", &dir);
        let mut cfg = RunConfig::small();
        cfg.trace = Some("wl".to_owned());
        cfg.jitter_seed = Some(5);
        cfg.fault_plan = FaultPlan::new().panic_at(1, 0);
        let sink = trace_sink(&cfg).expect("recording on");
        let mut result = failing_result();
        let trace = finish_trace("test", &cfg, Some(&sink), &mut result).expect("trace");
        std::env::remove_var("RFDET_TRACE_DIR");

        assert_eq!(trace.workload, "wl");
        assert_eq!(trace.seed, Some(5));
        assert_eq!(trace.faults.len(), 1);
        assert_eq!(trace.failure.kind, KIND_PANIC);
        let err = result.unwrap_err();
        assert_eq!(trace.failure.report_digest, err.report_digest());
        let path = err.report().trace_path.clone().expect("path stamped");
        assert_eq!(persist::load(&path).expect("loads back"), *trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_run_is_traced_but_not_persisted() {
        let mut cfg = RunConfig::small();
        cfg.trace = Some("wl".to_owned());
        let sink = trace_sink(&cfg).expect("recording on");
        let mut result: Result<RunOutput, RunError> = Ok(RunOutput {
            output: b"ok".to_vec(),
            ..RunOutput::default()
        });
        let trace = finish_trace("test", &cfg, Some(&sink), &mut result).expect("trace");
        assert_eq!(trace.failure.kind, KIND_NONE);
        assert!(!trace.failure.is_failure());
        assert_eq!(
            trace.failure.report_digest,
            result.as_ref().map(RunOutput::output_digest).unwrap_or(0),
        );
    }
}
