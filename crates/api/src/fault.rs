//! Deterministic fault injection.
//!
//! A [`FaultPlan`] names points in the *deterministic* schedule — "thread
//! T's Nth synchronization operation", "thread T's Kth allocation" — and
//! attaches a fault to each: an injected panic, a failed allocation, or
//! extra logical-clock ticks (schedule jitter). Because the trigger is a
//! per-thread operation count rather than anything physical, an injected
//! fault lands at the same point of the same schedule on every rerun:
//! same config + same plan ⇒ the same failure, bit for bit. The
//! [`FaultPlan::random`] constructor derives a plan from a [`DetRng`]
//! seed for chaos sweeps — random across seeds, reproducible per seed.

use crate::{DetRng, Tid};
use rfdet_trace::{TraceFault, FAULT_FAIL_ALLOC, FAULT_JITTER, FAULT_PANIC};

/// What to inject at a trigger point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic when the thread starts its `op`-th synchronization
    /// operation (0-based count over lock/unlock/wait/signal/barrier/
    /// spawn/join/atomic/exit, in program order).
    PanicAtSyncOp {
        /// 0-based sync-op index within the thread.
        op: u64,
    },
    /// Fail (panic in) the thread's `nth` allocation, 0-based.
    FailAlloc {
        /// 0-based allocation index within the thread.
        nth: u64,
    },
    /// Charge `ticks` extra logical-clock ticks when the thread starts
    /// its `op`-th synchronization operation. Perturbs the deterministic
    /// schedule (turn order is a function of clocks) without failing
    /// anything — two runs with the same jitter plan still agree.
    JitterTicks {
        /// 0-based sync-op index within the thread.
        op: u64,
        /// Extra ticks to charge.
        ticks: u64,
    },
}

/// One fault: a target thread plus an action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The thread the fault applies to.
    pub tid: Tid,
    /// What happens and when.
    pub action: FaultAction,
}

/// What a backend must do at one sync-op trigger point (the merged view
/// of every matching [`FaultSpec`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncOpFault {
    /// Inject a panic (after charging any jitter).
    pub panic: bool,
    /// Extra ticks to charge first.
    pub jitter_ticks: u64,
}

/// A reproducible set of faults to inject into one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds "panic thread `tid` at its `op`-th sync op".
    #[must_use]
    pub fn panic_at(mut self, tid: Tid, op: u64) -> Self {
        self.specs.push(FaultSpec {
            tid,
            action: FaultAction::PanicAtSyncOp { op },
        });
        self
    }

    /// Adds "fail thread `tid`'s `nth` allocation".
    #[must_use]
    pub fn fail_alloc(mut self, tid: Tid, nth: u64) -> Self {
        self.specs.push(FaultSpec {
            tid,
            action: FaultAction::FailAlloc { nth },
        });
        self
    }

    /// Adds "charge `ticks` extra ticks at thread `tid`'s `op`-th sync
    /// op".
    #[must_use]
    pub fn jitter_at(mut self, tid: Tid, op: u64, ticks: u64) -> Self {
        self.specs.push(FaultSpec {
            tid,
            action: FaultAction::JitterTicks { op, ticks },
        });
        self
    }

    /// A plan built from explicit specs. The shrinker uses this to probe
    /// subsets of a recorded plan.
    #[must_use]
    pub fn from_specs(specs: Vec<FaultSpec>) -> Self {
        Self { specs }
    }

    /// A chaos-sweep plan: `count` faults drawn deterministically from
    /// `seed`, targeting tids below `threads` and sync ops below
    /// `max_op`. Roughly half the faults are panics, half are jitter
    /// bursts — rerunning with the same seed reproduces the plan (and
    /// therefore the run) exactly.
    ///
    /// Degenerate inputs are clamped rather than honored: zero threads,
    /// zero ops or a zero count would yield a plan that injects nothing,
    /// and a chaos sweep that silently injects nothing vacuously passes
    /// every downstream assertion. A random plan always carries at least
    /// one fault, targeting at least thread 0 at op 0.
    #[must_use]
    pub fn random(seed: u64, threads: u32, max_op: u64, count: usize) -> Self {
        let threads = u64::from(threads.max(1));
        let max_op = max_op.max(1);
        let count = count.max(1);
        let mut rng = DetRng::new(seed);
        let mut plan = Self::new();
        for _ in 0..count {
            let tid = rng.next_below(threads) as Tid;
            let op = rng.next_below(max_op);
            if rng.next_below(2) == 0 {
                plan = plan.panic_at(tid, op);
            } else {
                plan = plan.jitter_at(tid, op, 1 + rng.next_below(64));
            }
        }
        plan
    }

    /// `true` when the plan injects nothing (the hot-path fast check).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The raw specs.
    #[must_use]
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The merged fault at thread `tid`'s `op`-th sync op.
    #[must_use]
    pub fn on_sync_op(&self, tid: Tid, op: u64) -> SyncOpFault {
        let mut out = SyncOpFault::default();
        for s in &self.specs {
            if s.tid != tid {
                continue;
            }
            match s.action {
                FaultAction::PanicAtSyncOp { op: o } if o == op => out.panic = true,
                FaultAction::JitterTicks { op: o, ticks } if o == op => out.jitter_ticks += ticks,
                _ => {}
            }
        }
        out
    }

    /// `true` when thread `tid`'s `nth` allocation must fail.
    #[must_use]
    pub fn on_alloc(&self, tid: Tid, nth: u64) -> bool {
        self.specs.iter().any(|s| {
            s.tid == tid && matches!(s.action, FaultAction::FailAlloc { nth: n } if n == nth)
        })
    }

    /// This plan in the codec-stable numeric form recorded into a
    /// [`rfdet_trace::RunTrace`].
    #[must_use]
    pub fn to_trace_faults(&self) -> Vec<TraceFault> {
        self.specs
            .iter()
            .map(|s| match s.action {
                FaultAction::PanicAtSyncOp { op } => TraceFault {
                    tid: s.tid,
                    code: FAULT_PANIC,
                    a: op,
                    b: 0,
                },
                FaultAction::FailAlloc { nth } => TraceFault {
                    tid: s.tid,
                    code: FAULT_FAIL_ALLOC,
                    a: nth,
                    b: 0,
                },
                FaultAction::JitterTicks { op, ticks } => TraceFault {
                    tid: s.tid,
                    code: FAULT_JITTER,
                    a: op,
                    b: ticks,
                },
            })
            .collect()
    }

    /// Rebuilds a plan from recorded faults. Unknown fault codes (from a
    /// newer trace version) are dropped rather than misinterpreted.
    #[must_use]
    pub fn from_trace_faults(faults: &[TraceFault]) -> Self {
        let specs = faults
            .iter()
            .filter_map(|f| {
                let action = match f.code {
                    FAULT_PANIC => FaultAction::PanicAtSyncOp { op: f.a },
                    FAULT_FAIL_ALLOC => FaultAction::FailAlloc { nth: f.a },
                    FAULT_JITTER => FaultAction::JitterTicks {
                        op: f.a,
                        ticks: f.b,
                    },
                    _ => return None,
                };
                Some(FaultSpec { tid: f.tid, action })
            })
            .collect();
        Self { specs }
    }

    /// The canonical panic message for an injected sync-op fault (stable
    /// so report digests reproduce).
    #[must_use]
    pub fn panic_message(tid: Tid, op: u64) -> String {
        format!("injected fault: panic at t{tid} sync op {op}")
    }

    /// The canonical panic message for an injected allocation failure.
    #[must_use]
    pub fn alloc_panic_message(tid: Tid, nth: u64) -> String {
        format!("injected fault: allocation {nth} failed on t{tid}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_triggers_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.on_sync_op(0, 0), SyncOpFault::default());
        assert!(!p.on_alloc(0, 0));
    }

    #[test]
    fn builder_triggers_exactly_at_the_named_points() {
        let p = FaultPlan::new()
            .panic_at(1, 3)
            .jitter_at(1, 3, 10)
            .jitter_at(2, 0, 7)
            .fail_alloc(1, 2);
        assert!(!p.is_empty());
        let f = p.on_sync_op(1, 3);
        assert!(f.panic);
        assert_eq!(f.jitter_ticks, 10);
        assert!(!p.on_sync_op(1, 2).panic);
        assert_eq!(p.on_sync_op(2, 0).jitter_ticks, 7);
        assert!(p.on_alloc(1, 2));
        assert!(!p.on_alloc(1, 1));
        assert!(!p.on_alloc(2, 2));
    }

    #[test]
    fn jitter_on_same_point_accumulates() {
        let p = FaultPlan::new().jitter_at(0, 5, 3).jitter_at(0, 5, 4);
        assert_eq!(p.on_sync_op(0, 5).jitter_ticks, 7);
    }

    #[test]
    fn random_plans_reproduce_per_seed() {
        let a = FaultPlan::random(42, 4, 100, 8);
        let b = FaultPlan::random(42, 4, 100, 8);
        assert_eq!(a, b);
        assert_eq!(a.specs().len(), 8);
        let c = FaultPlan::random(43, 4, 100, 8);
        assert_ne!(a, c, "different seeds should give different plans");
        for s in a.specs() {
            assert!(u64::from(s.tid) < 4);
        }
    }

    #[test]
    fn random_clamps_degenerate_inputs() {
        // Zero threads / ops / count used to yield plans that silently
        // injected nothing; now they clamp to the smallest real sweep.
        let p = FaultPlan::random(7, 0, 0, 0);
        assert!(!p.is_empty(), "degenerate chaos plan must still inject");
        assert_eq!(p.specs().len(), 1);
        for s in p.specs() {
            assert_eq!(s.tid, 0, "zero threads clamps to thread 0");
            match s.action {
                FaultAction::PanicAtSyncOp { op } => assert_eq!(op, 0),
                FaultAction::JitterTicks { op, .. } => assert_eq!(op, 0),
                FaultAction::FailAlloc { .. } => panic!("random never fails allocs"),
            }
        }
        // Clamping is per-argument: a real count with zero ops still
        // produces `count` faults, all at op 0.
        assert_eq!(FaultPlan::random(8, 4, 0, 5).specs().len(), 5);
    }

    #[test]
    fn trace_faults_round_trip() {
        let p = FaultPlan::new()
            .panic_at(1, 3)
            .fail_alloc(2, 0)
            .jitter_at(0, 9, 41);
        let faults = p.to_trace_faults();
        assert_eq!(faults.len(), 3);
        assert_eq!(FaultPlan::from_trace_faults(&faults), p);
        // Unknown codes are dropped, not misread.
        let mut with_unknown = faults.clone();
        with_unknown.push(TraceFault {
            tid: 0,
            code: 99,
            a: 0,
            b: 0,
        });
        assert_eq!(FaultPlan::from_trace_faults(&with_unknown), p);
    }

    #[test]
    fn from_specs_preserves_order() {
        let p = FaultPlan::new().panic_at(1, 3).jitter_at(2, 0, 7);
        let rebuilt = FaultPlan::from_specs(p.specs().to_vec());
        assert_eq!(rebuilt, p);
    }

    #[test]
    fn panic_messages_are_stable() {
        assert_eq!(
            FaultPlan::panic_message(2, 9),
            "injected fault: panic at t2 sync op 9"
        );
        assert_eq!(
            FaultPlan::alloc_panic_message(1, 0),
            "injected fault: allocation 0 failed on t1"
        );
    }
}
