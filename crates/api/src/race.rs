//! Typed data-race reports.
//!
//! A deterministic backend running with [`crate::RunConfig::detect_races`]
//! attaches a [`RaceReport`] to the [`crate::RunOutput`] for every pair of
//! conflicting accesses not ordered by its happens-before relation. Because
//! the schedule itself is deterministic, a report is reproducible by
//! construction: re-running the same workload under the same configuration
//! yields the same reports at the same logical coordinates, and the
//! coordinates are *backend-independent* — the sync-op index of the
//! synchronization operation that sealed each access's slice is a property
//! of the program, not of the backend's clock discipline. [`RaceReport::digest`]
//! covers exactly the backend-independent fields, so the cross-backend
//! oracle tests can compare reports from DLRC, DThreads and CoreDet-q
//! bit-for-bit.

use crate::Addr;
use rfdet_vclock::Tid;
use std::fmt;

/// Which side of a conflicting pair an access was.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// The access read the word.
    Read,
    /// The access wrote (part of) the word.
    Write,
}

impl AccessKind {
    fn code(self) -> u8 {
        match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// One side of a race: which thread touched the word, and *when* in the
/// program's own logical time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaceSite {
    /// Deterministic thread id of the accessor.
    pub tid: Tid,
    /// Logical coordinate: the per-thread synchronization-operation index
    /// at which the access's slice was sealed (the sync op that ended the
    /// sync-free interval containing the access). Identical across
    /// deterministic backends for the same program.
    pub sync_op: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// The accessor's own logical-clock component when the slice sealed
    /// (Kendo clock on DLRC, phase clock on the lockstep backends).
    /// Diagnostic only — tick disciplines differ per backend, so this is
    /// deliberately *excluded* from [`RaceReport::digest`].
    pub clock: u64,
}

impl RaceSite {
    /// Digest-relevant projection, ordered so site canonicalization and
    /// hashing agree.
    fn key(&self) -> (Tid, u64, u8) {
        (self.tid, self.sync_op, self.kind.code())
    }
}

/// A pair of conflicting, happens-before-unordered accesses to one
/// machine word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Word-aligned byte address of the contested word.
    pub addr: Addr,
    /// Page index (`addr / page_size`).
    pub page: u64,
    /// Byte offset within the page.
    pub offset: u64,
    /// The site that was applied first (canonical order: smaller
    /// `(tid, sync_op, kind)` key).
    pub first: RaceSite,
    /// The other site.
    pub second: RaceSite,
}

impl RaceReport {
    /// Orders the two sites canonically so the report compares and
    /// digests identically regardless of which side a backend observed
    /// first. Returns `self` for builder-style use.
    #[must_use]
    pub fn canonical(mut self) -> Self {
        if self.second.key() < self.first.key() {
            std::mem::swap(&mut self.first, &mut self.second);
        }
        self
    }

    /// A rerun-stable 64-bit digest (FNV-1a) over the backend-independent
    /// fields: the word address and both sites' `(tid, sync_op, kind)` in
    /// canonical order. `clock` is excluded — tick counts are a backend
    /// property, not a program property.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let (a, b) = if self.second.key() < self.first.key() {
            (&self.second, &self.first)
        } else {
            (&self.first, &self.second)
        };
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.addr);
        for s in [a, b] {
            mix(u64::from(s.tid));
            mix(s.sync_op);
            mix(u64::from(s.kind.code()));
        }
        h
    }

    /// One human-readable line: `race @0x00001040 (page 1 +0x40) t1 write@op3 <-> t2 read@op5 digest=…`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "race @{:#010x} (page {} +{:#x}) t{} {}@op{} <-> t{} {}@op{} digest={:016x}",
            self.addr,
            self.page,
            self.offset,
            self.first.tid,
            self.first.kind,
            self.first.sync_op,
            self.second.tid,
            self.second.kind,
            self.second.sync_op,
            self.digest(),
        )
    }
}

/// A combined order-sensitive digest over a whole report list (FNV-1a of
/// the per-report digests). The rerun-stability tests compare this one
/// number instead of walking report lists.
#[must_use]
pub fn races_digest(reports: &[RaceReport]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in reports {
        for byte in r.digest().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Renders a report list as the text sidecar persisted alongside
/// flight-recorder traces: one [`RaceReport::render`] line per race,
/// preceded by a count header.
#[must_use]
pub fn render_races(reports: &[RaceReport]) -> String {
    let mut out = format!("{} race(s)\n", reports.len());
    for r in reports {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(tid: Tid, sync_op: u64, kind: AccessKind, clock: u64) -> RaceSite {
        RaceSite {
            tid,
            sync_op,
            kind,
            clock,
        }
    }

    fn report(first: RaceSite, second: RaceSite) -> RaceReport {
        RaceReport {
            addr: 0x1040,
            page: 1,
            offset: 0x40,
            first,
            second,
        }
    }

    #[test]
    fn digest_is_site_order_independent() {
        let a = site(1, 3, AccessKind::Write, 10);
        let b = site(2, 5, AccessKind::Read, 99);
        assert_eq!(report(a, b).digest(), report(b, a).digest());
        assert_eq!(report(b, a).canonical(), report(a, b));
    }

    #[test]
    fn digest_ignores_clock_but_not_coordinates() {
        let a = site(1, 3, AccessKind::Write, 10);
        let b = site(2, 5, AccessKind::Read, 99);
        let base = report(a, b);
        let mut reclocked = base.clone();
        reclocked.first.clock = 77;
        assert_eq!(base.digest(), reclocked.digest(), "clock is diagnostic");
        let mut moved = base.clone();
        moved.second.sync_op = 6;
        assert_ne!(base.digest(), moved.digest());
        let mut other_word = base.clone();
        other_word.addr = 0x1048;
        assert_ne!(base.digest(), other_word.digest());
        let mut other_kind = base;
        other_kind.second.kind = AccessKind::Write;
        assert_ne!(other_kind.digest(), report(a, b).digest());
    }

    #[test]
    fn list_digest_covers_every_report() {
        let a = site(1, 3, AccessKind::Write, 0);
        let b = site(2, 5, AccessKind::Read, 0);
        let r = report(a, b);
        assert_ne!(races_digest(&[]), races_digest(std::slice::from_ref(&r)));
        assert_ne!(
            races_digest(std::slice::from_ref(&r)),
            races_digest(&[r.clone(), r.clone()])
        );
        assert_eq!(races_digest(std::slice::from_ref(&r)), races_digest(&[r]));
    }

    #[test]
    fn render_mentions_both_sites() {
        let text = report(
            site(1, 3, AccessKind::Write, 0),
            site(2, 5, AccessKind::Read, 0),
        )
        .render();
        assert!(text.contains("t1 write@op3"), "{text}");
        assert!(text.contains("t2 read@op5"), "{text}");
        let sidecar = render_races(&[]);
        assert!(sidecar.starts_with("0 race(s)"), "{sidecar}");
    }
}
