//! The [`DmtCtx`] trait — the per-thread view of a DMT runtime.

use crate::{Addr, Pod, Tid};

/// Identifier of a mutex in the shared synchronization-variable table.
///
/// The paper maps each application synchronization variable to an *internal
/// synchronization variable* in the metadata space (§4.1); `MutexId` is the
/// key of that mapping. IDs are chosen by the application (any `u32`), so a
/// program can address an unbounded set of logical mutexes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MutexId(pub u32);

/// Identifier of a condition variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CondId(pub u32);

/// Identifier of a barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BarrierId(pub u32);

/// A read-modify-write operation on a 64-bit atomic cell.
///
/// Part of the low-level-atomics extension the paper leaves as future
/// work (§4.6, §6): "we must use the Kendo algorithm to ensure that
/// atomic operations happen in a deterministic order, and we must
/// propagate memory modifications … depending on whether the atomic
/// operation being executed is an *acquire* and/or a *release*".
/// Every [`DmtCtx::atomic_rmw`] is both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicOp {
    /// `fetch_add` (wrapping).
    Add(u64),
    /// `fetch_sub` (wrapping).
    Sub(u64),
    /// `swap`.
    Exchange(u64),
    /// `compare_exchange`: stores `new` iff the current value equals
    /// `expected`. The returned old value tells the caller whether it
    /// succeeded.
    CompareExchange {
        /// Value the cell must currently hold.
        expected: u64,
        /// Replacement stored on success.
        new: u64,
    },
    /// `fetch_and`.
    And(u64),
    /// `fetch_or`.
    Or(u64),
    /// `fetch_xor`.
    Xor(u64),
    /// `fetch_max`.
    Max(u64),
    /// `fetch_min`.
    Min(u64),
}

impl AtomicOp {
    /// The pure update function: new cell value for an old one.
    #[must_use]
    pub fn apply(self, old: u64) -> u64 {
        match self {
            AtomicOp::Add(v) => old.wrapping_add(v),
            AtomicOp::Sub(v) => old.wrapping_sub(v),
            AtomicOp::Exchange(v) => v,
            AtomicOp::CompareExchange { expected, new } => {
                if old == expected {
                    new
                } else {
                    old
                }
            }
            AtomicOp::And(v) => old & v,
            AtomicOp::Or(v) => old | v,
            AtomicOp::Xor(v) => old ^ v,
            AtomicOp::Max(v) => old.max(v),
            AtomicOp::Min(v) => old.min(v),
        }
    }
}

/// Handle returned by [`DmtCtx::spawn`], consumed by [`DmtCtx::join`].
///
/// Wraps the deterministic thread ID the runtime assigned to the child
/// (the paper: "we assign each new thread a deterministic thread ID —
/// calling `pthread_self` will return this ID", §4.1).
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct ThreadHandle(pub Tid);

/// Entry point of a spawned thread.
pub type ThreadFn = Box<dyn FnOnce(&mut dyn DmtCtx) + Send + 'static>;

/// The per-thread runtime interface: the reproduction's equivalent of the
/// interposed pthreads API plus instrumented loads/stores.
///
/// All addresses refer to the logical shared space. Deterministic backends
/// resolve reads against the thread's private view; `native` resolves them
/// against real shared memory.
///
/// # Panics
///
/// Implementations panic on API misuse that would be undefined behaviour
/// under pthreads: unlocking a mutex the thread does not hold, waiting on a
/// condition variable without holding the mutex, joining a handle twice,
/// or accessing memory outside the configured space.
pub trait DmtCtx {
    /// The calling thread's deterministic thread ID (main thread is 0).
    fn tid(&self) -> Tid;

    /// Advances the thread's logical instruction count by `n`.
    ///
    /// Models the `instrTick(k)` call the paper's compiler inserts in every
    /// basic block (§4.1). Workloads call this in compute loops so that
    /// Kendo arbitration sees the relative progress of each thread.
    fn tick(&mut self, n: u64);

    /// Reads `buf.len()` bytes at `addr` from shared memory (this thread's
    /// view of it).
    fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]);

    /// Writes `data` at `addr` into shared memory (this thread's view).
    ///
    /// In deterministic backends this is the instrumented `Store` of paper
    /// Figure 4: the first write to a page within a slice snapshots the
    /// page for later diffing.
    fn write_bytes(&mut self, addr: Addr, data: &[u8]);

    /// Acquires a mutex (deterministically, in deterministic backends).
    fn lock(&mut self, m: MutexId);

    /// Releases a mutex held by this thread.
    fn unlock(&mut self, m: MutexId);

    /// Atomically releases `m` and blocks until signalled on `c`;
    /// re-acquires `m` before returning.
    fn cond_wait(&mut self, c: CondId, m: MutexId);

    /// Wakes one waiter of `c` (deterministically the longest-waiting one).
    fn cond_signal(&mut self, c: CondId);

    /// Wakes all waiters of `c`.
    fn cond_broadcast(&mut self, c: CondId);

    /// Waits until `parties` threads have arrived at barrier `b`.
    fn barrier(&mut self, b: BarrierId, parties: usize);

    /// Spawns a new thread running `f`; returns its handle.
    fn spawn(&mut self, f: ThreadFn) -> ThreadHandle;

    /// Blocks until the thread behind `h` finishes; its memory
    /// modifications become visible to the caller.
    fn join(&mut self, h: ThreadHandle);

    /// Allocates `size` bytes (aligned to `align`, a power of two) from the
    /// shared allocator and returns the logical address.
    fn alloc(&mut self, size: u64, align: u64) -> Addr;

    /// Returns a previously allocated block to the shared allocator.
    fn dealloc(&mut self, addr: Addr);

    /// Appends bytes to this thread's output stream. Streams are
    /// concatenated in thread-ID order into [`crate::RunOutput::output`],
    /// so output is deterministic whenever per-thread content is.
    fn emit(&mut self, bytes: &[u8]);

    /// Atomically applies `op` to the 8-byte-aligned cell at `addr` and
    /// returns the **old** value. Acquire *and* release semantics: the
    /// caller synchronizes with the previous atomic on the same cell, and
    /// its own modifications become visible to the next one.
    ///
    /// This is the §4.6/§6 extension: with it, ad hoc and lock-free
    /// synchronization (spinlocks, lock-free counters/stacks) execute
    /// correctly and deterministically, which the paper's base system
    /// explicitly does not support.
    fn atomic_rmw(&mut self, addr: Addr, op: AtomicOp) -> u64;

    /// Atomic load with acquire semantics (synchronizes with the cell's
    /// last release).
    fn atomic_load(&mut self, addr: Addr) -> u64;

    /// Atomic store with release semantics.
    fn atomic_store(&mut self, addr: Addr, value: u64);

    /// Records application-level degradation events (§4.12): `retries`
    /// requests re-attempted under a [`crate::RetryPolicy`] backoff and
    /// `shed` requests dropped after the budget ran out. Pure
    /// bookkeeping — no logical-clock cost, no sync op — so counting is
    /// digest-neutral. Backends fold these into [`crate::Stats`]; the
    /// default is a no-op for contexts that don't carry counters.
    fn count_app_events(&mut self, retries: u64, shed: u64) {
        let _ = (retries, shed);
    }
}

/// Typed convenience accessors over any [`DmtCtx`].
///
/// These are generic, so they live in an extension trait that is
/// implemented blanket-style for every context, including `dyn DmtCtx`.
pub trait DmtCtxExt: DmtCtx {
    /// Reads a `T` at `addr`.
    fn read<T: Pod>(&mut self, addr: Addr) -> T {
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        self.read_bytes(addr, buf);
        T::load(buf)
    }

    /// Writes a `T` at `addr`.
    fn write<T: Pod>(&mut self, addr: Addr, value: T) {
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        value.store(buf);
        self.write_bytes(addr, buf);
    }

    /// `read`-modify-`write` of a `T` (not atomic across threads: it is two
    /// ordinary accesses, exactly like unsynchronized C++ code).
    fn update<T: Pod>(&mut self, addr: Addr, f: impl FnOnce(T) -> T) -> T {
        let v = f(self.read::<T>(addr));
        self.write(addr, v);
        v
    }

    /// Element `i` of a `T` array starting at `base`.
    fn read_idx<T: Pod>(&mut self, base: Addr, i: u64) -> T {
        self.read(base + i * T::SIZE as u64)
    }

    /// Writes element `i` of a `T` array starting at `base`.
    fn write_idx<T: Pod>(&mut self, base: Addr, i: u64, value: T) {
        self.write(base + i * T::SIZE as u64, value);
    }

    /// Emits a UTF-8 string to the thread's output stream.
    fn emit_str(&mut self, s: &str) {
        self.emit(s.as_bytes());
    }
}

impl<C: DmtCtx + ?Sized> DmtCtxExt for C {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A minimal single-threaded context used to test the extension trait.
    #[derive(Default)]
    struct MiniCtx {
        mem: BTreeMap<Addr, u8>,
        out: Vec<u8>,
        ticks: u64,
        next: Addr,
    }

    impl DmtCtx for MiniCtx {
        fn tid(&self) -> Tid {
            0
        }
        fn tick(&mut self, n: u64) {
            self.ticks += n;
        }
        fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = self.mem.get(&(addr + i as u64)).copied().unwrap_or(0);
            }
        }
        fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
            for (i, &b) in data.iter().enumerate() {
                self.mem.insert(addr + i as u64, b);
            }
        }
        fn lock(&mut self, _: MutexId) {}
        fn unlock(&mut self, _: MutexId) {}
        fn cond_wait(&mut self, _: CondId, _: MutexId) {}
        fn cond_signal(&mut self, _: CondId) {}
        fn cond_broadcast(&mut self, _: CondId) {}
        fn barrier(&mut self, _: BarrierId, _: usize) {}
        fn spawn(&mut self, _: ThreadFn) -> ThreadHandle {
            ThreadHandle(1)
        }
        fn join(&mut self, _: ThreadHandle) {}
        fn alloc(&mut self, size: u64, align: u64) -> Addr {
            let a = self.next.next_multiple_of(align);
            self.next = a + size;
            a
        }
        fn dealloc(&mut self, _: Addr) {}
        fn emit(&mut self, bytes: &[u8]) {
            self.out.extend_from_slice(bytes);
        }
        fn atomic_rmw(&mut self, addr: Addr, op: AtomicOp) -> u64 {
            let old = self.read::<u64>(addr);
            self.write::<u64>(addr, op.apply(old));
            old
        }
        fn atomic_load(&mut self, addr: Addr) -> u64 {
            self.read::<u64>(addr)
        }
        fn atomic_store(&mut self, addr: Addr, value: u64) {
            self.write::<u64>(addr, value);
        }
    }

    #[test]
    fn typed_roundtrip_through_dyn() {
        let mut c = MiniCtx::default();
        let ctx: &mut dyn DmtCtx = &mut c;
        ctx.write::<u32>(16, 0xCAFE_BABE);
        assert_eq!(ctx.read::<u32>(16), 0xCAFE_BABE);
        ctx.write::<f64>(64, 2.5);
        assert_eq!(ctx.read::<f64>(64), 2.5);
    }

    #[test]
    fn indexed_access() {
        let mut c = MiniCtx::default();
        for i in 0..10u64 {
            c.write_idx::<u64>(0, i, i * i);
        }
        assert_eq!(c.read_idx::<u64>(0, 7), 49);
        assert_eq!(c.read::<u64>(7 * 8), 49);
    }

    #[test]
    fn update_applies_function() {
        let mut c = MiniCtx::default();
        c.write::<i32>(0, 10);
        let v = c.update::<i32>(0, |x| x * 3);
        assert_eq!(v, 30);
        assert_eq!(c.read::<i32>(0), 30);
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut c = MiniCtx {
            next: 3,
            ..MiniCtx::default()
        };
        let a = c.alloc(10, 8);
        assert_eq!(a % 8, 0);
    }

    #[test]
    fn emit_str_appends_utf8() {
        let mut c = MiniCtx::default();
        c.emit_str("ok");
        c.emit_str("!");
        assert_eq!(c.out, b"ok!");
    }

    #[test]
    fn atomic_op_semantics() {
        assert_eq!(AtomicOp::Add(5).apply(10), 15);
        assert_eq!(AtomicOp::Add(1).apply(u64::MAX), 0, "wrapping");
        assert_eq!(AtomicOp::Sub(3).apply(10), 7);
        assert_eq!(AtomicOp::Exchange(9).apply(1), 9);
        assert_eq!(
            AtomicOp::CompareExchange {
                expected: 4,
                new: 8
            }
            .apply(4),
            8
        );
        assert_eq!(
            AtomicOp::CompareExchange {
                expected: 4,
                new: 8
            }
            .apply(5),
            5,
            "failed CAS leaves the value"
        );
        assert_eq!(AtomicOp::And(0b1100).apply(0b1010), 0b1000);
        assert_eq!(AtomicOp::Or(0b1100).apply(0b1010), 0b1110);
        assert_eq!(AtomicOp::Xor(0b1100).apply(0b1010), 0b0110);
        assert_eq!(AtomicOp::Max(7).apply(3), 7);
        assert_eq!(AtomicOp::Min(7).apply(3), 3);
    }

    #[test]
    fn mini_ctx_atomics_roundtrip() {
        let mut c = MiniCtx::default();
        c.atomic_store(0, 41);
        assert_eq!(c.atomic_rmw(0, AtomicOp::Add(1)), 41);
        assert_eq!(c.atomic_load(0), 42);
    }
}
