//! Metrics assembly, shared by every backend — the `rfdet_api::obs`
//! twin of the flight-recorder glue in [`crate::record`].
//!
//! A backend's `run_traced` does three metrics-specific things, all
//! through this module: create the sink when [`RunConfig::metrics`] is
//! on ([`obs_sink`]), hand each thread context an
//! [`rfdet_obs::ObsRecorder`] draining into it, and call
//! [`finish_metrics`] once the run has a result — which rolls the sink
//! up into a [`rfdet_obs::MetricsSnapshot`] and attaches it to the
//! [`RunOutput`].
//!
//! The load-bearing invariant lives at the call sites: backends read
//! `Instant::now()` *only* when the sink exists, and the readings flow
//! only into these buffers — never into a scheduling, propagation, or
//! conflict-resolution branch. Failure digests and output digests are
//! therefore identical with metrics on and off, which
//! `tests/conformance.rs` and the metrics proptests pin.

use crate::{RunConfig, RunError, RunOutput};
use rfdet_obs::ObsSink;
use std::sync::Arc;

/// The run's metrics sink — `Some` exactly when the config asks for
/// metrics. Backends thread the `Arc` into every context they create.
#[must_use]
pub fn obs_sink(cfg: &RunConfig) -> Option<Arc<ObsSink>> {
    cfg.metrics.then(|| Arc::new(ObsSink::default()))
}

/// Rolls the sink up into a snapshot and attaches it to a successful
/// run's [`RunOutput`]. Failing runs keep their report untouched — the
/// report digest is rerun-stable and timing is not. No-op when the run
/// was not collecting metrics.
pub fn finish_metrics(
    backend: &str,
    sink: Option<&Arc<ObsSink>>,
    result: &mut Result<RunOutput, RunError>,
) {
    let Some(sink) = sink else { return };
    if let Ok(out) = result {
        out.metrics = Some(Box::new(sink.snapshot(backend)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureKind, FailureReport};
    use rfdet_obs::Phase;

    #[test]
    fn disabled_metrics_yield_no_sink_and_no_snapshot() {
        let cfg = RunConfig::small();
        assert!(obs_sink(&cfg).is_none());
        let mut result: Result<RunOutput, RunError> = Ok(RunOutput::default());
        finish_metrics("test", None, &mut result);
        assert!(result.unwrap().metrics.is_none());
    }

    #[test]
    fn successful_run_gets_the_rollup() {
        let mut cfg = RunConfig::small();
        cfg.metrics = true;
        let sink = obs_sink(&cfg).expect("metrics on");
        sink.record(Phase::SyncOp, 1_500);
        let mut result: Result<RunOutput, RunError> = Ok(RunOutput {
            output: b"ok".to_vec(),
            ..RunOutput::default()
        });
        finish_metrics("RFDet-ci", Some(&sink), &mut result);
        let mut out = result.unwrap();
        let snap = out.metrics.take().expect("snapshot attached");
        assert_eq!(snap.backend, "RFDet-ci");
        assert_eq!(snap.phase(Phase::SyncOp).unwrap().count, 1);
        // The digest never covers metrics.
        assert_eq!(
            out.output_digest(),
            RunOutput {
                output: b"ok".to_vec(),
                ..RunOutput::default()
            }
            .output_digest()
        );
    }

    #[test]
    fn failing_run_keeps_its_report_untouched() {
        let sink = Arc::new(ObsSink::default());
        sink.record(Phase::SyncOp, 10);
        let mut result: Result<RunOutput, RunError> = Err(RunError::from_report(FailureReport {
            backend: "test".to_owned(),
            kind: FailureKind::Panic,
            tid: 1,
            message: "boom".to_owned(),
            culprit: None,
            wait_graph: Vec::new(),
            cycle: Vec::new(),
            peers: Vec::new(),
            trace_path: None,
            warnings: Vec::new(),
        }));
        let before = result.as_ref().unwrap_err().report_digest();
        finish_metrics("test", Some(&sink), &mut result);
        assert_eq!(result.unwrap_err().report_digest(), before);
    }
}
