//! Typed run failures.
//!
//! A deterministic runtime's killer feature is that *failing* runs
//! reproduce exactly, so failures must be artifacts, not hangs or
//! free-form panics. Every way a run can end abnormally maps to a
//! [`RunError`] variant carrying a [`FailureReport`]: who failed, at
//! which point of the deterministic schedule, and — for deadlocks — the
//! wait-for cycle reconstructed from the runtime's own sync-queue state.
//!
//! Reports split into a *deterministic projection* and best-effort
//! diagnostics. The projection (failure kind, culprit thread, its
//! vector clock / slice count / sync-op count / last operation, and the
//! sorted wait-for graph for deadlocks) is a pure function of the
//! deterministic schedule, so [`FailureReport::report_digest`] over it is
//! bit-identical across reruns of the same failing schedule. Peer-thread
//! states captured while the run tears down depend on physical timing
//! (how far each peer got before the abort reached it) and are therefore
//! reported in [`FailureReport::peers`] but excluded from the digest.

use crate::Tid;
use rfdet_vclock::VClock;
use std::fmt;
use std::path::PathBuf;

/// How a run failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A thread panicked (application bug or injected fault).
    Panic,
    /// Every live thread is blocked on another — proven from sync-queue
    /// state, not a wall-clock timeout.
    Deadlock,
    /// The run stopped making progress for the configured wall-clock
    /// bound without a provable deadlock (e.g. a starved arbitration
    /// slot). Unlike the other two kinds this is detected by physical
    /// time, so *when* it fires is not deterministic — only that the
    /// underlying schedule never finishes is.
    Wedged,
}

impl FailureKind {
    /// The codec-stable code recorded in traces ([`rfdet_trace::KIND_PANIC`]
    /// and friends).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            FailureKind::Panic => rfdet_trace::KIND_PANIC,
            FailureKind::Deadlock => rfdet_trace::KIND_DEADLOCK,
            FailureKind::Wedged => rfdet_trace::KIND_WEDGED,
        }
    }

    /// Inverse of [`Self::code`]. `None` for unknown codes and for
    /// [`rfdet_trace::KIND_NONE`] (a clean run has no failure kind).
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            rfdet_trace::KIND_PANIC => Some(FailureKind::Panic),
            rfdet_trace::KIND_DEADLOCK => Some(FailureKind::Deadlock),
            rfdet_trace::KIND_WEDGED => Some(FailureKind::Wedged),
            _ => None,
        }
    }
}

/// What a blocked thread is waiting on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitTarget {
    /// Queued on a mutex; `holder` is the current owner if any.
    Mutex {
        /// Application mutex ID.
        id: u32,
        /// Current owner (absent if the mutex is in handoff).
        holder: Option<Tid>,
    },
    /// Parked on a condition variable (no wait-for edge: any thread
    /// could signal it).
    Cond {
        /// Application condvar ID.
        id: u32,
    },
    /// Arrived early at a barrier (waits on every party that has not
    /// arrived yet; not representable as a single edge).
    Barrier {
        /// Application barrier ID.
        id: u32,
    },
    /// Joining a thread that has not exited.
    Join {
        /// The joined (still running) thread.
        target: Tid,
    },
}

impl WaitTarget {
    /// The single thread this wait is for, when one exists (mutex owner
    /// or join target). Condvar and barrier waits have no unique edge.
    #[must_use]
    pub fn waits_on(&self) -> Option<Tid> {
        match self {
            WaitTarget::Mutex { holder, .. } => *holder,
            WaitTarget::Join { target } => Some(*target),
            WaitTarget::Cond { .. } | WaitTarget::Barrier { .. } => None,
        }
    }
}

impl fmt::Display for WaitTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitTarget::Mutex {
                id,
                holder: Some(h),
            } => write!(f, "mutex {id} held by t{h}"),
            WaitTarget::Mutex { id, holder: None } => write!(f, "mutex {id} (in handoff)"),
            WaitTarget::Cond { id } => write!(f, "cond {id}"),
            WaitTarget::Barrier { id } => write!(f, "barrier {id}"),
            WaitTarget::Join { target } => write!(f, "join of t{target}"),
        }
    }
}

/// One edge of the wait-for graph at the moment of a deadlock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked thread.
    pub waiter: Tid,
    /// What it is blocked on.
    pub target: WaitTarget,
}

/// Deterministic progress summary of one thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadReport {
    /// Thread ID.
    pub tid: Tid,
    /// Vector clock at capture.
    pub vc: VClock,
    /// Slices published (the thread's position in its own slice stream).
    pub slices: u64,
    /// Synchronization operations started.
    pub sync_ops: u64,
    /// The last synchronization operation the thread started, rendered
    /// (e.g. `lock(3)`).
    pub last_op: Option<String>,
}

impl fmt::Display for ThreadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{}: vc={} slices={} sync_ops={} last_op={}",
            self.tid,
            self.vc,
            self.slices,
            self.sync_ops,
            self.last_op.as_deref().unwrap_or("-")
        )
    }
}

/// Everything known about a failed run. See the module docs for which
/// fields are deterministic and which are best-effort diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureReport {
    /// Backend name (`DmtBackend::name`).
    pub backend: String,
    /// Failure classification (redundant with the `RunError` variant so
    /// the report is self-contained).
    pub kind: FailureKind,
    /// The culprit thread: the panicking/starved thread, or the smallest
    /// tid in the blocked set for a deadlock.
    pub tid: Tid,
    /// The panic message, or a synthesized description for deadlocks.
    pub message: String,
    /// Deterministic state of the culprit thread at the failure point
    /// (absent when the failing thread's context was not recoverable).
    pub culprit: Option<ThreadReport>,
    /// Deadlocks: one edge per blocked thread, sorted by waiter tid.
    pub wait_graph: Vec<WaitEdge>,
    /// Deadlocks: the wait-for cycle when one exists through
    /// single-target edges, rotated so the smallest tid leads.
    pub cycle: Vec<Tid>,
    /// Best-effort states of the *other* threads at teardown. Excluded
    /// from [`Self::report_digest`]: how far a peer got before the abort
    /// reached it depends on physical timing.
    pub peers: Vec<ThreadReport>,
    /// Where the flight recorder persisted this failure's trace, when
    /// recording was on ([`crate::RunConfig::trace`]). Excluded from
    /// [`Self::report_digest`]: a path reflects the environment, not the
    /// schedule.
    pub trace_path: Option<PathBuf>,
    /// Non-fatal degradations hit while producing this report — e.g. the
    /// trace or a checkpoint could not be persisted (read-only directory,
    /// full disk). Excluded from [`Self::report_digest`] like
    /// [`Self::trace_path`]: I/O health reflects the environment, not
    /// the schedule, and a reproducible failure must never be masked by
    /// an unpersistable artifact.
    pub warnings: Vec<String>,
}

impl FailureReport {
    /// Finds a wait-for cycle through the single-target edges of
    /// `graph`. Deterministic: walks chains starting from the smallest
    /// waiter tid; the returned cycle is rotated so its smallest tid
    /// leads. Empty when no cycle exists (e.g. an all-condvar deadlock).
    #[must_use]
    pub fn find_cycle(graph: &[WaitEdge]) -> Vec<Tid> {
        let mut next: Vec<(Tid, Tid)> = graph
            .iter()
            .filter_map(|e| e.target.waits_on().map(|t| (e.waiter, t)))
            .collect();
        next.sort_unstable();
        let follow = |t: Tid| -> Option<Tid> {
            next.binary_search_by_key(&t, |&(w, _)| w)
                .ok()
                .map(|i| next[i].1)
        };
        for &(start, _) in &next {
            // Walk the chain from `start`; a revisit of a node on the
            // current path is a cycle.
            let mut path: Vec<Tid> = vec![start];
            let mut cur = start;
            while let Some(n) = follow(cur) {
                if let Some(pos) = path.iter().position(|&p| p == n) {
                    let mut cycle = path.split_off(pos);
                    // Canonical rotation: smallest tid first.
                    let min_idx = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &t)| t)
                        .map_or(0, |(i, _)| i);
                    cycle.rotate_left(min_idx);
                    return cycle;
                }
                path.push(n);
                cur = n;
            }
        }
        Vec::new()
    }

    /// A stable digest of the deterministic projection of this report
    /// (FNV-1a, like [`crate::RunOutput::output_digest`]). Two runs of
    /// the same failing schedule — same config, seed and `FaultPlan` —
    /// produce byte-identical digests. Peer diagnostics are excluded.
    #[must_use]
    pub fn report_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.backend.as_bytes());
        eat(&[self.kind as u8]);
        eat(&self.tid.to_le_bytes());
        eat(self.message.as_bytes());
        if let Some(c) = &self.culprit {
            eat(&c.tid.to_le_bytes());
            for (tid, t) in c.vc.iter() {
                eat(&tid.to_le_bytes());
                eat(&t.to_le_bytes());
            }
            eat(&c.slices.to_le_bytes());
            eat(&c.sync_ops.to_le_bytes());
            eat(c.last_op.as_deref().unwrap_or("-").as_bytes());
        }
        for e in &self.wait_graph {
            eat(&e.waiter.to_le_bytes());
            eat(e.target.to_string().as_bytes());
        }
        for t in &self.cycle {
            eat(&t.to_le_bytes());
        }
        h
    }

    /// Renders the full report (deterministic projection first, then the
    /// best-effort peer states) for humans.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "run failed on backend {}: {:?}", self.backend, self.kind);
        let _ = writeln!(s, "  culprit: t{} — {}", self.tid, self.message);
        if let Some(c) = &self.culprit {
            let _ = writeln!(s, "  at: {c}");
        }
        if !self.wait_graph.is_empty() {
            let _ = writeln!(s, "  wait-for graph:");
            for e in &self.wait_graph {
                let _ = writeln!(s, "    t{} waits on {}", e.waiter, e.target);
            }
        }
        if !self.cycle.is_empty() {
            let cycle: Vec<String> = self.cycle.iter().map(|t| format!("t{t}")).collect();
            let _ = writeln!(s, "  cycle: {} -> {}", cycle.join(" -> "), cycle[0]);
        }
        if !self.peers.is_empty() {
            let _ = writeln!(s, "  peers at teardown (non-deterministic diagnostics):");
            for p in &self.peers {
                let _ = writeln!(s, "    {p}");
            }
        }
        let _ = write!(s, "  report digest: {:#018x}", self.report_digest());
        if let Some(p) = &self.trace_path {
            let _ = write!(s, "\n  trace: {}", p.display());
        }
        for w in &self.warnings {
            let _ = write!(s, "\n  warning: {w}");
        }
        s
    }
}

/// Why [`crate::DmtBackend::run`] did not produce a [`crate::RunOutput`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A worker (or the root) panicked; the supervisor woke all parked
    /// peers and tore the run down.
    WorkerPanicked(Box<FailureReport>),
    /// All live threads were provably blocked on each other.
    Deadlock(Box<FailureReport>),
    /// No progress for the configured wall-clock bound, without a
    /// provable deadlock.
    Wedged(Box<FailureReport>),
}

impl RunError {
    /// The failure report, regardless of variant.
    #[must_use]
    pub fn report(&self) -> &FailureReport {
        match self {
            RunError::WorkerPanicked(r) | RunError::Deadlock(r) | RunError::Wedged(r) => r,
        }
    }

    /// Mutable access to the report (the flight recorder stamps
    /// [`FailureReport::trace_path`] after persisting).
    pub fn report_mut(&mut self) -> &mut FailureReport {
        match self {
            RunError::WorkerPanicked(r) | RunError::Deadlock(r) | RunError::Wedged(r) => r,
        }
    }

    /// Digest of the deterministic projection of the report.
    #[must_use]
    pub fn report_digest(&self) -> u64 {
        self.report().report_digest()
    }

    /// Wraps a report in the variant matching its [`FailureKind`].
    #[must_use]
    pub fn from_report(report: FailureReport) -> Self {
        match report.kind {
            FailureKind::Panic => RunError::WorkerPanicked(Box::new(report)),
            FailureKind::Deadlock => RunError::Deadlock(Box::new(report)),
            FailureKind::Wedged => RunError::Wedged(Box::new(report)),
        }
    }
}

/// Multi-line: what failed, the rerun-stable digest, and (when the
/// flight recorder was on) where the trace landed and how to replay it —
/// so a bare `?`-propagated error from an example or bin is actionable.
impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.report();
        match self {
            RunError::WorkerPanicked(_) => {
                writeln!(f, "worker t{} panicked: {}", r.tid, r.message)?;
            }
            RunError::Deadlock(_) => writeln!(f, "deadlock: {}", r.message)?,
            RunError::Wedged(_) => writeln!(f, "run wedged: {}", r.message)?,
        }
        write!(
            f,
            "  backend: {}\n  report digest: {:#018x}",
            r.backend,
            self.report_digest()
        )?;
        if let Some(p) = &r.trace_path {
            write!(
                f,
                "\n  trace: {}\n  replay: cargo run -p rfdet-bench --bin replay -- replay {}",
                p.display(),
                p.display()
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kind: FailureKind) -> FailureReport {
        FailureReport {
            backend: "test".to_owned(),
            kind,
            tid: 1,
            message: "boom".to_owned(),
            culprit: Some(ThreadReport {
                tid: 1,
                vc: VClock::new(),
                slices: 3,
                sync_ops: 7,
                last_op: Some("lock(0)".to_owned()),
            }),
            wait_graph: Vec::new(),
            cycle: Vec::new(),
            peers: Vec::new(),
            trace_path: None,
            warnings: Vec::new(),
        }
    }

    #[test]
    fn digest_ignores_peer_diagnostics() {
        let a = report(FailureKind::Panic);
        let mut b = a.clone();
        b.peers.push(ThreadReport {
            tid: 2,
            ..ThreadReport::default()
        });
        assert_eq!(a.report_digest(), b.report_digest());
    }

    #[test]
    fn digest_covers_the_deterministic_projection() {
        let a = report(FailureKind::Panic);
        let mut b = a.clone();
        b.message = "other".to_owned();
        assert_ne!(a.report_digest(), b.report_digest());
        let mut c = a.clone();
        c.culprit.as_mut().unwrap().sync_ops = 8;
        assert_ne!(a.report_digest(), c.report_digest());
    }

    #[test]
    fn find_cycle_resolves_ab_ba() {
        let graph = vec![
            WaitEdge {
                waiter: 1,
                target: WaitTarget::Mutex {
                    id: 0,
                    holder: Some(2),
                },
            },
            WaitEdge {
                waiter: 2,
                target: WaitTarget::Mutex {
                    id: 1,
                    holder: Some(1),
                },
            },
        ];
        assert_eq!(FailureReport::find_cycle(&graph), vec![1, 2]);
    }

    #[test]
    fn find_cycle_skips_dead_end_chains() {
        // 1 -> 2 -> 3 -> 2: the cycle is {2, 3}; 1 is outside it.
        let graph = vec![
            WaitEdge {
                waiter: 1,
                target: WaitTarget::Join { target: 2 },
            },
            WaitEdge {
                waiter: 2,
                target: WaitTarget::Mutex {
                    id: 0,
                    holder: Some(3),
                },
            },
            WaitEdge {
                waiter: 3,
                target: WaitTarget::Mutex {
                    id: 1,
                    holder: Some(2),
                },
            },
        ];
        assert_eq!(FailureReport::find_cycle(&graph), vec![2, 3]);
    }

    #[test]
    fn find_cycle_empty_for_condvar_waits() {
        let graph = vec![WaitEdge {
            waiter: 1,
            target: WaitTarget::Cond { id: 4 },
        }];
        assert!(FailureReport::find_cycle(&graph).is_empty());
    }

    #[test]
    fn from_report_picks_matching_variant() {
        assert!(matches!(
            RunError::from_report(report(FailureKind::Panic)),
            RunError::WorkerPanicked(_)
        ));
        assert!(matches!(
            RunError::from_report(report(FailureKind::Deadlock)),
            RunError::Deadlock(_)
        ));
        assert!(matches!(
            RunError::from_report(report(FailureKind::Wedged)),
            RunError::Wedged(_)
        ));
    }

    #[test]
    fn render_mentions_culprit_and_digest() {
        let r = report(FailureKind::Panic);
        let s = r.render();
        assert!(s.contains("t1"));
        assert!(s.contains("boom"));
        assert!(s.contains("report digest"));
    }

    #[test]
    fn digest_ignores_the_trace_path() {
        let a = report(FailureKind::Panic);
        let mut b = a.clone();
        b.trace_path = Some(PathBuf::from("/tmp/x.trace"));
        assert_eq!(a.report_digest(), b.report_digest());
        assert!(b.render().contains("/tmp/x.trace"));
    }

    #[test]
    fn digest_ignores_warnings_but_render_shows_them() {
        let a = report(FailureKind::Panic);
        let mut b = a.clone();
        b.warnings.push("trace not persisted: disk full".to_owned());
        assert_eq!(
            a.report_digest(),
            b.report_digest(),
            "I/O health must not perturb the reproducibility digest"
        );
        assert!(b.render().contains("warning: trace not persisted"));
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [
            FailureKind::Panic,
            FailureKind::Deadlock,
            FailureKind::Wedged,
        ] {
            assert_eq!(FailureKind::from_code(k.code()), Some(k));
        }
        assert_eq!(FailureKind::from_code(rfdet_trace::KIND_NONE), None);
        assert_eq!(FailureKind::from_code(42), None);
    }

    #[test]
    fn display_is_multi_line_and_actionable() {
        let mut e = RunError::from_report(report(FailureKind::Panic));
        let s = e.to_string();
        assert!(s.contains("panicked"));
        assert!(s.contains("report digest: 0x"));
        assert!(!s.contains("replay:"), "no replay hint without a trace");

        e.report_mut().trace_path = Some(PathBuf::from("target/rfdet-traces/ab.trace"));
        let s = e.to_string();
        assert!(s.lines().count() >= 4, "multi-line: {s:?}");
        assert!(s.contains("trace: target/rfdet-traces/ab.trace"));
        assert!(s.contains("replay"));
    }
}
