//! Deterministic bounded retry with logical-clock-keyed backoff.
//!
//! Services built on a DMT runtime cannot back off on wall-clock time:
//! the digest must stay a pure function of the input, and a physical
//! sleep turns host speed into an input. [`RetryPolicy`] keys backoff to
//! the *logical* clock instead — a rejected request charges
//! [`crate::DmtCtx::tick`] ticks and retries, so the retry schedule is
//! part of the deterministic schedule: same input, same schedule, same
//! retries, same digest, on every host. Past `max_attempts` the caller
//! sheds the request deterministically (graceful degradation), counting
//! it via [`crate::DmtCtx::count_app_events`] so the loss is visible in
//! [`crate::Stats`] rather than silent.

/// A bounded, deterministic retry schedule.
///
/// `backoff_ticks(attempt)` yields the logical-clock charge before retry
/// number `attempt + 1` (exponential, capped), or `None` once the
/// attempt budget is exhausted — the caller's cue to shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the initial attempt. `0` means try once
    /// and shed immediately on rejection.
    pub max_attempts: u32,
    /// Logical ticks charged before the first retry.
    pub base_backoff_ticks: u64,
    /// Ceiling on the per-retry charge (the exponential curve saturates
    /// here instead of overflowing).
    pub max_backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ticks: 64,
            max_backoff_ticks: 1024,
        }
    }
}

impl RetryPolicy {
    /// The logical-clock charge before retry `attempt` (0-based: the
    /// value for the first retry is `backoff_ticks(0)`). `None` when
    /// `attempt` exceeds the budget — give up and shed.
    #[must_use]
    pub fn backoff_ticks(&self, attempt: u32) -> Option<u64> {
        if attempt >= self.max_attempts {
            return None;
        }
        // 128-bit intermediate: `checked_shl` only guards the shift
        // *count*, not value overflow, and the curve must saturate at
        // the cap rather than wrap.
        let shifted = u128::from(self.base_backoff_ticks) << attempt.min(64);
        let capped = shifted.min(u128::from(self.max_backoff_ticks));
        Some(
            u64::try_from(capped)
                .expect("capped at a u64 ceiling")
                .max(1),
        )
    }

    /// Total retries this policy will ever grant.
    #[must_use]
    pub fn budget(&self) -> u32 {
        self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_capped_then_exhausted() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff_ticks: 10,
            max_backoff_ticks: 35,
        };
        assert_eq!(p.backoff_ticks(0), Some(10));
        assert_eq!(p.backoff_ticks(1), Some(20));
        assert_eq!(p.backoff_ticks(2), Some(35), "capped");
        assert_eq!(p.backoff_ticks(3), Some(35));
        assert_eq!(p.backoff_ticks(4), None, "budget exhausted");
    }

    #[test]
    fn zero_attempts_sheds_immediately() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ticks(0), None);
    }

    #[test]
    fn charge_is_never_zero() {
        let p = RetryPolicy {
            max_attempts: 1,
            base_backoff_ticks: 0,
            max_backoff_ticks: 0,
        };
        assert_eq!(
            p.backoff_ticks(0),
            Some(1),
            "a zero charge would make backoff a no-op in the logical schedule"
        );
    }

    #[test]
    fn huge_attempt_index_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff_ticks: 1 << 60,
            max_backoff_ticks: 1 << 61,
        };
        assert_eq!(p.backoff_ticks(63), Some(1 << 61));
        assert_eq!(p.backoff_ticks(200), Some(1 << 61));
    }
}
