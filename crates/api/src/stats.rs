//! Per-run profiling counters — the raw material of the paper's Table 1.

use std::ops::AddAssign;

/// Aggregated counters for one run.
///
/// Mirrors the columns of paper Table 1 ("Profiling data of benchmark
/// executions with 4 threads") plus the optimization counters used in the
/// §4.5 discussion (e.g. the fraction of propagation work the *prelock*
/// optimization moves off the critical path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    // ---- sync ops (Table 1, columns 2-4) ----
    /// `pthread_mutex_lock` count.
    pub locks: u64,
    /// `pthread_mutex_unlock` count.
    pub unlocks: u64,
    /// `pthread_cond_wait` count.
    pub waits: u64,
    /// `pthread_cond_signal` + `pthread_cond_broadcast` count.
    pub signals: u64,
    /// `pthread_create` count.
    pub forks: u64,
    /// `pthread_join` count.
    pub joins: u64,
    /// Barrier arrivals.
    pub barriers: u64,
    /// Atomic operations (`atomic_rmw`/`atomic_load`/`atomic_store`) — the
    /// §4.6 extension. A distinct sync-op class: atomics acquire *and*
    /// release a cell's sync var in one turn, so folding them into `locks`
    /// would misstate both columns.
    pub atomics: u64,

    // ---- memory ops (Table 1, columns 5-8) ----
    /// Shared-memory load operations.
    pub loads: u64,
    /// Shared-memory store operations.
    pub stores: u64,
    /// Stores that triggered a page snapshot ("store w/ copy", column 9).
    pub stores_with_copy: u64,
    /// Simulated page faults taken (Pf monitoring / lazy writes).
    pub page_faults: u64,

    // ---- memory footprint & GC (Table 1, columns 10-13) ----
    /// Bytes of shared memory the application allocated.
    pub shared_bytes: u64,
    /// Private pages materialized, summed over all threads (each thread
    /// contributes its final count at exit) — the `(N-1)*SharedMemory`
    /// term of §5.4.
    pub private_pages: u64,
    /// Peak metadata-space usage in bytes.
    pub peak_meta_bytes: u64,
    /// Garbage-collection passes (Table 1 last column).
    pub gc_count: u64,
    /// Slices reclaimed by GC.
    pub gc_reclaimed_slices: u64,

    // ---- DLRC internals ----
    /// Slices created (one per synchronization-free interval).
    pub slices: u64,
    /// Slices whose creation was elided by slice merging (§4.5).
    pub slices_merged: u64,
    /// Slices propagated into some thread (appended to a slice-pointer
    /// list).
    pub slices_propagated: u64,
    /// Slices filtered out as redundant by the lowerlimit check.
    pub slices_filtered_redundant: u64,
    /// Modification bytes applied to private memories.
    pub mod_bytes_applied: u64,
    /// Slices pre-merged while queued on a lock (prelock, §4.5). The paper
    /// reports ~80 % of propagation moved into the parallel phase.
    pub prelock_premerged: u64,
    /// Modification bytes whose application was deferred by lazy writes.
    pub lazy_deferred_bytes: u64,
    /// Deferred bytes later dropped because a newer value superseded them
    /// before the page was touched (the lazy-writes saving, §4.5).
    pub lazy_elided_bytes: u64,
    /// `NO_ACCESS` protection transitions performed by lazy-write deposits.
    /// Each pending page is protected exactly once until its fault clears
    /// it — interleaved-page run lists and repeat deposits pay nothing —
    /// so this counts what `mprotect` calls a real implementation would
    /// issue.
    pub lazy_protect_calls: u64,

    // ---- memory-pipeline fast path (diff kernel + snapshot pool) ----
    /// Bytes compared by the end-of-slice diff kernel (every snapshotted
    /// page is scanned in full — the per-slice fixed cost of DLRC).
    pub diff_bytes_scanned: u64,
    /// Bytes copied taking page snapshots at first write (Figure 4 line 6).
    pub snapshot_bytes_copied: u64,
    /// Page snapshots whose buffer came from the per-thread pool (no
    /// allocation).
    pub snapshot_pool_hits: u64,
    /// Page snapshots that had to allocate a fresh buffer (cold pool, or
    /// pooling disabled).
    pub snapshot_pool_misses: u64,
    /// Modification runs merged into their predecessor by diff gap
    /// coalescing (`RfdetOpts::diff_gap_coalesce`).
    pub runs_coalesced: u64,

    // ---- DThreads / quantum internals ----
    /// Global fence phases executed (DThreads / quantum backends).
    pub global_fences: u64,
    /// Serial-phase commits (token-ordered diff publications).
    pub serial_commits: u64,

    // ---- runtime-internal contention (RFDet sharded hot path) ----
    /// Sync-var handles served from the per-thread cache (no shard lock).
    pub sync_var_cache_hits: u64,
    /// Sync-var handles that had to consult the sharded table.
    pub sync_var_cache_misses: u64,
    /// Sync-var shard locks that were held by another thread on arrival.
    pub shard_lock_contended: u64,
    /// Sync-queue class locks that were held by another thread on arrival.
    pub queue_lock_contended: u64,

    // ---- checkpoint/restore (§4.11) ----
    /// Checkpoint fragments this run contributed (one per live thread
    /// per captured epoch; `captured epochs = this / live threads`).
    pub checkpoints_contributed: u64,

    // ---- application-level degradation (RetryPolicy, §4.12) ----
    /// Requests that were retried after a deterministic backoff (each
    /// retry attempt counts once, however many a single request needs).
    pub app_retries: u64,
    /// Requests shed after the retry budget was exhausted — graceful
    /// degradation the digest accounts for instead of hiding.
    pub app_shed: u64,

    // ---- turn arbitration (Kendo successor handoff) ----
    /// Successor scans run by turn holders at release (handoff mode: one
    /// per turn transition; zero in spin-scan mode).
    pub handoff_scans: u64,
    /// Targeted unparks of a designated successor (scans where the next
    /// thread was parked rather than still polling).
    pub handoff_wakes: u64,
    /// Times a non-designated turn-waiter parked instead of spinning.
    pub turn_parks: u64,
}

impl Stats {
    /// Table-1-style "memory ops" total.
    #[must_use]
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total synchronization operations.
    #[must_use]
    pub fn sync_ops(&self) -> u64 {
        self.locks
            + self.unlocks
            + self.waits
            + self.signals
            + self.forks
            + self.joins
            + self.barriers
            + self.atomics
    }

    /// Fraction of propagated slices handled off the critical path by
    /// prelock, in `[0,1]`.
    #[must_use]
    pub fn prelock_fraction(&self) -> f64 {
        if self.slices_propagated == 0 {
            0.0
        } else {
            self.prelock_premerged as f64 / self.slices_propagated as f64
        }
    }

    /// Fraction of page snapshots served allocation-free from the buffer
    /// pool, in `[0,1]`.
    #[must_use]
    pub fn snapshot_pool_hit_rate(&self) -> f64 {
        let total = self.snapshot_pool_hits + self.snapshot_pool_misses;
        if total == 0 {
            0.0
        } else {
            self.snapshot_pool_hits as f64 / total as f64
        }
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Self) {
        macro_rules! add {
            ($($f:ident),* $(,)?) => { $( self.$f += rhs.$f; )* };
        }
        add!(
            locks,
            unlocks,
            waits,
            signals,
            forks,
            joins,
            barriers,
            atomics,
            loads,
            stores,
            stores_with_copy,
            page_faults,
            shared_bytes,
            gc_count,
            gc_reclaimed_slices,
            slices,
            slices_merged,
            slices_propagated,
            slices_filtered_redundant,
            mod_bytes_applied,
            prelock_premerged,
            lazy_deferred_bytes,
            lazy_elided_bytes,
            lazy_protect_calls,
            diff_bytes_scanned,
            snapshot_bytes_copied,
            snapshot_pool_hits,
            snapshot_pool_misses,
            runs_coalesced,
            global_fences,
            serial_commits,
            private_pages,
            sync_var_cache_hits,
            sync_var_cache_misses,
            shard_lock_contended,
            queue_lock_contended,
            checkpoints_contributed,
            app_retries,
            app_shed,
            handoff_scans,
            handoff_wakes,
            turn_parks
        );
        // Peaks take the maximum, not the sum.
        self.peak_meta_bytes = self.peak_meta_bytes.max(rhs.peak_meta_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = Stats {
            locks: 2,
            unlocks: 2,
            waits: 1,
            signals: 1,
            forks: 4,
            joins: 4,
            barriers: 3,
            atomics: 5,
            loads: 100,
            stores: 50,
            ..Stats::default()
        };
        assert_eq!(s.sync_ops(), 22);
        assert_eq!(s.mem_ops(), 150);
    }

    #[test]
    fn add_assign_sums_counts_and_maxes_peaks() {
        let mut a = Stats {
            locks: 1,
            peak_meta_bytes: 10,
            private_pages: 5,
            ..Stats::default()
        };
        let b = Stats {
            locks: 2,
            peak_meta_bytes: 7,
            private_pages: 9,
            ..Stats::default()
        };
        a += b;
        assert_eq!(a.locks, 3);
        assert_eq!(a.peak_meta_bytes, 10, "peaks take max");
        assert_eq!(a.private_pages, 14, "per-thread footprints sum");
    }

    #[test]
    fn prelock_fraction_bounds() {
        let mut s = Stats::default();
        assert_eq!(s.prelock_fraction(), 0.0);
        s.slices_propagated = 10;
        s.prelock_premerged = 8;
        assert!((s.prelock_fraction() - 0.8).abs() < 1e-12);
    }
}
