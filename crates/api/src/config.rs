//! Run configuration shared by all backends.

use crate::FaultPlan;
use rfdet_trace::{RunTrace, TraceConfig};
use std::time::Duration;

/// How RFDet monitors memory modifications (paper §4.2 and Figure 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorMode {
    /// Compile-time instrumentation (RFDet-ci): every instrumented store
    /// performs the cheap Figure-4 check (is this page already snapshotted
    /// in the current slice?).
    Ci,
    /// Page protection (RFDet-pf): pages are write-protected at slice
    /// start; the first store to a page takes a simulated fault that pays
    /// a configurable extra cost before snapshotting (models the SIGSEGV
    /// trap + `mprotect` syscalls the paper measures as slower).
    Pf,
}

/// RFDet-specific options (the §4.5 optimizations and monitoring mode).
#[derive(Clone, Debug)]
pub struct RfdetOpts {
    /// Store-monitoring strategy.
    pub monitor: MonitorMode,
    /// Keep the current slice open when re-acquiring a sync var last
    /// released by this same thread (§4.5 "Slice Merging").
    pub slice_merging: bool,
    /// Pre-merge happens-before slices while queued on a contended lock
    /// (§4.5 "Prelock").
    pub prelock: bool,
    /// Defer applying propagated modifications until the page is actually
    /// touched (§4.5 "Lazy Writes").
    pub lazy_writes: bool,
    /// Simulated cost, in no-op iterations, of one page fault in `Pf` mode
    /// (trap + two `mprotect` calls). Zero disables the cost model.
    pub fault_cost_spins: u32,
    /// Diff-kernel gap coalescing threshold, in bytes: two modification
    /// runs separated by at most this many *unchanged* bytes seal as one
    /// run carrying the gap (whose bytes equal the snapshot, so
    /// re-applying them onto an unchanged byte is a no-op). Trades
    /// modification bytes for run count. `0` (the default) disables
    /// coalescing, reproducing the scalar reference semantics exactly —
    /// keep it off for A/B comparison and for workloads with heavy
    /// intra-page write sharing (see DESIGN.md "Gap coalescing and §4.6").
    pub diff_gap_coalesce: usize,
    /// Capacity of the per-thread snapshot buffer pool, in page buffers.
    /// `end_slice` recycles snapshot buffers here after diffing, so
    /// steady-state slices take page snapshots with zero allocations.
    /// `0` disables pooling (every snapshot allocates, as pre-pool).
    pub snap_pool_pages: usize,
}

impl Default for RfdetOpts {
    fn default() -> Self {
        Self {
            monitor: MonitorMode::Ci,
            slice_merging: true,
            prelock: true,
            lazy_writes: false,
            fault_cost_spins: 2000,
            diff_gap_coalesce: 0,
            snap_pool_pages: 256,
        }
    }
}

/// Configuration for one run of a workload under some backend.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Size of the logical shared memory space, in bytes.
    pub space_bytes: u64,
    /// Page size (power of two). The paper uses the OS page size, 4096.
    pub page_size: u64,
    /// Capacity of the metadata space in bytes (the paper evaluates 256 MB
    /// and 512 MB, §5.4). Slices are garbage-collected when usage crosses
    /// `gc_threshold` of this capacity.
    pub meta_capacity_bytes: u64,
    /// Fraction of `meta_capacity_bytes` at which GC triggers (paper: 0.9).
    pub gc_threshold: f64,
    /// Additional GC trigger: live-slice count. The paper's metadata
    /// pressure comes mostly from 4 KiB page snapshots, so its byte
    /// threshold fires early; our sealed slices store only byte diffs,
    /// so a pure byte threshold would let slice-pointer lists grow until
    /// the Figure-5 scan dominates. Bounding live slices keeps
    /// propagation amortized-O(live slices) exactly as in the paper.
    pub meta_max_slices: u64,
    /// Shard count for the runtime-internal sync-var table (rounded up to
    /// a power of two). More shards means independent sync objects almost
    /// never contend on table buckets; 1 degenerates to a single global
    /// table lock (useful for measuring the sharding win).
    pub sync_shards: usize,
    /// RFDet-specific options (ignored by other backends).
    pub rfdet: RfdetOpts,
    /// Quantum length in ticks for the CoreDet/DMP-style backend
    /// (ignored by other backends).
    pub quantum_ticks: u64,
    /// When `Some(seed)`, deterministic backends inject pseudo-random
    /// physical delays at internal scheduling points. Results must be
    /// bit-identical for every seed — this is the failure-injection hook
    /// used by the determinism tests.
    pub jitter_seed: Option<u64>,
    /// Upper bound on injected delay per point, in microseconds.
    pub jitter_max_us: u64,
    /// Deterministic faults to inject (panics, failed allocations,
    /// logical-clock jitter), keyed off per-thread sync-op/allocation
    /// counts. Empty by default. See [`FaultPlan`].
    pub fault_plan: FaultPlan,
    /// Run supervision: convert worker panics, provable deadlocks and
    /// wedged runs into a typed `RunError` with every parked thread
    /// woken in bounded time. Disable only to measure its overhead.
    pub supervise: bool,
    /// Wall-clock fallback bound, in milliseconds: a thread making no
    /// progress for this long fails the run as wedged (deadlocks are
    /// normally detected structurally, long before this fires). `None`
    /// disables the fallback.
    pub deadlock_after_ms: Option<u64>,
    /// Flight recorder: when `Some(workload_name)`, the run records a
    /// [`RunTrace`] of its schedule, and a failing run persists it to
    /// `target/rfdet-traces/<digest>.trace` (override the directory with
    /// `RFDET_TRACE_DIR`). The name labels the trace so the `replay` CLI
    /// can resolve the root function again — closures do not serialize.
    /// Recording points piggyback on the supervision hooks, so traces of
    /// unsupervised runs (`supervise: false`) contain no events. `None`
    /// (the default) keeps the recorder off at the cost of one branch
    /// per sync op.
    pub trace: Option<String>,
    /// Deterministic-safe metrics (`rfdet_api::obs`): when `true`, the
    /// run times its hot phases — `wait_for_turn` stall, sync-op
    /// end-to-end, slice length, diff, snapshot, propagation — into
    /// log-bucketed histograms and attaches a
    /// [`rfdet_obs::MetricsSnapshot`] to the [`crate::RunOutput`].
    /// Timing is observed strictly off the deterministic decision path:
    /// no scheduling or propagation branch reads a clock, so results are
    /// bit-identical with metrics on and off (the conformance and
    /// proptest suites pin this). `false` (the default) keeps the cost
    /// at one branch per instrumented site, like `trace`.
    pub metrics: bool,
    /// Period, in milliseconds, of a parked thread's idle re-check: how
    /// long a blocked thread sleeps between looking for its wakeup (or
    /// a supervised-abort flag) when no one has signalled it. Purely a
    /// liveness/latency trade-off — wakeups themselves are delivered
    /// deterministically — so it never enters the trace projection.
    pub idle_poll_ms: u64,
    /// Fall back to the original broadcast spin-scan turn arbitration
    /// instead of successor handoff (every waiter scans every slot,
    /// O(T²) coherence traffic per turn transition). Both strategies
    /// admit the identical turn sequence — *which* thread is minimal is
    /// a pure function of logical clocks; arbitration only decides how
    /// the winner finds out — so, like `idle_poll_ms`, this is a
    /// latency/throughput knob that stays out of the trace projection.
    /// Kept for A/B measurement and as the oracle mode the handoff
    /// protocol is pinned against.
    pub spin_arbitration: bool,
    /// Deterministic checkpointing (core backend only): capture a
    /// [`rfdet_trace::Checkpoint`] at every Nth *eligible* barrier
    /// episode — a full-membership barrier where no mutex is held and
    /// every recorded sync-var release is dominated by the episode's
    /// upper limit (a consistent cut; see DESIGN.md §4.11). `0` (the
    /// default) disables capture. Schedule-neutral: the eligibility
    /// decision only reads state inside a turn that already exists, and
    /// fragment capture runs off-turn — so, like `metrics`, this knob
    /// stays out of the trace projection and a checkpointed run's
    /// digests equal an uncheckpointed one's.
    pub checkpoint_every: u64,
    /// Stop the run cleanly right after contributing to the checkpoint
    /// with this epoch (sharded replay's shard boundary). The stopping
    /// threads unwind with a private token — no failure is recorded, the
    /// partial output and the terminal checkpoint are the run's result.
    /// Requires `checkpoint_every` to make the target epoch reachable.
    pub stop_at_checkpoint: Option<u64>,
    /// Where captured checkpoints persist (atomic rename, best-effort:
    /// an unwritable directory degrades to a warning, never a failed
    /// run). `None` uses `rfdet_trace::persist::trace_dir()`.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Persist captured checkpoints to disk as they seal. `false` keeps
    /// them in-memory only (`TracedRun::checkpoints`) — sharded replay
    /// uses this so verification shards do not re-write the chain.
    pub persist_checkpoints: bool,
    /// Happens-before data-race detection (deterministic backends with
    /// [`crate::DmtBackend::supports_race_detection`] only): track
    /// word-granular read/write epochs over every slice's accesses and
    /// attach a [`crate::RaceReport`] to the [`crate::RunOutput`] for
    /// each conflicting, unordered pair. Detection is *digest-neutral* —
    /// output and failure digests are identical with the detector on or
    /// off (reports live outside `output_digest`), so, like `metrics`,
    /// this knob stays out of the trace projection and a replay decides
    /// for itself whether to re-detect. Backends force `supervise` on
    /// (sync-op coordinates ride the supervision counter) and disable
    /// the slice-merging and gap-coalescing optimizations (both are
    /// semantics-neutral but change slice granularity, which would skew
    /// cross-backend coordinates). `false` (the default) keeps the cost
    /// at one branch per slice.
    pub detect_races: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            space_bytes: 16 << 20,
            page_size: 4096,
            meta_capacity_bytes: 256 << 20,
            gc_threshold: 0.9,
            meta_max_slices: 1024,
            sync_shards: 16,
            rfdet: RfdetOpts::default(),
            quantum_ticks: 10_000,
            jitter_seed: None,
            jitter_max_us: 50,
            fault_plan: FaultPlan::new(),
            supervise: true,
            deadlock_after_ms: Some(30_000),
            trace: None,
            metrics: false,
            idle_poll_ms: 20,
            spin_arbitration: false,
            checkpoint_every: 0,
            stop_at_checkpoint: None,
            checkpoint_dir: None,
            persist_checkpoints: true,
            detect_races: false,
        }
    }
}

impl RunConfig {
    /// A small configuration suitable for unit tests.
    #[must_use]
    pub fn small() -> Self {
        Self {
            space_bytes: 1 << 20,
            meta_capacity_bytes: 4 << 20,
            ..Self::default()
        }
    }

    /// Number of pages in the logical space.
    #[must_use]
    pub fn num_pages(&self) -> u64 {
        self.space_bytes.div_ceil(self.page_size)
    }

    /// The wall-clock wedge bound as a [`Duration`].
    #[must_use]
    pub fn deadlock_after(&self) -> Option<Duration> {
        self.deadlock_after_ms.map(Duration::from_millis)
    }

    /// The idle re-check period as a [`Duration`] (clamped to ≥ 1 ms so
    /// a zero knob cannot turn parked threads into spinners).
    #[must_use]
    pub fn idle_poll(&self) -> Duration {
        Duration::from_millis(self.idle_poll_ms.max(1))
    }

    /// The determinism-relevant projection of this configuration in the
    /// codec-stable trace form ([`TraceConfig`]). The jitter seed and
    /// fault plan travel as separate [`RunTrace`] fields.
    #[must_use]
    pub fn trace_config(&self) -> TraceConfig {
        TraceConfig {
            space_bytes: self.space_bytes,
            page_size: self.page_size,
            meta_capacity_bytes: self.meta_capacity_bytes,
            gc_threshold_bits: self.gc_threshold.to_bits(),
            meta_max_slices: self.meta_max_slices,
            sync_shards: self.sync_shards as u64,
            monitor: match self.rfdet.monitor {
                MonitorMode::Ci => 0,
                MonitorMode::Pf => 1,
            },
            slice_merging: self.rfdet.slice_merging,
            prelock: self.rfdet.prelock,
            lazy_writes: self.rfdet.lazy_writes,
            fault_cost_spins: self.rfdet.fault_cost_spins,
            diff_gap_coalesce: self.rfdet.diff_gap_coalesce as u64,
            snap_pool_pages: self.rfdet.snap_pool_pages as u64,
            quantum_ticks: self.quantum_ticks,
            jitter_max_us: self.jitter_max_us,
            supervise: self.supervise,
            deadlock_after_ms: self.deadlock_after_ms,
        }
    }

    /// Reconstructs the configuration a trace was recorded under —
    /// config, seed and fault plan — with recording re-enabled, so a
    /// replay observes its own schedule for comparison.
    #[must_use]
    pub fn from_trace(trace: &RunTrace) -> Self {
        let c = &trace.config;
        Self {
            space_bytes: c.space_bytes,
            page_size: c.page_size,
            meta_capacity_bytes: c.meta_capacity_bytes,
            gc_threshold: f64::from_bits(c.gc_threshold_bits),
            meta_max_slices: c.meta_max_slices,
            sync_shards: c.sync_shards as usize,
            rfdet: RfdetOpts {
                monitor: if c.monitor == 1 {
                    MonitorMode::Pf
                } else {
                    MonitorMode::Ci
                },
                slice_merging: c.slice_merging,
                prelock: c.prelock,
                lazy_writes: c.lazy_writes,
                fault_cost_spins: c.fault_cost_spins,
                diff_gap_coalesce: c.diff_gap_coalesce as usize,
                snap_pool_pages: c.snap_pool_pages as usize,
            },
            quantum_ticks: c.quantum_ticks,
            jitter_seed: trace.seed,
            jitter_max_us: c.jitter_max_us,
            fault_plan: FaultPlan::from_trace_faults(&trace.faults),
            supervise: c.supervise,
            deadlock_after_ms: c.deadlock_after_ms,
            trace: Some(trace.workload.clone()),
            // Not part of the determinism-relevant projection: metrics
            // never influence results, the idle-poll period only affects
            // wakeup latency, and both arbitration strategies admit the
            // identical turn sequence. Checkpoint capture is likewise
            // schedule-neutral (decisions ride an existing turn, capture
            // runs off-turn), so whether and where a run checkpoints is
            // replay-side policy, not a recorded input. Replays use the
            // defaults; `replay resume`/`replay shard` set the checkpoint
            // knobs explicitly on top of this reconstruction.
            metrics: false,
            idle_poll_ms: RunConfig::default().idle_poll_ms,
            spin_arbitration: false,
            checkpoint_every: 0,
            stop_at_checkpoint: None,
            checkpoint_dir: None,
            persist_checkpoints: true,
            // Race detection is digest-neutral, so whether to re-detect
            // on replay is the replayer's choice (`replay races` turns it
            // back on explicitly), not a recorded input.
            detect_races: false,
        }
    }

    /// Reconstructs the configuration a checkpoint was recorded under,
    /// from the checkpoint's own self-describing header — no trace file
    /// needed. The fault plan comes back *empty*: resuming past a crash
    /// means running without the fault that caused it; shard replay of a
    /// faulted run should resume from its persisted trace instead.
    #[must_use]
    pub fn from_checkpoint(ckpt: &rfdet_trace::Checkpoint) -> Self {
        let synthetic = rfdet_trace::RunTrace {
            backend: ckpt.backend.clone(),
            workload: ckpt.workload.clone(),
            seed: ckpt.seed,
            config: ckpt.config.clone(),
            faults: Vec::new(),
            events: Vec::new(),
            failure: rfdet_trace::FailureSummary {
                kind: rfdet_trace::KIND_NONE,
                tid: 0,
                report_digest: 0,
            },
        };
        Self::from_trace(&synthetic)
    }

    /// Validates invariants (power-of-two page size, nonzero space).
    ///
    /// # Panics
    /// Panics on an invalid configuration; called by every backend at run
    /// start so misconfiguration fails fast.
    pub fn validate(&self) {
        assert!(
            self.page_size.is_power_of_two(),
            "page_size must be a power of two"
        );
        assert!(self.space_bytes > 0, "space_bytes must be nonzero");
        assert!(
            self.space_bytes.is_multiple_of(self.page_size),
            "space_bytes must be page-aligned"
        );
        assert!(
            (0.0..=1.0).contains(&self.gc_threshold),
            "gc_threshold must be in [0,1]"
        );
        assert!(self.quantum_ticks > 0, "quantum_ticks must be nonzero");
        assert!(self.sync_shards > 0, "sync_shards must be nonzero");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RunConfig::default().validate();
        RunConfig::small().validate();
    }

    #[test]
    fn num_pages_rounds_up() {
        let mut c = RunConfig::small();
        c.space_bytes = 4096 * 3;
        assert_eq!(c.num_pages(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_page_size() {
        let mut c = RunConfig::small();
        c.page_size = 1000;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn rejects_unaligned_space() {
        let mut c = RunConfig::small();
        c.space_bytes = 4096 + 7;
        c.validate();
    }

    #[test]
    fn trace_config_round_trips_through_a_trace() {
        let mut cfg = RunConfig::small();
        cfg.rfdet.monitor = MonitorMode::Pf;
        cfg.jitter_seed = Some(99);
        cfg.fault_plan = FaultPlan::new().panic_at(1, 3).jitter_at(2, 0, 7);
        cfg.trace = Some("w".to_owned());
        let trace = rfdet_trace::RunTrace {
            backend: "b".into(),
            workload: "w".into(),
            seed: cfg.jitter_seed,
            config: cfg.trace_config(),
            faults: cfg.fault_plan.to_trace_faults(),
            events: Vec::new(),
            failure: rfdet_trace::FailureSummary {
                kind: rfdet_trace::KIND_PANIC,
                tid: 1,
                report_digest: 0,
            },
        };
        let back = RunConfig::from_trace(&trace);
        assert_eq!(back.space_bytes, cfg.space_bytes);
        assert_eq!(back.gc_threshold.to_bits(), cfg.gc_threshold.to_bits());
        assert_eq!(back.rfdet.monitor, MonitorMode::Pf);
        assert_eq!(back.jitter_seed, Some(99));
        assert_eq!(back.fault_plan, cfg.fault_plan);
        assert_eq!(back.trace.as_deref(), Some("w"));
        back.validate();
    }

    #[test]
    fn metrics_and_idle_poll_default_off_and_20ms() {
        let cfg = RunConfig::default();
        assert!(!cfg.metrics);
        assert_eq!(cfg.idle_poll(), Duration::from_millis(20));
        let mut zero = RunConfig::small();
        zero.idle_poll_ms = 0;
        assert_eq!(
            zero.idle_poll(),
            Duration::from_millis(1),
            "zero clamps: parked threads must not spin"
        );
    }

    #[test]
    fn observability_knobs_stay_out_of_the_trace_projection() {
        let mut cfg = RunConfig::small();
        cfg.metrics = true;
        cfg.idle_poll_ms = 3;
        cfg.spin_arbitration = true;
        cfg.trace = Some("w".to_owned());
        let trace = rfdet_trace::RunTrace {
            backend: "b".into(),
            workload: "w".into(),
            seed: None,
            config: cfg.trace_config(),
            faults: Vec::new(),
            events: Vec::new(),
            failure: rfdet_trace::FailureSummary {
                kind: rfdet_trace::KIND_NONE,
                tid: 0,
                report_digest: 0,
            },
        };
        let back = RunConfig::from_trace(&trace);
        assert!(!back.metrics, "replays run with metrics off by default");
        assert_eq!(back.idle_poll_ms, RunConfig::default().idle_poll_ms);
        assert!(
            !back.spin_arbitration,
            "arbitration strategy is schedule-neutral: replays use handoff"
        );
    }

    #[test]
    fn checkpoint_knobs_stay_out_of_the_trace_projection() {
        let mut cfg = RunConfig::small();
        cfg.checkpoint_every = 4;
        cfg.stop_at_checkpoint = Some(8);
        cfg.checkpoint_dir = Some(std::path::PathBuf::from("/tmp/nowhere"));
        cfg.persist_checkpoints = false;
        cfg.trace = Some("w".to_owned());
        let trace = rfdet_trace::RunTrace {
            backend: "b".into(),
            workload: "w".into(),
            seed: None,
            config: cfg.trace_config(),
            faults: Vec::new(),
            events: Vec::new(),
            failure: rfdet_trace::FailureSummary {
                kind: rfdet_trace::KIND_NONE,
                tid: 0,
                report_digest: 0,
            },
        };
        let back = RunConfig::from_trace(&trace);
        assert_eq!(back.checkpoint_every, 0, "capture is replay-side policy");
        assert_eq!(back.stop_at_checkpoint, None);
        assert_eq!(back.checkpoint_dir, None);
        assert!(back.persist_checkpoints);
    }

    #[test]
    fn race_detection_stays_out_of_the_trace_projection() {
        let mut cfg = RunConfig::small();
        cfg.detect_races = true;
        cfg.trace = Some("w".to_owned());
        let trace = rfdet_trace::RunTrace {
            backend: "b".into(),
            workload: "w".into(),
            seed: None,
            config: cfg.trace_config(),
            faults: Vec::new(),
            events: Vec::new(),
            failure: rfdet_trace::FailureSummary {
                kind: rfdet_trace::KIND_NONE,
                tid: 0,
                report_digest: 0,
            },
        };
        let back = RunConfig::from_trace(&trace);
        assert!(
            !back.detect_races,
            "detection is digest-neutral: re-detecting is replay-side policy"
        );
    }

    #[test]
    fn small_config_is_smaller() {
        let small = RunConfig::small();
        let full = RunConfig::default();
        assert!(small.space_bytes < full.space_bytes);
        assert!(small.meta_capacity_bytes < full.meta_capacity_bytes);
    }
}
