//! The backend abstraction: anything that can execute a DMT workload.

use crate::{FaultPlan, RaceReport, RunConfig, RunError, Stats, ThreadFn};
use rfdet_trace::{ddmin, Checkpoint, RunTrace, TraceFault};

/// The result of running a workload to completion under some backend.
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// Per-thread output streams concatenated in thread-ID order.
    pub output: Vec<u8>,
    /// Aggregated profiling counters.
    pub stats: Stats,
    /// Metrics rollup, present only when [`RunConfig::metrics`] was on.
    /// Deliberately excluded from [`Self::output_digest`]: timing varies
    /// run to run, program results must not.
    pub metrics: Option<Box<rfdet_obs::MetricsSnapshot>>,
    /// Data races detected during the run, present only when
    /// [`RunConfig::detect_races`] was on, in canonical order (sorted by
    /// address, then site keys). Excluded from [`Self::output_digest`]
    /// like `metrics` — detection is an observer, and the digest-neutral
    /// invariant (detector on/off runs produce identical digests) is
    /// pinned by the race test suite.
    pub races: Vec<RaceReport>,
}

impl RunOutput {
    /// A stable 64-bit digest of the output bytes (FNV-1a), used by the
    /// determinism tests to compare runs cheaply.
    #[must_use]
    pub fn output_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.output {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// A run result together with its flight-recorder trace (present only
/// when [`RunConfig::trace`] was on).
#[derive(Debug)]
pub struct TracedRun {
    /// The run's outcome.
    pub result: Result<RunOutput, RunError>,
    /// The recorded trace. For failed runs it has already been persisted
    /// (best effort) and the report's `trace_path` stamped.
    pub trace: Option<Box<RunTrace>>,
    /// Checkpoints captured during the run, in epoch order. Non-empty
    /// only on backends with [`DmtBackend::supports_checkpoints`] and
    /// [`RunConfig::checkpoint_every`] `> 0`.
    pub checkpoints: Vec<Checkpoint>,
    /// Non-fatal degradations (e.g. a trace or checkpoint that could not
    /// be persisted). Warnings never change results or digests — they
    /// exist so robustness is visible instead of silent.
    pub warnings: Vec<String>,
}

/// The outcome of re-executing a recorded trace.
#[derive(Debug)]
pub struct Replay {
    /// The replay run's own outcome.
    pub result: Result<RunOutput, RunError>,
    /// The replay's own recording (replays re-record so schedules can be
    /// compared).
    pub trace: Option<Box<RunTrace>>,
    /// Whether the replay reproduced the recorded terminal digest
    /// (`report_digest` for failures, `output_digest` for clean runs).
    pub digest_match: bool,
    /// Whether the culprit thread's recorded event stream reproduced
    /// exactly ([`RunTrace::culprit_events`]). `None` when either side
    /// recorded no schedule (e.g. unsupervised runs).
    pub schedule_match: Option<bool>,
}

impl Replay {
    /// `true` when the replay verifiably reproduced the recorded run:
    /// the digest matches and the schedule comparison, when possible,
    /// agrees.
    #[must_use]
    pub fn reproduced(&self) -> bool {
        self.digest_match && self.schedule_match != Some(false)
    }
}

/// A deterministic-multithreading execution engine.
///
/// Implementations: `rfdet-core` (the paper), `rfdet-dthreads`,
/// `rfdet-quantum`, `rfdet-native`. Each spins up a *main thread* (tid 0)
/// running `root`; the root spawns workers through its
/// [`crate::DmtCtx::spawn`].
pub trait DmtBackend: Send + Sync {
    /// Human-readable backend name, used in experiment tables
    /// ("pthreads", "RFDet-ci", "RFDet-pf", "DThreads", "CoreDet-q").
    fn name(&self) -> String;

    /// Whether the backend guarantees deterministic execution
    /// (strong determinism: identical results even with data races).
    fn is_deterministic(&self) -> bool;

    /// Whether the backend honors [`crate::RfdetOpts::lazy_writes`]
    /// (§4.5 deferred modification propagation). Backends that ignore
    /// the flag report `false`, so matrix tests and property checks can
    /// enroll the lazy arm exactly where it changes the execution.
    fn supports_lazy_writes(&self) -> bool {
        false
    }

    /// Whether the backend can capture deterministic checkpoints
    /// ([`RunConfig::checkpoint_every`]) and restore from them. Only the
    /// core backend implements the consistent-cut protocol; the others
    /// report `false` and ignore the checkpoint knobs, and the
    /// conformance matrix pins that split.
    fn supports_checkpoints(&self) -> bool {
        false
    }

    /// Whether the backend implements happens-before race detection
    /// ([`RunConfig::detect_races`]). All deterministic backends do; the
    /// native backend has no happens-before substrate to check against
    /// and reports `false` (the conformance matrix pins that split).
    fn supports_race_detection(&self) -> bool {
        false
    }

    /// Runs `root` as the main thread, blocks until the whole thread
    /// tree has finished or the run fails, and — when
    /// [`RunConfig::trace`] is on — returns the flight-recorder trace
    /// alongside the result. Failing traced runs persist their trace
    /// before returning (see [`rfdet_trace::persist`]).
    fn run_traced(&self, cfg: &RunConfig, root: ThreadFn) -> TracedRun;

    /// Runs `root` as the main thread and blocks until the whole thread
    /// tree has finished or the run fails.
    ///
    /// # Errors
    /// Returns a [`RunError`] — carrying a reproducible
    /// [`crate::FailureReport`] — when any thread panics, when every
    /// live thread is provably blocked on another, or when the run makes
    /// no progress for the configured wall-clock bound.
    fn run(&self, cfg: &RunConfig, root: ThreadFn) -> Result<RunOutput, RunError> {
        self.run_traced(cfg, root).result
    }

    /// [`Self::run`], panicking with the rendered failure report on
    /// error. The convenience entry point for tests, benches and
    /// examples that expect a clean run.
    ///
    /// # Panics
    /// Panics with [`crate::FailureReport::render`] when the run fails.
    fn run_expect(&self, cfg: &RunConfig, root: ThreadFn) -> RunOutput {
        match self.run(cfg, root) {
            Ok(out) => out,
            Err(e) => panic!("{}", e.report().render()),
        }
    }

    /// Re-executes a recorded run: rebuilds the trace's configuration
    /// (config, seed, fault plan), runs `root` under it with recording
    /// on, and compares the terminal digest and the culprit thread's
    /// event stream against the recording. `root` must be the same
    /// workload the trace was recorded from (the trace stores only its
    /// name — closures do not serialize).
    fn replay(&self, trace: &RunTrace, root: ThreadFn) -> Replay {
        let cfg = RunConfig::from_trace(trace);
        let rerun = self.run_traced(&cfg, root);
        let digest = match &rerun.result {
            Ok(out) => out.output_digest(),
            Err(e) => e.report_digest(),
        };
        let digest_match = digest == trace.failure.report_digest;
        let schedule_match = match &rerun.trace {
            Some(t) if !t.events.is_empty() && !trace.events.is_empty() => {
                Some(t.culprit_events() == trace.culprit_events())
            }
            _ => None,
        };
        Replay {
            result: rerun.result,
            trace: rerun.trace,
            digest_match,
            schedule_match,
        }
    }

    /// Delta-debugs a failing trace's fault plan down to a 1-minimal
    /// sublist that still reproduces the same [`crate::FailureKind`],
    /// re-running the workload once per probe (`make_root` must hand out
    /// a fresh root closure each time). Returns the trace of a final
    /// verification run under the minimized plan — strictly smaller than
    /// the recorded one — or `None` when the trace did not fail, the
    /// plan cannot shrink, or the verification run diverged.
    fn shrink_plan(
        &self,
        trace: &RunTrace,
        make_root: &mut dyn FnMut() -> ThreadFn,
    ) -> Option<Box<RunTrace>> {
        if !trace.failure.is_failure() {
            return None;
        }
        let base = RunConfig::from_trace(trace);
        let kind = trace.failure.kind;
        let mut oracle = |subset: &[TraceFault]| {
            let mut cfg = base.clone();
            // Probes skip recording: no event collection, no disk churn.
            cfg.trace = None;
            cfg.fault_plan = FaultPlan::from_trace_faults(subset);
            match self.run_traced(&cfg, make_root()).result {
                Err(e) => e.report().kind.code() == kind,
                Ok(_) => false,
            }
        };
        let min = ddmin(&trace.faults, &mut oracle);
        if min.len() >= trace.faults.len() {
            return None;
        }
        // One last traced run under the minimized plan produces the
        // minimal trace (and persists it, as any failing traced run).
        let mut cfg = base;
        cfg.fault_plan = FaultPlan::from_trace_faults(&min);
        self.run_traced(&cfg, make_root())
            .trace
            .filter(|t| t.failure.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = RunOutput {
            output: b"hello".to_vec(),
            ..RunOutput::default()
        };
        let b = RunOutput {
            output: b"hello".to_vec(),
            ..RunOutput::default()
        };
        let c = RunOutput {
            output: b"hellp".to_vec(),
            ..RunOutput::default()
        };
        assert_eq!(a.output_digest(), b.output_digest());
        assert_ne!(a.output_digest(), c.output_digest());
    }

    #[test]
    fn empty_digest_is_fnv_offset_basis() {
        let empty = RunOutput::default();
        assert_eq!(empty.output_digest(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn races_never_enter_the_output_digest() {
        use crate::{AccessKind, RaceSite};
        let clean = RunOutput {
            output: b"result".to_vec(),
            ..RunOutput::default()
        };
        let mut racy = clean.clone();
        racy.races.push(RaceReport {
            addr: 0x1040,
            page: 1,
            offset: 0x40,
            first: RaceSite {
                tid: 1,
                sync_op: 3,
                kind: AccessKind::Write,
                clock: 0,
            },
            second: RaceSite {
                tid: 2,
                sync_op: 5,
                kind: AccessKind::Read,
                clock: 0,
            },
        });
        assert_eq!(
            clean.output_digest(),
            racy.output_digest(),
            "reports are observations, not results"
        );
    }
}
