//! The backend abstraction: anything that can execute a DMT workload.

use crate::{RunConfig, RunError, Stats, ThreadFn};

/// The result of running a workload to completion under some backend.
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// Per-thread output streams concatenated in thread-ID order.
    pub output: Vec<u8>,
    /// Aggregated profiling counters.
    pub stats: Stats,
}

impl RunOutput {
    /// A stable 64-bit digest of the output bytes (FNV-1a), used by the
    /// determinism tests to compare runs cheaply.
    #[must_use]
    pub fn output_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.output {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// A deterministic-multithreading execution engine.
///
/// Implementations: `rfdet-core` (the paper), `rfdet-dthreads`,
/// `rfdet-quantum`, `rfdet-native`. Each spins up a *main thread* (tid 0)
/// running `root`; the root spawns workers through its
/// [`crate::DmtCtx::spawn`].
pub trait DmtBackend: Send + Sync {
    /// Human-readable backend name, used in experiment tables
    /// ("pthreads", "RFDet-ci", "RFDet-pf", "DThreads", "CoreDet-q").
    fn name(&self) -> String;

    /// Whether the backend guarantees deterministic execution
    /// (strong determinism: identical results even with data races).
    fn is_deterministic(&self) -> bool;

    /// Runs `root` as the main thread and blocks until the whole thread
    /// tree has finished or the run fails.
    ///
    /// # Errors
    /// Returns a [`RunError`] — carrying a reproducible
    /// [`crate::FailureReport`] — when any thread panics, when every
    /// live thread is provably blocked on another, or when the run makes
    /// no progress for the configured wall-clock bound.
    fn run(&self, cfg: &RunConfig, root: ThreadFn) -> Result<RunOutput, RunError>;

    /// [`Self::run`], panicking with the rendered failure report on
    /// error. The convenience entry point for tests, benches and
    /// examples that expect a clean run.
    ///
    /// # Panics
    /// Panics with [`crate::FailureReport::render`] when the run fails.
    fn run_expect(&self, cfg: &RunConfig, root: ThreadFn) -> RunOutput {
        match self.run(cfg, root) {
            Ok(out) => out,
            Err(e) => panic!("{}", e.report().render()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = RunOutput {
            output: b"hello".to_vec(),
            stats: Stats::default(),
        };
        let b = RunOutput {
            output: b"hello".to_vec(),
            stats: Stats::default(),
        };
        let c = RunOutput {
            output: b"hellp".to_vec(),
            stats: Stats::default(),
        };
        assert_eq!(a.output_digest(), b.output_digest());
        assert_ne!(a.output_digest(), c.output_digest());
    }

    #[test]
    fn empty_digest_is_fnv_offset_basis() {
        let empty = RunOutput::default();
        assert_eq!(empty.output_digest(), 0xcbf2_9ce4_8422_2325);
    }
}
