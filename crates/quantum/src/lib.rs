//! A CoreDet/DMP-style lockstep-quantum backend (paper §2, Figure 1).
//!
//! Same engine as the DThreads backend, but a thread's parallel interval
//! also ends when it exhausts an instruction (tick) *quantum* — so the
//! whole fleet executes in bulk-synchronous rounds separated by global
//! barriers even when nobody synchronizes. This is the design whose two
//! overheads (unnecessary serialization of non-communicating threads,
//! imbalance between uneven quanta) motivate DLRC; the
//! `ablation_barriers` experiment measures them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rfdet_api::{DmtBackend, RunConfig, ThreadFn, TracedRun};
use rfdet_dthreads::{run_lockstep, EngineMode};

/// The quantum-based strongly deterministic backend ("CoreDet-q" in the
/// experiment tables).
#[derive(Clone, Copy, Debug, Default)]
pub struct QuantumBackend;

impl DmtBackend for QuantumBackend {
    fn name(&self) -> String {
        "CoreDet-q".to_owned()
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn supports_race_detection(&self) -> bool {
        true
    }

    fn run_traced(&self, cfg: &RunConfig, root: ThreadFn) -> TracedRun {
        run_lockstep(
            cfg,
            EngineMode::Quantum(cfg.quantum_ticks),
            &self.name(),
            root,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfdet_api::{DmtCtx, DmtCtxExt, MutexId};

    #[test]
    fn quantum_rounds_fire_without_synchronization() {
        let mut cfg = RunConfig::small();
        cfg.quantum_ticks = 100;
        let out = QuantumBackend.run_expect(
            &cfg,
            Box::new(|ctx| {
                let h = ctx.spawn(Box::new(|ctx| {
                    // Pure compute: no sync ops, but plenty of ticks.
                    for _ in 0..50 {
                        ctx.tick(50);
                    }
                    ctx.write::<u64>(64, 1);
                }));
                ctx.join(h);
                let v: u64 = ctx.read(64);
                ctx.emit_str(&v.to_string());
            }),
        );
        assert_eq!(out.output, b"1");
        // 2500 ticks / 100-tick quantum → at least ~20 forced fences.
        assert!(
            out.stats.global_fences > 10,
            "expected quantum fences, got {}",
            out.stats.global_fences
        );
    }

    #[test]
    fn results_match_dthreads_for_locked_counter() {
        fn root(ctx: &mut dyn DmtCtx) {
            let m = MutexId(0);
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                        for _ in 0..30 {
                            ctx.lock(m);
                            let v: u64 = ctx.read(0);
                            ctx.write(0, v + 1);
                            ctx.unlock(m);
                        }
                    }))
                })
                .collect();
            for h in hs {
                ctx.join(h);
            }
            let v: u64 = ctx.read(0);
            ctx.emit_str(&v.to_string());
        }
        let q = QuantumBackend.run_expect(&RunConfig::small(), Box::new(root));
        let d = rfdet_dthreads::DthreadsBackend.run_expect(&RunConfig::small(), Box::new(root));
        assert_eq!(q.output, b"90");
        assert_eq!(d.output, b"90");
    }
}
