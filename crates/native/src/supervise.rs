//! Poison-based run supervision for the native baseline.
//!
//! The native backend has no arbitration protocol to abort, so
//! supervision is cooperative: a failed run flips the poison flag, and
//! every blocking wait polls it on a short period (`POLL`). A panic is
//! therefore observed by parked peers within ~10ms; runs that stall
//! without a panic trip the wall-clock wedge fallback
//! (`RunConfig::deadlock_after_ms`). Unlike the deterministic backends
//! there is no structural deadlock detector — without a logical clock
//! the blocked-set scan cannot be made stable — so deadlocks surface as
//! `Wedged` here.

use parking_lot::Mutex;
use rfdet_api::{FailureKind, FailureReport, FaultPlan, RunConfig, RunError, ThreadReport, Tid};
use std::collections::BTreeMap;
use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::time::{Duration, Instant};

/// Poll period of every supervised wait loop.
pub(crate) const POLL: Duration = Duration::from_millis(10);

/// Panic token used to tear down peers once the run is poisoned.
pub(crate) struct Poisoned;

/// Shared supervision state (one per run).
pub(crate) struct Supervision {
    /// Fault-injection / bookkeeping gate (`RunConfig::supervise`).
    pub supervise: bool,
    pub fault_plan: FaultPlan,
    wedge_after: Option<Duration>,
    poisoned: AtomicBool,
    /// The root-cause failure. First writer wins; `backend` is filled
    /// in at teardown.
    failure: Mutex<Option<FailureReport>>,
    /// Best-effort states of threads that unwound after the root cause
    /// (excluded from the report digest).
    peers: Mutex<BTreeMap<Tid, ThreadReport>>,
}

impl Supervision {
    pub fn new(cfg: &RunConfig) -> Self {
        Self {
            supervise: cfg.supervise,
            fault_plan: cfg.fault_plan.clone(),
            wedge_after: cfg.deadlock_after(),
            poisoned: AtomicBool::new(false),
            failure: Mutex::new(None),
            peers: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(SeqCst)
    }

    /// Unwinds with a [`Poisoned`] token if the run has failed.
    pub fn check_poison(&self) {
        if self.is_poisoned() {
            panic_any(Poisoned);
        }
    }

    /// Deadline for the wedge fallback, armed when a wait starts.
    pub fn wedge_deadline(&self) -> Option<Instant> {
        self.wedge_after.map(|d| Instant::now() + d)
    }

    pub fn deadline_passed(deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Records the run's root-cause failure (first writer wins) and
    /// poisons the run so every polling wait unwinds.
    fn record_failure(
        &self,
        kind: FailureKind,
        tid: Tid,
        message: String,
        culprit: Option<ThreadReport>,
    ) {
        {
            let mut slot = self.failure.lock();
            if slot.is_none() {
                *slot = Some(FailureReport {
                    backend: String::new(),
                    kind,
                    tid,
                    message,
                    culprit,
                    wait_graph: Vec::new(),
                    cycle: Vec::new(),
                    peers: Vec::new(),
                    trace_path: None,
                    warnings: Vec::new(),
                });
            } else if let Some(c) = culprit {
                self.peers.lock().entry(tid).or_insert(c);
            }
        }
        self.poisoned.store(true, SeqCst);
    }

    /// A worker (or the root) unwound. [`Poisoned`] tokens are the
    /// secondary unwinds of an already-failed run and only contribute
    /// peer diagnostics; anything else is a root-cause panic.
    pub fn record_worker_panic(
        &self,
        tid: Tid,
        payload: Box<dyn std::any::Any + Send>,
        report: ThreadReport,
    ) {
        if payload.is::<Poisoned>() {
            self.peers.lock().entry(tid).or_insert(report);
            return;
        }
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_owned()
        };
        self.record_failure(FailureKind::Panic, tid, message, Some(report));
    }

    /// A wait loop outlived the wall-clock bound.
    pub fn record_wedge(&self, tid: Tid, message: String) {
        self.record_failure(FailureKind::Wedged, tid, message, None);
    }

    /// Assembles the final [`RunError`] at teardown, if the run failed.
    pub fn take_run_error(&self, backend: &str) -> Option<RunError> {
        let mut f = self.failure.lock().take()?;
        f.backend = backend.to_owned();
        let tid = f.tid;
        f.peers = std::mem::take(&mut *self.peers.lock())
            .into_iter()
            .filter(|&(t, _)| t != tid)
            .map(|(_, r)| r)
            .collect();
        Some(RunError::from_report(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_failure_wins_and_poisons() {
        let sup = Supervision::new(&RunConfig::small());
        sup.record_worker_panic(1, Box::new("boom"), ThreadReport::default());
        sup.record_wedge(0, "late wedge".into());
        assert!(sup.is_poisoned());
        let err = sup.take_run_error("pthreads").expect("failure recorded");
        let r = err.report();
        assert_eq!(r.kind, FailureKind::Panic);
        assert_eq!(r.message, "boom");
        assert_eq!(r.backend, "pthreads");
    }

    #[test]
    fn poisoned_tokens_only_add_peer_diagnostics() {
        let sup = Supervision::new(&RunConfig::small());
        sup.record_worker_panic(2, Box::new(Poisoned), ThreadReport::default());
        assert!(!sup.is_poisoned(), "a secondary unwind is not a root cause");
        assert!(sup.take_run_error("pthreads").is_none());
    }

    #[test]
    #[should_panic]
    fn check_poison_unwinds_once_poisoned() {
        let sup = Supervision::new(&RunConfig::small());
        sup.record_wedge(0, "stuck".into());
        sup.check_poison();
    }
}
