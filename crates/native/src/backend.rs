//! The [`NativeBackend`] entry point.

use crate::ctx::{NativeCtx, NativeShared};
use rfdet_api::{DmtBackend, RunConfig, RunOutput, ThreadFn};
use std::sync::Arc;

/// Conventional nondeterministic multithreading ("pthreads" in the
/// paper's figures).
#[derive(Clone, Copy, Debug, Default)]
pub struct NativeBackend;

impl DmtBackend for NativeBackend {
    fn name(&self) -> String {
        "pthreads".to_owned()
    }

    fn is_deterministic(&self) -> bool {
        false
    }

    fn run(&self, cfg: &RunConfig, root: ThreadFn) -> RunOutput {
        let shared = Arc::new(NativeShared::new(cfg));
        let mut main = NativeCtx::new(Arc::clone(&shared));
        root(&mut main);
        main.flush_stats();
        // Harvest leaked (never-joined) threads so the run quiesces.
        loop {
            let handles: Vec<_> = {
                let mut map = shared.handles.lock();
                map.drain().map(|(_, h)| h).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        RunOutput {
            output: shared.meta.collect_output(),
            stats: shared.meta.stats.snapshot(),
        }
    }
}
