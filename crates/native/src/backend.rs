//! The [`NativeBackend`] entry point.

use crate::ctx::{NativeCtx, NativeShared};
use rfdet_api::{DmtBackend, RunConfig, RunOutput, ThreadFn, TracedRun};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Conventional nondeterministic multithreading ("pthreads" in the
/// paper's figures).
#[derive(Clone, Copy, Debug, Default)]
pub struct NativeBackend;

impl DmtBackend for NativeBackend {
    fn name(&self) -> String {
        "pthreads".to_owned()
    }

    fn is_deterministic(&self) -> bool {
        false
    }

    fn run_traced(&self, cfg: &RunConfig, root: ThreadFn) -> TracedRun {
        let shared = Arc::new(NativeShared::new(cfg));
        let mut main = NativeCtx::new(Arc::clone(&shared));
        let result = catch_unwind(AssertUnwindSafe(|| {
            root(&mut main);
            main.flush_stats();
        }));
        if let Err(payload) = result {
            let report = main.thread_report();
            shared.sup.record_worker_panic(0, payload, report);
        }
        // Harvest leaked (never-joined) threads so the run quiesces;
        // workers catch their own panics, so joins cannot fail.
        loop {
            let handles: Vec<_> = {
                let mut map = shared.handles.lock();
                map.drain().map(|(_, h)| h).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        // Flush the main context's trace buffer before assembly (worker
        // buffers flushed when their contexts dropped).
        drop(main);
        let mut result = match shared.sup.take_run_error(&self.name()) {
            Some(err) => Err(err),
            None => Ok(RunOutput {
                output: shared.meta.collect_output(),
                stats: shared.meta.stats.snapshot(),
                metrics: None,
                races: Vec::new(),
            }),
        };
        let trace =
            rfdet_api::finish_trace(&self.name(), cfg, shared.trace_sink.as_ref(), &mut result);
        rfdet_api::finish_metrics(&self.name(), shared.obs.as_ref(), &mut result);
        TracedRun {
            result,
            trace,
            checkpoints: Vec::new(),
            warnings: Vec::new(),
        }
    }
}
