//! Conventional synchronization primitives keyed by application IDs.
//!
//! Every blocking wait polls the run's [`Supervision`] state on a short
//! period: a poisoned run unwinds the waiter with a `Poisoned` token,
//! and a wait that outlives the wedge deadline records a `Wedged`
//! failure (then unwinds on the next poll). That keeps teardown bounded
//! even when peers are parked forever.

use crate::supervise::{Poisoned, Supervision, POLL};
use parking_lot::{Condvar, Mutex};
use rfdet_api::Tid;
use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::Arc;

/// A pthreads-style mutex usable through split `lock`/`unlock` calls.
#[derive(Debug, Default)]
pub(crate) struct LockVar {
    locked: Mutex<bool>,
    cv: Condvar,
}

impl LockVar {
    pub fn lock(&self, sup: &Supervision, tid: Tid) {
        let mut g = self.locked.lock();
        let deadline = sup.wedge_deadline();
        while *g {
            if sup.is_poisoned() {
                drop(g);
                panic_any(Poisoned);
            }
            let timed_out = self.cv.wait_for(&mut g, POLL).timed_out();
            if timed_out && *g && Supervision::deadline_passed(deadline) {
                sup.record_wedge(tid, format!("native: thread {tid} stuck acquiring a mutex"));
            }
        }
        *g = true;
    }

    pub fn unlock(&self) {
        let mut g = self.locked.lock();
        assert!(*g, "unlock of unlocked mutex");
        *g = false;
        drop(g);
        self.cv.notify_one();
    }
}

/// A condition variable whose internal lock brackets the release of the
/// application mutex, avoiding lost wakeups.
#[derive(Debug, Default)]
pub(crate) struct CondVar {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl CondVar {
    /// Atomically releases `mutex` and waits for a signal; re-acquires
    /// `mutex` before returning.
    pub fn wait(&self, mutex: &LockVar, sup: &Supervision, tid: Tid) {
        let mut g = self.gen.lock();
        let my_gen = *g;
        mutex.unlock();
        let deadline = sup.wedge_deadline();
        while *g == my_gen {
            if sup.is_poisoned() {
                drop(g);
                panic_any(Poisoned);
            }
            let timed_out = self.cv.wait_for(&mut g, POLL).timed_out();
            if timed_out && *g == my_gen && Supervision::deadline_passed(deadline) {
                sup.record_wedge(tid, format!("native: thread {tid} stuck in cond_wait"));
            }
        }
        drop(g);
        mutex.lock(sup, tid);
    }

    pub fn signal(&self) {
        *self.gen.lock() += 1;
        self.cv.notify_one();
    }

    pub fn broadcast(&self) {
        *self.gen.lock() += 1;
        self.cv.notify_all();
    }
}

/// A reusable counting barrier.
#[derive(Debug, Default)]
pub(crate) struct BarrierVar {
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

impl BarrierVar {
    pub fn wait(&self, parties: usize, sup: &Supervision, tid: Tid) {
        let mut g = self.state.lock();
        g.0 += 1;
        if g.0 >= parties {
            g.0 = 0;
            g.1 += 1;
            drop(g);
            self.cv.notify_all();
        } else {
            let gen = g.1;
            let deadline = sup.wedge_deadline();
            while g.1 == gen {
                if sup.is_poisoned() {
                    drop(g);
                    panic_any(Poisoned);
                }
                let timed_out = self.cv.wait_for(&mut g, POLL).timed_out();
                if timed_out && g.1 == gen && Supervision::deadline_passed(deadline) {
                    sup.record_wedge(tid, format!("native: thread {tid} stuck at a barrier"));
                }
            }
        }
    }
}

/// Lazily-created registry of synchronization variables.
#[derive(Debug, Default)]
pub(crate) struct Registry<T> {
    map: Mutex<HashMap<u32, Arc<T>>>,
}

impl<T: Default> Registry<T> {
    pub fn get(&self, id: u32) -> Arc<T> {
        Arc::clone(self.map.lock().entry(id).or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfdet_api::RunConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sup() -> Arc<Supervision> {
        Arc::new(Supervision::new(&RunConfig::small()))
    }

    #[test]
    fn lockvar_provides_mutual_exclusion() {
        let lv = Arc::new(LockVar::default());
        let counter = Arc::new(AtomicU64::new(0));
        let inside = Arc::new(AtomicU64::new(0));
        let sup = sup();
        let hs: Vec<_> = (0..4)
            .map(|i| {
                let lv = Arc::clone(&lv);
                let counter = Arc::clone(&counter);
                let inside = Arc::clone(&inside);
                let sup = Arc::clone(&sup);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        lv.lock(&sup, i);
                        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                        counter.fetch_add(1, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        lv.unlock();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 800);
    }

    #[test]
    #[should_panic(expected = "unlock of unlocked")]
    fn unlock_without_lock_panics() {
        LockVar::default().unlock();
    }

    #[test]
    fn barrier_releases_all() {
        let b = Arc::new(BarrierVar::default());
        let released = Arc::new(AtomicU64::new(0));
        let sup = sup();
        let hs: Vec<_> = (0..3)
            .map(|i| {
                let b = Arc::clone(&b);
                let released = Arc::clone(&released);
                let sup = Arc::clone(&sup);
                std::thread::spawn(move || {
                    b.wait(3, &sup, i);
                    released.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(released.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn poisoning_releases_a_parked_lock_waiter() {
        let lv = Arc::new(LockVar::default());
        let sup = sup();
        lv.lock(&sup, 0);
        let h = {
            let lv = Arc::clone(&lv);
            let sup = Arc::clone(&sup);
            std::thread::spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    lv.lock(&sup, 1);
                }));
                assert!(r.is_err(), "waiter must unwind once poisoned");
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        sup.record_wedge(0, "test poison".into());
        h.join().unwrap();
    }

    #[test]
    fn registry_shares_instances() {
        let r: Registry<LockVar> = Registry::default();
        let a = r.get(1);
        let b = r.get(1);
        let c = r.get(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
