//! The `pthreads` baseline: conventional, **nondeterministic**
//! multithreading behind the same [`rfdet_api::DmtCtx`] API.
//!
//! Shared memory is one flat array of atomic bytes accessed with
//! `Relaxed` ordering — racy programs are memory-safe here (every byte is
//! its own atomic cell, matching DLRC's byte granularity) but their
//! results depend on physical timing, exactly like pthreads. Locks,
//! condition variables and barriers map to parking_lot primitives.
//!
//! This is the normalization baseline of the paper's Figure 7 and the
//! scalability reference of Figure 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod ctx;
mod supervise;
mod sync;

pub use backend::NativeBackend;

#[cfg(test)]
mod tests {
    use crate::NativeBackend;
    use rfdet_api::{BarrierId, CondId, DmtBackend, DmtCtxExt, MutexId, RunConfig};

    #[test]
    fn counter_with_locks_is_exact() {
        let out = NativeBackend.run_expect(
            &RunConfig::small(),
            Box::new(|ctx| {
                let m = MutexId(0);
                let hs: Vec<_> = (0..4)
                    .map(|_| {
                        ctx.spawn(Box::new(move |ctx| {
                            for _ in 0..100 {
                                ctx.lock(m);
                                let v: u64 = ctx.read(64);
                                ctx.write(64, v + 1);
                                ctx.unlock(m);
                            }
                        }))
                    })
                    .collect();
                for h in hs {
                    ctx.join(h);
                }
                let v: u64 = ctx.read(64);
                ctx.emit_str(&v.to_string());
            }),
        );
        assert_eq!(out.output, b"400");
        assert_eq!(out.stats.locks, 400);
    }

    #[test]
    fn condvar_handshake_works() {
        let out = NativeBackend.run_expect(
            &RunConfig::small(),
            Box::new(|ctx| {
                let m = MutexId(0);
                let cv = CondId(0);
                let child = ctx.spawn(Box::new(move |ctx| {
                    ctx.lock(m);
                    while ctx.read::<u64>(0) == 0 {
                        ctx.cond_wait(cv, m);
                    }
                    ctx.write::<u64>(8, 42);
                    ctx.unlock(m);
                }));
                ctx.lock(m);
                ctx.write::<u64>(0, 1);
                ctx.cond_signal(cv);
                ctx.unlock(m);
                ctx.join(child);
                let v: u64 = ctx.read(8);
                ctx.emit_str(&v.to_string());
            }),
        );
        assert_eq!(out.output, b"42");
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let out = NativeBackend.run_expect(
            &RunConfig::small(),
            Box::new(|ctx| {
                let b = BarrierId(0);
                let hs: Vec<_> = (0..3u64)
                    .map(|i| {
                        ctx.spawn(Box::new(move |ctx| {
                            ctx.write_idx::<u64>(0, i, i + 1);
                            ctx.barrier(b, 3);
                            let sum: u64 = (0..3).map(|j| ctx.read_idx::<u64>(0, j)).sum();
                            ctx.write_idx::<u64>(256, i, sum);
                        }))
                    })
                    .collect();
                for h in hs {
                    ctx.join(h);
                }
                let s: u64 = ctx.read_idx::<u64>(256, 1);
                ctx.emit_str(&s.to_string());
            }),
        );
        assert_eq!(out.output, b"6");
    }

    #[test]
    fn backend_is_not_deterministic_by_contract() {
        assert!(!NativeBackend.is_deterministic());
        assert_eq!(NativeBackend.name(), "pthreads");
    }

    #[test]
    fn alloc_roundtrip() {
        let out = NativeBackend.run_expect(
            &RunConfig::small(),
            Box::new(|ctx| {
                let a = ctx.alloc(64, 8);
                ctx.write::<u64>(a, 11);
                let v: u64 = ctx.read(a);
                ctx.dealloc(a);
                ctx.emit_str(&v.to_string());
            }),
        );
        assert_eq!(out.output, b"11");
        assert_eq!(out.stats.shared_bytes, 64);
    }

    #[test]
    fn unaligned_and_cross_word_accesses() {
        let out = NativeBackend.run_expect(
            &RunConfig::small(),
            Box::new(|ctx| {
                ctx.write::<u64>(13, 0x0102_0304_0506_0708);
                let v: u64 = ctx.read(13);
                let b: u8 = ctx.read(13);
                ctx.emit_str(&format!("{v:x},{b:x}"));
            }),
        );
        assert_eq!(out.output, b"102030405060708,8");
    }
}
