//! The native per-thread context.

use crate::supervise::Supervision;
use crate::sync::{BarrierVar, CondVar, LockVar, Registry};
use parking_lot::Mutex;
use rfdet_api::{
    Addr, BarrierId, CondId, DmtCtx, FaultPlan, MutexId, RunConfig, Stats, ThreadFn, ThreadHandle,
    ThreadReport, Tid,
};
use rfdet_mem::{StripAllocator, ThreadHeap};
use rfdet_meta::MetaSpace;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::Arc;

/// Shared state of one native run.
pub(crate) struct NativeShared {
    /// The shared memory: one atomic cell per byte, accessed `Relaxed`.
    /// Races are memory-safe but nondeterministic — faithful pthreads.
    pub mem: Vec<AtomicU8>,
    pub locks: Registry<LockVar>,
    pub conds: Registry<CondVar>,
    pub barriers: Registry<BarrierVar>,
    pub strips: StripAllocator,
    /// Reused for thread registration, output streams and stats.
    pub meta: MetaSpace,
    pub handles: Mutex<HashMap<Tid, std::thread::JoinHandle<()>>>,
    /// Striped locks making 8-byte atomics atomic over the byte-cell
    /// memory (§4.6 extension).
    pub atomic_stripes: Vec<Mutex<()>>,
    /// Failure recording and poison-based teardown (see `supervise`).
    pub sup: Supervision,
    /// Flight-recorder sink, `Some` iff `cfg.trace` is on. Events carry
    /// no logical clocks here (the backend has none); per-thread op
    /// indices order each stream.
    pub trace_sink: Option<Arc<rfdet_api::trace::TraceSink>>,
    /// Metrics sink, `Some` iff `cfg.metrics` is on. Native has no
    /// deterministic decision path to protect, but it reports the same
    /// phase histograms so A/B comparisons against the deterministic
    /// backends line up.
    pub obs: Option<Arc<rfdet_api::obs::ObsSink>>,
}

impl NativeShared {
    pub fn new(cfg: &RunConfig) -> Self {
        cfg.validate();
        let heap_base = rfdet_mem::heap_base(cfg.space_bytes);
        Self {
            mem: (0..cfg.space_bytes).map(|_| AtomicU8::new(0)).collect(),
            locks: Registry::default(),
            conds: Registry::default(),
            barriers: Registry::default(),
            strips: StripAllocator::new(heap_base, cfg.space_bytes - heap_base),
            meta: MetaSpace::new(cfg.meta_capacity_bytes as usize, cfg.gc_threshold),
            handles: Mutex::new(HashMap::new()),
            atomic_stripes: (0..64).map(|_| Mutex::new(())).collect(),
            sup: Supervision::new(cfg),
            trace_sink: rfdet_api::trace_sink(cfg),
            obs: rfdet_api::obs_sink(cfg),
        }
    }
}

/// Per-thread context for the native backend.
pub(crate) struct NativeCtx {
    pub shared: Arc<NativeShared>,
    pub tid: Tid,
    pub heap: ThreadHeap,
    pub stats: Stats,
    /// Sync ops executed, in program order — the trigger index for
    /// [`FaultPlan`] and the progress metric in failure reports.
    sync_ops: u64,
    last_op: Option<(&'static str, Option<u64>)>,
    allocs: u64,
    /// Flight-recorder buffer; flushes to the sink on drop (covers panic
    /// unwinds — the context outlives the thread body's `catch_unwind`).
    trace: Option<rfdet_api::trace::TraceBuf>,
    /// Metrics recorder; flushes to the sink on drop.
    obs: Option<rfdet_api::obs::ObsRecorder>,
}

impl NativeCtx {
    pub fn new(shared: Arc<NativeShared>) -> Self {
        let tid = shared.meta.register_thread().tid;
        let heap = shared.strips.heap_for(tid);
        let trace = shared
            .trace_sink
            .as_ref()
            .map(|s| rfdet_api::trace::TraceBuf::new(Arc::clone(s)));
        let obs = shared
            .obs
            .as_ref()
            .map(|s| rfdet_api::obs::ObsRecorder::new(Arc::clone(s)));
        Self {
            shared,
            tid,
            heap,
            stats: Stats::default(),
            sync_ops: 0,
            last_op: None,
            allocs: 0,
            trace,
            obs,
        }
    }

    /// Runs one sync operation under the end-to-end
    /// [`Phase::SyncOp`](rfdet_api::obs::Phase::SyncOp) envelope. The
    /// clock is read only when metrics are on.
    #[inline]
    fn sync_timed<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = self.obs.as_ref().map(|_| std::time::Instant::now());
        let r = f(self);
        if let (Some(obs), Some(t0)) = (self.obs.as_mut(), t0) {
            obs.record(
                rfdet_api::obs::Phase::SyncOp,
                t0.elapsed().as_nanos() as u64,
            );
        }
        r
    }

    /// Entry hook of every synchronization operation: counts the op,
    /// remembers it for failure reports, and applies any matching
    /// [`FaultPlan`] entry. Op indices are per-thread program order, so
    /// a plan written against a deterministic backend triggers at the
    /// same source point here. Jitter ticks become a short spin — the
    /// closest native analogue of perturbing a logical clock.
    fn fault_point(&mut self, kind: &'static str, arg: Option<u64>) {
        if !self.shared.sup.supervise {
            return;
        }
        let op = self.sync_ops;
        self.sync_ops += 1;
        self.last_op = Some((kind, arg));
        if let Some(buf) = &mut self.trace {
            buf.push(rfdet_api::trace::TraceEvent {
                tid: self.tid,
                op,
                kind: rfdet_api::trace::op::code(kind),
                arg,
                clock: 0,
            });
        }
        if !self.shared.sup.fault_plan.is_empty() {
            let f = self.shared.sup.fault_plan.on_sync_op(self.tid, op);
            for _ in 0..f.jitter_ticks {
                std::hint::spin_loop();
            }
            if f.panic {
                panic!("{}", FaultPlan::panic_message(self.tid, op));
            }
        }
    }

    /// Allocation hook for `FaultPlan::fail_alloc`.
    fn alloc_fault_point(&mut self) {
        if !self.shared.sup.supervise {
            return;
        }
        let nth = self.allocs;
        self.allocs += 1;
        if let Some(buf) = &mut self.trace {
            buf.push(rfdet_api::trace::TraceEvent {
                tid: self.tid,
                op: nth,
                kind: rfdet_api::trace::op::ALLOC,
                arg: None,
                clock: 0,
            });
        }
        if !self.shared.sup.fault_plan.is_empty()
            && self.shared.sup.fault_plan.on_alloc(self.tid, nth)
        {
            panic!("{}", FaultPlan::alloc_panic_message(self.tid, nth));
        }
    }

    /// This thread's progress summary for failure reports (the native
    /// backend keeps no vector clocks or slice counts).
    pub(crate) fn thread_report(&self) -> ThreadReport {
        ThreadReport {
            tid: self.tid,
            sync_ops: self.sync_ops,
            last_op: self.last_op.map(|(k, a)| match a {
                Some(a) => format!("{k}({a})"),
                None => k.to_owned(),
            }),
            ..ThreadReport::default()
        }
    }

    pub fn flush_stats(&mut self) {
        self.shared.meta.stats.merge(&self.stats);
        self.stats = Stats::default();
    }

    fn check_range(&self, addr: Addr, len: usize) {
        assert!(
            addr as usize + len <= self.shared.mem.len(),
            "shared-memory access out of bounds: addr={addr:#x} len={len}"
        );
    }
}

impl DmtCtx for NativeCtx {
    fn tid(&self) -> Tid {
        self.tid
    }

    fn tick(&mut self, _n: u64) {
        // No logical clocks: native threads run free.
    }

    fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.stats.loads += 1;
        self.check_range(addr, buf.len());
        let base = addr as usize;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.shared.mem[base + i].load(Relaxed);
        }
    }

    fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        self.stats.stores += 1;
        self.check_range(addr, data.len());
        let base = addr as usize;
        for (i, &b) in data.iter().enumerate() {
            self.shared.mem[base + i].store(b, Relaxed);
        }
    }

    fn lock(&mut self, m: MutexId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("lock", Some(u64::from(m.0)));
            ctx.stats.locks += 1;
            ctx.shared.locks.get(m.0).lock(&ctx.shared.sup, ctx.tid);
        });
    }

    fn unlock(&mut self, m: MutexId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("unlock", Some(u64::from(m.0)));
            ctx.stats.unlocks += 1;
            ctx.shared.locks.get(m.0).unlock();
        });
    }

    fn cond_wait(&mut self, c: CondId, m: MutexId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("cond_wait", Some(u64::from(c.0)));
            ctx.stats.waits += 1;
            let cond = ctx.shared.conds.get(c.0);
            let mutex = ctx.shared.locks.get(m.0);
            cond.wait(&mutex, &ctx.shared.sup, ctx.tid);
        });
    }

    fn cond_signal(&mut self, c: CondId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("cond_signal", Some(u64::from(c.0)));
            ctx.stats.signals += 1;
            ctx.shared.conds.get(c.0).signal();
        });
    }

    fn cond_broadcast(&mut self, c: CondId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("cond_broadcast", Some(u64::from(c.0)));
            ctx.stats.signals += 1;
            ctx.shared.conds.get(c.0).broadcast();
        });
    }

    fn barrier(&mut self, b: BarrierId, parties: usize) {
        self.sync_timed(|ctx| {
            ctx.fault_point("barrier", Some(u64::from(b.0)));
            ctx.stats.barriers += 1;
            ctx.shared
                .barriers
                .get(b.0)
                .wait(parties, &ctx.shared.sup, ctx.tid);
        });
    }

    fn spawn(&mut self, f: ThreadFn) -> ThreadHandle {
        let t0 = self.obs.as_ref().map(|_| std::time::Instant::now());
        self.fault_point("spawn", None);
        self.stats.forks += 1;
        let shared = Arc::clone(&self.shared);
        let mut child = NativeCtx::new(Arc::clone(&shared));
        let tid = child.tid;
        let handle = std::thread::Builder::new()
            .name(format!("native-{tid}"))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    f(&mut child);
                    child.flush_stats();
                }));
                if let Err(payload) = result {
                    // Root-cause panics poison the run (unparking every
                    // polling waiter); Poisoned tokens add diagnostics.
                    let report = child.thread_report();
                    child.shared.sup.record_worker_panic(tid, payload, report);
                }
            })
            .expect("failed to spawn OS thread");
        self.shared.handles.lock().insert(tid, handle);
        if let (Some(obs), Some(t0)) = (self.obs.as_mut(), t0) {
            obs.record(
                rfdet_api::obs::Phase::SyncOp,
                t0.elapsed().as_nanos() as u64,
            );
        }
        ThreadHandle(tid)
    }

    fn join(&mut self, h: ThreadHandle) {
        self.sync_timed(|ctx| {
            ctx.fault_point("join", Some(u64::from(h.0)));
            ctx.stats.joins += 1;
            let handle = ctx
                .shared
                .handles
                .lock()
                .remove(&h.0)
                .unwrap_or_else(|| panic!("join of unknown or already-joined thread {}", h.0));
            // The child caught its own panic (recording it as the root
            // cause), so the join itself cannot fail — but if the run is
            // now poisoned the joiner must unwind too.
            let _ = handle.join();
            ctx.shared.sup.check_poison();
        });
    }

    fn alloc(&mut self, size: u64, align: u64) -> Addr {
        self.alloc_fault_point();
        self.stats.shared_bytes += size;
        self.heap.alloc(size, align)
    }

    fn dealloc(&mut self, addr: Addr) {
        self.heap.dealloc(addr);
    }

    fn emit(&mut self, bytes: &[u8]) {
        self.shared.meta.emit(self.tid, bytes);
    }

    fn atomic_rmw(&mut self, addr: Addr, op: rfdet_api::AtomicOp) -> u64 {
        self.sync_timed(|ctx| {
            ctx.fault_point("atomic", Some(addr));
            ctx.shared.sup.check_poison();
            ctx.stats.atomics += 1;
            ctx.check_range(addr, 8);
            let stripe = &ctx.shared.atomic_stripes[(addr >> 3) as usize % 64];
            let _guard = stripe.lock();
            let base = addr as usize;
            let mut buf = [0u8; 8];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = ctx.shared.mem[base + i].load(Relaxed);
            }
            let old = u64::from_le_bytes(buf);
            for (i, b) in op.apply(old).to_le_bytes().iter().enumerate() {
                ctx.shared.mem[base + i].store(*b, Relaxed);
            }
            old
        })
    }

    fn atomic_load(&mut self, addr: Addr) -> u64 {
        self.sync_timed(|ctx| {
            ctx.fault_point("atomic", Some(addr));
            ctx.shared.sup.check_poison();
            ctx.stats.atomics += 1;
            ctx.check_range(addr, 8);
            let stripe = &ctx.shared.atomic_stripes[(addr >> 3) as usize % 64];
            let _guard = stripe.lock();
            let base = addr as usize;
            let mut buf = [0u8; 8];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = ctx.shared.mem[base + i].load(Relaxed);
            }
            u64::from_le_bytes(buf)
        })
    }

    fn atomic_store(&mut self, addr: Addr, value: u64) {
        self.sync_timed(|ctx| {
            ctx.fault_point("atomic", Some(addr));
            ctx.shared.sup.check_poison();
            ctx.stats.atomics += 1;
            ctx.check_range(addr, 8);
            let stripe = &ctx.shared.atomic_stripes[(addr >> 3) as usize % 64];
            let _guard = stripe.lock();
            let base = addr as usize;
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                ctx.shared.mem[base + i].store(*b, Relaxed);
            }
        });
    }

    fn count_app_events(&mut self, retries: u64, shed: u64) {
        self.stats.app_retries += retries;
        self.stats.app_shed += shed;
    }
}
