//! Behavioural tests of the DThreads-model backend.

use rfdet_api::{BarrierId, CondId, DmtBackend, DmtCtx, DmtCtxExt, MutexId, RunConfig};
use rfdet_dthreads::DthreadsBackend;

fn cfg() -> RunConfig {
    RunConfig::small()
}

#[test]
fn locked_counter_is_exact_and_deterministic() {
    fn root(ctx: &mut dyn DmtCtx) {
        let m = MutexId(0);
        let hs: Vec<_> = (0..4u64)
            .map(|i| {
                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                    for k in 0..50u64 {
                        ctx.lock(m);
                        let v: u64 = ctx.read(0);
                        ctx.write(0, v + i * 100 + k);
                        ctx.unlock(m);
                    }
                }))
            })
            .collect();
        for h in hs {
            ctx.join(h);
        }
        let v: u64 = ctx.read(0);
        ctx.emit_str(&v.to_string());
    }
    let a = DthreadsBackend.run_expect(&cfg(), Box::new(root));
    let b = DthreadsBackend.run_expect(&cfg(), Box::new(root));
    let expected: u64 = (0..4u64)
        .flat_map(|i| (0..50u64).map(move |k| i * 100 + k))
        .sum();
    assert_eq!(a.output, expected.to_string().as_bytes());
    assert_eq!(a.output, b.output);
    assert!(
        a.stats.global_fences > 0,
        "fences are the point of this model"
    );
    assert!(a.stats.serial_commits > 0);
}

#[test]
fn racy_writes_resolve_deterministically() {
    fn root(ctx: &mut dyn DmtCtx) {
        // Pure W/W race: both children write the same cell, then exit.
        let t1 = ctx.spawn(Box::new(|ctx: &mut dyn DmtCtx| {
            ctx.write::<u64>(0, 111);
        }));
        let t2 = ctx.spawn(Box::new(|ctx: &mut dyn DmtCtx| {
            ctx.write::<u64>(0, 222);
        }));
        ctx.join(t1);
        ctx.join(t2);
        let v: u64 = ctx.read(0);
        ctx.emit_str(&v.to_string());
    }
    let outs: Vec<_> = (0..5)
        .map(|_| DthreadsBackend.run_expect(&cfg(), Box::new(root)).output)
        .collect();
    for o in &outs[1..] {
        assert_eq!(o, &outs[0], "race must resolve identically every run");
    }
    let v: u64 = String::from_utf8(outs[0].clone()).unwrap().parse().unwrap();
    assert!(v == 111 || v == 222);
}

#[test]
fn isolation_holds_between_sync_points() {
    fn root(ctx: &mut dyn DmtCtx) {
        let m = MutexId(0);
        // Child writes without synchronizing; parent must not see the
        // write until the child's next sync point commits it.
        let child = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            ctx.write::<u64>(0, 9);
            // Spin on ticks without sync: the write stays private.
            for _ in 0..100 {
                ctx.tick(1);
            }
            ctx.lock(m); // first sync point: commit happens here
            ctx.unlock(m);
        }));
        // Parent polls under the lock.
        let mut seen_before_commit = false;
        for _ in 0..3 {
            ctx.lock(m);
            let v: u64 = ctx.read(0);
            if v == 9 {
                seen_before_commit = true;
            }
            ctx.unlock(m);
        }
        ctx.join(child);
        let v: u64 = ctx.read(0);
        ctx.emit_str(&format!("{v},{seen_before_commit}"));
    }
    let out = DthreadsBackend.run_expect(&cfg(), Box::new(root));
    // After join the write is always visible.
    assert!(out.output.starts_with(b"9,"));
}

#[test]
fn condvar_producer_consumer_works() {
    fn root(ctx: &mut dyn DmtCtx) {
        let m = MutexId(0);
        let cv = CondId(0);
        let consumer = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            let mut total = 0u64;
            for _ in 0..10 {
                ctx.lock(m);
                while ctx.read::<u64>(0) == 0 {
                    ctx.cond_wait(cv, m);
                }
                total += ctx.read::<u64>(8);
                ctx.write::<u64>(0, 0);
                ctx.cond_signal(cv);
                ctx.unlock(m);
            }
            ctx.write::<u64>(16, total);
        }));
        for i in 1..=10u64 {
            ctx.lock(m);
            while ctx.read::<u64>(0) == 1 {
                ctx.cond_wait(cv, m);
            }
            ctx.write::<u64>(8, i);
            ctx.write::<u64>(0, 1);
            ctx.cond_signal(cv);
            ctx.unlock(m);
        }
        ctx.join(consumer);
        let t: u64 = ctx.read(16);
        ctx.emit_str(&t.to_string());
    }
    let out = DthreadsBackend.run_expect(&cfg(), Box::new(root));
    assert_eq!(out.output, b"55");
    // Note: the deterministic token order can produce perfect
    // producer/consumer alternation, in which case no cond_wait ever
    // blocks — so we assert correctness, not wait counts.
    let again = DthreadsBackend.run_expect(&cfg(), Box::new(root));
    assert_eq!(again.output, b"55");
}

#[test]
fn barriers_work_across_phases() {
    fn root(ctx: &mut dyn DmtCtx) {
        let b = BarrierId(0);
        let hs: Vec<_> = (0..3u64)
            .map(|i| {
                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                    for phase in 0..4u64 {
                        ctx.write_idx::<u64>(0, i, phase + i);
                        ctx.barrier(b, 3);
                        let sum: u64 = (0..3).map(|j| ctx.read_idx::<u64>(0, j)).sum();
                        ctx.write_idx::<u64>(256, i, sum);
                        ctx.barrier(b, 3);
                    }
                }))
            })
            .collect();
        for h in hs {
            ctx.join(h);
        }
        let v: u64 = ctx.read_idx::<u64>(256, 0);
        ctx.emit_str(&v.to_string());
    }
    let out = DthreadsBackend.run_expect(&cfg(), Box::new(root));
    // Final phase (3): cells are 3, 4, 5 → sum 12.
    assert_eq!(out.output, b"12");
}

#[test]
fn compute_heavy_thread_delays_fences() {
    // The paper's core criticism: a thread that never synchronizes still
    // gates every fence. Observable here as: with a compute thread in
    // the mix, lock-heavy threads make no progress until it arrives.
    // Functionally we can only check the run completes and is correct —
    // the *latency* effect is measured by the ablation bench.
    fn root(ctx: &mut dyn DmtCtx) {
        let m = MutexId(0);
        let locker = ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
            for _ in 0..20 {
                ctx.lock(m);
                ctx.update::<u64>(0, |v| v + 1);
                ctx.unlock(m);
            }
        }));
        let compute = ctx.spawn(Box::new(|ctx: &mut dyn DmtCtx| {
            for _ in 0..1000 {
                ctx.tick(10);
            }
            ctx.write::<u64>(8, 1);
        }));
        ctx.join(locker);
        ctx.join(compute);
        let a: u64 = ctx.read(0);
        let b: u64 = ctx.read(8);
        ctx.emit_str(&format!("{a},{b}"));
    }
    let out = DthreadsBackend.run_expect(&cfg(), Box::new(root));
    assert_eq!(out.output, b"20,1");
}

#[test]
fn worker_panic_does_not_hang_the_fence() {
    let result = std::panic::catch_unwind(|| {
        DthreadsBackend.run_expect(
            &cfg(),
            Box::new(|ctx| {
                let h = ctx.spawn(Box::new(|_ctx: &mut dyn DmtCtx| {
                    panic!("dthreads worker dies");
                }));
                // Keep synchronizing: without force_exit this would fence
                // forever on the dead thread.
                let m = MutexId(0);
                for _ in 0..5 {
                    ctx.lock(m);
                    ctx.unlock(m);
                }
                ctx.join(h);
            }),
        )
    });
    assert!(result.is_err(), "panic must propagate");
}
