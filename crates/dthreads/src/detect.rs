//! Race detection for the lockstep engine.
//!
//! The engine has no vector clocks of its own — determinism comes from
//! the global fence, not from tracking causality. The detector therefore
//! maintains a shadow vector-clock state under the engine monitor,
//! advanced as the serial phase processes arrivals:
//!
//! * each first-processed arrival seals one parallel **interval** — its
//!   word-read set plus the diff's written words are checked against the
//!   shared epoch table with the thread's pre-tick clock, then the clock
//!   ticks;
//! * synchronization operations install the happens-before edges the
//!   program actually creates: unlock/wait publish to the mutex's release
//!   clock (joined by the next successful lock), signal/broadcast flow
//!   into the woken waiters, barriers accumulate every party's clock and
//!   hand the join back to all of them, spawn seeds the child from the
//!   parent, exit publishes to a per-thread release clock joined at join,
//!   and serial-phase atomics order through a per-address clock.
//!
//! Release clocks are **joined into**, never assigned, so a release
//! published before this op's own acquire still transits everything seen
//! by earlier releasers (the accumulated clock is the union of all
//! ordered critical sections — identical to assignment for mutexes,
//! and required for the acquire-and-release atomics).
//!
//! The atomic accesses themselves (executed on the global store inside
//! the serial phase) are synchronization, not data — they never appear
//! in any diff and are not checked, matching the core backend's
//! exclusion of atomic mini-slices.

use rfdet_api::{RaceReport, Tid};
use rfdet_mem::race::{RaceCollector, ReadRun, SliceAccess};
use rfdet_mem::ModRun;
use rfdet_vclock::VClock;
use std::collections::HashMap;

/// Shadow vector-clock state for the lockstep engine, living inside the
/// engine monitor (so every mutation is already serialized).
pub(crate) struct EngineDetect {
    collector: RaceCollector,
    /// Per-thread clock, indexed by tid (tids are dense: the metadata
    /// space hands them out sequentially).
    vcs: Vec<VClock>,
    /// Per-mutex release clock (unlock/wait publish, lock joins).
    mutex_rel: HashMap<u32, VClock>,
    /// Per-barrier accumulator across one episode; removed at release.
    barrier_acc: HashMap<u32, VClock>,
    /// Per-thread exit release clock (exit publishes, join joins).
    exit_rel: HashMap<Tid, VClock>,
    /// Per-address release clock for serial-phase atomics, which are
    /// acquire-and-release: each op joins the accumulated clock, then
    /// publishes its own sealed time into it.
    atomic_rel: HashMap<u64, VClock>,
}

impl EngineDetect {
    pub(crate) fn new(page_size: u64) -> Self {
        Self {
            collector: RaceCollector::new(page_size),
            vcs: Vec::new(),
            mutex_rel: HashMap::new(),
            barrier_acc: HashMap::new(),
            exit_rel: HashMap::new(),
            atomic_rel: HashMap::new(),
        }
    }

    /// Registers a thread whose clock starts fresh (main). Spawned
    /// threads go through [`Self::spawned`] instead.
    pub(crate) fn register(&mut self, tid: Tid) {
        self.ensure(tid);
        self.vcs[tid as usize].tick(tid);
    }

    fn ensure(&mut self, tid: Tid) {
        let idx = tid as usize;
        if idx >= self.vcs.len() {
            self.vcs.resize_with(idx + 1, VClock::new);
        }
    }

    /// Seals one parallel interval at its arrival's first processing:
    /// checks reads and written words against the epoch table with the
    /// pre-tick clock, ticks, and returns the sealed (pre-tick) stamp
    /// for the op's release edges.
    pub(crate) fn seal_interval(
        &mut self,
        tid: Tid,
        sync_op: u64,
        reads: &[ReadRun],
        writes: &[ModRun],
    ) -> VClock {
        self.ensure(tid);
        let sealed = self.vcs[tid as usize].clone();
        self.collector.observe(&SliceAccess {
            tid,
            time: &sealed,
            sync_op,
            writes,
            reads,
        });
        self.vcs[tid as usize].tick(tid);
        sealed
    }

    /// A successful mutex acquisition joins the mutex's release clock.
    pub(crate) fn lock_acquired(&mut self, tid: Tid, m: u32) {
        if let Some(rel) = self.mutex_rel.get(&m) {
            self.vcs[tid as usize].join(rel);
        }
    }

    /// Unlock (or the release half of cond-wait) publishes the sealed
    /// interval to the mutex's release clock.
    pub(crate) fn mutex_released(&mut self, m: u32, sealed: &VClock) {
        self.mutex_rel.entry(m).or_default().join(sealed);
    }

    /// Signal/broadcast: every woken waiter inherits the signaller's
    /// sealed time (the wake edge; the mutex re-acquire edge follows
    /// when their re-armed lock succeeds).
    pub(crate) fn signalled(&mut self, woken: &[Tid], sealed: &VClock) {
        for &w in woken {
            self.ensure(w);
            self.vcs[w as usize].join(sealed);
        }
    }

    /// A barrier arrival folds the party's sealed time into the
    /// episode's accumulator.
    pub(crate) fn barrier_arrived(&mut self, b: u32, sealed: &VClock) {
        self.barrier_acc.entry(b).or_default().join(sealed);
    }

    /// Barrier release: every party (including the releaser) joins the
    /// full episode accumulator — all-to-all ordering across the wall.
    pub(crate) fn barrier_released(&mut self, b: u32, parties: &[Tid]) {
        let acc = self.barrier_acc.remove(&b).unwrap_or_default();
        for &w in parties {
            self.ensure(w);
            self.vcs[w as usize].join(&acc);
        }
    }

    /// Spawn: the child starts at the parent's sealed time plus its own
    /// first tick (so the parent's post-spawn interval stays concurrent
    /// with the child).
    pub(crate) fn spawned(&mut self, child: Tid, sealed: &VClock) {
        self.ensure(child);
        self.vcs[child as usize] = sealed.clone();
        self.vcs[child as usize].tick(child);
    }

    /// A successful join acquires the target's exit release clock.
    pub(crate) fn join_acquired(&mut self, tid: Tid, target: Tid) {
        if let Some(rel) = self.exit_rel.get(&target) {
            self.vcs[tid as usize].join(rel);
        }
    }

    /// Exit publishes the final sealed interval; parked joiners released
    /// in the same phase acquire it immediately (their re-armed `Noop`
    /// carries no diff, so no later hook would see the edge).
    pub(crate) fn exited(&mut self, tid: Tid, sealed: &VClock, joiners: &[Tid]) {
        self.exit_rel.entry(tid).or_default().join(sealed);
        for &j in joiners {
            self.ensure(j);
            self.vcs[j as usize].join(sealed);
        }
    }

    /// A serial-phase atomic: acquire the address's accumulated release
    /// clock, then publish the sealed time into it.
    pub(crate) fn atomic_op(&mut self, tid: Tid, addr: u64, sealed: &VClock) {
        if let Some(rel) = self.atomic_rel.get(&addr) {
            self.vcs[tid as usize].join(rel);
        }
        self.atomic_rel.entry(addr).or_default().join(sealed);
    }

    /// Seals detection: canonically-sorted reports plus whether the
    /// report cap truncated the list.
    pub(crate) fn finish(self) -> (Vec<RaceReport>, bool) {
        let truncated = self.collector.truncated();
        (self.collector.finish(), truncated)
    }
}
