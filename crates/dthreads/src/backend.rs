//! The [`DthreadsBackend`] entry point and the shared lockstep driver.

use crate::ctx::DtCtx;
use crate::engine::{Engine, EngineMode};
use rfdet_api::{DmtBackend, RunConfig, RunOutput, ThreadFn, TracedRun};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Drives one complete run of the lockstep engine in `mode`. Shared by
/// the DThreads and quantum backends (`backend` names the caller in
/// failure reports).
pub fn run_lockstep(cfg: &RunConfig, mode: EngineMode, backend: &str, root: ThreadFn) -> TracedRun {
    let engine = Arc::new(Engine::new(cfg, mode));
    let (tid, image) = engine.register_main();
    let mut main = DtCtx::new(Arc::clone(&engine), tid, image);
    let result = catch_unwind(AssertUnwindSafe(|| {
        root(&mut main);
        main.exit();
    }));
    if let Err(payload) = result {
        let report = main.thread_report();
        engine.record_worker_panic(tid, payload, report);
        engine.force_exit(tid);
    }
    // Harvest every worker; children may keep spawning while we join, so
    // loop until the handle map stays empty. Workers never unwind out of
    // their closure (panics route through record_worker_panic), so these
    // joins cannot themselves fail.
    loop {
        let handles: Vec<_> = {
            let mut map = engine.handles.lock();
            map.drain().map(|(_, h)| h).collect()
        };
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    // Flush the main context's trace buffer before assembly (worker
    // buffers flushed when their contexts dropped).
    drop(main);
    let (races, races_truncated) = engine.take_races();
    let mut warnings = Vec::new();
    if races_truncated {
        warnings.push(format!(
            "race reports truncated at {} — epoch checks continued, but later races went unrecorded",
            rfdet_mem::race::RaceCollector::DEFAULT_CAP
        ));
    }
    let mut result = match engine.take_run_error(backend) {
        Some(err) => Err(err),
        None => {
            // Report the global store's materialized size as the run's
            // shared footprint (workloads lay data out directly, so
            // allocator byte counts alone would under-report).
            engine.meta.stats.shared_bytes.fetch_add(
                engine.global_store_bytes(),
                std::sync::atomic::Ordering::Relaxed,
            );
            Ok(RunOutput {
                output: engine.meta.collect_output(),
                stats: engine.meta.stats.snapshot(),
                metrics: None,
                races,
            })
        }
    };
    let trace = rfdet_api::finish_trace(backend, cfg, engine.trace_sink.as_ref(), &mut result);
    rfdet_api::finish_metrics(backend, engine.obs.as_ref(), &mut result);
    TracedRun {
        result,
        trace,
        checkpoints: Vec::new(),
        warnings,
    }
}

/// The DThreads-model backend: strong determinism via isolated threads,
/// a global fence at every synchronization operation, and serial
/// token-order commits (paper §2; compared against throughout §5).
#[derive(Clone, Copy, Debug, Default)]
pub struct DthreadsBackend;

impl DmtBackend for DthreadsBackend {
    fn name(&self) -> String {
        "DThreads".to_owned()
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn supports_race_detection(&self) -> bool {
        true
    }

    fn run_traced(&self, cfg: &RunConfig, root: ThreadFn) -> TracedRun {
        run_lockstep(cfg, EngineMode::SyncOnly, &self.name(), root)
    }
}
