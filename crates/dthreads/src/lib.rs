//! A from-scratch DThreads-model backend (Liu, Curtsinger, Berger —
//! SOSP'11), the paper's main comparison point, plus the shared
//! *lockstep engine* also used by the CoreDet/DMP-style quantum backend.
//!
//! # The model (paper §2, Figure 1)
//!
//! Execution alternates between:
//!
//! * a **parallel phase** — threads run isolated in private spaces; the
//!   phase ends when *every* live thread reaches a synchronization
//!   operation (this wait is the implicit **global fence** RFDet
//!   eliminates);
//! * a **serial phase** — in deterministic token order (ascending thread
//!   ID), each arrived thread commits its byte-granularity diffs into the
//!   *global store* and executes its synchronization operation against
//!   global state; afterwards every thread whose operation completed
//!   re-bases its private space on the new global store (copy-on-write).
//!
//! The two costs the RFDet paper attributes to this design are both
//! visible here by construction: a compute-heavy thread delays every
//! fence (imbalance), and all commits serialize through the token.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod ctx;
mod detect;
mod engine;

pub use backend::DthreadsBackend;
pub use engine::EngineMode;

// Exposed for the quantum backend, which wraps the same engine.
pub use backend::run_lockstep;
