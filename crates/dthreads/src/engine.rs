//! The lockstep engine: global fence + serial token-order commit.

use parking_lot::{Condvar, Mutex};
use rfdet_api::{AtomicOp, RunConfig, ThreadFn, Tid};
use rfdet_mem::{ModRun, PrivateSpace};
use rfdet_meta::MetaSpace;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering::Relaxed;

/// What ends a parallel phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// DThreads: only synchronization operations end a thread's parallel
    /// interval.
    SyncOnly,
    /// CoreDet/DMP: an interval also ends after the given tick budget
    /// (the *quantum*), forcing lockstep rounds even without
    /// synchronization.
    Quantum(u64),
}

/// The synchronization operation a thread arrived with.
pub(crate) enum PendingOp {
    Noop,
    QuantumBreak,
    Lock(u32),
    Unlock(u32),
    /// `(cond, mutex)` — releases the mutex and parks.
    Wait(u32, u32),
    /// `(cond, broadcast)`.
    Signal(u32, bool),
    /// `(barrier, parties)`.
    Barrier(u32, usize),
    Spawn(ThreadFn),
    Join(Tid),
    Exit,
    /// Low-level atomic on the global store (the §4.6 extension):
    /// executed in the serial phase, so it is atomic and deterministic
    /// by construction. `op` None = pure load; `store` Some = plain
    /// release store.
    Atomic {
        addr: u64,
        op: Option<AtomicOp>,
        store: Option<u64>,
    },
}

impl PendingOp {
    /// Short description for stall diagnostics.
    pub(crate) fn describe(&self) -> String {
        match self {
            PendingOp::Noop => "noop".into(),
            PendingOp::QuantumBreak => "quantum".into(),
            PendingOp::Lock(m) => format!("lock({m})"),
            PendingOp::Unlock(m) => format!("unlock({m})"),
            PendingOp::Wait(c, m) => format!("wait({c},{m})"),
            PendingOp::Signal(c, b) => format!("signal({c},bc={b})"),
            PendingOp::Barrier(b, p) => format!("barrier({b},{p})"),
            PendingOp::Spawn(_) => "spawn".into(),
            PendingOp::Join(t) => format!("join({t})"),
            PendingOp::Exit => "exit".into(),
            PendingOp::Atomic { addr, .. } => format!("atomic({addr:#x})"),
        }
    }
}

/// The diff a thread computed for its just-ended parallel interval.
pub(crate) struct Arrival {
    pub op: PendingOp,
    /// Taken (applied to the global store) at most once, on the first
    /// serial phase that processes this arrival.
    pub diff: Option<Vec<ModRun>>,
}

/// Result delivered back to an arrived thread.
pub(crate) enum Outcome {
    /// Operation completed; re-base on this image of the global store
    /// (None for exit).
    Done(Option<PrivateSpace>),
}

#[derive(Default)]
struct Slot {
    outcome: Option<Outcome>,
    /// Old value returned by this thread's `Atomic` op.
    value: Option<u64>,
    /// Child seed produced by this thread's `Spawn` op, to be turned into
    /// an OS thread by the spawner itself once its op completes.
    seed: Option<ChildSeed>,
}

pub(crate) struct EngineState {
    pub global: PrivateSpace,
    /// Threads that participate in the fence (runnable, not parked).
    active: HashSet<Tid>,
    /// Threads stopped at their next synchronization operation.
    arrived: BTreeMap<Tid, Arrival>,
    slots: Vec<Slot>,
    lock_owner: HashMap<u32, Option<Tid>>,
    cond_waiters: HashMap<u32, VecDeque<(Tid, u32)>>,
    barrier_waiters: HashMap<u32, Vec<Tid>>,
    join_waiters: HashMap<Tid, Vec<Tid>>,
    finished: HashSet<Tid>,
    phase: u64,
}

/// The engine: one big monitor. Parallel-phase memory accesses never touch
/// it; only synchronization points do — which is faithful to DThreads,
/// where the serial phase is globally serialized by the token anyway.
pub(crate) struct Engine {
    state: Mutex<EngineState>,
    cv: Condvar,
    pub meta: MetaSpace,
    pub mode: EngineMode,

    pub handles: Mutex<HashMap<Tid, std::thread::JoinHandle<()>>>,
    pub strips: rfdet_mem::StripAllocator,
}

/// Everything a freshly spawned thread needs.
pub(crate) struct ChildSeed {
    pub tid: Tid,
    pub space: PrivateSpace,
    pub entry: ThreadFn,
}

impl Engine {
    pub fn new(cfg: &RunConfig, mode: EngineMode) -> Self {
        cfg.validate();
        let heap_base = rfdet_mem::heap_base(cfg.space_bytes);
        Self {
            state: Mutex::new(EngineState {
                global: PrivateSpace::new(cfg.space_bytes, cfg.page_size),
                active: HashSet::new(),
                arrived: BTreeMap::new(),
                slots: Vec::new(),
                lock_owner: HashMap::new(),
                cond_waiters: HashMap::new(),
                barrier_waiters: HashMap::new(),
                join_waiters: HashMap::new(),
                finished: HashSet::new(),
                phase: 0,
            }),
            cv: Condvar::new(),
            meta: MetaSpace::new(cfg.meta_capacity_bytes as usize, cfg.gc_threshold),
            mode,
            handles: Mutex::new(HashMap::new()),
            strips: rfdet_mem::StripAllocator::new(heap_base, cfg.space_bytes - heap_base),
        }
    }

    /// Registers the main thread (tid 0) and returns its starting image.
    pub fn register_main(&self) -> (Tid, PrivateSpace) {
        let tid = self.meta.register_thread().tid;
        assert_eq!(tid, 0, "main must be the first registration");
        let mut st = self.state.lock();
        st.active.insert(tid);
        st.slots.push(Slot::default());
        let img = st.global.clone();
        (tid, img)
    }

    /// A thread arrives at a synchronization point with its interval diff
    /// and blocks until its operation completes. Returns the new base
    /// image (None if the op was `Exit`) and any child seed to spawn.
    pub fn arrive(
        &self,
        tid: Tid,
        op: PendingOp,
        diff: Vec<ModRun>,
    ) -> (Option<PrivateSpace>, Option<ChildSeed>, Option<u64>) {
        let mut st = self.state.lock();
        st.arrived.insert(
            tid,
            Arrival {
                op,
                diff: Some(diff),
            },
        );
        self.maybe_phases(&mut st);
        loop {
            if let Some(Outcome::Done(img)) = st.slots[tid as usize].outcome.take() {
                let seed = st.slots[tid as usize].seed.take();
                let value = st.slots[tid as usize].value.take();
                return (img, seed, value);
            }
            let timed_out = self
                .cv
                .wait_for(&mut st, std::time::Duration::from_secs(20))
                .timed_out();
            if timed_out && st.slots[tid as usize].outcome.is_none() {
                panic!(
                    "dthreads engine stalled: tid={tid} phase={} active={:?} arrived={:?} \
                     owners={:?} cond_waiters={:?} barrier_waiters={:?} join_waiters={:?} \
                     finished={:?}",
                    st.phase,
                    st.active,
                    st.arrived
                        .iter()
                        .map(|(t, a)| (*t, a.op.describe()))
                        .collect::<Vec<_>>(),
                    st.lock_owner
                        .iter()
                        .filter(|(_, o)| o.is_some())
                        .collect::<Vec<_>>(),
                    st.cond_waiters,
                    st.barrier_waiters,
                    st.join_waiters,
                    st.finished,
                );
            }
        }
    }

    /// Runs serial phases for as long as the fence condition holds.
    fn maybe_phases(&self, st: &mut EngineState) {
        while !st.active.is_empty() && st.arrived.len() == st.active.len() {
            self.run_serial_phase(st);
            self.cv.notify_all();
        }
    }

    /// One serial phase: token order = ascending tid.
    fn run_serial_phase(&self, st: &mut EngineState) {
        let order: Vec<Tid> = st.arrived.keys().copied().collect();
        let mut done: Vec<Tid> = Vec::new();
        let mut exited: Vec<Tid> = Vec::new();
        let mut parked = 0usize;
        let mut spawned = 0usize;

        for tid in order {
            // Commit the interval's modifications (once).
            if let Some(diff) = st.arrived.get_mut(&tid).and_then(|a| a.diff.take()) {
                if !diff.is_empty() {
                    self.meta.stats.serial_commits.fetch_add(1, Relaxed);
                    let bytes: u64 = diff.iter().map(|r| r.len() as u64).sum();
                    self.meta.stats.mod_bytes_applied.fetch_add(bytes, Relaxed);
                    st.global.apply_runs(&diff);
                }
            }
            // Take the op; a failed Lock puts it back for the next round.
            let op = std::mem::replace(
                &mut st.arrived.get_mut(&tid).expect("arrival present").op,
                PendingOp::Noop,
            );
            match op {
                PendingOp::Noop | PendingOp::QuantumBreak => done.push(tid),
                PendingOp::Lock(m) => {
                    let owner = st.lock_owner.entry(m).or_insert(None);
                    if owner.is_none() {
                        *owner = Some(tid);
                        done.push(tid);
                    } else {
                        // Retry next phase (stay arrived, diff consumed).
                        st.arrived.get_mut(&tid).expect("arrival").op = PendingOp::Lock(m);
                    }
                }
                PendingOp::Unlock(m) => {
                    let owner = st.lock_owner.entry(m).or_insert(None);
                    assert_eq!(
                        *owner,
                        Some(tid),
                        "thread {tid} unlocking mutex {m} it does not hold"
                    );
                    *owner = None;
                    done.push(tid);
                }
                PendingOp::Wait(c, m) => {
                    let owner = st.lock_owner.entry(m).or_insert(None);
                    assert_eq!(*owner, Some(tid), "cond_wait without holding mutex {m}");
                    *owner = None;
                    st.cond_waiters.entry(c).or_default().push_back((tid, m));
                    st.active.remove(&tid);
                    st.arrived.remove(&tid);
                    parked += 1;
                }
                PendingOp::Signal(c, broadcast) => {
                    let queue = st.cond_waiters.entry(c).or_default();
                    let n = if broadcast {
                        queue.len()
                    } else {
                        usize::from(!queue.is_empty())
                    };
                    let woken: Vec<(Tid, u32)> = queue.drain(..n).collect();
                    for (w, m) in woken {
                        // Re-arm as a mutex acquisition next phase.
                        st.active.insert(w);
                        st.arrived.insert(
                            w,
                            Arrival {
                                op: PendingOp::Lock(m),
                                diff: None,
                            },
                        );
                    }
                    done.push(tid);
                }
                PendingOp::Barrier(b, parties) => {
                    let waiters = st.barrier_waiters.entry(b).or_default();
                    waiters.push(tid);
                    if waiters.len() == parties {
                        let all = std::mem::take(waiters);
                        for w in all {
                            if w != tid {
                                st.active.insert(w);
                            }
                            done.push(w);
                        }
                    } else {
                        st.active.remove(&tid);
                        st.arrived.remove(&tid);
                        parked += 1;
                    }
                }
                PendingOp::Spawn(entry) => {
                    let child = self.meta.register_thread().tid;
                    st.slots.push(Slot::default());
                    st.active.insert(child);
                    let seed = ChildSeed {
                        tid: child,
                        // The child inherits the global store as of the
                        // parent's commit (a COW clone).
                        space: st.global.clone(),
                        entry,
                    };
                    st.slots[tid as usize].seed = Some(seed);
                    spawned += 1;
                    done.push(tid);
                }
                PendingOp::Join(target) => {
                    if st.finished.contains(&target) {
                        done.push(tid);
                    } else {
                        st.join_waiters.entry(target).or_default().push(tid);
                        st.active.remove(&tid);
                        st.arrived.remove(&tid);
                        parked += 1;
                    }
                }
                PendingOp::Atomic { addr, op, store } => {
                    let mut buf = [0u8; 8];
                    st.global.read(addr, &mut buf);
                    let old = u64::from_le_bytes(buf);
                    let new = match (op, store) {
                        (Some(op), None) => Some(op.apply(old)),
                        (None, Some(v)) => Some(v),
                        (None, None) => None,
                        (Some(_), Some(_)) => unreachable!(),
                    };
                    if let Some(new) = new {
                        st.global.write(addr, &new.to_le_bytes());
                    }
                    st.slots[tid as usize].value = Some(old);
                    done.push(tid);
                }
                PendingOp::Exit => {
                    st.finished.insert(tid);
                    st.active.remove(&tid);
                    let joiners = st.join_waiters.remove(&tid).unwrap_or_default();
                    for j in joiners {
                        st.active.insert(j);
                        st.arrived.insert(
                            j,
                            Arrival {
                                op: PendingOp::Noop,
                                diff: None,
                            },
                        );
                    }
                    exited.push(tid);
                }
            }
        }

        assert!(
            !(done.is_empty() && exited.is_empty() && parked == 0 && spawned == 0),
            "dthreads engine: deterministic deadlock — no operation can \
             make progress (phase {})",
            st.phase
        );

        for tid in done {
            st.arrived.remove(&tid);
            let img = st.global.clone();
            st.slots[tid as usize].outcome = Some(Outcome::Done(Some(img)));
        }
        for tid in exited {
            st.arrived.remove(&tid);
            st.slots[tid as usize].outcome = Some(Outcome::Done(None));
        }
        st.phase += 1;
        self.meta.stats.global_fences.fetch_add(1, Relaxed);
    }

    /// Materialized size of the global store, for footprint reporting
    /// (this is the app's "real" shared footprint — what plain pthreads
    /// would use).
    pub fn global_store_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.global.materialized_pages() as u64 * st.global.page_size() as u64
    }

    /// Emergency removal of a panicked thread so the fence can still
    /// close; joiners are released as if the thread exited.
    pub fn force_exit(&self, tid: Tid) {
        let mut st = self.state.lock();
        st.active.remove(&tid);
        st.arrived.remove(&tid);
        st.finished.insert(tid);
        let joiners = st.join_waiters.remove(&tid).unwrap_or_default();
        for j in joiners {
            st.active.insert(j);
            st.arrived.insert(
                j,
                Arrival {
                    op: PendingOp::Noop,
                    diff: None,
                },
            );
        }
        self.maybe_phases(&mut st);
        self.cv.notify_all();
    }
}
