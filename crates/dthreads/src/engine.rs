//! The lockstep engine: global fence + serial token-order commit.

use crate::detect::EngineDetect;
use parking_lot::{Condvar, Mutex};
use rfdet_api::{
    AtomicOp, FailureKind, FailureReport, FaultPlan, RaceReport, RunConfig, RunError, ThreadFn,
    ThreadReport, Tid, WaitEdge, WaitTarget,
};
use rfdet_mem::race::ReadRun;
use rfdet_mem::{ModRun, PrivateSpace};
use rfdet_meta::MetaSpace;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::panic_any;
use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::Arc;
use std::time::Duration;

/// Panic token used to tear down peers once the engine is poisoned. A
/// recognizable payload lets the worker catch distinguish the secondary
/// unwinds it causes from real (root-cause) panics.
pub(crate) struct Poisoned;

/// What ends a parallel phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// DThreads: only synchronization operations end a thread's parallel
    /// interval.
    SyncOnly,
    /// CoreDet/DMP: an interval also ends after the given tick budget
    /// (the *quantum*), forcing lockstep rounds even without
    /// synchronization.
    Quantum(u64),
}

/// The synchronization operation a thread arrived with.
pub(crate) enum PendingOp {
    Noop,
    QuantumBreak,
    Lock(u32),
    Unlock(u32),
    /// `(cond, mutex)` — releases the mutex and parks.
    Wait(u32, u32),
    /// `(cond, broadcast)`.
    Signal(u32, bool),
    /// `(barrier, parties)`.
    Barrier(u32, usize),
    Spawn(ThreadFn),
    Join(Tid),
    Exit,
    /// Low-level atomic on the global store (the §4.6 extension):
    /// executed in the serial phase, so it is atomic and deterministic
    /// by construction. `op` None = pure load; `store` Some = plain
    /// release store.
    Atomic {
        addr: u64,
        op: Option<AtomicOp>,
        store: Option<u64>,
    },
}

impl PendingOp {
    /// Short description for stall diagnostics.
    pub(crate) fn describe(&self) -> String {
        match self {
            PendingOp::Noop => "noop".into(),
            PendingOp::QuantumBreak => "quantum".into(),
            PendingOp::Lock(m) => format!("lock({m})"),
            PendingOp::Unlock(m) => format!("unlock({m})"),
            PendingOp::Wait(c, m) => format!("wait({c},{m})"),
            PendingOp::Signal(c, b) => format!("signal({c},bc={b})"),
            PendingOp::Barrier(b, p) => format!("barrier({b},{p})"),
            PendingOp::Spawn(_) => "spawn".into(),
            PendingOp::Join(t) => format!("join({t})"),
            PendingOp::Exit => "exit".into(),
            PendingOp::Atomic { addr, .. } => format!("atomic({addr:#x})"),
        }
    }
}

/// The diff a thread computed for its just-ended parallel interval.
pub(crate) struct Arrival {
    pub op: PendingOp,
    /// Taken (applied to the global store) at most once, on the first
    /// serial phase that processes this arrival.
    pub diff: Option<Vec<ModRun>>,
    /// The interval's word-read set, sealed alongside the diff for race
    /// detection. Empty unless [`RunConfig::detect_races`] is on.
    pub reads: Option<Vec<ReadRun>>,
    /// The arriving thread's sync-op count at the seal — the
    /// backend-invariant logical coordinate stamped on race reports.
    pub sync_op: u64,
}

/// Result delivered back to an arrived thread.
pub(crate) enum Outcome {
    /// Operation completed; re-base on this image of the global store
    /// (None for exit).
    Done(Option<PrivateSpace>),
}

#[derive(Default)]
struct Slot {
    outcome: Option<Outcome>,
    /// Old value returned by this thread's `Atomic` op.
    value: Option<u64>,
    /// Child seed produced by this thread's `Spawn` op, to be turned into
    /// an OS thread by the spawner itself once its op completes.
    seed: Option<ChildSeed>,
}

pub(crate) struct EngineState {
    pub global: PrivateSpace,
    /// Threads that participate in the fence (runnable, not parked).
    active: HashSet<Tid>,
    /// Threads stopped at their next synchronization operation.
    arrived: BTreeMap<Tid, Arrival>,
    slots: Vec<Slot>,
    lock_owner: HashMap<u32, Option<Tid>>,
    cond_waiters: HashMap<u32, VecDeque<(Tid, u32)>>,
    barrier_waiters: HashMap<u32, Vec<Tid>>,
    join_waiters: HashMap<Tid, Vec<Tid>>,
    finished: HashSet<Tid>,
    phase: u64,
    /// Race-detection shadow state (`RunConfig::detect_races`); lives
    /// under the monitor so serial phases mutate it race-free.
    detect: Option<Box<EngineDetect>>,
}

/// The engine: one big monitor. Parallel-phase memory accesses never touch
/// it; only synchronization points do — which is faithful to DThreads,
/// where the serial phase is globally serialized by the token anyway.
pub(crate) struct Engine {
    state: Mutex<EngineState>,
    cv: Condvar,
    pub meta: MetaSpace,
    pub mode: EngineMode,

    pub handles: Mutex<HashMap<Tid, std::thread::JoinHandle<()>>>,
    pub strips: rfdet_mem::StripAllocator,

    /// Fault-injection / bookkeeping gate (`RunConfig::supervise`).
    pub supervise: bool,
    /// Whether contexts should collect word-read sets for the detector
    /// (`RunConfig::detect_races`).
    pub detect_races: bool,
    pub fault_plan: FaultPlan,
    /// Wall-clock fallback for runs that stall without a provable
    /// structural deadlock (`RunConfig::deadlock_after_ms`).
    wedge_after: Option<Duration>,
    /// Once set, every thread unwinds with a [`Poisoned`] token at its
    /// next engine interaction; no further serial phases run.
    poisoned: AtomicBool,
    /// The root-cause failure. First writer wins; `backend` is filled in
    /// at teardown.
    failure: Mutex<Option<FailureReport>>,
    /// Best-effort states of threads that unwound after the root cause
    /// (excluded from the report digest).
    peers: Mutex<BTreeMap<Tid, ThreadReport>>,
    /// Flight-recorder sink (`RunConfig::trace`); `None` when disabled.
    pub trace_sink: Option<Arc<rfdet_api::trace::TraceSink>>,
    /// Metrics sink (`RunConfig::metrics`); `None` when disabled. Timing
    /// is read only when this is `Some` and never feeds a decision.
    pub obs: Option<Arc<rfdet_api::obs::ObsSink>>,
}

/// Everything a freshly spawned thread needs.
pub(crate) struct ChildSeed {
    pub tid: Tid,
    pub space: PrivateSpace,
    pub entry: ThreadFn,
}

impl Engine {
    pub fn new(cfg: &RunConfig, mode: EngineMode) -> Self {
        cfg.validate();
        let heap_base = rfdet_mem::heap_base(cfg.space_bytes);
        Self {
            state: Mutex::new(EngineState {
                global: PrivateSpace::new(cfg.space_bytes, cfg.page_size),
                active: HashSet::new(),
                arrived: BTreeMap::new(),
                slots: Vec::new(),
                lock_owner: HashMap::new(),
                cond_waiters: HashMap::new(),
                barrier_waiters: HashMap::new(),
                join_waiters: HashMap::new(),
                finished: HashSet::new(),
                phase: 0,
                detect: cfg
                    .detect_races
                    .then(|| Box::new(EngineDetect::new(cfg.page_size))),
            }),
            cv: Condvar::new(),
            meta: MetaSpace::new(cfg.meta_capacity_bytes as usize, cfg.gc_threshold),
            mode,
            handles: Mutex::new(HashMap::new()),
            strips: rfdet_mem::StripAllocator::new(heap_base, cfg.space_bytes - heap_base),
            // Detection needs the per-thread sync-op counters that give
            // race reports their backend-invariant coordinates, so it
            // forces supervision on (semantics- and digest-neutral).
            supervise: cfg.supervise || cfg.detect_races,
            detect_races: cfg.detect_races,
            fault_plan: cfg.fault_plan.clone(),
            wedge_after: cfg.deadlock_after(),
            poisoned: AtomicBool::new(false),
            failure: Mutex::new(None),
            peers: Mutex::new(BTreeMap::new()),
            trace_sink: rfdet_api::trace_sink(cfg),
            obs: rfdet_api::obs_sink(cfg),
        }
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(SeqCst)
    }

    /// Records the run's root-cause failure (first writer wins), poisons
    /// the engine and wakes every parked thread so teardown is bounded.
    fn record_failure(
        &self,
        kind: FailureKind,
        tid: Tid,
        message: String,
        culprit: Option<ThreadReport>,
        wait_graph: Vec<WaitEdge>,
        cycle: Vec<Tid>,
    ) {
        {
            let mut slot = self.failure.lock();
            if slot.is_none() {
                *slot = Some(FailureReport {
                    backend: String::new(),
                    kind,
                    tid,
                    message,
                    culprit,
                    wait_graph,
                    cycle,
                    peers: Vec::new(),
                    trace_path: None,
                    warnings: Vec::new(),
                });
            } else if let Some(c) = culprit {
                self.peers.lock().entry(tid).or_insert(c);
            }
        }
        self.poisoned.store(true, SeqCst);
        self.cv.notify_all();
    }

    /// A worker (or the root) unwound. [`Poisoned`] tokens are the
    /// secondary unwinds of an already-failed run and only contribute
    /// peer diagnostics; anything else is a root-cause panic.
    pub fn record_worker_panic(
        &self,
        tid: Tid,
        payload: Box<dyn std::any::Any + Send>,
        report: ThreadReport,
    ) {
        if payload.is::<Poisoned>() {
            self.peers.lock().entry(tid).or_insert(report);
            return;
        }
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_owned()
        };
        self.record_failure(
            FailureKind::Panic,
            tid,
            message,
            Some(report),
            Vec::new(),
            Vec::new(),
        );
    }

    /// Assembles the final [`RunError`] at teardown, if the run failed.
    pub fn take_run_error(&self, backend: &str) -> Option<RunError> {
        let mut f = self.failure.lock().take()?;
        f.backend = backend.to_owned();
        let tid = f.tid;
        f.peers = std::mem::take(&mut *self.peers.lock())
            .into_iter()
            .filter(|&(t, _)| t != tid)
            .map(|(_, r)| r)
            .collect();
        Some(RunError::from_report(f))
    }

    /// The wait-for graph read off the engine's deterministic queueing
    /// state: retrying `Lock` arrivals plus every parked waiter, sorted
    /// by waiter tid.
    fn wait_graph(st: &EngineState) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        for (&tid, a) in &st.arrived {
            if let PendingOp::Lock(m) = a.op {
                edges.push(WaitEdge {
                    waiter: tid,
                    target: WaitTarget::Mutex {
                        id: m,
                        holder: st.lock_owner.get(&m).copied().flatten(),
                    },
                });
            }
        }
        let mut cond_ids: Vec<u32> = st.cond_waiters.keys().copied().collect();
        cond_ids.sort_unstable();
        for id in cond_ids {
            for &(w, _) in &st.cond_waiters[&id] {
                edges.push(WaitEdge {
                    waiter: w,
                    target: WaitTarget::Cond { id },
                });
            }
        }
        let mut barrier_ids: Vec<u32> = st.barrier_waiters.keys().copied().collect();
        barrier_ids.sort_unstable();
        for id in barrier_ids {
            for &w in &st.barrier_waiters[&id] {
                edges.push(WaitEdge {
                    waiter: w,
                    target: WaitTarget::Barrier { id },
                });
            }
        }
        let mut join_targets: Vec<Tid> = st.join_waiters.keys().copied().collect();
        join_targets.sort_unstable();
        for target in join_targets {
            for &w in &st.join_waiters[&target] {
                edges.push(WaitEdge {
                    waiter: w,
                    target: WaitTarget::Join { target },
                });
            }
        }
        edges.sort_by_key(|e| e.waiter);
        edges
    }

    /// Records a structural deadlock discovered from the engine state.
    /// The state (and hence the report and its digest) is a deterministic
    /// function of the schedule, so this reproduces across reruns.
    fn record_deadlock(&self, st: &EngineState) {
        let wait_graph = Self::wait_graph(st);
        let cycle = FailureReport::find_cycle(&wait_graph);
        let tid = wait_graph.first().map_or(0, |e| e.waiter);
        let message = if cycle.is_empty() {
            format!(
                "all {} live threads blocked with no possible waker",
                wait_graph.len()
            )
        } else {
            let cyc: Vec<String> = cycle.iter().map(|t| format!("t{t}")).collect();
            format!("wait-for cycle {}", cyc.join(" -> "))
        };
        self.record_failure(FailureKind::Deadlock, tid, message, None, wait_graph, cycle);
    }

    /// Registers the main thread (tid 0) and returns its starting image.
    pub fn register_main(&self) -> (Tid, PrivateSpace) {
        let tid = self.meta.register_thread().tid;
        assert_eq!(tid, 0, "main must be the first registration");
        let mut st = self.state.lock();
        st.active.insert(tid);
        st.slots.push(Slot::default());
        if let Some(det) = st.detect.as_mut() {
            det.register(tid);
        }
        let img = st.global.clone();
        (tid, img)
    }

    /// Harvests the run's race reports at teardown (empty when detection
    /// was off). The second value reports cap truncation.
    pub fn take_races(&self) -> (Vec<RaceReport>, bool) {
        match self.state.lock().detect.take() {
            Some(det) => det.finish(),
            None => (Vec::new(), false),
        }
    }

    /// A thread arrives at a synchronization point with its interval diff
    /// and blocks until its operation completes. Returns the new base
    /// image (None if the op was `Exit`) and any child seed to spawn.
    pub fn arrive(
        &self,
        tid: Tid,
        op: PendingOp,
        diff: Vec<ModRun>,
        reads: Vec<ReadRun>,
        sync_op: u64,
    ) -> (Option<PrivateSpace>, Option<ChildSeed>, Option<u64>) {
        let mut st = self.state.lock();
        st.arrived.insert(
            tid,
            Arrival {
                op,
                diff: Some(diff),
                reads: Some(reads),
                sync_op,
            },
        );
        self.maybe_phases(&mut st);
        loop {
            if self.is_poisoned() {
                drop(st);
                panic_any(Poisoned);
            }
            if let Some(Outcome::Done(img)) = st.slots[tid as usize].outcome.take() {
                let seed = st.slots[tid as usize].seed.take();
                let value = st.slots[tid as usize].value.take();
                return (img, seed, value);
            }
            let timeout = self.wedge_after.unwrap_or(Duration::from_secs(60));
            let timed_out = self.cv.wait_for(&mut st, timeout).timed_out();
            if timed_out
                && self.wedge_after.is_some()
                && !self.is_poisoned()
                && st.slots[tid as usize].outcome.is_none()
            {
                // Wall-clock fallback: the run stalled without tripping
                // the structural detector (e.g. an active thread spinning
                // forever). Record a wedge and tear everything down.
                let message = format!(
                    "dthreads engine stalled: tid={tid} phase={} active={:?} arrived={:?}",
                    st.phase,
                    st.active,
                    st.arrived
                        .iter()
                        .map(|(t, a)| (*t, a.op.describe()))
                        .collect::<Vec<_>>(),
                );
                let wait_graph = Self::wait_graph(&st);
                self.record_failure(
                    FailureKind::Wedged,
                    tid,
                    message,
                    None,
                    wait_graph,
                    Vec::new(),
                );
            }
        }
    }

    /// Runs serial phases for as long as the fence condition holds, then
    /// checks for the everyone-parked deadlock (no thread left to wake
    /// the waiters).
    fn maybe_phases(&self, st: &mut EngineState) {
        while !self.is_poisoned() && !st.active.is_empty() && st.arrived.len() == st.active.len() {
            self.run_serial_phase(st);
            self.cv.notify_all();
        }
        if !self.is_poisoned()
            && st.active.is_empty()
            && (st.cond_waiters.values().any(|q| !q.is_empty())
                || st.barrier_waiters.values().any(|v| !v.is_empty())
                || st.join_waiters.values().any(|v| !v.is_empty()))
        {
            self.record_deadlock(st);
        }
    }

    /// One serial phase: token order = ascending tid.
    fn run_serial_phase(&self, st: &mut EngineState) {
        let t0 = self.obs.as_ref().map(|_| std::time::Instant::now());
        let order: Vec<Tid> = st.arrived.keys().copied().collect();
        let mut done: Vec<Tid> = Vec::new();
        let mut exited: Vec<Tid> = Vec::new();
        let mut parked = 0usize;
        let mut spawned = 0usize;

        for tid in order {
            // The interval's pre-tick clock, sealed at first processing;
            // release-side happens-before edges publish it below. Ops
            // that can re-process (a retried `Lock`) are acquire-only,
            // so a missing seal never loses a release edge.
            let mut sealed = None;
            // Commit the interval's modifications (once).
            if let Some(diff) = st.arrived.get_mut(&tid).and_then(|a| a.diff.take()) {
                if let Some(det) = st.detect.as_mut() {
                    let a = st.arrived.get_mut(&tid).expect("arrival present");
                    let reads = a.reads.take().unwrap_or_default();
                    let sync_op = a.sync_op;
                    sealed = Some(det.seal_interval(tid, sync_op, &reads, &diff));
                }
                if !diff.is_empty() {
                    self.meta.stats.serial_commits.fetch_add(1, Relaxed);
                    let bytes: u64 = diff.iter().map(|r| r.len() as u64).sum();
                    self.meta.stats.mod_bytes_applied.fetch_add(bytes, Relaxed);
                    st.global.apply_runs(&diff);
                }
            }
            // Take the op; a failed Lock puts it back for the next round.
            let op = std::mem::replace(
                &mut st.arrived.get_mut(&tid).expect("arrival present").op,
                PendingOp::Noop,
            );
            match op {
                PendingOp::Noop | PendingOp::QuantumBreak => done.push(tid),
                PendingOp::Lock(m) => {
                    let owner = st.lock_owner.entry(m).or_insert(None);
                    if owner.is_none() {
                        *owner = Some(tid);
                        if let Some(det) = st.detect.as_mut() {
                            det.lock_acquired(tid, m);
                        }
                        done.push(tid);
                    } else {
                        // Retry next phase (stay arrived, diff consumed).
                        st.arrived.get_mut(&tid).expect("arrival").op = PendingOp::Lock(m);
                    }
                }
                PendingOp::Unlock(m) => {
                    let owner = st.lock_owner.entry(m).or_insert(None);
                    assert_eq!(
                        *owner,
                        Some(tid),
                        "thread {tid} unlocking mutex {m} it does not hold"
                    );
                    *owner = None;
                    if let (Some(det), Some(s)) = (st.detect.as_mut(), sealed.as_ref()) {
                        det.mutex_released(m, s);
                    }
                    done.push(tid);
                }
                PendingOp::Wait(c, m) => {
                    let owner = st.lock_owner.entry(m).or_insert(None);
                    assert_eq!(*owner, Some(tid), "cond_wait without holding mutex {m}");
                    *owner = None;
                    if let (Some(det), Some(s)) = (st.detect.as_mut(), sealed.as_ref()) {
                        det.mutex_released(m, s);
                    }
                    st.cond_waiters.entry(c).or_default().push_back((tid, m));
                    st.active.remove(&tid);
                    st.arrived.remove(&tid);
                    parked += 1;
                }
                PendingOp::Signal(c, broadcast) => {
                    let queue = st.cond_waiters.entry(c).or_default();
                    let n = if broadcast {
                        queue.len()
                    } else {
                        usize::from(!queue.is_empty())
                    };
                    let woken: Vec<(Tid, u32)> = queue.drain(..n).collect();
                    if let (Some(det), Some(s)) = (st.detect.as_mut(), sealed.as_ref()) {
                        let tids: Vec<Tid> = woken.iter().map(|&(w, _)| w).collect();
                        det.signalled(&tids, s);
                    }
                    for (w, m) in woken {
                        // Re-arm as a mutex acquisition next phase.
                        st.active.insert(w);
                        st.arrived.insert(
                            w,
                            Arrival {
                                op: PendingOp::Lock(m),
                                diff: None,
                                reads: None,
                                sync_op: 0,
                            },
                        );
                    }
                    done.push(tid);
                }
                PendingOp::Barrier(b, parties) => {
                    if let (Some(det), Some(s)) = (st.detect.as_mut(), sealed.as_ref()) {
                        det.barrier_arrived(b, s);
                    }
                    let waiters = st.barrier_waiters.entry(b).or_default();
                    waiters.push(tid);
                    if waiters.len() == parties {
                        let all = std::mem::take(waiters);
                        if let Some(det) = st.detect.as_mut() {
                            det.barrier_released(b, &all);
                        }
                        for w in all {
                            if w != tid {
                                st.active.insert(w);
                            }
                            done.push(w);
                        }
                    } else {
                        st.active.remove(&tid);
                        st.arrived.remove(&tid);
                        parked += 1;
                    }
                }
                PendingOp::Spawn(entry) => {
                    let child = self.meta.register_thread().tid;
                    st.slots.push(Slot::default());
                    st.active.insert(child);
                    if let (Some(det), Some(s)) = (st.detect.as_mut(), sealed.as_ref()) {
                        det.spawned(child, s);
                    }
                    let seed = ChildSeed {
                        tid: child,
                        // The child inherits the global store as of the
                        // parent's commit (a COW clone).
                        space: st.global.clone(),
                        entry,
                    };
                    st.slots[tid as usize].seed = Some(seed);
                    spawned += 1;
                    done.push(tid);
                }
                PendingOp::Join(target) => {
                    if st.finished.contains(&target) {
                        if let Some(det) = st.detect.as_mut() {
                            det.join_acquired(tid, target);
                        }
                        done.push(tid);
                    } else {
                        st.join_waiters.entry(target).or_default().push(tid);
                        st.active.remove(&tid);
                        st.arrived.remove(&tid);
                        parked += 1;
                    }
                }
                PendingOp::Atomic { addr, op, store } => {
                    if let (Some(det), Some(s)) = (st.detect.as_mut(), sealed.as_ref()) {
                        det.atomic_op(tid, addr, s);
                    }
                    let mut buf = [0u8; 8];
                    st.global.read(addr, &mut buf);
                    let old = u64::from_le_bytes(buf);
                    let new = match (op, store) {
                        (Some(op), None) => Some(op.apply(old)),
                        (None, Some(v)) => Some(v),
                        (None, None) => None,
                        (Some(_), Some(_)) => unreachable!(),
                    };
                    if let Some(new) = new {
                        st.global.write(addr, &new.to_le_bytes());
                    }
                    st.slots[tid as usize].value = Some(old);
                    done.push(tid);
                }
                PendingOp::Exit => {
                    st.finished.insert(tid);
                    st.active.remove(&tid);
                    let joiners = st.join_waiters.remove(&tid).unwrap_or_default();
                    if let (Some(det), Some(s)) = (st.detect.as_mut(), sealed.as_ref()) {
                        det.exited(tid, s, &joiners);
                    }
                    for j in joiners {
                        st.active.insert(j);
                        st.arrived.insert(
                            j,
                            Arrival {
                                op: PendingOp::Noop,
                                diff: None,
                                reads: None,
                                sync_op: 0,
                            },
                        );
                    }
                    exited.push(tid);
                }
            }
        }

        // A full phase with zero progress: every arrived op is a mutex
        // acquisition whose owner is itself parked or retrying, and the
        // fence guarantees nobody else can run — a stable deadlock.
        if done.is_empty() && exited.is_empty() && parked == 0 && spawned == 0 {
            self.record_deadlock(st);
            self.record_serial_apply(t0);
            return;
        }

        for tid in done {
            st.arrived.remove(&tid);
            let img = st.global.clone();
            st.slots[tid as usize].outcome = Some(Outcome::Done(Some(img)));
        }
        for tid in exited {
            st.arrived.remove(&tid);
            st.slots[tid as usize].outcome = Some(Outcome::Done(None));
        }
        st.phase += 1;
        self.meta.stats.global_fences.fetch_add(1, Relaxed);
        self.record_serial_apply(t0);
    }

    /// Attributes one serial phase's duration to
    /// [`Phase::SerialApply`](rfdet_api::obs::Phase::SerialApply) —
    /// straight into the sink, since the phase runs under the engine
    /// monitor rather than in any one thread's recorder.
    fn record_serial_apply(&self, t0: Option<std::time::Instant>) {
        if let (Some(sink), Some(t0)) = (&self.obs, t0) {
            sink.record(
                rfdet_api::obs::Phase::SerialApply,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Materialized size of the global store, for footprint reporting
    /// (this is the app's "real" shared footprint — what plain pthreads
    /// would use).
    pub fn global_store_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.global.materialized_pages() as u64 * st.global.page_size() as u64
    }

    /// Emergency removal of a panicked thread so the fence can still
    /// close; joiners are released as if the thread exited. With the
    /// engine poisoned this is pure bookkeeping — no phases run, the
    /// notify just hastens peer teardown.
    pub fn force_exit(&self, tid: Tid) {
        let mut st = self.state.lock();
        st.active.remove(&tid);
        st.arrived.remove(&tid);
        st.finished.insert(tid);
        let joiners = st.join_waiters.remove(&tid).unwrap_or_default();
        for j in joiners {
            st.active.insert(j);
            st.arrived.insert(
                j,
                Arrival {
                    op: PendingOp::Noop,
                    diff: None,
                    reads: None,
                    sync_op: 0,
                },
            );
        }
        if !self.is_poisoned() {
            self.maybe_phases(&mut st);
        }
        self.cv.notify_all();
    }
}
