//! The per-thread DThreads context.

use crate::engine::{ChildSeed, Engine, EngineMode, PendingOp};
use rfdet_api::{
    Addr, BarrierId, CondId, DmtCtx, FaultPlan, MutexId, Stats, ThreadFn, ThreadHandle,
    ThreadReport, Tid,
};
use rfdet_mem::race::{ReadRun, ReadTracker};
use rfdet_mem::{diff, ModRun, PrivateSpace, ThreadHeap};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-thread context: a private view of the global store plus the store
/// instrumentation that collects the interval's diff.
pub(crate) struct DtCtx {
    pub engine: Arc<Engine>,
    pub tid: Tid,
    pub space: PrivateSpace,
    /// Pages snapshotted this parallel interval (first-write snapshot, as
    /// in RFDet's `ci` monitoring — DThreads itself uses `mprotect`
    /// twins; the collected diff is identical).
    snapshots: BTreeMap<usize, Box<[u8]>>,
    /// Remaining tick budget in quantum mode.
    budget: u64,
    /// Whether the engine is detecting races (word-read sets are sealed
    /// into every arrival). One branch per load when off.
    track_reads: bool,
    /// Word-granular read set of the current parallel interval.
    reads: ReadTracker,
    /// Cached page size for the read tracker's bitmap geometry.
    page_size: u64,
    /// Tid of the child created by the most recent `Spawn` op.
    last_spawned_tid: Option<Tid>,
    pub heap: ThreadHeap,
    pub stats: Stats,
    /// Sync ops executed, in program order — the trigger index for
    /// [`FaultPlan`] and the progress metric in failure reports.
    sync_ops: u64,
    last_op: Option<(&'static str, Option<u64>)>,
    allocs: u64,
    /// Flight-recorder buffer; flushed to the engine sink on drop.
    trace: Option<rfdet_api::trace::TraceBuf>,
    /// Metrics recorder; flushed to the engine sink on drop. Timing is
    /// read only when this is `Some` and never feeds a decision.
    obs: Option<rfdet_api::obs::ObsRecorder>,
}

impl DtCtx {
    pub fn new(engine: Arc<Engine>, tid: Tid, space: PrivateSpace) -> Self {
        let heap = engine.strips.heap_for(tid);
        let budget = match engine.mode {
            EngineMode::SyncOnly => u64::MAX,
            EngineMode::Quantum(q) => q,
        };
        let trace = engine
            .trace_sink
            .as_ref()
            .map(|s| rfdet_api::trace::TraceBuf::new(Arc::clone(s)));
        let obs = engine
            .obs
            .as_ref()
            .map(|s| rfdet_api::obs::ObsRecorder::new(Arc::clone(s)));
        let track_reads = engine.detect_races;
        let page_size = space.page_size() as u64;
        Self {
            engine,
            tid,
            space,
            snapshots: BTreeMap::new(),
            budget,
            track_reads,
            reads: ReadTracker::new(),
            page_size,
            last_spawned_tid: None,
            heap,
            stats: Stats::default(),
            sync_ops: 0,
            last_op: None,
            allocs: 0,
            trace,
            obs,
        }
    }

    /// `Instant::now()` iff the run is collecting metrics — the only
    /// gate under which this backend reads the clock.
    #[inline]
    fn obs_start(&self) -> Option<std::time::Instant> {
        self.obs.as_ref().map(|_| std::time::Instant::now())
    }

    /// Records the elapsed nanoseconds since `t0` into `phase`.
    #[inline]
    fn obs_since(&mut self, phase: rfdet_api::obs::Phase, t0: Option<std::time::Instant>) {
        if let (Some(obs), Some(t0)) = (self.obs.as_mut(), t0) {
            obs.record(phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Runs one sync operation under the end-to-end
    /// [`Phase::SyncOp`](rfdet_api::obs::Phase::SyncOp) envelope.
    #[inline]
    fn sync_timed<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let t0 = self.obs_start();
        let r = f(self);
        self.obs_since(rfdet_api::obs::Phase::SyncOp, t0);
        r
    }

    /// Entry hook of every synchronization operation: counts the op,
    /// remembers it for failure reports, and applies any matching
    /// [`FaultPlan`] entry. Op indices are per-thread program order, so
    /// a plan written against one backend triggers at the same source
    /// point on every backend. Jitter ticks are charged to the quantum
    /// budget, deterministically perturbing round boundaries in
    /// quantum mode.
    fn fault_point(&mut self, kind: &'static str, arg: Option<u64>) {
        if !self.engine.supervise {
            return;
        }
        let op = self.sync_ops;
        self.sync_ops += 1;
        self.last_op = Some((kind, arg));
        if let Some(trace) = self.trace.as_mut() {
            // The lockstep engine has no logical clock; per-thread op
            // indices alone order each thread's stream.
            trace.push(rfdet_api::trace::TraceEvent {
                tid: self.tid,
                op,
                kind: rfdet_api::trace::op::code(kind),
                arg,
                clock: 0,
            });
        }
        if !self.engine.fault_plan.is_empty() {
            let f = self.engine.fault_plan.on_sync_op(self.tid, op);
            if f.jitter_ticks > 0 {
                self.charge(f.jitter_ticks);
            }
            if f.panic {
                panic!("{}", FaultPlan::panic_message(self.tid, op));
            }
        }
    }

    /// Allocation hook for `FaultPlan::fail_alloc`.
    fn alloc_fault_point(&mut self) {
        if !self.engine.supervise {
            return;
        }
        let nth = self.allocs;
        self.allocs += 1;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(rfdet_api::trace::TraceEvent {
                tid: self.tid,
                op: nth,
                kind: rfdet_api::trace::op::ALLOC,
                arg: None,
                clock: 0,
            });
        }
        if !self.engine.fault_plan.is_empty() && self.engine.fault_plan.on_alloc(self.tid, nth) {
            panic!("{}", FaultPlan::alloc_panic_message(self.tid, nth));
        }
    }

    /// This thread's deterministic progress summary for failure reports
    /// (the lockstep engine keeps no vector clocks or slice counts).
    pub(crate) fn thread_report(&self) -> ThreadReport {
        ThreadReport {
            tid: self.tid,
            sync_ops: self.sync_ops,
            last_op: self.last_op.map(|(k, a)| match a {
                Some(a) => format!("{k}({a})"),
                None => k.to_owned(),
            }),
            ..ThreadReport::default()
        }
    }

    /// Ends the parallel interval: diff all snapshotted pages.
    fn take_diff(&mut self) -> Vec<ModRun> {
        let t0 = self.obs_start();
        let mut mods = Vec::new();
        for (page, snap) in std::mem::take(&mut self.snapshots) {
            if let Some(current) = self.space.page(page) {
                diff::diff_page(
                    self.space.page_base(page),
                    &snap,
                    current.bytes(),
                    &mut mods,
                );
            }
        }
        self.obs_since(rfdet_api::obs::Phase::Diff, t0);
        mods
    }

    /// Seals the current interval's word-read set (empty when detection
    /// is off).
    fn take_reads(&mut self) -> Vec<ReadRun> {
        if self.track_reads {
            self.reads.seal(self.page_size)
        } else {
            Vec::new()
        }
    }

    /// Arrives at a synchronization point and re-bases on the returned
    /// global image.
    fn sync_point(&mut self, op: PendingOp) -> Option<u64> {
        let diff = self.take_diff();
        let reads = self.take_reads();
        // The fence stall: from arrival to the serial phase releasing us.
        let t0 = self.obs_start();
        let (image, seed, value) = self.engine.arrive(self.tid, op, diff, reads, self.sync_ops);
        self.obs_since(rfdet_api::obs::Phase::FenceWait, t0);
        if let Some(img) = image {
            self.space = img;
        }
        if let Some(seed) = seed {
            self.spawn_seed(seed);
        }
        if let EngineMode::Quantum(q) = self.engine.mode {
            self.budget = q;
        }
        value
    }

    fn spawn_seed(&mut self, seed: ChildSeed) {
        let engine = Arc::clone(&self.engine);
        let ChildSeed { tid, space, entry } = seed;
        self.last_spawned_tid = Some(tid);
        let handle = std::thread::Builder::new()
            .name(format!("dthreads-{tid}"))
            .spawn(move || {
                let mut child = DtCtx::new(Arc::clone(&engine), tid, space);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    entry(&mut child);
                    child.exit();
                }));
                if let Err(payload) = result {
                    // Root-cause panics poison the engine (waking every
                    // parked peer); Poisoned tokens just add diagnostics.
                    let report = child.thread_report();
                    child.engine.record_worker_panic(tid, payload, report);
                    child.engine.force_exit(tid);
                }
            })
            .expect("failed to spawn OS thread");
        self.engine.handles.lock().insert(tid, handle);
    }

    pub fn exit(&mut self) {
        self.fault_point("exit", None);
        let diff = self.take_diff();
        let reads = self.take_reads();
        let (_, _, _) = self
            .engine
            .arrive(self.tid, PendingOp::Exit, diff, reads, self.sync_ops);
        self.stats.private_pages = self.space.materialized_pages() as u64;
        self.engine.meta.stats.merge(&self.stats);
    }

    #[inline]
    fn charge(&mut self, n: u64) {
        if self.budget != u64::MAX {
            self.budget = self.budget.saturating_sub(n);
            if self.budget == 0 {
                // Quantum expired: lockstep round even without sync —
                // the Figure-1 behaviour of CoreDet/DMP.
                let _ = self.sync_point(PendingOp::QuantumBreak);
            }
        }
    }

    fn record_store(&mut self, addr: Addr, len: usize) {
        let first = self.space.page_of(addr);
        let last = self.space.page_of(addr + len.saturating_sub(1) as u64);
        for page in first..=last {
            if !self.snapshots.contains_key(&page) {
                let snap = self.space.snapshot_page(page);
                self.snapshots.insert(page, snap);
                self.stats.stores_with_copy += 1;
            }
        }
    }
}

impl DmtCtx for DtCtx {
    fn tid(&self) -> Tid {
        self.tid
    }

    fn tick(&mut self, n: u64) {
        self.charge(n);
    }

    fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.stats.loads += 1;
        self.charge(1);
        if self.track_reads {
            self.reads.mark(addr, buf.len() as u64, self.page_size);
        }
        self.space.read(addr, buf);
    }

    fn write_bytes(&mut self, addr: Addr, data: &[u8]) {
        self.stats.stores += 1;
        self.charge(1);
        if data.is_empty() {
            return;
        }
        self.record_store(addr, data.len());
        self.space.write(addr, data);
    }

    fn lock(&mut self, m: MutexId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("lock", Some(u64::from(m.0)));
            ctx.stats.locks += 1;
            let _ = ctx.sync_point(PendingOp::Lock(m.0));
        });
    }

    fn unlock(&mut self, m: MutexId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("unlock", Some(u64::from(m.0)));
            ctx.stats.unlocks += 1;
            let _ = ctx.sync_point(PendingOp::Unlock(m.0));
        });
    }

    fn cond_wait(&mut self, c: CondId, m: MutexId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("cond_wait", Some(u64::from(c.0)));
            ctx.stats.waits += 1;
            let _ = ctx.sync_point(PendingOp::Wait(c.0, m.0));
        });
    }

    fn cond_signal(&mut self, c: CondId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("cond_signal", Some(u64::from(c.0)));
            ctx.stats.signals += 1;
            let _ = ctx.sync_point(PendingOp::Signal(c.0, false));
        });
    }

    fn cond_broadcast(&mut self, c: CondId) {
        self.sync_timed(|ctx| {
            ctx.fault_point("cond_broadcast", Some(u64::from(c.0)));
            ctx.stats.signals += 1;
            let _ = ctx.sync_point(PendingOp::Signal(c.0, true));
        });
    }

    fn barrier(&mut self, b: BarrierId, parties: usize) {
        self.sync_timed(|ctx| {
            ctx.fault_point("barrier", Some(u64::from(b.0)));
            ctx.stats.barriers += 1;
            let _ = ctx.sync_point(PendingOp::Barrier(b.0, parties));
        });
    }

    fn spawn(&mut self, f: ThreadFn) -> ThreadHandle {
        self.sync_timed(|ctx| {
            ctx.fault_point("spawn", None);
            ctx.stats.forks += 1;
            let _ = ctx.sync_point(PendingOp::Spawn(f));
            ThreadHandle(
                ctx.last_spawned_tid
                    .take()
                    .expect("spawn must produce a child"),
            )
        })
    }

    fn join(&mut self, h: ThreadHandle) {
        self.sync_timed(|ctx| {
            ctx.fault_point("join", Some(u64::from(h.0)));
            ctx.stats.joins += 1;
            let _ = ctx.sync_point(PendingOp::Join(h.0));
        });
    }

    fn alloc(&mut self, size: u64, align: u64) -> Addr {
        self.alloc_fault_point();
        self.stats.shared_bytes += size;
        self.heap.alloc(size, align)
    }

    fn dealloc(&mut self, addr: Addr) {
        self.heap.dealloc(addr);
    }

    fn emit(&mut self, bytes: &[u8]) {
        self.engine.meta.emit(self.tid, bytes);
    }

    fn atomic_rmw(&mut self, addr: Addr, op: rfdet_api::AtomicOp) -> u64 {
        self.sync_timed(|ctx| {
            ctx.fault_point("atomic", Some(addr));
            ctx.stats.atomics += 1;
            ctx.sync_point(PendingOp::Atomic {
                addr,
                op: Some(op),
                store: None,
            })
            .expect("atomic op returns a value")
        })
    }

    fn atomic_load(&mut self, addr: Addr) -> u64 {
        self.sync_timed(|ctx| {
            ctx.fault_point("atomic", Some(addr));
            ctx.stats.atomics += 1;
            ctx.sync_point(PendingOp::Atomic {
                addr,
                op: None,
                store: None,
            })
            .expect("atomic op returns a value")
        })
    }

    fn atomic_store(&mut self, addr: Addr, value: u64) {
        self.sync_timed(|ctx| {
            ctx.fault_point("atomic", Some(addr));
            ctx.stats.atomics += 1;
            ctx.sync_point(PendingOp::Atomic {
                addr,
                op: None,
                store: Some(value),
            });
        });
    }

    fn count_app_events(&mut self, retries: u64, shed: u64) {
        self.stats.app_retries += retries;
        self.stats.app_shed += shed;
    }
}
