//! Property tests for the memory substrate.

use proptest::prelude::*;
use rfdet_mem::{diff, PrivateSpace, StripAllocator};

const SPACE: u64 = 16 * 4096;

/// Reference model: a flat byte array.
fn model_write(model: &mut [u8], addr: u64, data: &[u8]) {
    model[addr as usize..addr as usize + data.len()].copy_from_slice(data);
}

fn arb_writes() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    prop::collection::vec(
        (0u64..SPACE - 64).prop_flat_map(|addr| {
            prop::collection::vec(any::<u8>(), 1..64).prop_map(move |d| (addr, d))
        }),
        0..40,
    )
}

proptest! {
    /// PrivateSpace behaves exactly like a flat byte array.
    #[test]
    fn space_matches_flat_model(writes in arb_writes()) {
        let mut space = PrivateSpace::new(SPACE, 4096);
        let mut model = vec![0u8; SPACE as usize];
        for (addr, data) in &writes {
            space.write(*addr, data);
            model_write(&mut model, *addr, data);
        }
        let mut got = vec![0u8; SPACE as usize];
        space.read(0, &mut got);
        prop_assert_eq!(got, model);
    }

    /// fork() is a point-in-time copy: later writes on either side are
    /// invisible to the other.
    #[test]
    fn fork_is_point_in_time(
        before in arb_writes(),
        parent_after in arb_writes(),
        child_after in arb_writes(),
    ) {
        let mut parent = PrivateSpace::new(SPACE, 4096);
        let mut model = vec![0u8; SPACE as usize];
        for (addr, data) in &before {
            parent.write(*addr, data);
            model_write(&mut model, *addr, data);
        }
        let mut child = parent.fork();
        let mut pmodel = model.clone();
        let mut cmodel = model;
        for (addr, data) in &parent_after {
            parent.write(*addr, data);
            model_write(&mut pmodel, *addr, data);
        }
        for (addr, data) in &child_after {
            child.write(*addr, data);
            model_write(&mut cmodel, *addr, data);
        }
        let mut got = vec![0u8; SPACE as usize];
        parent.read(0, &mut got);
        prop_assert_eq!(&got, &pmodel);
        child.read(0, &mut got);
        prop_assert_eq!(&got, &cmodel);
    }

    /// diff(snapshot, current) applied onto the snapshot reproduces the
    /// current page exactly — the round-trip DLRC propagation relies on.
    #[test]
    fn diff_apply_roundtrip(
        snapshot in prop::collection::vec(any::<u8>(), 256),
        current in prop::collection::vec(any::<u8>(), 256),
    ) {
        let mut runs = Vec::new();
        diff::diff_page(0, &snapshot, &current, &mut runs);
        let mut rebuilt = snapshot.clone();
        for r in &runs {
            rebuilt[r.addr as usize..r.end() as usize].copy_from_slice(&r.data);
        }
        prop_assert_eq!(rebuilt, current);
        // Runs never cover unchanged bytes (minimality → the §4.6
        // redundant-write policy).
        for r in &runs {
            for (i, &b) in r.data.iter().enumerate() {
                let idx = r.addr as usize + i;
                prop_assert_ne!(snapshot[idx], b);
            }
        }
        // Runs are sorted and non-overlapping.
        for w in runs.windows(2) {
            prop_assert!(w[0].end() <= w[1].addr);
        }
    }

    /// Differential pin: the chunked word-at-a-time kernel produces
    /// byte-for-byte the same run list as the retained scalar reference,
    /// at every buffer length (word-alignment edge cases included) and
    /// under arbitrary mutation patterns.
    #[test]
    fn chunked_diff_matches_scalar_reference(
        // 1..96 sweeps every length mod 8, covering partial-word tails.
        len in 1usize..96,
        base in prop::collection::vec(any::<u8>(), 96),
        flips in prop::collection::vec((0usize..96, any::<u8>()), 0..48),
        page_base in 0u64..1 << 40,
    ) {
        let snapshot = base[..len].to_vec();
        let mut current = snapshot.clone();
        for (pos, val) in flips {
            current[pos % len] = val;
        }
        let (mut chunked, mut scalar) = (Vec::new(), Vec::new());
        diff::diff_page(page_base, &snapshot, &current, &mut chunked);
        diff::diff_page_scalar(page_base, &snapshot, &current, &mut scalar);
        prop_assert_eq!(chunked, scalar);
    }

    /// The targeted shapes the kernel's word loop can get wrong: runs
    /// touching either page edge, a fully dirty page, and identical pages
    /// — against the scalar reference on a real 4 KiB page.
    #[test]
    fn chunked_diff_edge_shapes(shape in 0u8..4, fill in any::<u8>(), seed in any::<u8>()) {
        let snapshot = vec![fill; 4096];
        let mut current = snapshot.clone();
        match shape {
            0 => { current[0] = fill.wrapping_add(1).wrapping_add(seed); }
            1 => { current[4095] = fill.wrapping_add(1).wrapping_add(seed); }
            2 => { for b in &mut current { *b = b.wrapping_add(1); } }
            _ => {} // identical pages
        }
        let (mut chunked, mut scalar) = (Vec::new(), Vec::new());
        diff::diff_page(8192, &snapshot, &current, &mut chunked);
        diff::diff_page_scalar(8192, &snapshot, &current, &mut scalar);
        prop_assert_eq!(&chunked, &scalar);
        match shape {
            2 => prop_assert_eq!(diff::runs_len(&chunked), 4096),
            3 => prop_assert!(chunked.is_empty()),
            _ => prop_assert_eq!(diff::runs_len(&chunked), 1),
        }
    }

    /// Gap coalescing preserves the diff round-trip (coalesced runs
    /// applied onto the snapshot still rebuild `current` exactly) and
    /// only ever covers extra bytes whose current value equals the
    /// snapshot value — the semantics-preservation invariant.
    #[test]
    fn coalesced_diff_roundtrip_and_gap_invariant(
        snapshot in prop::collection::vec(any::<u8>(), 256),
        flips in prop::collection::vec((0usize..256, any::<u8>()), 0..64),
        gap in 0usize..32,
    ) {
        let mut current = snapshot.clone();
        for (pos, val) in flips {
            current[pos] = val;
        }
        let mut runs = Vec::new();
        let outcome = diff::diff_page_opts(0, &snapshot, &current, gap, &mut runs);
        prop_assert_eq!(outcome.bytes_scanned, 256);
        let mut rebuilt = snapshot.clone();
        for r in &runs {
            prop_assert!(!r.is_empty());
            rebuilt[r.addr as usize..r.end() as usize].copy_from_slice(&r.data);
        }
        prop_assert_eq!(&rebuilt, &current);
        // Every run byte either differs from the snapshot (a real
        // modification) or equals it (a coalesced gap byte — re-applying
        // it onto an unchanged byte is a no-op by construction).
        for r in &runs {
            for (i, &b) in r.data.iter().enumerate() {
                let idx = r.addr as usize + i;
                prop_assert_eq!(b, current[idx]);
            }
            // Run boundaries are always real modifications.
            prop_assert_ne!(r.data[0], snapshot[r.addr as usize]);
            prop_assert_ne!(r.data[r.len() - 1], snapshot[r.end() as usize - 1]);
        }
        // Runs stay sorted, non-overlapping, and separated by more than
        // `gap` unchanged bytes (otherwise they would have merged).
        for w in runs.windows(2) {
            prop_assert!(w[0].end() <= w[1].addr);
            prop_assert!((w[1].addr - w[0].end()) as usize > gap);
        }
    }

    /// Allocations from all strips never overlap, regardless of
    /// interleaving.
    #[test]
    fn allocations_never_overlap(
        ops in prop::collection::vec((0u32..4, 1u64..500), 1..80)
    ) {
        let sa = StripAllocator::new(0, 32 << 20);
        let mut heaps: Vec<_> = (0..4).map(|t| sa.heap_for(t)).collect();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (tid, size) in ops {
            let a = heaps[tid as usize].alloc(size, 8);
            let cls = size.max(16).next_power_of_two();
            for &(b, len) in &live {
                prop_assert!(a + cls <= b || b + len <= a,
                    "overlap: [{a:#x},{:#x}) vs [{b:#x},{:#x})", a + cls, b + len);
            }
            live.push((a, cls));
        }
    }
}
