//! Property tests for the memory substrate.

use proptest::prelude::*;
use rfdet_mem::{diff, PrivateSpace, StripAllocator};

const SPACE: u64 = 16 * 4096;

/// Reference model: a flat byte array.
fn model_write(model: &mut [u8], addr: u64, data: &[u8]) {
    model[addr as usize..addr as usize + data.len()].copy_from_slice(data);
}

fn arb_writes() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    prop::collection::vec(
        (0u64..SPACE - 64).prop_flat_map(|addr| {
            prop::collection::vec(any::<u8>(), 1..64).prop_map(move |d| (addr, d))
        }),
        0..40,
    )
}

proptest! {
    /// PrivateSpace behaves exactly like a flat byte array.
    #[test]
    fn space_matches_flat_model(writes in arb_writes()) {
        let mut space = PrivateSpace::new(SPACE, 4096);
        let mut model = vec![0u8; SPACE as usize];
        for (addr, data) in &writes {
            space.write(*addr, data);
            model_write(&mut model, *addr, data);
        }
        let mut got = vec![0u8; SPACE as usize];
        space.read(0, &mut got);
        prop_assert_eq!(got, model);
    }

    /// fork() is a point-in-time copy: later writes on either side are
    /// invisible to the other.
    #[test]
    fn fork_is_point_in_time(
        before in arb_writes(),
        parent_after in arb_writes(),
        child_after in arb_writes(),
    ) {
        let mut parent = PrivateSpace::new(SPACE, 4096);
        let mut model = vec![0u8; SPACE as usize];
        for (addr, data) in &before {
            parent.write(*addr, data);
            model_write(&mut model, *addr, data);
        }
        let mut child = parent.fork();
        let mut pmodel = model.clone();
        let mut cmodel = model;
        for (addr, data) in &parent_after {
            parent.write(*addr, data);
            model_write(&mut pmodel, *addr, data);
        }
        for (addr, data) in &child_after {
            child.write(*addr, data);
            model_write(&mut cmodel, *addr, data);
        }
        let mut got = vec![0u8; SPACE as usize];
        parent.read(0, &mut got);
        prop_assert_eq!(&got, &pmodel);
        child.read(0, &mut got);
        prop_assert_eq!(&got, &cmodel);
    }

    /// diff(snapshot, current) applied onto the snapshot reproduces the
    /// current page exactly — the round-trip DLRC propagation relies on.
    #[test]
    fn diff_apply_roundtrip(
        snapshot in prop::collection::vec(any::<u8>(), 256),
        current in prop::collection::vec(any::<u8>(), 256),
    ) {
        let mut runs = Vec::new();
        diff::diff_page(0, &snapshot, &current, &mut runs);
        let mut rebuilt = snapshot.clone();
        for r in &runs {
            rebuilt[r.addr as usize..r.end() as usize].copy_from_slice(&r.data);
        }
        prop_assert_eq!(rebuilt, current);
        // Runs never cover unchanged bytes (minimality → the §4.6
        // redundant-write policy).
        for r in &runs {
            for (i, &b) in r.data.iter().enumerate() {
                let idx = r.addr as usize + i;
                prop_assert_ne!(snapshot[idx], b);
            }
        }
        // Runs are sorted and non-overlapping.
        for w in runs.windows(2) {
            prop_assert!(w[0].end() <= w[1].addr);
        }
    }

    /// Allocations from all strips never overlap, regardless of
    /// interleaving.
    #[test]
    fn allocations_never_overlap(
        ops in prop::collection::vec((0u32..4, 1u64..500), 1..80)
    ) {
        let sa = StripAllocator::new(0, 32 << 20);
        let mut heaps: Vec<_> = (0..4).map(|t| sa.heap_for(t)).collect();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (tid, size) in ops {
            let a = heaps[tid as usize].alloc(size, 8);
            let cls = size.max(16).next_power_of_two();
            for &(b, len) in &live {
                prop_assert!(a + cls <= b || b + len <= a,
                    "overlap: [{a:#x},{:#x}) vs [{b:#x},{:#x})", a + cls, b + len);
            }
            live.push((a, cls));
        }
    }
}
