//! The memory substrate of the RFDet reproduction.
//!
//! The paper runs "threads" as processes created with `clone()` so each has
//! an isolated address space (§4, Figure 3). This crate provides the
//! software equivalent: a paged, copy-on-write [`PrivateSpace`] over a flat
//! logical address space. It also provides:
//!
//! * [`diff`] — byte-granularity page diffing that converts a page snapshot
//!   plus the current page into a modification list (§4.2, §4.6);
//! * [`PageFlags`] — emulated page protection used by the `pf` monitoring
//!   mode and the lazy-writes optimization (§4.2, §4.5);
//! * [`StripAllocator`]/[`ThreadHeap`] — the deterministic shared allocator
//!   replacing the paper's modified Hoard (§4.4): every thread allocates
//!   from a statically assigned strip of the heap area, so allocation is
//!   deterministic without any cross-thread coordination and the same
//!   virtual address is never handed to two threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod alloc;
pub mod diff;
mod overlay;
mod page;
mod prot;
pub mod race;
mod space;

pub use alloc::{HeapState, StripAllocator, ThreadHeap, MAX_HEAP_THREADS};
pub use diff::{ModRun, RunHandle, RunList, RunRange};
pub use overlay::PageOverlay;
pub use page::Page;
pub use prot::PageFlags;
pub use race::{RaceCollector, ReadRun, ReadTracker, SliceAccess, WORD_BYTES};
pub use space::PrivateSpace;

/// Returns the base address of the heap area managed by the shared
/// allocator. Addresses below this (excluding page zero, which is kept
/// unmapped to catch null-pointer-style bugs) form the "static data"
/// region that workloads lay out directly.
#[must_use]
pub fn heap_base(space_bytes: u64) -> u64 {
    space_bytes / 2
}
