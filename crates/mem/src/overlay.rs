//! The pooled lazy-write overlay (paper §4.5 *Lazy Writes*).
//!
//! A lazy fault must merge every pending run of one page so each byte is
//! written once, with its newest value. The original implementation built
//! a fresh `Vec<Option<u8>>` the size of the page per fault and re-scanned
//! all of it to emit merged runs — two allocations plus a full-page enum
//! walk on *every* fault, which is exactly how the "optimization" ended up
//! slower than eager application. [`PageOverlay`] replaces that with the
//! same recycling idiom as the snapshot buffer pool: one page-sized byte
//! buffer plus a one-bit-per-byte occupancy bitmap, owned by the faulting
//! thread and reused across faults. A fault clears only the bitmap
//! (`page_size / 8` bytes), memcpys each run into place (last wins), and
//! counts superseded bytes with word-level popcounts — no allocation, no
//! per-byte branching, no `Option` scan.

/// A reusable page-sized merge buffer with a byte-occupancy bitmap.
///
/// The buffer is only meaningful at indices whose bitmap bit is set;
/// everything else is stale garbage from earlier faults, which is why the
/// apply path ([`crate::PrivateSpace::apply_overlay`]) copies exactly the
/// set-bit spans and nothing more.
#[derive(Clone, Debug)]
pub struct PageOverlay {
    bytes: Vec<u8>,
    mask: Vec<u64>,
    page_size: usize,
    /// Lowest bitmap word any write of the current epoch touched
    /// (`usize::MAX` when the overlay is empty). Together with
    /// `hi_word` this bounds both the reset fill and the apply scan to
    /// the occupied neighborhood — the common fault merges a handful of
    /// small runs, and clearing or scanning the other ~60 words of a
    /// 4 KiB page's bitmap was pure per-fault overhead.
    lo_word: usize,
    /// Highest touched bitmap word (see `lo_word`).
    hi_word: usize,
}

impl Default for PageOverlay {
    fn default() -> Self {
        Self {
            bytes: Vec::new(),
            mask: Vec::new(),
            page_size: 0,
            lo_word: usize::MAX,
            hi_word: 0,
        }
    }
}

const WORD_BITS: usize = 64;

impl PageOverlay {
    /// An empty overlay; buffers are allocated by the first [`reset`].
    ///
    /// [`reset`]: PageOverlay::reset
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the overlay for one page of `page_size` bytes: sizes the
    /// buffers (first call, or page-size change) and clears the bitmap.
    /// The byte buffer is *not* cleared — set bits define validity.
    pub fn reset(&mut self, page_size: usize) {
        if self.page_size != page_size {
            self.bytes.resize(page_size, 0);
            self.mask.clear();
            self.mask.resize(page_size.div_ceil(WORD_BITS), 0);
            self.page_size = page_size;
        } else if self.lo_word <= self.hi_word {
            // Only the words the previous epoch occupied can be dirty.
            self.mask[self.lo_word..=self.hi_word].fill(0);
        }
        self.lo_word = usize::MAX;
        self.hi_word = 0;
    }

    /// The page size this overlay is currently sized for.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Writes `data` at byte offset `off`, last-writer-wins, and returns
    /// how many of the touched bytes were already occupied — the
    /// superseded-value count behind the `lazy_elided_bytes` stat.
    ///
    /// # Panics
    /// Panics if the write does not fit the page.
    pub fn write(&mut self, off: usize, data: &[u8]) -> u64 {
        let len = data.len();
        assert!(
            off + len <= self.page_size,
            "overlay write out of page bounds: off={off} len={len} page={}",
            self.page_size
        );
        self.bytes[off..off + len].copy_from_slice(data);
        if len == 0 {
            return 0;
        }
        let mut superseded = 0u64;
        let (first, last) = (off / WORD_BITS, (off + len - 1) / WORD_BITS);
        self.lo_word = self.lo_word.min(first);
        self.hi_word = self.hi_word.max(last);
        for w in first..=last {
            let lo = off.saturating_sub(w * WORD_BITS).min(WORD_BITS - 1);
            let hi = (off + len - w * WORD_BITS).min(WORD_BITS);
            // Bits [lo, hi) of word w fall inside the write.
            let m = (u64::MAX >> (WORD_BITS - (hi - lo))) << lo;
            superseded += u64::from((self.mask[w] & m).count_ones());
            self.mask[w] |= m;
        }
        superseded
    }

    /// The occupancy bitmap, one bit per page byte, little-endian within
    /// each word.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.mask
    }

    /// True iff no write landed since the last [`reset`].
    ///
    /// [`reset`]: PageOverlay::reset
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo_word > self.hi_word
    }

    /// The bitmap word indices that may hold set bits — the bound for
    /// occupancy scans (words outside it are zero by construction).
    #[must_use]
    pub fn occupied_words(&self) -> std::ops::Range<usize> {
        if self.is_empty() {
            0..0
        } else {
            self.lo_word..self.hi_word + 1
        }
    }

    /// The raw merge buffer (valid only where the bitmap is set).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of occupied bytes (bitmap popcount).
    #[must_use]
    pub fn set_bytes(&self) -> u64 {
        self.mask.iter().map(|w| u64::from(w.count_ones())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_overlay_is_empty() {
        let mut ov = PageOverlay::new();
        ov.reset(4096);
        assert_eq!(ov.page_size(), 4096);
        assert_eq!(ov.set_bytes(), 0);
        assert!(ov.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn write_sets_bits_and_counts_overlap() {
        let mut ov = PageOverlay::new();
        ov.reset(256);
        assert_eq!(ov.write(10, &[1, 2, 3, 4]), 0);
        assert_eq!(ov.set_bytes(), 4);
        // Overlapping rewrite: 2 of 3 bytes were already set.
        assert_eq!(ov.write(12, &[9, 9, 9]), 2);
        assert_eq!(ov.set_bytes(), 5);
        assert_eq!(&ov.bytes()[10..15], &[1, 2, 9, 9, 9]);
    }

    #[test]
    fn write_spanning_word_boundary() {
        let mut ov = PageOverlay::new();
        ov.reset(256);
        // 16 bytes across the bit-63/64 boundary.
        assert_eq!(ov.write(56, &[7u8; 16]), 0);
        assert_eq!(ov.words()[0], !0u64 << 56);
        assert_eq!(ov.words()[1], 0xFF);
        assert_eq!(ov.write(56, &[8u8; 16]), 16);
    }

    #[test]
    fn full_page_write() {
        let mut ov = PageOverlay::new();
        ov.reset(128);
        assert_eq!(ov.write(0, &[5u8; 128]), 0);
        assert_eq!(ov.set_bytes(), 128);
        assert!(ov.words().iter().all(|&w| w == u64::MAX));
        assert_eq!(ov.write(0, &[6u8; 128]), 128);
    }

    #[test]
    fn reset_clears_bits_but_keeps_capacity() {
        let mut ov = PageOverlay::new();
        ov.reset(128);
        ov.write(0, &[1u8; 64]);
        let ptr = ov.bytes().as_ptr();
        ov.reset(128);
        assert_eq!(ov.set_bytes(), 0, "bitmap cleared");
        assert!(std::ptr::eq(ptr, ov.bytes().as_ptr()), "buffer reused");
    }

    #[test]
    fn occupied_word_range_tracks_writes() {
        let mut ov = PageOverlay::new();
        ov.reset(4096);
        assert!(ov.is_empty());
        assert_eq!(ov.occupied_words(), 0..0);
        ov.write(100, &[1]); // word 1
        assert_eq!(ov.occupied_words(), 1..2);
        ov.write(1000, &[2, 3]); // word 15
        assert_eq!(ov.occupied_words(), 1..16);
        // Reset clears exactly that neighborhood and empties the range.
        ov.reset(4096);
        assert!(ov.is_empty());
        assert_eq!(ov.set_bytes(), 0);
        // A stale epoch far from the new one must not survive a reset.
        ov.write(4000, &[9]);
        ov.reset(4096);
        assert!(ov.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn zero_length_write_is_a_noop() {
        let mut ov = PageOverlay::new();
        ov.reset(64);
        assert_eq!(ov.write(64, &[]), 0, "end-of-page empty write allowed");
        assert_eq!(ov.set_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "out of page bounds")]
    fn overflowing_write_panics() {
        let mut ov = PageOverlay::new();
        ov.reset(64);
        ov.write(62, &[0; 4]);
    }
}
