//! Copy-on-write pages.

use std::sync::Arc;

/// One page of the logical shared space, shared copy-on-write.
///
/// Cloning a `Page` is O(1) (an `Arc` bump); the first write through a
/// clone copies the backing bytes. This mirrors the paper's use of
/// `clone()`-without-`CLONE_VM` plus kernel COW: "the child process will
/// inherit the memory of its creating process automatically" (§4.1), and
/// "all threads are given a copy of T's local memory (using copy-on-write)"
/// at barriers.
#[derive(Clone, Debug)]
pub struct Page(Arc<Vec<u8>>);

impl Page {
    /// A fresh zero page of `size` bytes.
    #[must_use]
    pub fn zeroed(size: usize) -> Self {
        Self(Arc::new(vec![0; size]))
    }

    /// A page initialized from `data`.
    #[must_use]
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self(Arc::new(data))
    }

    /// Read-only view of the page bytes.
    #[inline]
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Mutable view; copies the backing storage if it is shared.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        Arc::make_mut(&mut self.0).as_mut_slice()
    }

    /// `true` if another `Page` currently shares the backing storage.
    #[must_use]
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }

    /// Copies the current contents into an owned buffer (a *snapshot* in
    /// the paper's terminology, Figure 4 line 6).
    #[must_use]
    pub fn snapshot(&self) -> Box<[u8]> {
        self.0.as_slice().into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = Page::zeroed(64);
        assert_eq!(p.bytes().len(), 64);
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn cow_isolates_clones() {
        let mut a = Page::zeroed(16);
        let b = a.clone();
        assert!(a.is_shared());
        a.bytes_mut()[3] = 9;
        assert!(!a.is_shared());
        assert_eq!(a.bytes()[3], 9);
        assert_eq!(b.bytes()[3], 0, "clone must not observe the write");
    }

    #[test]
    fn unshared_write_does_not_copy() {
        let mut a = Page::zeroed(16);
        let before = a.bytes().as_ptr();
        a.bytes_mut()[0] = 1;
        assert_eq!(a.bytes().as_ptr(), before);
    }

    #[test]
    fn snapshot_is_independent_copy() {
        let mut a = Page::from_bytes(vec![1, 2, 3]);
        let snap = a.snapshot();
        a.bytes_mut()[0] = 42;
        assert_eq!(&*snap, &[1, 2, 3]);
        assert_eq!(a.bytes()[0], 42);
    }
}
