//! Emulated page protection.
//!
//! The paper's `pf` monitoring mode write-protects shared pages at slice
//! start and snapshots on the resulting fault (§4.2); the lazy-writes
//! optimization read+write-protects pages with pending propagated
//! modifications (§4.5). We emulate both with explicit per-page flag words
//! checked on the access path — a deliberate substitution for
//! `mprotect`/SIGSEGV documented in DESIGN.md.

/// Per-page protection flags for one thread's view of the space.
#[derive(Clone, Debug)]
pub struct PageFlags {
    flags: Vec<u8>,
}

impl PageFlags {
    /// Write access triggers a (simulated) fault: used by `pf` monitoring.
    pub const WRITE_PROTECT: u8 = 0b01;
    /// Any access triggers a fault: used by lazy writes (pending
    /// modifications must be applied first).
    pub const NO_ACCESS: u8 = 0b10;

    /// All-clear flags for `num_pages` pages.
    #[must_use]
    pub fn new(num_pages: usize) -> Self {
        Self {
            flags: vec![0; num_pages],
        }
    }

    /// Number of pages tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// `true` if no pages are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Sets `flag` on page `idx`.
    #[inline]
    pub fn protect(&mut self, idx: usize, flag: u8) {
        self.flags[idx] |= flag;
    }

    /// Clears `flag` on page `idx`.
    #[inline]
    pub fn unprotect(&mut self, idx: usize, flag: u8) {
        self.flags[idx] &= !flag;
    }

    /// Tests `flag` on page `idx`.
    #[inline]
    #[must_use]
    pub fn is_protected(&self, idx: usize, flag: u8) -> bool {
        self.flags[idx] & flag != 0
    }

    /// Raw flag word for page `idx` (zero = fully accessible). The access
    /// fast path tests this single byte.
    #[inline]
    #[must_use]
    pub fn word(&self, idx: usize) -> u8 {
        self.flags[idx]
    }

    /// Sets `flag` on every page (slice start in `pf` mode: "protect
    /// shared memory with no write permission at the beginning of each
    /// slice").
    pub fn protect_all(&mut self, flag: u8) {
        for f in &mut self.flags {
            *f |= flag;
        }
    }

    /// Clears `flag` on every page.
    pub fn unprotect_all(&mut self, flag: u8) {
        for f in &mut self.flags {
            *f &= !flag;
        }
    }

    /// Indices of pages with `flag` set.
    pub fn protected_indices(&self, flag: u8) -> impl Iterator<Item = usize> + '_ {
        self.flags
            .iter()
            .enumerate()
            .filter(move |(_, &f)| f & flag != 0)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear() {
        let f = PageFlags::new(8);
        assert_eq!(f.len(), 8);
        assert!((0..8).all(|i| f.word(i) == 0));
    }

    #[test]
    fn protect_unprotect_single_flag() {
        let mut f = PageFlags::new(4);
        f.protect(2, PageFlags::WRITE_PROTECT);
        assert!(f.is_protected(2, PageFlags::WRITE_PROTECT));
        assert!(!f.is_protected(2, PageFlags::NO_ACCESS));
        assert!(!f.is_protected(1, PageFlags::WRITE_PROTECT));
        f.unprotect(2, PageFlags::WRITE_PROTECT);
        assert_eq!(f.word(2), 0);
    }

    #[test]
    fn flags_are_independent() {
        let mut f = PageFlags::new(2);
        f.protect(0, PageFlags::WRITE_PROTECT);
        f.protect(0, PageFlags::NO_ACCESS);
        f.unprotect(0, PageFlags::WRITE_PROTECT);
        assert!(f.is_protected(0, PageFlags::NO_ACCESS));
    }

    #[test]
    fn protect_all_and_enumerate() {
        let mut f = PageFlags::new(5);
        f.protect_all(PageFlags::WRITE_PROTECT);
        assert_eq!(f.protected_indices(PageFlags::WRITE_PROTECT).count(), 5);
        f.unprotect(3, PageFlags::WRITE_PROTECT);
        let idx: Vec<_> = f.protected_indices(PageFlags::WRITE_PROTECT).collect();
        assert_eq!(idx, vec![0, 1, 2, 4]);
        f.unprotect_all(PageFlags::WRITE_PROTECT);
        assert_eq!(f.protected_indices(PageFlags::WRITE_PROTECT).count(), 0);
    }
}
