//! Per-thread private views of the logical shared space.

use crate::diff::ModRun;
use crate::page::Page;
use rfdet_api::Addr;

/// A thread-private, paged view of the logical shared memory space.
///
/// Pages are materialized lazily: an absent page reads as zeros, and the
/// first write allocates it. Forking a space (thread creation) clones the
/// page table; all pages become shared copy-on-write, so the child inherits
/// the parent's memory at cost O(pages), without copying data.
#[derive(Clone, Debug)]
pub struct PrivateSpace {
    pages: Vec<Option<Page>>,
    page_size: usize,
    shift: u32,
    materialized: usize,
}

impl PrivateSpace {
    /// Creates an empty (all-zero) space of `space_bytes` with pages of
    /// `page_size` bytes (a power of two dividing `space_bytes`).
    #[must_use]
    pub fn new(space_bytes: u64, page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(
            space_bytes.is_multiple_of(page_size),
            "space must be page-aligned"
        );
        let n = (space_bytes / page_size) as usize;
        Self {
            pages: vec![None; n],
            page_size: page_size as usize,
            shift: page_size.trailing_zeros(),
            materialized: 0,
        }
    }

    /// Forks this space for a child thread (COW inheritance).
    #[must_use]
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total number of pages (materialized or not).
    #[must_use]
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages this space has materialized (its private footprint).
    #[must_use]
    pub fn materialized_pages(&self) -> usize {
        self.materialized
    }

    /// The page index containing `addr`.
    #[inline]
    #[must_use]
    pub fn page_of(&self, addr: Addr) -> usize {
        (addr >> self.shift) as usize
    }

    /// First address of page `idx`.
    #[inline]
    #[must_use]
    pub fn page_base(&self, idx: usize) -> Addr {
        (idx as Addr) << self.shift
    }

    /// Read-only view of page `idx` if materialized.
    #[must_use]
    pub fn page(&self, idx: usize) -> Option<&Page> {
        self.pages.get(idx).and_then(Option::as_ref)
    }

    /// Snapshot of page `idx` (zeros if not materialized).
    #[must_use]
    pub fn snapshot_page(&self, idx: usize) -> Box<[u8]> {
        match &self.pages[idx] {
            Some(p) => p.snapshot(),
            None => vec![0; self.page_size].into(),
        }
    }

    /// Snapshots page `idx` into a caller-provided page-sized buffer —
    /// the allocation-free path used by the snapshot buffer pool.
    ///
    /// # Panics
    /// Panics if `buf` is not exactly one page long.
    pub fn snapshot_page_into(&self, idx: usize, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size, "snapshot buffer size mismatch");
        match &self.pages[idx] {
            Some(p) => buf.copy_from_slice(p.bytes()),
            None => buf.fill(0),
        }
    }

    fn check_range(&self, addr: Addr, len: usize) {
        let end = addr.checked_add(len as u64).expect("address overflow");
        let space = (self.pages.len() * self.page_size) as u64;
        assert!(
            end <= space,
            "shared-memory access out of bounds: addr={addr:#x} len={len} space={space:#x}"
        );
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        self.check_range(addr, buf.len());
        let mut addr = addr;
        let mut buf = buf;
        while !buf.is_empty() {
            let idx = self.page_of(addr);
            let off = (addr as usize) & (self.page_size - 1);
            let n = buf.len().min(self.page_size - off);
            let (head, tail) = buf.split_at_mut(n);
            match &self.pages[idx] {
                Some(p) => head.copy_from_slice(&p.bytes()[off..off + n]),
                None => head.fill(0),
            }
            buf = tail;
            addr += n as u64;
        }
    }

    /// Writes `data` starting at `addr`, materializing pages as needed.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        self.check_range(addr, data.len());
        let mut addr = addr;
        let mut data = data;
        while !data.is_empty() {
            let idx = self.page_of(addr);
            let off = (addr as usize) & (self.page_size - 1);
            let n = data.len().min(self.page_size - off);
            let page = self.ensure_page(idx);
            page.bytes_mut()[off..off + n].copy_from_slice(&data[..n]);
            data = &data[n..];
            addr += n as u64;
        }
    }

    /// Applies one modification run (a contiguous byte write) to this
    /// space. This is the `copyToLocalMemory` step of paper Figure 5.
    pub fn apply_run(&mut self, run: &ModRun) {
        self.write(run.addr, &run.data);
    }

    /// Applies many runs in order (later runs overwrite earlier ones at
    /// conflicting addresses — the deterministic "remote wins" policy).
    ///
    /// Batched per page: consecutive runs landing on the same page resolve
    /// (and, under COW sharing, copy) that page once for the whole group
    /// instead of once per run. Slice modification lists arrive sorted by
    /// address (diffing walks pages in index order), so in the propagation
    /// hot path nearly every group spans a slice's full per-page run
    /// cluster. Runs that straddle a page boundary fall back to the
    /// general write path. Returns the total bytes written.
    pub fn apply_runs(&mut self, runs: &[ModRun]) -> u64 {
        let mut applied: u64 = 0;
        let mut k = 0;
        while k < runs.len() {
            let r = &runs[k];
            let idx = self.page_of(r.addr);
            let page_end = self.page_base(idx) + self.page_size as u64;
            if r.end() > page_end {
                // Page-straddling run (never produced by diffing, which is
                // per-page): take the splitting slow path.
                self.apply_run(r);
                applied += r.len() as u64;
                k += 1;
                continue;
            }
            // Extend the group over every following run inside this page.
            let mut end = k + 1;
            while end < runs.len() {
                let n = &runs[end];
                if self.page_of(n.addr) != idx || n.end() > page_end {
                    break;
                }
                end += 1;
            }
            self.check_range(runs[end - 1].end().saturating_sub(1), 1);
            let base = self.page_base(idx);
            let bytes = self.ensure_page(idx).bytes_mut();
            for run in &runs[k..end] {
                let off = (run.addr - base) as usize;
                bytes[off..off + run.len()].copy_from_slice(&run.data);
                applied += run.len() as u64;
            }
            k = end;
        }
        applied
    }

    /// Applies a merged lazy-write overlay to page `idx`: every occupied
    /// byte span of `overlay` is copied into the page, everything else is
    /// left untouched. This is the allocation-free lazy-fault apply path
    /// (§4.5): the page is resolved (and, under COW sharing, copied) once,
    /// and each modified byte is written exactly once with its newest
    /// value. Returns the number of bytes written.
    ///
    /// # Panics
    /// Panics if the overlay is not sized for this space's pages.
    pub fn apply_overlay(&mut self, idx: usize, overlay: &crate::PageOverlay) -> u64 {
        assert_eq!(
            overlay.page_size(),
            self.page_size,
            "overlay/page size mismatch"
        );
        if overlay.is_empty() {
            return 0;
        }
        let src = overlay.bytes();
        let dst = self.ensure_page(idx).bytes_mut();
        let mut applied: u64 = 0;
        for w in overlay.occupied_words() {
            let mut bits = overlay.words()[w];
            while bits != 0 {
                let start = bits.trailing_zeros() as usize;
                // Length of the consecutive-ones span starting at `start`.
                let span = (!(bits >> start)).trailing_zeros() as usize;
                let s = w * 64 + start;
                let e = s + span;
                dst[s..e].copy_from_slice(&src[s..e]);
                applied += span as u64;
                if start + span >= 64 {
                    break;
                }
                bits &= u64::MAX << (start + span);
            }
        }
        applied
    }

    fn ensure_page(&mut self, idx: usize) -> &mut Page {
        let slot = &mut self.pages[idx];
        if slot.is_none() {
            *slot = Some(Page::zeroed(self.page_size));
            self.materialized += 1;
        }
        slot.as_mut().expect("just materialized")
    }

    /// Iterates the indices of materialized pages.
    pub fn materialized_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPACE_BYTES: u64 = 64 * 1024;

    fn space() -> PrivateSpace {
        PrivateSpace::new(SPACE_BYTES, 4096)
    }

    #[test]
    fn fresh_space_reads_zero() {
        let s = space();
        let mut buf = [0xFFu8; 16];
        s.read(100, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(s.materialized_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = space();
        s.write(123, b"hello world");
        let mut buf = [0u8; 11];
        s.read(123, &mut buf);
        assert_eq!(&buf, b"hello world");
        assert_eq!(s.materialized_pages(), 1);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut s = space();
        let addr = 4096 - 3;
        s.write(addr, b"abcdef");
        let mut buf = [0u8; 6];
        s.read(addr, &mut buf);
        assert_eq!(&buf, b"abcdef");
        assert_eq!(s.materialized_pages(), 2);
        // Each half landed on the right page.
        assert_eq!(s.page(0).unwrap().bytes()[4093..], *b"abc");
        assert_eq!(s.page(1).unwrap().bytes()[..3], *b"def");
    }

    #[test]
    fn fork_inherits_and_isolates() {
        let mut parent = space();
        parent.write(0, &[1, 2, 3]);
        let mut child = parent.fork();
        let mut buf = [0u8; 3];
        child.read(0, &mut buf);
        assert_eq!(buf, [1, 2, 3], "child inherits parent memory");

        child.write(0, &[9]);
        parent.read(0, &mut buf);
        assert_eq!(buf, [1, 2, 3], "parent does not see child writes");
        child.read(0, &mut buf);
        assert_eq!(buf, [9, 2, 3]);

        parent.write(1, &[7]);
        child.read(0, &mut buf);
        assert_eq!(buf, [9, 2, 3], "child does not see parent writes");
    }

    #[test]
    fn snapshot_of_unmaterialized_page_is_zero() {
        let s = space();
        let snap = s.snapshot_page(3);
        assert_eq!(snap.len(), 4096);
        assert!(snap.iter().all(|&b| b == 0));
    }

    #[test]
    fn apply_runs_last_wins() {
        let mut s = space();
        let applied = s.apply_runs(&[
            ModRun::new(10, vec![1, 1, 1].into()),
            ModRun::new(11, vec![2].into()),
        ]);
        assert_eq!(applied, 4);
        let mut buf = [0u8; 3];
        s.read(10, &mut buf);
        assert_eq!(buf, [1, 2, 1]);
    }

    #[test]
    fn apply_runs_batches_across_pages_and_straddles() {
        let mut s = space();
        // Two runs on page 0, one straddling pages 1/2, one on page 3.
        let applied = s.apply_runs(&[
            ModRun::new(0, vec![1].into()),
            ModRun::new(100, vec![2, 2].into()),
            ModRun::new(2 * 4096 - 1, vec![3, 4].into()),
            ModRun::new(3 * 4096 + 5, vec![5].into()),
        ]);
        assert_eq!(applied, 6);
        assert_eq!(s.page(0).unwrap().bytes()[0], 1);
        assert_eq!(s.page(0).unwrap().bytes()[100..102], [2, 2]);
        assert_eq!(s.page(1).unwrap().bytes()[4095], 3);
        assert_eq!(s.page(2).unwrap().bytes()[0], 4);
        assert_eq!(s.page(3).unwrap().bytes()[5], 5);
        assert_eq!(s.materialized_pages(), 4);
    }

    #[test]
    fn apply_runs_matches_apply_run_one_by_one() {
        let runs = vec![
            ModRun::new(4090, vec![7; 3].into()),
            ModRun::new(4096, vec![8; 2].into()),
            ModRun::new(4100, vec![9].into()),
        ];
        let mut batched = space();
        batched.apply_runs(&runs);
        let mut serial = space();
        for r in &runs {
            serial.apply_run(r);
        }
        let (mut a, mut b) = (vec![0u8; 2 * 4096], vec![0u8; 2 * 4096]);
        batched.read(0, &mut a);
        serial.read(0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_overlay_writes_only_occupied_spans() {
        use crate::PageOverlay;
        let mut s = space();
        s.write(4096, &[0xEEu8; 4096]); // pre-existing page contents
        let mut ov = PageOverlay::new();
        ov.reset(4096);
        ov.write(10, &[1, 2, 3]);
        ov.write(60, &[7u8; 16]); // spans a bitmap word boundary
        ov.write(4095, &[9]);
        let applied = s.apply_overlay(1, &ov);
        assert_eq!(applied, 20);
        let p = s.page(1).unwrap().bytes();
        assert_eq!(&p[10..13], &[1, 2, 3]);
        assert_eq!(&p[60..76], &[7u8; 16]);
        assert_eq!(p[4095], 9);
        // Unoccupied bytes keep their old values — the overlay's stale
        // buffer contents never leak through.
        assert_eq!(p[9], 0xEE);
        assert_eq!(p[13], 0xEE);
        assert_eq!(p[76], 0xEE);
    }

    #[test]
    fn apply_overlay_matches_serial_run_application() {
        use crate::PageOverlay;
        let runs = vec![
            ModRun::new(3, vec![1, 1, 1, 1].into()),
            ModRun::new(4, vec![2, 2].into()), // overlaps: newest wins
            ModRun::new(64, vec![3].into()),
            ModRun::new(100, vec![4u8; 200].into()),
        ];
        let mut serial = space();
        for r in &runs {
            serial.apply_run(r);
        }
        let mut merged = space();
        let mut ov = PageOverlay::new();
        ov.reset(4096);
        for r in &runs {
            ov.write(r.addr as usize, &r.data);
        }
        merged.apply_overlay(0, &ov);
        let (mut a, mut b) = (vec![0u8; 4096], vec![0u8; 4096]);
        serial.read(0, &mut a);
        merged.read(0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_overlay_empty_is_a_noop() {
        use crate::PageOverlay;
        let mut s = space();
        let mut ov = PageOverlay::new();
        ov.reset(4096);
        assert_eq!(s.apply_overlay(2, &ov), 0);
        assert_eq!(s.materialized_pages(), 0, "no page materialized");
    }

    #[test]
    #[should_panic(expected = "overlay/page size mismatch")]
    fn apply_overlay_rejects_wrong_size() {
        use crate::PageOverlay;
        let mut s = space();
        let mut ov = PageOverlay::new();
        ov.reset(128);
        let _ = s.apply_overlay(0, &ov);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn apply_runs_out_of_bounds_panics() {
        let mut s = space();
        s.apply_runs(&[ModRun::new(SPACE_BYTES - 1, vec![1, 2].into())]);
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let mut s = space();
        s.write(4096 + 17, &[9, 8, 7]);
        let mut buf = vec![0xAAu8; 4096];
        s.snapshot_page_into(1, &mut buf);
        assert_eq!(&*s.snapshot_page(1), &buf[..]);
        // Unmaterialized page zero-fills the reused buffer.
        s.snapshot_page_into(2, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn snapshot_into_rejects_wrong_size() {
        let s = space();
        let mut buf = vec![0u8; 100];
        s.snapshot_page_into(0, &mut buf);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let s = space();
        let mut buf = [0u8; 1];
        s.read(64 * 1024, &mut buf);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn straddling_end_write_panics() {
        let mut s = space();
        s.write(64 * 1024 - 2, &[0; 4]);
    }

    #[test]
    fn materialized_indices_reports_written_pages() {
        let mut s = space();
        s.write(0, &[1]);
        s.write(3 * 4096, &[1]);
        let idx: Vec<_> = s.materialized_indices().collect();
        assert_eq!(idx, vec![0, 3]);
    }
}
