//! The deterministic shared allocator (paper §4.4 "Memory Allocation").
//!
//! Because each "thread" has an isolated view of the same logical address
//! space, the allocator must never hand the same address to two threads —
//! "dynamic memory allocations in different threads may cause memory
//! address conflicts". The paper solves this with a modified Hoard storing
//! its metadata in the shared metadata space. We solve it statically: the
//! heap area is partitioned into [`MAX_HEAP_THREADS`] equal strips, and
//! thread *t* allocates exclusively from strip *t* (size-classed free
//! lists + a bump pointer). This is deterministic with **zero**
//! cross-thread coordination, which also keeps allocation off the Kendo
//! arbitration path.

use rfdet_api::Addr;
use std::collections::HashMap;

/// Number of heap strips (upper bound on concurrently allocating threads).
pub const MAX_HEAP_THREADS: u32 = 256;

const MIN_CLASS_LOG: u32 = 4; // 16-byte minimum allocation

/// Describes the static partition of the heap area.
#[derive(Clone, Copy, Debug)]
pub struct StripAllocator {
    base: Addr,
    strip_size: u64,
}

impl StripAllocator {
    /// Partitions `[base, base + size)` into [`MAX_HEAP_THREADS`] strips.
    #[must_use]
    pub fn new(base: Addr, size: u64) -> Self {
        let strip_size = size / u64::from(MAX_HEAP_THREADS);
        assert!(strip_size >= 1 << MIN_CLASS_LOG, "heap area too small");
        Self { base, strip_size }
    }

    /// The strip (thread heap) for deterministic thread ID `tid`.
    ///
    /// # Panics
    /// Panics if `tid >= MAX_HEAP_THREADS`.
    #[must_use]
    pub fn heap_for(&self, tid: u32) -> ThreadHeap {
        assert!(
            tid < MAX_HEAP_THREADS,
            "thread id {tid} exceeds allocator strip count {MAX_HEAP_THREADS}"
        );
        let start = self.base + u64::from(tid) * self.strip_size;
        ThreadHeap {
            start,
            cursor: start,
            end: start + self.strip_size,
            free: HashMap::new(),
            live: HashMap::new(),
            allocated_bytes: 0,
        }
    }

    /// Bytes available per thread strip.
    #[must_use]
    pub fn strip_size(&self) -> u64 {
        self.strip_size
    }
}

/// A single thread's allocator state over its strip.
///
/// Size-classed (powers of two, 16-byte minimum): frees go to per-class
/// free lists and are reused LIFO, so the address sequence produced by any
/// deterministic program is itself deterministic.
#[derive(Debug)]
pub struct ThreadHeap {
    start: Addr,
    cursor: Addr,
    end: Addr,
    free: HashMap<u32, Vec<Addr>>,
    live: HashMap<Addr, u32>,
    allocated_bytes: u64,
}

fn class_log(size: u64) -> u32 {
    size.max(1 << MIN_CLASS_LOG)
        .next_power_of_two()
        .trailing_zeros()
}

impl ThreadHeap {
    /// Allocates `size` bytes aligned to `align` (a power of two).
    ///
    /// # Panics
    /// Panics if the strip is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(size > 0, "zero-size allocation");
        let cls = class_log(size.max(align));
        if let Some(addr) = self.free.get_mut(&cls).and_then(Vec::pop) {
            self.live.insert(addr, cls);
            self.allocated_bytes += 1 << cls;
            return addr;
        }
        let block = 1u64 << cls;
        let addr = self.cursor.next_multiple_of(block);
        assert!(
            addr + block <= self.end,
            "thread heap strip exhausted: need {block} bytes, {} left \
             (increase RunConfig::space_bytes)",
            self.end.saturating_sub(self.cursor)
        );
        self.cursor = addr + block;
        self.live.insert(addr, cls);
        self.allocated_bytes += block;
        addr
    }

    /// Frees a block previously returned by [`ThreadHeap::alloc`] **on this
    /// same heap**.
    ///
    /// # Panics
    /// Panics on double-free or on an address this heap never produced.
    pub fn dealloc(&mut self, addr: Addr) {
        let cls = self
            .live
            .remove(&addr)
            .unwrap_or_else(|| panic!("free of unallocated address {addr:#x}"));
        self.allocated_bytes -= 1u64 << cls;
        self.free.entry(cls).or_default().push(addr);
    }

    /// Bytes currently allocated from this strip.
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// High-water mark of the bump pointer (bytes of the strip ever used).
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.cursor - self.start
    }

    /// The allocator state in canonical order, for checkpointing: free
    /// lists ascending by class with their LIFO order preserved (reuse
    /// order is allocation-visible), live blocks ascending by address.
    #[must_use]
    pub fn export_state(&self) -> HeapState {
        let mut free: Vec<(u32, Vec<Addr>)> = self
            .free
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&cls, v)| (cls, v.clone()))
            .collect();
        free.sort_unstable_by_key(|&(cls, _)| cls);
        let mut live: Vec<(Addr, u32)> = self.live.iter().map(|(&a, &c)| (a, c)).collect();
        live.sort_unstable();
        HeapState {
            cursor: self.cursor,
            allocated_bytes: self.allocated_bytes,
            free,
            live,
        }
    }

    /// Overwrites this heap's state with an exported snapshot. The heap
    /// must be the same strip the snapshot was taken from (the cursor
    /// must land inside it) — restoring reproduces the exact address
    /// sequence the checkpointed run would have continued with.
    ///
    /// # Panics
    /// Panics when the snapshot cursor falls outside this strip.
    pub fn restore_state(&mut self, s: &HeapState) {
        assert!(
            s.cursor >= self.start && s.cursor <= self.end,
            "heap snapshot cursor {:#x} outside strip [{:#x}, {:#x})",
            s.cursor,
            self.start,
            self.end
        );
        self.cursor = s.cursor;
        self.allocated_bytes = s.allocated_bytes;
        self.free = s.free.iter().cloned().collect();
        self.live = s.live.iter().map(|&(a, c)| (a, c)).collect();
    }
}

/// A [`ThreadHeap`]'s exported allocator state (see
/// [`ThreadHeap::export_state`]), in canonical order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapState {
    /// The bump pointer.
    pub cursor: Addr,
    /// Live bytes.
    pub allocated_bytes: u64,
    /// Free lists as `(class, addrs)`, ascending class, LIFO order kept.
    pub free: Vec<(u32, Vec<Addr>)>,
    /// Live blocks as `(addr, class)`, ascending address.
    pub live: Vec<(Addr, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> ThreadHeap {
        // 16 MiB over 256 strips → 64 KiB per thread heap.
        StripAllocator::new(1 << 20, 16 << 20).heap_for(0)
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut h = heap();
        let a = h.alloc(24, 8);
        let b = h.alloc(24, 8);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        // 24 rounds to class 32
        assert!(b >= a + 32 || a >= b + 32);
    }

    #[test]
    fn different_tids_get_disjoint_strips() {
        let sa = StripAllocator::new(0, 1 << 20);
        let mut h0 = sa.heap_for(0);
        let mut h1 = sa.heap_for(1);
        let a = h0.alloc(64, 8);
        let b = h1.alloc(64, 8);
        assert!(a < sa.strip_size());
        assert!((sa.strip_size()..2 * sa.strip_size()).contains(&b));
    }

    #[test]
    fn free_then_alloc_reuses_address() {
        let mut h = heap();
        let a = h.alloc(100, 8);
        h.dealloc(a);
        let b = h.alloc(100, 8);
        assert_eq!(a, b, "LIFO reuse keeps addresses deterministic");
    }

    #[test]
    fn allocation_sequence_is_deterministic() {
        let run = || {
            let mut h = heap();
            let mut addrs = Vec::new();
            for i in 1..50u64 {
                addrs.push(h.alloc(i * 7 % 200 + 1, 8));
                if i % 3 == 0 {
                    let victim = addrs.remove((i as usize) % addrs.len());
                    h.dealloc(victim);
                }
            }
            addrs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn large_alignment_respected() {
        let mut h = heap();
        let a = h.alloc(8, 4096);
        assert_eq!(a % 4096, 0);
    }

    #[test]
    fn allocated_bytes_tracks() {
        let mut h = heap();
        let a = h.alloc(16, 8);
        assert_eq!(h.allocated_bytes(), 16);
        let b = h.alloc(17, 8); // class 32
        assert_eq!(h.allocated_bytes(), 48);
        h.dealloc(a);
        assert_eq!(h.allocated_bytes(), 32);
        h.dealloc(b);
        assert_eq!(h.allocated_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "free of unallocated")]
    fn double_free_panics() {
        let mut h = heap();
        let a = h.alloc(16, 8);
        h.dealloc(a);
        h.dealloc(a);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let sa = StripAllocator::new(0, (1 << MIN_CLASS_LOG as u64) * u64::from(MAX_HEAP_THREADS));
        let mut h = sa.heap_for(0);
        h.alloc(16, 8);
        h.alloc(16, 8);
    }

    #[test]
    #[should_panic(expected = "strip count")]
    fn tid_out_of_range_panics() {
        let _ = StripAllocator::new(0, 1 << 20).heap_for(MAX_HEAP_THREADS);
    }

    #[test]
    fn export_restore_reproduces_the_address_sequence() {
        let sa = StripAllocator::new(1 << 20, 16 << 20);
        let mut h = sa.heap_for(3);
        let mut addrs = Vec::new();
        for i in 1..40u64 {
            addrs.push(h.alloc(i * 13 % 300 + 1, 8));
            if i % 4 == 0 {
                h.dealloc(addrs.remove(i as usize % addrs.len()));
            }
        }
        let state = h.export_state();
        // Continue on the original and on a freshly restored heap: the
        // address sequences must be identical (free-list LIFO order and
        // the cursor both survive the round trip).
        let continue_run = |h: &mut ThreadHeap| {
            let mut out = Vec::new();
            for i in 1..20u64 {
                out.push(h.alloc(i * 29 % 500 + 1, 16));
            }
            out
        };
        let mut restored = sa.heap_for(3);
        restored.restore_state(&state);
        assert_eq!(restored.export_state(), state, "round trip is exact");
        assert_eq!(continue_run(&mut h), continue_run(&mut restored));
    }

    #[test]
    #[should_panic(expected = "outside strip")]
    fn restore_into_wrong_strip_panics() {
        let sa = StripAllocator::new(0, 16 << 20);
        let mut h0 = sa.heap_for(0);
        h0.alloc(64, 8);
        let state = h0.export_state();
        sa.heap_for(5).restore_state(&state);
    }
}
