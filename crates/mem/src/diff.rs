//! Byte-granularity page diffing (paper §4.2 "Monitoring Memory
//! Modifications" and §4.6 "Correctness of Page Diffing").
//!
//! At the end of each slice, every snapshotted page is compared with its
//! current contents and runs of differing bytes become [`ModRun`]s. A byte
//! overwritten with the *same* value produces no run — that is
//! load-bearing: it implements the paper's "prefer local writes when the
//! remote write is redundant" conflict policy (§4.6), and the modification
//! granularity of one byte matches the smallest C++ scalar.
//!
//! # The chunked kernel
//!
//! Diffing is the per-slice fixed cost of DLRC: every snapshotted page is
//! scanned in full at every slice end, whether one byte changed or none
//! (TreadMarks-style LRC systems are historically diff-bandwidth-bound).
//! [`diff_page`] therefore compares eight bytes at a time: a `u64` XOR of
//! snapshot and current words is zero iff the whole word is unchanged, and
//! when it is nonzero, `trailing_zeros / 8` (on the little-endian word
//! load) names the exact first differing byte — so run boundaries stay
//! byte-exact while the scan runs at word speed. The byte-at-a-time
//! [`diff_page_scalar`] is retained as the executable specification; the
//! two are pinned byte-for-byte equal by a differential property test.

use rfdet_api::Addr;
use std::sync::Arc;

/// A contiguous run of modified bytes: "a write of the value `data` to
/// address `addr`" generalized to a run for compactness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModRun {
    /// First modified address.
    pub addr: Addr,
    /// The new bytes.
    pub data: Box<[u8]>,
}

/// A sealed, shared modification list. Slices publish their runs behind an
/// `Arc` so consumers (pending lazy-write queues, barrier merges,
/// transitive propagation) share one allocation instead of deep-copying
/// runs — see [`RunHandle`].
pub type RunList = Arc<[ModRun]>;

impl ModRun {
    /// Creates a run.
    ///
    /// Runs are never empty: diffing only materializes a run once it has
    /// found a differing byte, and coalescing only merges *existing* runs.
    /// Downstream code (per-page pending queues, `mod_bytes` accounting,
    /// GC byte budgets) relies on that, so it is asserted here rather than
    /// documented away.
    #[must_use]
    pub fn new(addr: Addr, data: Box<[u8]>) -> Self {
        debug_assert!(!data.is_empty(), "empty ModRun constructed");
        Self { addr, data }
    }

    /// Number of modified bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `false` for every run built by [`ModRun::new`] (which rejects empty
    /// data in debug builds); present for container-idiom completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Approximate heap bytes consumed by this run (metadata accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.data.len() + std::mem::size_of::<Self>()
    }

    /// The exclusive end address of the run.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.addr + self.data.len() as u64
    }
}

/// A zero-copy reference to one run inside a shared [`RunList`].
///
/// Cloning a `RunHandle` bumps one `Arc` — the run bytes themselves are
/// never copied. The lazy-writes pending queues store these, so deferring
/// a slice's modifications costs O(runs) pointer pushes instead of a deep
/// copy of every run's bytes.
#[derive(Clone, Debug)]
pub struct RunHandle {
    list: RunList,
    idx: usize,
}

impl RunHandle {
    /// A handle to `list[idx]`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds for `list`.
    #[must_use]
    pub fn new(list: &RunList, idx: usize) -> Self {
        assert!(idx < list.len(), "RunHandle index out of bounds");
        Self {
            list: Arc::clone(list),
            idx,
        }
    }

    /// The referenced run.
    #[inline]
    #[must_use]
    pub fn run(&self) -> &ModRun {
        &self.list[self.idx]
    }
}

impl std::ops::Deref for RunHandle {
    type Target = ModRun;

    fn deref(&self) -> &ModRun {
        self.run()
    }
}

/// A zero-copy reference to a *contiguous group* of runs inside a shared
/// [`RunList`].
///
/// Slice modification lists arrive sorted by address (diffing walks pages
/// in index order), so all runs of one page form one contiguous index
/// range. The lazy-writes pending queues store one `RunRange` per
/// (slice, page) group — a single `Arc` bump per group instead of one
/// [`RunHandle`] per run, so deferring a slice costs O(pages touched)
/// pointer pushes rather than O(runs).
#[derive(Clone, Debug)]
pub struct RunRange {
    list: RunList,
    start: usize,
    end: usize,
}

impl RunRange {
    /// A handle to `list[start..end]`.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds for `list`.
    #[must_use]
    pub fn new(list: &RunList, start: usize, end: usize) -> Self {
        assert!(
            start < end && end <= list.len(),
            "RunRange {start}..{end} invalid for list of {}",
            list.len()
        );
        Self {
            list: Arc::clone(list),
            start,
            end,
        }
    }

    /// The referenced runs.
    #[inline]
    #[must_use]
    pub fn runs(&self) -> &[ModRun] {
        &self.list[self.start..self.end]
    }

    /// Number of runs in the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `false` for every range built by [`RunRange::new`] (which rejects
    /// empty ranges); present for container-idiom completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Total modified bytes across the group.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        runs_len(self.runs())
    }
}

/// Per-call accounting returned by [`diff_page_opts`]: the raw material of
/// the `diff_bytes_scanned` / `runs_coalesced` Stats counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiffOutcome {
    /// Bytes compared (always the full page: diffing scans everything).
    pub bytes_scanned: u64,
    /// Adjacent runs merged into their predecessor by gap coalescing.
    pub runs_coalesced: u64,
}

const WORD: usize = std::mem::size_of::<u64>();
const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn load_word(s: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(s[i..i + WORD].try_into().expect("8-byte window"))
}

/// `true` iff some byte of `x` is zero (the classic SWAR zero-byte test).
#[inline]
fn has_zero_byte(x: u64) -> bool {
    x.wrapping_sub(LO) & !x & HI != 0
}

/// Index of the first zero byte of `x` (little-endian byte order).
/// Requires `has_zero_byte(x)`.
#[inline]
fn first_zero_byte(x: u64) -> usize {
    ((x.wrapping_sub(LO) & !x & HI).trailing_zeros() / 8) as usize
}

/// First index `≥ i` at which `snapshot` and `current` differ, or `n`.
/// Skips equal regions a word at a time; the XOR's trailing zero count
/// names the exact differing byte inside a mixed word.
#[inline]
fn next_diff(snapshot: &[u8], current: &[u8], mut i: usize) -> usize {
    let n = current.len();
    while i + WORD <= n {
        let x = load_word(snapshot, i) ^ load_word(current, i);
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += WORD;
    }
    while i < n && snapshot[i] == current[i] {
        i += 1;
    }
    i
}

/// First index `≥ i` at which `snapshot` and `current` agree, or `n`.
/// Skips all-different regions a word at a time; a word contains an equal
/// byte iff its XOR has a zero byte.
#[inline]
fn next_same(snapshot: &[u8], current: &[u8], mut i: usize) -> usize {
    let n = current.len();
    while i + WORD <= n {
        let x = load_word(snapshot, i) ^ load_word(current, i);
        if has_zero_byte(x) {
            return i + first_zero_byte(x);
        }
        i += WORD;
    }
    while i < n && snapshot[i] != current[i] {
        i += 1;
    }
    i
}

/// Diffs one page against its snapshot, appending runs of changed bytes to
/// `out`. `page_base` is the logical address of byte 0 of the page.
///
/// Chunked fast path of the retained [`diff_page_scalar`] reference:
/// byte-for-byte identical output (differentially property-tested), word
///-at-a-time scan speed.
pub fn diff_page(page_base: Addr, snapshot: &[u8], current: &[u8], out: &mut Vec<ModRun>) {
    diff_page_opts(page_base, snapshot, current, 0, out);
}

/// [`diff_page`] with gap coalescing and scan accounting.
///
/// `gap_coalesce` is the §4.5-style space/time trade: when two runs are
/// separated by at most `gap_coalesce` *unchanged* bytes, they are merged
/// into one run that also carries the gap bytes (whose current value
/// equals the snapshot value, by construction — the run data is read from
/// `current`). Zero disables coalescing and reproduces
/// [`diff_page_scalar`] exactly.
///
/// Coalescing trades run-count (allocation, per-run apply overhead,
/// metadata) against modification bytes. Determinism is unaffected — the
/// output is a pure function of `(snapshot, current, gap_coalesce)`, so
/// every run of the program produces identical run lists. Whether the
/// *propagated values* match the uncoalesced baseline is subtler (a gap
/// byte re-applies the producer's pre-slice value, which is a no-op unless
/// another thread wrote that byte concurrently with the slice); see
/// DESIGN.md "Gap coalescing and §4.6" for the full argument. The knob
/// defaults off (`RfdetOpts::diff_gap_coalesce = 0`) for A/B measurement.
pub fn diff_page_opts(
    page_base: Addr,
    snapshot: &[u8],
    current: &[u8],
    gap_coalesce: usize,
    out: &mut Vec<ModRun>,
) -> DiffOutcome {
    assert_eq!(snapshot.len(), current.len(), "snapshot/page size mismatch");
    let n = current.len();
    let mut outcome = DiffOutcome {
        bytes_scanned: n as u64,
        runs_coalesced: 0,
    };
    let mut i = next_diff(snapshot, current, 0);
    while i < n {
        let start = i;
        let mut end = next_same(snapshot, current, i);
        // Look ahead: small unchanged gaps are folded into the run, so a
        // cluster of nearby writes seals as one run instead of many.
        loop {
            let nxt = next_diff(snapshot, current, end);
            if gap_coalesce > 0 && nxt < n && nxt - end <= gap_coalesce {
                outcome.runs_coalesced += 1;
                end = next_same(snapshot, current, nxt);
            } else {
                out.push(ModRun::new(
                    page_base + start as u64,
                    current[start..end].into(),
                ));
                i = nxt;
                break;
            }
        }
    }
    outcome
}

/// The byte-at-a-time reference implementation of [`diff_page`] —
/// retained as the executable specification the chunked kernel is
/// differentially tested against (and as the readable statement of the
/// §4.2/§4.6 semantics: one run per maximal region of differing bytes,
/// data read from `current`).
pub fn diff_page_scalar(page_base: Addr, snapshot: &[u8], current: &[u8], out: &mut Vec<ModRun>) {
    assert_eq!(snapshot.len(), current.len(), "snapshot/page size mismatch");
    let mut i = 0;
    let n = current.len();
    while i < n {
        if snapshot[i] == current[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && snapshot[i] != current[i] {
            i += 1;
        }
        out.push(ModRun::new(
            page_base + start as u64,
            current[start..i].into(),
        ));
    }
}

/// Total modified bytes across `runs`.
#[must_use]
pub fn runs_len(runs: &[ModRun]) -> usize {
    runs.iter().map(ModRun::len).sum()
}

/// Total heap footprint of `runs` (metadata accounting).
#[must_use]
pub fn runs_heap_bytes(runs: &[ModRun]) -> usize {
    runs.iter().map(ModRun::heap_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_pages_produce_no_runs() {
        let a = vec![7u8; 128];
        let mut out = Vec::new();
        diff_page(0, &a, &a, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_byte_change() {
        let old = vec![0u8; 64];
        let mut new = old.clone();
        new[10] = 5;
        let mut out = Vec::new();
        diff_page(4096, &old, &new, &mut out);
        assert_eq!(out, vec![ModRun::new(4106, vec![5].into())]);
    }

    #[test]
    fn adjacent_changes_coalesce_into_one_run() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[4] = 1;
        new[5] = 2;
        new[6] = 3;
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(out, vec![ModRun::new(4, vec![1, 2, 3].into())]);
    }

    #[test]
    fn separated_changes_become_separate_runs() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[0] = 1;
        new[31] = 9;
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(
            out,
            vec![
                ModRun::new(0, vec![1].into()),
                ModRun::new(31, vec![9].into())
            ]
        );
    }

    #[test]
    fn redundant_write_is_invisible() {
        // x == 0, slice executes x = 0: no modification is recorded.
        // §4.6 argues this is both deterministic and semantically correct.
        let old = vec![0u8; 16];
        let new = old.clone();
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn byte_granularity_split_write() {
        // A 32-bit store where only two of four bytes changed produces
        // runs covering exactly the changed bytes.
        let mut old = vec![0u8; 8];
        old[0] = 0xFF; // low byte already 0xFF
        let mut new = old.clone();
        // write 0x0000_01FF over bytes 0..4: byte0 unchanged, byte1 becomes 1
        new[1] = 0x01;
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(out, vec![ModRun::new(1, vec![1].into())]);
    }

    #[test]
    fn runs_len_and_heap_bytes() {
        let runs = vec![
            ModRun::new(0, vec![1, 2].into()),
            ModRun::new(9, vec![3].into()),
        ];
        assert_eq!(runs_len(&runs), 3);
        assert!(runs_heap_bytes(&runs) >= 3);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let mut out = Vec::new();
        diff_page(0, &[0; 4], &[0; 8], &mut out);
    }

    #[test]
    fn whole_page_changed() {
        let old = vec![0u8; 64];
        let new = vec![1u8; 64];
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 64);
        assert_eq!(out[0].end(), 64);
    }

    #[test]
    fn run_at_page_edges() {
        // Differences in the first and last byte: runs must start at 0 and
        // end exactly at the page size (no word-granularity overshoot).
        let old = vec![0u8; 48];
        let mut new = old.clone();
        new[0] = 1;
        new[47] = 2;
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(
            out,
            vec![
                ModRun::new(0, vec![1].into()),
                ModRun::new(47, vec![2].into())
            ]
        );
    }

    #[test]
    fn non_multiple_of_word_page() {
        // A 13-byte buffer exercises the scalar tail after the word loop.
        let old = vec![9u8; 13];
        let mut new = old.clone();
        new[8] = 1;
        new[12] = 2;
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(
            out,
            vec![
                ModRun::new(8, vec![1].into()),
                ModRun::new(12, vec![2].into())
            ]
        );
    }

    #[test]
    fn chunked_matches_scalar_on_alternating_pattern() {
        // Equal/diff alternation inside single words — the worst case for
        // word-level skipping logic.
        let old: Vec<u8> = (0..64).map(|i| (i % 7) as u8).collect();
        let mut new = old.clone();
        for i in (0..64).step_by(2) {
            new[i] ^= 0x55;
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        diff_page(0, &old, &new, &mut a);
        diff_page_scalar(0, &old, &new, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn coalescing_merges_across_small_gaps() {
        let old = vec![0u8; 64];
        let mut new = old.clone();
        new[10] = 1;
        new[14] = 2; // gap of 3 unchanged bytes (11..14)
        new[40] = 3; // gap of 25: never coalesced at threshold 8
        let mut out = Vec::new();
        let outcome = diff_page_opts(0, &old, &new, 8, &mut out);
        assert_eq!(outcome.runs_coalesced, 1);
        assert_eq!(outcome.bytes_scanned, 64);
        assert_eq!(
            out,
            vec![
                ModRun::new(10, vec![1, 0, 0, 0, 2].into()),
                ModRun::new(40, vec![3].into()),
            ]
        );
        // The gap bytes carry the snapshot value — re-applying them onto
        // the snapshot is a no-op (the §4.6-preservation argument).
        assert_eq!(out[0].data[1..4], old[11..14]);
    }

    #[test]
    fn coalescing_off_means_identical_to_scalar() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[1] = 1;
        new[3] = 3;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let outcome = diff_page_opts(0, &old, &new, 0, &mut a);
        diff_page_scalar(0, &old, &new, &mut b);
        assert_eq!(a, b);
        assert_eq!(outcome.runs_coalesced, 0);
    }

    #[test]
    fn coalescing_never_merges_past_threshold() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[0] = 1;
        new[10] = 2; // gap of 9 > threshold 8
        let mut out = Vec::new();
        let outcome = diff_page_opts(0, &old, &new, 8, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(outcome.runs_coalesced, 0);
    }

    #[test]
    fn run_handle_shares_without_copying() {
        let list: RunList = vec![
            ModRun::new(0, vec![1].into()),
            ModRun::new(8, vec![2, 3].into()),
        ]
        .into();
        let h = RunHandle::new(&list, 1);
        assert_eq!(h.addr, 8);
        assert_eq!(h.run().len(), 2);
        let h2 = h.clone();
        // Both handles alias the same backing run storage.
        assert!(std::ptr::eq(h.run(), h2.run()));
        assert_eq!(Arc::strong_count(&list), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn run_handle_rejects_bad_index() {
        let list: RunList = vec![ModRun::new(0, vec![1].into())].into();
        let _ = RunHandle::new(&list, 1);
    }

    #[test]
    fn run_range_shares_a_group_without_copying() {
        let list: RunList = vec![
            ModRun::new(0, vec![1].into()),
            ModRun::new(8, vec![2, 3].into()),
            ModRun::new(4096, vec![4].into()),
        ]
        .into();
        let r = RunRange::new(&list, 0, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.byte_len(), 3);
        assert!(!r.is_empty());
        // One Arc bump covers the whole group; runs alias the list storage.
        assert_eq!(Arc::strong_count(&list), 2);
        assert!(std::ptr::eq(&list[0], &r.runs()[0]));
        assert!(std::ptr::eq(&list[1], &r.runs()[1]));
    }

    #[test]
    #[should_panic(expected = "invalid for list")]
    fn run_range_rejects_empty_range() {
        let list: RunList = vec![ModRun::new(0, vec![1].into())].into();
        let _ = RunRange::new(&list, 1, 1);
    }

    #[test]
    #[should_panic(expected = "invalid for list")]
    fn run_range_rejects_out_of_bounds() {
        let list: RunList = vec![ModRun::new(0, vec![1].into())].into();
        let _ = RunRange::new(&list, 0, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "empty ModRun")]
    fn empty_run_is_rejected() {
        let _ = ModRun::new(0, Vec::new().into());
    }
}
