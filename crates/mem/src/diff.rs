//! Byte-granularity page diffing (paper §4.2 "Monitoring Memory
//! Modifications" and §4.6 "Correctness of Page Diffing").
//!
//! At the end of each slice, every snapshotted page is compared with its
//! current contents byte-by-byte; runs of differing bytes become
//! [`ModRun`]s. A byte overwritten with the *same* value produces no run —
//! that is load-bearing: it implements the paper's
//! "prefer local writes when the remote write is redundant" conflict
//! policy (§4.6), and the modification granularity of one byte matches the
//! smallest C++ scalar.

use rfdet_api::Addr;

/// A contiguous run of modified bytes: "a write of the value `data` to
/// address `addr`" generalized to a run for compactness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModRun {
    /// First modified address.
    pub addr: Addr,
    /// The new bytes.
    pub data: Box<[u8]>,
}

impl ModRun {
    /// Creates a run.
    #[must_use]
    pub fn new(addr: Addr, data: Box<[u8]>) -> Self {
        Self { addr, data }
    }

    /// Number of modified bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: empty runs are never constructed by diffing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Approximate heap bytes consumed by this run (metadata accounting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.data.len() + std::mem::size_of::<Self>()
    }

    /// The exclusive end address of the run.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.addr + self.data.len() as u64
    }
}

/// Diffs one page against its snapshot, appending runs of changed bytes to
/// `out`. `page_base` is the logical address of byte 0 of the page.
pub fn diff_page(page_base: Addr, snapshot: &[u8], current: &[u8], out: &mut Vec<ModRun>) {
    assert_eq!(snapshot.len(), current.len(), "snapshot/page size mismatch");
    let mut i = 0;
    let n = current.len();
    while i < n {
        if snapshot[i] == current[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && snapshot[i] != current[i] {
            i += 1;
        }
        out.push(ModRun::new(
            page_base + start as u64,
            current[start..i].into(),
        ));
    }
}

/// Total modified bytes across `runs`.
#[must_use]
pub fn runs_len(runs: &[ModRun]) -> usize {
    runs.iter().map(ModRun::len).sum()
}

/// Total heap footprint of `runs` (metadata accounting).
#[must_use]
pub fn runs_heap_bytes(runs: &[ModRun]) -> usize {
    runs.iter().map(ModRun::heap_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_pages_produce_no_runs() {
        let a = vec![7u8; 128];
        let mut out = Vec::new();
        diff_page(0, &a, &a, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_byte_change() {
        let old = vec![0u8; 64];
        let mut new = old.clone();
        new[10] = 5;
        let mut out = Vec::new();
        diff_page(4096, &old, &new, &mut out);
        assert_eq!(out, vec![ModRun::new(4106, vec![5].into())]);
    }

    #[test]
    fn adjacent_changes_coalesce_into_one_run() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[4] = 1;
        new[5] = 2;
        new[6] = 3;
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(out, vec![ModRun::new(4, vec![1, 2, 3].into())]);
    }

    #[test]
    fn separated_changes_become_separate_runs() {
        let old = vec![0u8; 32];
        let mut new = old.clone();
        new[0] = 1;
        new[31] = 9;
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(
            out,
            vec![
                ModRun::new(0, vec![1].into()),
                ModRun::new(31, vec![9].into())
            ]
        );
    }

    #[test]
    fn redundant_write_is_invisible() {
        // x == 0, slice executes x = 0: no modification is recorded.
        // §4.6 argues this is both deterministic and semantically correct.
        let old = vec![0u8; 16];
        let new = old.clone();
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn byte_granularity_split_write() {
        // A 32-bit store where only two of four bytes changed produces
        // runs covering exactly the changed bytes.
        let mut old = vec![0u8; 8];
        old[0] = 0xFF; // low byte already 0xFF
        let mut new = old.clone();
        // write 0x0000_01FF over bytes 0..4: byte0 unchanged, byte1 becomes 1
        new[1] = 0x01;
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(out, vec![ModRun::new(1, vec![1].into())]);
    }

    #[test]
    fn runs_len_and_heap_bytes() {
        let runs = vec![
            ModRun::new(0, vec![1, 2].into()),
            ModRun::new(9, vec![3].into()),
        ];
        assert_eq!(runs_len(&runs), 3);
        assert!(runs_heap_bytes(&runs) >= 3);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let mut out = Vec::new();
        diff_page(0, &[0; 4], &[0; 8], &mut out);
    }

    #[test]
    fn whole_page_changed() {
        let old = vec![0u8; 64];
        let new = vec![1u8; 64];
        let mut out = Vec::new();
        diff_page(0, &old, &new, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 64);
        assert_eq!(out[0].end(), 64);
    }
}
