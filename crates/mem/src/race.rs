//! Word-granular happens-before race detection over slice accesses.
//!
//! The deterministic backends already know, at propagation/commit time,
//! exactly which bytes every sync-free interval wrote (the diff) and which
//! words it read (the [`ReadTracker`]), and each interval carries a vector
//! clock. Detection is therefore pure bookkeeping on top of machinery
//! that exists anyway: a FastTrack-style table of per-word read/write
//! *epochs* `(tid, clock, sync_op)` checked against each incoming
//! interval's clock with one scalar comparison per epoch
//! (`VClock::includes`).
//!
//! The table requires a key discipline from its caller: intervals must be
//! observed in an order consistent with happens-before (if interval A
//! happens-before interval B, A is observed first). Both deterministic
//! pipelines provide this for free — DLRC applies slices at a thread in
//! propagation order (see `rfdet_core`'s propagation invariants), and the
//! lockstep engines commit in fenced phase order. Under that discipline
//! the check is one-directional: a table entry can never happen-after an
//! incoming interval, so "unordered" reduces to "the incoming clock has
//! not propagated past the entry".
//!
//! Storage is page-indexed like the lazy-write pending table
//! (`crates/mem/src/pending.rs` before it moved to overlays): a map from
//! page index to a dense per-word cell array, materialized only for pages
//! that racy-candidate accesses actually touch.

use crate::diff::ModRun;
use rfdet_api::{AccessKind, Addr, RaceReport, RaceSite};
use rfdet_vclock::{LTime, Tid, VClock};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Detection granularity: one epoch cell per 8-byte machine word, the
/// granularity the paper's compiler instrumentation sees stores at. Two
/// threads touching *different bytes* of one word still report (that is
/// the C11 definition of a conflict at word granularity, and it keeps the
/// table 8× smaller than byte cells); the seeded corpus spaces its
/// fields a word apart so this never manufactures corpus false positives.
pub const WORD_BYTES: u64 = 8;

/// Sentinel tid for "no epoch recorded".
const NO_TID: Tid = Tid::MAX;

/// A maximal run of consecutively-read words: `words` words starting at
/// the word-aligned address `addr`. The read-side analogue of
/// [`ModRun`], sealed out of a [`ReadTracker`] at interval end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadRun {
    /// Word-aligned start address.
    pub addr: Addr,
    /// Number of consecutive words read.
    pub words: u32,
}

/// Per-thread, per-interval read-set tracker: a word-granular bitmap per
/// touched page, pooled so steady-state intervals mark reads without
/// allocating. Off-path by construction — backends only route reads here
/// when detection is on.
#[derive(Debug, Default)]
pub struct ReadTracker {
    /// Page index → one bit per word of the page.
    pages: BTreeMap<u64, Box<[u64]>>,
    pool: Vec<Box<[u64]>>,
}

impl ReadTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the words overlapping `[addr, addr + len)` as read.
    pub fn mark(&mut self, addr: Addr, len: u64, page_size: u64) {
        if len == 0 {
            return;
        }
        let words_per_page = (page_size / WORD_BYTES) as usize;
        let first_word = addr / WORD_BYTES;
        let last_word = (addr + len - 1) / WORD_BYTES;
        for word in first_word..=last_word {
            let page = word * WORD_BYTES / page_size;
            let idx = (word - page * page_size / WORD_BYTES) as usize;
            let bits = self.pages.entry(page).or_insert_with(|| {
                self.pool
                    .pop()
                    .map(|mut b| {
                        b.fill(0);
                        b
                    })
                    .unwrap_or_else(|| vec![0u64; words_per_page.div_ceil(64)].into_boxed_slice())
            });
            bits[idx / 64] |= 1u64 << (idx % 64);
        }
    }

    /// `true` when no read has been marked since the last seal.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Seals the marked set into coalesced word runs (ascending by
    /// address) and resets the tracker, recycling page bitmaps.
    pub fn seal(&mut self, page_size: u64) -> Vec<ReadRun> {
        let mut runs: Vec<ReadRun> = Vec::new();
        for (page, bits) in std::mem::take(&mut self.pages) {
            let base_word = page * page_size / WORD_BYTES;
            for (chunk_idx, &chunk) in bits.iter().enumerate() {
                let mut rest = chunk;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as u64;
                    rest &= rest - 1;
                    let addr = (base_word + chunk_idx as u64 * 64 + bit) * WORD_BYTES;
                    match runs.last_mut() {
                        Some(last) if last.addr + u64::from(last.words) * WORD_BYTES == addr => {
                            last.words += 1;
                        }
                        _ => runs.push(ReadRun { addr, words: 1 }),
                    }
                }
            }
            self.pool.push(bits);
        }
        runs
    }
}

/// One sealed sync-free interval's accesses, as presented to the
/// detector: who, when (the interval's vector clock, stamped *before* the
/// sealing tick, i.e. the clock every access in the interval ran at),
/// the backend-independent sync-op coordinate, and what was touched.
#[derive(Debug)]
pub struct SliceAccess<'a> {
    /// Accessor thread.
    pub tid: Tid,
    /// The interval's vector clock (its start/stamp time).
    pub time: &'a VClock,
    /// Per-thread sync-op index of the operation that sealed the
    /// interval — the cross-backend logical coordinate.
    pub sync_op: u64,
    /// Byte-modification runs (the interval's diff).
    pub writes: &'a [ModRun],
    /// Word-read runs (the interval's sealed read set).
    pub reads: &'a [ReadRun],
}

/// A per-word access epoch.
#[derive(Clone, Copy, Debug)]
struct Epoch {
    tid: Tid,
    clock: LTime,
    sync_op: u64,
}

impl Epoch {
    const NONE: Epoch = Epoch {
        tid: NO_TID,
        clock: 0,
        sync_op: 0,
    };

    fn site(&self, kind: AccessKind) -> RaceSite {
        RaceSite {
            tid: self.tid,
            sync_op: self.sync_op,
            kind,
            clock: self.clock,
        }
    }
}

/// Per-word state: the last write epoch plus every read epoch since that
/// write (one per reader tid — the FastTrack "read-shared" set, exact,
/// not an adaptive scalar, because slices batch many reads anyway).
#[derive(Clone, Debug)]
struct Cell {
    write: Epoch,
    reads: Vec<Epoch>,
}

impl Cell {
    const EMPTY: Cell = Cell {
        write: Epoch::NONE,
        reads: Vec::new(),
    };
}

/// The detector: epoch table + race accumulator with per-pair dedup.
///
/// Reports are deduplicated per `(word, unordered tid pair)` — the first
/// conflicting pair observed wins, later kinds on the same word/pair are
/// suppressed (the FastTrack exception: after a variable's first race,
/// later races on it may be missed; a detector that reported every pair
/// would drown the user for an unsynchronized counter). `finish` sorts
/// canonically so the report list is independent of observation order.
#[derive(Debug)]
pub struct RaceCollector {
    page_size: u64,
    /// Page index → one [`Cell`] per word of the page.
    pages: HashMap<u64, Box<[Cell]>>,
    seen: HashSet<(Addr, Tid, Tid)>,
    reports: Vec<RaceReport>,
    cap: usize,
    truncated: bool,
}

impl RaceCollector {
    /// Maximum retained reports; beyond it, detection keeps updating
    /// epochs (coordinates stay exact) but stops materializing reports.
    pub const DEFAULT_CAP: usize = 4096;

    /// Creates a collector for a space with the given page size.
    #[must_use]
    pub fn new(page_size: u64) -> Self {
        Self {
            page_size,
            pages: HashMap::new(),
            seen: HashSet::new(),
            reports: Vec::new(),
            cap: Self::DEFAULT_CAP,
            truncated: false,
        }
    }

    /// Observes one sealed interval: checks every read and written word
    /// against the table, records races, then installs the interval's
    /// own epochs. Must be called in a happens-before-consistent order
    /// (see module docs).
    pub fn observe(&mut self, a: &SliceAccess<'_>) {
        // Pass 1: reads — check against the last write, then record.
        for run in a.reads {
            for i in 0..u64::from(run.words) {
                let addr = run.addr + i * WORD_BYTES;
                self.observe_word(a, addr, AccessKind::Read);
            }
        }
        // Pass 2: writes — check against the last write and all reads
        // since it, then become the last write (clearing the read set:
        // any later unordered access will conflict with this write
        // anyway, and keeping cells bounded is what makes the table
        // affordable).
        for run in a.writes {
            let first = run.addr / WORD_BYTES;
            let last = (run.end() - 1) / WORD_BYTES;
            for word in first..=last {
                self.observe_word(a, word * WORD_BYTES, AccessKind::Write);
            }
        }
    }

    fn observe_word(&mut self, a: &SliceAccess<'_>, addr: Addr, kind: AccessKind) {
        let words_per_page = (self.page_size / WORD_BYTES) as usize;
        let page = addr / self.page_size;
        let idx = ((addr % self.page_size) / WORD_BYTES) as usize;
        let cell = &mut self
            .pages
            .entry(page)
            .or_insert_with(|| vec![Cell::EMPTY; words_per_page].into_boxed_slice())[idx];

        let me = Epoch {
            tid: a.tid,
            clock: a.time.get(a.tid),
            sync_op: a.sync_op,
        };
        let mut conflicts: Vec<(Epoch, AccessKind)> = Vec::new();
        let w = cell.write;
        if w.tid != NO_TID && w.tid != a.tid && !a.time.includes(w.tid, w.clock) {
            conflicts.push((w, AccessKind::Write));
        }
        if kind == AccessKind::Write {
            // A write also conflicts with unordered *reads*; a read does
            // not (read/read never races), so only writes scan the set.
            // Every conflicting reader is a distinct pair — report each
            // (the per-pair dedup suppresses repeats on later words).
            for r in &cell.reads {
                if r.tid != a.tid && !a.time.includes(r.tid, r.clock) {
                    conflicts.push((*r, AccessKind::Read));
                }
            }
        }
        match kind {
            AccessKind::Read => match cell.reads.iter_mut().find(|r| r.tid == a.tid) {
                Some(slot) => *slot = me,
                None => cell.reads.push(me),
            },
            AccessKind::Write => {
                cell.write = me;
                cell.reads.clear();
            }
        }

        for (prior, prior_kind) in conflicts {
            self.record(
                addr,
                prior.site(prior_kind),
                me.site(kind),
                a.tid,
                prior.tid,
            );
        }
    }

    fn record(&mut self, addr: Addr, prior: RaceSite, current: RaceSite, a: Tid, b: Tid) {
        let pair = (addr, a.min(b), a.max(b));
        if !self.seen.insert(pair) {
            return;
        }
        if self.reports.len() >= self.cap {
            self.truncated = true;
            return;
        }
        let report = RaceReport {
            addr,
            page: addr / self.page_size,
            offset: addr % self.page_size,
            first: prior,
            second: current,
        }
        .canonical();
        self.reports.push(report);
    }

    /// Number of reports recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when nothing has been reported.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// `true` when the report cap was hit (epochs stayed exact, but some
    /// distinct racy pairs were not materialized).
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Seals the collector: reports sorted canonically (address, then
    /// site keys) so the list is independent of observation order.
    #[must_use]
    pub fn finish(mut self) -> Vec<RaceReport> {
        self.reports.sort_by_key(|r| {
            (
                r.addr,
                r.first.tid,
                r.first.sync_op,
                r.second.tid,
                r.second.sync_op,
            )
        });
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 4096;

    fn run(addr: Addr, bytes: &[u8]) -> ModRun {
        ModRun::new(addr, bytes.to_vec().into_boxed_slice())
    }

    fn vc(components: Vec<u64>) -> VClock {
        VClock::from_components(components)
    }

    fn observe(
        c: &mut RaceCollector,
        tid: Tid,
        time: &VClock,
        sync_op: u64,
        writes: &[ModRun],
        reads: &[ReadRun],
    ) {
        c.observe(&SliceAccess {
            tid,
            time,
            sync_op,
            writes,
            reads,
        });
    }

    #[test]
    fn read_tracker_seals_coalesced_word_runs() {
        let mut t = ReadTracker::new();
        assert!(t.is_empty());
        t.mark(16, 4, PAGE); // word 2
        t.mark(24, 8, PAGE); // word 3
        t.mark(100, 1, PAGE); // word 12
        t.mark(PAGE + 8, 16, PAGE); // next page, words 1-2
        assert!(!t.is_empty());
        let runs = t.seal(PAGE);
        assert_eq!(
            runs,
            vec![
                ReadRun { addr: 16, words: 2 },
                ReadRun { addr: 96, words: 1 },
                ReadRun {
                    addr: PAGE + 8,
                    words: 2
                },
            ]
        );
        assert!(t.is_empty(), "seal resets");
        // A straddling read marks both words it overlaps.
        t.mark(14, 4, PAGE); // bytes 14..18: words 1 and 2
        assert_eq!(
            t.seal(PAGE),
            vec![ReadRun { addr: 8, words: 2 }],
            "byte range rounds out to word granularity"
        );
    }

    #[test]
    fn ordered_write_write_is_clean() {
        let mut c = RaceCollector::new(PAGE);
        observe(&mut c, 1, &vc(vec![0, 3]), 1, &[run(64, &[1])], &[]);
        // tid 2 has propagated past tid 1's clock 3: ordered.
        observe(&mut c, 2, &vc(vec![0, 3, 5]), 2, &[run(64, &[2])], &[]);
        assert!(c.finish().is_empty());
    }

    #[test]
    fn concurrent_write_write_races_once_per_pair() {
        let mut c = RaceCollector::new(PAGE);
        observe(&mut c, 1, &vc(vec![0, 3]), 1, &[run(64, &[1, 1])], &[]);
        observe(&mut c, 2, &vc(vec![0, 0, 5]), 2, &[run(64, &[2, 2])], &[]);
        let reports = c.finish();
        assert_eq!(reports.len(), 1, "one word, one pair, one report");
        let r = &reports[0];
        assert_eq!((r.addr, r.page, r.offset), (64, 0, 64));
        assert_eq!((r.first.tid, r.first.sync_op), (1, 1));
        assert_eq!((r.second.tid, r.second.sync_op), (2, 2));
        assert_eq!(r.first.kind, AccessKind::Write);
        assert_eq!(r.second.kind, AccessKind::Write);
    }

    #[test]
    fn concurrent_read_write_races_but_read_read_does_not() {
        let mut c = RaceCollector::new(PAGE);
        let reads = [ReadRun { addr: 64, words: 1 }];
        observe(&mut c, 1, &vc(vec![0, 3]), 1, &[], &reads);
        observe(&mut c, 2, &vc(vec![0, 0, 5]), 2, &[], &reads);
        assert!(c.is_empty(), "read/read never races");
        observe(&mut c, 3, &vc(vec![0, 0, 0, 7]), 3, &[run(64, &[9])], &[]);
        let reports = c.finish();
        assert_eq!(reports.len(), 2, "the write races both concurrent reads");
        assert!(reports
            .iter()
            .all(|r| r.second.kind == AccessKind::Write || r.first.kind == AccessKind::Write));
    }

    #[test]
    fn same_thread_never_races_itself() {
        let mut c = RaceCollector::new(PAGE);
        let reads = [ReadRun { addr: 64, words: 1 }];
        observe(&mut c, 1, &vc(vec![0, 3]), 1, &[run(64, &[1])], &reads);
        // Same thread again, even with a clock that looks unordered.
        observe(&mut c, 1, &vc(vec![0, 9]), 2, &[run(64, &[2])], &reads);
        assert!(c.finish().is_empty());
    }

    #[test]
    fn write_clears_reads_and_becomes_the_epoch() {
        let mut c = RaceCollector::new(PAGE);
        let reads = [ReadRun { addr: 64, words: 1 }];
        observe(&mut c, 1, &vc(vec![0, 3]), 1, &[], &reads);
        // Ordered write after the read: clean, clears the read set.
        observe(&mut c, 2, &vc(vec![0, 3, 5]), 2, &[run(64, &[1])], &[]);
        // Ordered-after-the-write third access: clean (the cleared read
        // set means tid 1's old read is no longer checked — it is
        // dominated by the write that cleared it).
        observe(&mut c, 3, &vc(vec![0, 3, 5, 2]), 3, &[run(64, &[2])], &[]);
        assert!(c.finish().is_empty());
    }

    #[test]
    fn byte_runs_expand_to_every_overlapped_word() {
        let mut c = RaceCollector::new(PAGE);
        // Bytes 6..18 overlap words 0, 1 and 2.
        observe(&mut c, 1, &vc(vec![0, 1]), 1, &[run(6, &[7; 12])], &[]);
        observe(
            &mut c,
            2,
            &vc(vec![0, 0, 1]),
            1,
            &[run(0, &[1]), run(8, &[1]), run(16, &[1])],
            &[],
        );
        assert_eq!(c.finish().len(), 3);
    }

    #[test]
    fn reports_sort_canonically_regardless_of_observation_order() {
        // Symmetric, mutually-unordered accesses: thread n runs at a
        // clock only its own component knows about, with a tid-keyed
        // sync-op coordinate, so both observation orders describe the
        // *same* two accesses.
        let slice_time = |tid: Tid| {
            let mut components = vec![0; 3];
            components[tid as usize] = 5;
            vc(components)
        };
        let build = |flip: bool| {
            let mut c = RaceCollector::new(PAGE);
            let (first, second) = if flip { (2, 1) } else { (1, 2) };
            for tid in [first, second] {
                observe(
                    &mut c,
                    tid,
                    &slice_time(tid),
                    u64::from(tid),
                    &[run(128, &[tid as u8]), run(64, &[tid as u8])],
                    &[],
                );
            }
            c.finish()
        };
        let a = build(false);
        let b = build(true);
        assert_eq!(a.len(), 2);
        assert_eq!(
            a.iter().map(RaceReport::digest).collect::<Vec<_>>(),
            b.iter().map(RaceReport::digest).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cap_truncates_reports_not_epochs() {
        let mut c = RaceCollector::new(PAGE);
        c.cap = 2;
        observe(&mut c, 1, &vc(vec![0, 1]), 1, &[run(0, &[3; 64])], &[]);
        observe(&mut c, 2, &vc(vec![0, 0, 1]), 1, &[run(0, &[4; 64])], &[]);
        assert_eq!(c.len(), 2);
        assert!(c.truncated());
    }
}
