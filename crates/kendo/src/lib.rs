//! Kendo-style deterministic synchronization arbitration (paper §2, §4.1).
//!
//! "A thread is allowed to perform synchronization only if it has executed
//! fewer instructions than all other threads." This crate implements that
//! rule over *logical* instruction counts (the `instrTick` instrumentation
//! of §4.1 — the paper deliberately avoids hardware performance counters
//! because their determinism is unproven).
//!
//! # Protocol
//!
//! Every thread has a *slot* holding a monotone logical clock and a status
//! (`Active`, `Blocked`, `Finished`). A synchronization operation may
//! execute only while its thread is the unique minimum of
//! `(clock, tid)` over all `Active` threads — [`KendoState::wait_for_turn`]
//! blocks until then. The operation runs, mutates whatever deterministic
//! state it needs, and finally calls [`KendoState::release_turn`] (a tick
//! plus, in handoff mode, the successor scan), which releases the turn.
//!
//! *Which* thread runs next is a pure function of the clocks; *how* the
//! next thread finds out is an implementation choice ([`ArbitrationMode`]):
//! either the releasing turn holder computes the successor and hands it a
//! baton (default — one scan per transition, everyone else parks), or every
//! waiter broadcast-scans all slots (the original protocol, kept as the
//! oracle). Both admit the identical turn sequence.
//!
//! # The invariants that make this deterministic
//!
//! 1. Clocks never decrease, and a thread's clock advances only through
//!    its own execution (or a waker's deterministic handoff).
//! 2. While a thread holds the turn it is *strictly* minimal, so turn
//!    bodies are serialized in real time **in `(clock, tid)` order** — the
//!    same order in every run.
//! 3. A blocked thread is reactivated only *inside the turn of the thread
//!    that deterministically causes the wakeup* (unlocker, signaler, last
//!    barrier arriver, exiting joinee), with a new clock strictly greater
//!    than the waker's. The reactivated slot is therefore visible to every
//!    later turn-taker in every run, and the waker stays minimal until its
//!    own tick.
//!
//! Together these give: the sequence of turn bodies, and everything they
//! observe, is a pure function of logical clocks — physical timing only
//! affects *when* things happen, never *what* happens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod jitter;
mod state;

pub use jitter::Jitter;
pub use state::{ArbitrationMode, KendoHandle, KendoState, Status, WakeTap, MAX_THREADS};
