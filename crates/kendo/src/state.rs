//! The arbitration state machine.
//!
//! Two arbitration strategies share one protocol (see
//! [`ArbitrationMode`]):
//!
//! * **Successor handoff** (the default): the turn holder alone computes
//!   the next minimal `(clock, tid)` when it releases the turn and
//!   publishes it in a packed [`AtomicU64`] baton. Waiters check one
//!   uncontended load; non-designated waiters park on their own slot
//!   condvar and are woken by a targeted notify. One O(T) scan per turn
//!   *transition*, by one thread.
//! * **Broadcast spin-scan** (the original protocol, kept as the debug
//!   oracle): every waiter repeatedly runs the O(T) epoch-stable scan,
//!   which costs O(T²) cache-coherence traffic per transition and
//!   collapses once threads oversubscribe the CPUs.
//!
//! Both admit the identical turn sequence — the turn is always granted
//! to the unique minimal `(clock, tid)` over `Active` threads — which
//! the cross-mode tests pin.

use parking_lot::{Condvar, Mutex, RwLock};
use rfdet_vclock::Tid;
use std::sync::atomic::{
    AtomicBool, AtomicU64, AtomicU8, AtomicUsize,
    Ordering::{Acquire, Relaxed, Release, SeqCst},
};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Pads a value to its own cache line so per-thread slots never falsely
/// share one (the only piece of `crossbeam` this crate used; inlined so
/// the workspace builds offline).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        Self { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Thread status in the arbitration protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Participates in turn arbitration; other threads wait for its clock.
    Active = 0,
    /// Physically blocked (on a lock queue, condition variable, join or
    /// barrier); skipped by the minimum computation. May only be set by
    /// the thread itself during its own turn, and cleared by a waker
    /// during *its* turn.
    Blocked = 1,
    /// Exited; never returns to the protocol.
    Finished = 2,
}

impl Status {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Status::Active,
            1 => Status::Blocked,
            2 => Status::Finished,
            _ => unreachable!("invalid status byte"),
        }
    }
}

/// Which turn-arbitration strategy a [`KendoState`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArbitrationMode {
    /// Successor handoff via the packed baton (one scan per transition,
    /// by the releasing thread; everyone else parks).
    #[default]
    Handoff,
    /// Every waiter spin-scans all slots (the original broadcast
    /// protocol, kept as the oracle the handoff path is checked against).
    SpinScan,
}

#[derive(Debug)]
struct Slot {
    clock: CachePadded<AtomicU64>,
    status: CachePadded<AtomicU8>,
    /// Parking support for blocked threads and non-designated
    /// turn-waiters.
    park_lock: Mutex<()>,
    park_cv: Condvar,
}

impl Slot {
    fn new(clock: u64, status: Status) -> Self {
        Self {
            clock: CachePadded::new(AtomicU64::new(clock)),
            status: CachePadded::new(AtomicU8::new(status as u8)),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
        }
    }
}

/// Maximum threads per run: the baton packs the tid into its low byte
/// and reserves `0xFF` for the NONE sentinel.
pub const MAX_THREADS: usize = 255;

/// Baton value meaning "no active thread is designated" (terminal:
/// every registered thread is blocked or finished). Its low byte is
/// `0xFF`, which no valid tid can match.
const BATON_NONE: u64 = u64::MAX;

#[inline]
fn pack(clock: u64, tid: Tid) -> u64 {
    debug_assert!(clock < 1 << 56, "kendo clock overflows the baton");
    (clock << 8) | u64::from(tid) & 0xFF
}

#[inline]
fn baton_tid(b: u64) -> Tid {
    (b & 0xFF) as Tid
}

#[inline]
fn baton_clock(b: u64) -> u64 {
    b >> 8
}

/// `RFDET_KENDO_TRACE` looked up once per process — the wait loop used
/// to call `env::var_os` every 1000 spins.
fn kendo_trace_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var_os("RFDET_KENDO_TRACE").is_some())
}

/// Grow-only lock-free slot table: a fixed array of `OnceLock` cells
/// plus a published length. Readers on the hot path (`has_turn`, the
/// handoff scan, `status_of`, `finish_forced`) take no lock at all;
/// writers (`register`) are serialized by the registration mutex and
/// publish the new length with `Release` so a reader that observes index
/// `i` also observes slot `i` initialized.
struct SlotTable {
    slots: Box<[OnceLock<Arc<Slot>>]>,
    len: AtomicUsize,
}

impl SlotTable {
    fn new() -> Self {
        Self {
            slots: (0..MAX_THREADS).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len.load(Acquire)
    }

    /// Appends a slot; caller must hold the registration lock.
    fn push(&self, slot: Arc<Slot>) -> usize {
        let i = self.len.load(Acquire);
        assert!(i < MAX_THREADS, "kendo: more than {MAX_THREADS} threads");
        assert!(self.slots[i].set(slot).is_ok(), "slot {i} registered twice");
        self.len.store(i + 1, Release);
        i
    }

    #[inline]
    fn get(&self, i: usize) -> &Arc<Slot> {
        self.slots[i]
            .get()
            .expect("slot index past registered length")
    }

    #[inline]
    fn iter(&self) -> impl Iterator<Item = (usize, &Arc<Slot>)> {
        (0..self.len()).map(move |i| (i, self.get(i)))
    }
}

/// A thread's cached handle to its own slot (keeps the hot `tick` path to
/// one uncontended atomic add).
#[derive(Clone, Debug)]
pub struct KendoHandle {
    slot: Arc<Slot>,
    tid: Tid,
}

impl KendoHandle {
    /// The thread this handle belongs to.
    #[must_use]
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Advances this thread's logical clock by `n`.
    #[inline]
    pub fn tick(&self, n: u64) {
        self.slot.clock.fetch_add(n, SeqCst);
    }

    /// This thread's current logical clock.
    #[inline]
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.slot.clock.load(SeqCst)
    }
}

/// How aggressively waiters spin before parking (see
/// `KendoState::spin_tier`). Purely a wall-clock policy: affects *when*
/// a waiter sleeps, never *which* thread is admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SpinTier {
    /// Threads ≤ CPUs: long yield phases, parking is the exception.
    Dedicated,
    /// Mild oversubscription (≤ 8×): short yield phases.
    Shared,
    /// Heavy oversubscription (≥ 8×): park right after the inline spin.
    Saturated,
}

/// Observer of deterministic wakeups, set by the runtime's flight
/// recorder: called with `(woken tid, its new clock)` from inside the
/// waker's turn — a deterministic point of the schedule, which is what
/// makes wake events recordable at all.
pub type WakeTap = Box<dyn Fn(Tid, u64) + Send + Sync>;

/// The global arbitration state shared by all threads of one run.
pub struct KendoState {
    slots: SlotTable,
    /// Serializes `register` (a cold path; runtime registrations happen
    /// inside the parent's turn anyway, but tests register freely).
    register_lock: Mutex<()>,
    /// The handoff baton: `(clock << 8) | tid` of the thread currently
    /// designated to hold (or next take) the turn, or [`BATON_NONE`].
    ///
    /// Ownership invariant: only the thread named by the baton may scan
    /// and republish it. While a turn is in progress the baton holds the
    /// holder's `(arrival clock, tid)`; the holder's release tick makes
    /// that pair stale against its own clock, and the holder then runs
    /// the successor scan and hands the baton off. Scans are sound
    /// without an epoch guard because status changes (block, wake,
    /// finish, register) happen only inside turns — which cannot run
    /// concurrently with the unique baton owner's scan — and clocks are
    /// monotone, so an observed minimum stays a minimum.
    baton: CachePadded<AtomicU64>,
    mode: ArbitrationMode,
    /// How long a parked thread waits between deadlock scans.
    deadlock_after: Option<Duration>,
    /// Period of a parked thread's idle re-check (condvar wait timeout
    /// and idle-callback cadence). Purely a liveness/latency knob: the
    /// wakeups themselves are deterministic.
    idle_poll: Duration,
    /// Set when some thread panicked: every waiter unwinds instead of
    /// spinning forever on a protocol that will never advance.
    abort: AtomicBool,
    /// Bumped on every non-monotone event (wake, register). The
    /// `has_turn` scan is not atomic; ticks are monotone so stale reads
    /// only make the scan conservative, but a *wake* can re-activate a
    /// blocked thread with a lower clock. Requiring the epoch to be
    /// unchanged across the scan makes a successful scan sound: any
    /// wake that lands after a clean scan must come from a turn-holder
    /// whose clock the scan already saw (and rejected, had it been
    /// smaller).
    wake_epoch: AtomicU64,
    /// Successor scans run (one per turn transition in handoff mode).
    handoff_scans: AtomicU64,
    /// Targeted unparks issued to a designated successor.
    handoff_wakes: AtomicU64,
    /// Times a non-designated turn-waiter gave up spinning and parked.
    turn_parks: AtomicU64,
    /// Host parallelism, read once at construction. Purely a spin-length
    /// hint: when registered threads exceed it, waiters shorten their
    /// yield phases and park early — a runnable waiter on an
    /// oversubscribed host steals quanta from the turn holder, so the
    /// yield storm costs more than the condvar round trip it avoids.
    /// Never consulted for any scheduling *decision*.
    cpus: usize,
    /// Flight-recorder wake observer. Cold: read under an uncontended
    /// `RwLock` only on the wake path (already a slow path), `None` when
    /// recording is off.
    wake_tap: RwLock<Option<WakeTap>>,
}

impl std::fmt::Debug for KendoState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KendoState")
            .field("threads", &self.num_threads())
            .field("mode", &self.mode)
            .field("deadlock_after", &self.deadlock_after)
            .field("aborted", &self.aborted())
            .field("state", &self.debug_state())
            .finish_non_exhaustive()
    }
}

impl Default for KendoState {
    fn default() -> Self {
        Self::new()
    }
}

impl KendoState {
    /// Creates an empty arbitration state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: SlotTable::new(),
            register_lock: Mutex::new(()),
            baton: CachePadded::new(AtomicU64::new(BATON_NONE)),
            mode: ArbitrationMode::Handoff,
            deadlock_after: Some(Duration::from_secs(30)),
            idle_poll: Duration::from_millis(20),
            abort: AtomicBool::new(false),
            wake_epoch: AtomicU64::new(0),
            handoff_scans: AtomicU64::new(0),
            handoff_wakes: AtomicU64::new(0),
            turn_parks: AtomicU64::new(0),
            cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            wake_tap: RwLock::new(None),
        }
    }

    /// Spin-length tier, from the registered-threads : host-CPUs ratio.
    /// Spinning is a latency win only while the spinner does not steal
    /// the quantum the waker needs; the more oversubscribed the host,
    /// the sooner a waiter should be off the run queue. Thresholds
    /// measured on the reference host (see DESIGN.md §4.10): at 8×
    /// oversubscription any yield phase costs 30-50% wall time on the
    /// contended benches, while at 2-4× a short yield phase still beats
    /// the condvar round trip.
    fn spin_tier(&self) -> SpinTier {
        let t = self.slots.len();
        if t >= 8 * self.cpus {
            SpinTier::Saturated
        } else if t > self.cpus {
            SpinTier::Shared
        } else {
            SpinTier::Dedicated
        }
    }

    /// Installs the wake observer (see [`WakeTap`]). The runtime sets
    /// this once at run start, before any thread can wake another.
    pub fn set_wake_tap(&self, tap: WakeTap) {
        *self.wake_tap.write() = Some(tap);
    }

    /// Aborts the run: all threads waiting in [`KendoState::wait_for_turn`]
    /// or [`KendoState::park_until_active`] panic promptly. Used to
    /// propagate a panic out of one thread without deadlocking the rest.
    pub fn set_abort(&self) {
        self.abort.store(true, SeqCst);
        // Kick every parked thread — blocked parkers and turn-waiters
        // alike share the slot condvar — so they observe the flag.
        for (_, slot) in self.slots.iter() {
            let _guard = slot.park_lock.lock();
            slot.park_cv.notify_all();
        }
    }

    /// `true` once the run has been aborted.
    #[must_use]
    pub fn aborted(&self) -> bool {
        self.abort.load(SeqCst)
    }

    fn check_abort(&self) {
        assert!(
            !self.aborted(),
            "kendo: run aborted by supervisor (peer panic, deadlock, or wedge)"
        );
    }

    /// Overrides the deadlock-detection timeout (`None` disables it).
    #[must_use]
    pub fn with_deadlock_timeout(mut self, t: Option<Duration>) -> Self {
        self.deadlock_after = t;
        self
    }

    /// Overrides the parked-thread idle re-check period (clamped to
    /// ≥ 1 ms so a degenerate knob cannot turn parks into spins).
    #[must_use]
    pub fn with_idle_poll(mut self, period: Duration) -> Self {
        self.idle_poll = period.max(Duration::from_millis(1));
        self
    }

    /// Selects the arbitration strategy (default: [`ArbitrationMode::Handoff`]).
    #[must_use]
    pub fn with_arbitration(mut self, mode: ArbitrationMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active arbitration strategy.
    #[must_use]
    pub fn arbitration(&self) -> ArbitrationMode {
        self.mode
    }

    /// Handoff-protocol counters: `(successor scans, targeted unparks,
    /// turn-waiter parks)`. All zero in spin-scan mode.
    #[must_use]
    pub fn handoff_counters(&self) -> (u64, u64, u64) {
        (
            self.handoff_scans.load(Relaxed),
            self.handoff_wakes.load(Relaxed),
            self.turn_parks.load(Relaxed),
        )
    }

    /// Epoch-stable stable-deadlock scan: `Some(blocked tids)` iff at
    /// least one registered thread is `Blocked` and **every** registered,
    /// non-`Finished` thread is `Blocked` — verified with `wake_epoch`
    /// unchanged across the scan, exactly like `has_turn`.
    ///
    /// Why a clean scan proves a *stable* deadlock: a `Blocked` thread
    /// never wakes another thread (wakes happen only inside a waker's
    /// turn, and only `Active` threads take turns), so once every live
    /// thread is observed `Blocked` under one epoch, no future wake can
    /// originate inside the run. The state is permanent — no wall clock
    /// needed. A mid-scan register or wake bumps the epoch and the scan
    /// reports `None` (caller retries later).
    #[must_use]
    pub fn blocked_snapshot(&self) -> Option<Vec<Tid>> {
        let epoch_before = self.wake_epoch.load(SeqCst);
        let mut blocked = Vec::new();
        for (i, s) in self.slots.iter() {
            match Status::from_u8(s.status.load(SeqCst)) {
                Status::Active => return None,
                Status::Blocked => blocked.push(i as Tid),
                Status::Finished => {}
            }
        }
        if blocked.is_empty() || self.wake_epoch.load(SeqCst) != epoch_before {
            return None;
        }
        Some(blocked)
    }

    /// Registers the next thread with an initial clock and returns its
    /// slot handle. Thread IDs are dense and sequential; callers must
    /// invoke this under a deterministic order (inside the parent's turn).
    pub fn register(&self, initial_clock: u64) -> KendoHandle {
        let guard = self.register_lock.lock();
        let slot = Arc::new(Slot::new(initial_clock, Status::Active));
        let tid = self.slots.push(Arc::clone(&slot)) as Tid;
        // Seed or lower the baton when the newcomer is the minimum. A
        // runtime registration happens inside the parent's turn, where
        // the child's clock (parent + 1) can never undercut the holder's
        // baton pair — so this fires only for the first thread and for
        // pre-run test registration, where no turn is in progress and
        // re-aiming the baton at the true minimum is exactly right.
        let packed = pack(initial_clock, tid);
        if packed < self.baton.load(SeqCst) {
            self.baton.store(packed, SeqCst);
        }
        drop(guard);
        self.wake_epoch.fetch_add(1, SeqCst);
        KendoHandle { slot, tid }
    }

    /// Number of registered threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.slots.len()
    }

    /// A thread's current clock.
    #[must_use]
    pub fn clock_of(&self, tid: Tid) -> u64 {
        self.slots.get(tid as usize).clock.load(SeqCst)
    }

    /// A thread's current status.
    #[must_use]
    pub fn status_of(&self, tid: Tid) -> Status {
        Status::from_u8(self.slots.get(tid as usize).status.load(SeqCst))
    }

    /// `true` iff `(clock, tid)` is minimal over all `Active` threads —
    /// verified by an epoch-stable scan (see `wake_epoch`). This is the
    /// spin-scan arbitration predicate, retained in handoff mode as the
    /// debug oracle the baton grant is checked against.
    fn has_turn(&self, me: &KendoHandle) -> bool {
        let epoch_before = self.wake_epoch.load(SeqCst);
        let my_clock = me.clock();
        for (i, s) in self.slots.iter() {
            if i as Tid == me.tid {
                continue;
            }
            if Status::from_u8(s.status.load(SeqCst)) != Status::Active {
                continue;
            }
            let c = s.clock.load(SeqCst);
            if (c, i as Tid) < (my_clock, me.tid) {
                return false;
            }
        }
        // A wake or register slipped in mid-scan: the snapshot may be
        // inconsistent (a thread observed Blocked may now be Active with
        // a smaller clock). Retry.
        self.wake_epoch.load(SeqCst) == epoch_before
    }

    /// The successor scan: one O(T) pass over the slot table computing
    /// the minimal `(clock, tid)` over `Active` threads, published into
    /// the baton. Returns `true` iff the caller itself is the minimum
    /// (it then holds the turn); otherwise the designated successor is
    /// unparked with a targeted notify.
    ///
    /// Soundness: only the baton owner calls this, so no turn body — and
    /// therefore no block/wake/finish/register — runs concurrently.
    /// Statuses are frozen for the duration of the scan and clocks only
    /// grow, so the observed minimum is the true minimum at publication
    /// time. (A designated thread that ticks past the observed clock
    /// before reading the baton sees the stale pair, becomes the unique
    /// scanner by the same ownership rule, and repairs the designation.)
    fn scan_and_publish(&self, me: &KendoHandle) -> bool {
        self.handoff_scans.fetch_add(1, Relaxed);
        let mut best: Option<(u64, Tid)> = None;
        for (i, s) in self.slots.iter() {
            if Status::from_u8(s.status.load(SeqCst)) != Status::Active {
                continue;
            }
            let cand = (s.clock.load(SeqCst), i as Tid);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        match best {
            None => {
                // Terminal: everyone blocked or finished. Parked blocked
                // threads own deadlock detection from here.
                self.baton.store(BATON_NONE, SeqCst);
                false
            }
            Some((clock, tid)) => {
                // Publish before the notify: a parker re-checks the baton
                // under its own park lock before sleeping, so the store →
                // lock → notify order makes lost wakeups impossible.
                self.baton.store(pack(clock, tid), SeqCst);
                if tid == me.tid {
                    return true;
                }
                let slot = self.slots.get(tid as usize);
                let _guard = slot.park_lock.lock();
                slot.park_cv.notify_all();
                self.handoff_wakes.fetch_add(1, Relaxed);
                false
            }
        }
    }

    /// Releases the turn after a sync operation: advances the caller's
    /// clock by `n` and, in handoff mode, runs the successor scan. The
    /// caller must hold the turn. (In spin-scan mode the tick alone
    /// releases it — every waiter is scanning.)
    pub fn release_turn(&self, me: &KendoHandle, n: u64) {
        me.tick(n);
        if self.mode == ArbitrationMode::Handoff {
            self.scan_and_publish(me);
        }
    }

    /// Off-turn clock advance with stale-designation repair.
    ///
    /// The paper's §3.1 no-blocking property: a thread that never
    /// synchronizes must not delay threads that do. Under handoff, the
    /// successor scan can designate a compute-bound thread (minimal
    /// clock, `Active`) that is nowhere near the arbiter; if that thread
    /// only ever advanced its clock through the plain [`KendoHandle::tick`],
    /// waiters it has since ticked past would stay parked until it next
    /// entered a sync op — potentially forever. So off-turn ticks route
    /// here: whenever the clock crosses a 64-unit boundary, the thread
    /// checks one baton load and, if it is named with a now-stale clock,
    /// repairs the designation by rescanning.
    ///
    /// Soundness: a stale designation can never be *taken* (admission
    /// requires the baton clock to equal the thread's current clock, and
    /// clocks are monotone), so the named thread is the unique legal
    /// scanner whether it notices in the arbiter or out here. Statuses
    /// still only change inside turn bodies, and no turn body can start
    /// while the baton names this thread, so the scan's frozen-status
    /// argument carries over unchanged.
    ///
    /// Liveness of the amortization: if the designated thread stops
    /// ticking entirely its clock is frozen, so by the admission rule
    /// every waiter must wait for it regardless — no repair could help.
    /// If it keeps ticking, it crosses a boundary within 64 units and
    /// repairs. Wall-clock only: which thread is admitted next is still
    /// exactly the minimal `(clock, tid)`, whenever the scan runs.
    pub fn tick_off_turn(&self, me: &KendoHandle, n: u64) {
        let old = me.slot.clock.fetch_add(n, SeqCst);
        if self.mode != ArbitrationMode::Handoff {
            return;
        }
        let new = old + n;
        if (old >> 6) == (new >> 6) {
            return;
        }
        let b = self.baton.load(SeqCst);
        if b != BATON_NONE && baton_tid(b) == me.tid && baton_clock(b) < new {
            self.scan_and_publish(me);
        }
    }

    /// Blocks until the calling thread holds the turn.
    ///
    /// On return the caller is the unique minimal active thread and stays
    /// so until it ticks; everything it does in between is serialized
    /// against every other turn body, in deterministic order.
    pub fn wait_for_turn(&self, me: &KendoHandle) {
        match self.mode {
            ArbitrationMode::Handoff => self.wait_for_turn_handoff(me),
            ArbitrationMode::SpinScan => self.wait_for_turn_scan(me),
        }
    }

    /// Handoff waiter: one uncontended baton load per check. The
    /// designated successor takes the turn (or repairs a stale
    /// designation); everyone else spins briefly and then parks until
    /// the targeted unpark.
    fn wait_for_turn_handoff(&self, me: &KendoHandle) {
        let start = Instant::now();
        let mut spins: u32 = 0;
        loop {
            // Abort check must precede the fast-path return: a thread
            // that is always the designated leader would otherwise never
            // observe the abort.
            self.check_abort();
            let b = self.baton.load(SeqCst);
            if baton_tid(b) == me.tid {
                let my_clock = me.clock();
                let bc = baton_clock(b);
                if bc == my_clock {
                    debug_assert!(
                        self.has_turn(me),
                        "baton grant disagrees with the scan oracle: t{} clock={} state={}",
                        me.tid,
                        my_clock,
                        self.debug_state()
                    );
                    return;
                }
                // Stale designation: we ticked past the clock the scan
                // observed (off-turn memory ticks). Clock monotonicity
                // means the baton can only lag, never lead.
                debug_assert!(
                    bc < my_clock,
                    "baton clock {bc} ahead of its owner t{} at {my_clock}",
                    me.tid
                );
                // We are the unique baton owner: rescan and either take
                // the turn or hand off to the real minimum.
                if self.scan_and_publish(me) {
                    debug_assert!(self.has_turn(me), "post-rescan grant fails the oracle");
                    return;
                }
                spins = 0;
                continue;
            }
            if b == BATON_NONE {
                // No designated thread, yet we are Active: a state only
                // test harnesses can construct (the runtime's last active
                // thread always republishes before anyone new can wait).
                // Safe to scan — with no turn in progress, statuses are
                // frozen and any published minimum is valid.
                if self.scan_and_publish(me) {
                    return;
                }
            }
            spins += 1;
            // Oversubscribed hosts park almost immediately: the targeted
            // unpark makes spinning pure overhead once the CPUs are full
            // of peers that all want the quantum we are burning.
            let park_after: u32 = match self.spin_tier() {
                SpinTier::Dedicated => 256,
                SpinTier::Shared => 96,
                SpinTier::Saturated => 64,
            };
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < park_after {
                std::thread::yield_now();
            } else {
                // Not designated: park. The successor scan that picks us
                // will publish our exact pair (a parked thread's clock is
                // frozen) and notify our condvar.
                self.park_for_baton(me, start);
                spins = 0;
            }
        }
    }

    /// Parks a non-designated turn-waiter on its own slot condvar until
    /// the baton names it (or the run aborts / the starvation bound
    /// trips). Wakeup sources: the targeted handoff notify, the
    /// `set_abort` sweep, and the `idle_poll` timeout for re-checks.
    fn park_for_baton(&self, me: &KendoHandle, start: Instant) {
        self.turn_parks.fetch_add(1, Relaxed);
        let mut guard = me.slot.park_lock.lock();
        loop {
            self.check_abort();
            if baton_tid(self.baton.load(SeqCst)) == me.tid {
                return;
            }
            me.slot.park_cv.wait_for(&mut guard, self.idle_poll);
            if kendo_trace_enabled() {
                eprintln!(
                    "[kendo-trace] t{} parked for turn at clock {}: {}",
                    me.tid,
                    me.clock(),
                    self.debug_state()
                );
            }
            if let Some(limit) = self.deadlock_after {
                if start.elapsed() > limit {
                    // Abort first so every *other* waiter (parked or
                    // spinning) wakes and unwinds too, instead of only
                    // the thread that noticed.
                    drop(guard);
                    self.set_abort();
                    panic!(
                        "kendo: thread {} starved waiting for its turn for {:?} \
                         (parked; clock={}, state={})",
                        me.tid,
                        limit,
                        me.clock(),
                        self.debug_state()
                    );
                }
            }
        }
    }

    /// The original broadcast waiter: every waiter spin-scans all slots.
    fn wait_for_turn_scan(&self, me: &KendoHandle) {
        let mut spins: u32 = 0;
        let start = Instant::now();
        loop {
            // Abort check must precede the fast-path return: a thread
            // that is always the clock leader (all peers dead or parked)
            // would otherwise never observe the abort and could spin
            // forever on application state nobody will ever publish.
            self.check_abort();
            if self.has_turn(me) {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 4096 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(20));
                if spins.is_multiple_of(1_000) && kendo_trace_enabled() {
                    eprintln!(
                        "[kendo-trace] t{} waiting at clock {}: {}",
                        me.tid,
                        me.clock(),
                        self.debug_state()
                    );
                }
                if let Some(limit) = self.deadlock_after {
                    if start.elapsed() > limit {
                        // Abort first so every *other* waiter (parked or
                        // spinning) wakes and unwinds too, instead of
                        // only the thread that noticed.
                        self.set_abort();
                        panic!(
                            "kendo: thread {} starved waiting for its turn for {:?} \
                             (clock={}, state={})",
                            me.tid,
                            limit,
                            me.clock(),
                            self.debug_state()
                        );
                    }
                }
            }
        }
    }

    /// Marks the calling thread blocked. **Must be called while holding
    /// the turn**, immediately before the final tick of a blocking
    /// operation.
    pub fn block(&self, me: &KendoHandle) {
        debug_assert!(
            self.has_turn(me),
            "block() outside of turn: t{} clock={} state={}",
            me.tid,
            me.clock(),
            self.debug_state()
        );
        me.slot.status.store(Status::Blocked as u8, SeqCst);
    }

    /// Marks the calling thread finished. Must be called while holding
    /// the turn; the turn is implicitly released (finished threads are
    /// skipped by arbitration), so in handoff mode this also runs the
    /// successor scan.
    pub fn finish(&self, me: &KendoHandle) {
        debug_assert!(self.has_turn(me), "finish() outside of turn");
        me.slot.status.store(Status::Finished as u8, SeqCst);
        if self.mode == ArbitrationMode::Handoff {
            self.scan_and_publish(me);
        }
    }

    /// Marks a thread finished without the turn assertion. Only for panic
    /// cleanup after [`KendoState::set_abort`] (no baton repair needed:
    /// every waiter is already unwinding on the abort flag) and for
    /// checkpoint-restore registration of already-dead threads (the
    /// restorer calls [`KendoState::reseed_baton`] afterwards).
    pub fn finish_forced(&self, tid: Tid) {
        self.slots
            .get(tid as usize)
            .status
            .store(Status::Finished as u8, SeqCst);
    }

    /// Re-aims the baton at the true minimal `(clock, tid)` over `Active`
    /// threads (or [`BATON_NONE`] when none remain). For checkpoint
    /// restore, **before the run starts**: `register` seeds the baton
    /// with the minimum over *all* registrations, but restore also
    /// registers already-finished threads (tids must stay dense), and
    /// `finish_forced` never republishes — without the reseed the baton
    /// could name a `Finished` thread forever and the resumed run would
    /// hang at its first turn. Not for concurrent use: no thread may be
    /// waiting yet (no notify is issued).
    pub fn reseed_baton(&self) {
        let mut best: Option<(u64, Tid)> = None;
        for (i, s) in self.slots.iter() {
            if Status::from_u8(s.status.load(SeqCst)) != Status::Active {
                continue;
            }
            let cand = (s.clock.load(SeqCst), i as Tid);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        let packed = best.map_or(BATON_NONE, |(c, t)| pack(c, t));
        self.baton.store(packed, SeqCst);
    }

    /// Reactivates a blocked thread with a deterministic new clock.
    ///
    /// **Must be called from inside the waker's turn**, and `new_clock`
    /// must be strictly greater than the waker's current clock — this
    /// keeps the waker minimal until its own tick and makes the order of
    /// the wakeup deterministic. (The waker's release scan then decides
    /// whether the woken thread is the next successor.)
    pub fn wake(&self, target: Tid, new_clock: u64) {
        let slot = Arc::clone(self.slots.get(target as usize));
        debug_assert_eq!(
            Status::from_u8(slot.status.load(SeqCst)),
            Status::Blocked,
            "wake of a non-blocked thread {target}"
        );
        // Clock first, then status: a concurrent has_turn() that observes
        // Active will also observe the new clock or a larger one.
        slot.clock.store(new_clock, SeqCst);
        {
            let _guard = slot.park_lock.lock();
            slot.status.store(Status::Active as u8, SeqCst);
            slot.park_cv.notify_all();
        }
        self.wake_epoch.fetch_add(1, SeqCst);
        if let Some(tap) = self.wake_tap.read().as_ref() {
            tap(target, new_clock);
        }
    }

    /// Parks the calling thread until some waker flips it back to
    /// `Active`. Call after [`KendoState::block`] + the final tick of the
    /// blocking operation.
    ///
    /// Two-stage wait: a yield-polling stage first — a yielding thread
    /// keeps a tiny vruntime, so the scheduler runs it promptly after the
    /// waker's store even when a compute-bound thread saturates the CPU
    /// (futex wakeups on a loaded single CPU otherwise cost a scheduler
    /// granule per lock handoff, serializing handoff-heavy programs) —
    /// then a condvar sleep for long parks so join-style waits do not
    /// burn cycles.
    pub fn park_until_active(&self, me: &KendoHandle) {
        self.park_until_active_with(me, || {});
    }

    /// [`KendoState::park_until_active`] with an idle callback, invoked
    /// periodically while still parked. RFDet uses this to run prelock
    /// pre-merging off the critical path (§4.5) and to keep a blocked
    /// thread's published clock advancing so it does not pin garbage
    /// collection.
    ///
    /// Returns the number of *idle wakeups*: sleep timeouts (one per
    /// [`KendoState::with_idle_poll`] period) that expired while the
    /// thread was still parked. The metrics layer histograms this so
    /// spurious-wakeup regressions are visible; the count must never
    /// feed back into scheduling.
    pub fn park_until_active_with(&self, me: &KendoHandle, mut on_idle: impl FnMut()) -> u64 {
        let start = Instant::now();
        // Stage 1: poll. Typical lock/condvar handoffs land here; a
        // yielding thread keeps a tiny vruntime so the scheduler runs it
        // promptly after the waker's store even on a saturated CPU. On an
        // oversubscribed host that logic inverts — every yielding blocked
        // thread competes with the waker for the quantum it needs to
        // reach the wake call — so the poll stage is cut short and the
        // condvar (whose waiters cost the waker nothing) carries the wait.
        // Measured on the 1-CPU reference host at 16 threads: any yield
        // phase here costs 30-50% wall time over parking straight after
        // the inline spin (21.8 ms vs 33+ ms on bench-scale
        // propagate-heavy) — each runnable yielder multiplies context
        // switches on the critical wake chain. At 2-4× oversubscription
        // the inversion is partial: a short yield phase still wins over
        // an immediate futex round trip.
        let poll_cap: u32 = match self.spin_tier() {
            SpinTier::Dedicated => 20_000,
            SpinTier::Shared => 192,
            SpinTier::Saturated => 64,
        };
        let mut polls: u32 = 0;
        while Status::from_u8(me.slot.status.load(SeqCst)) != Status::Active {
            self.check_abort();
            polls += 1;
            if polls < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            if polls > poll_cap {
                break; // long park: fall through to sleeping
            }
        }
        // Stage 2: sleep on the slot condvar, doing idle work between
        // timeouts.
        let mut idle_wakeups: u64 = 0;
        let mut guard = me.slot.park_lock.lock();
        let mut next_idle = Instant::now() + self.idle_poll;
        while Status::from_u8(me.slot.status.load(SeqCst)) != Status::Active {
            self.check_abort();
            me.slot.park_cv.wait_for(&mut guard, self.idle_poll);
            if Status::from_u8(me.slot.status.load(SeqCst)) == Status::Active {
                break;
            }
            idle_wakeups += 1;
            if Instant::now() >= next_idle {
                // Run the callback without the park lock so wakers are
                // never blocked on it.
                drop(guard);
                on_idle();
                guard = me.slot.park_lock.lock();
                next_idle = Instant::now() + self.idle_poll;
            }
            if let Some(limit) = self.deadlock_after {
                if start.elapsed() > limit
                    && Status::from_u8(me.slot.status.load(SeqCst)) != Status::Active
                {
                    // Wake-all before unwinding: peers parked on other
                    // slots must not be left behind.
                    drop(guard);
                    self.set_abort();
                    panic!(
                        "kendo: thread {} parked for {:?} without wakeup — \
                         likely an application deadlock (state={})",
                        me.tid,
                        limit,
                        self.debug_state()
                    );
                }
            }
        }
        idle_wakeups
    }

    /// Snapshot of all slots for diagnostics.
    #[must_use]
    pub fn debug_state(&self) -> String {
        let mut s = String::new();
        for (i, slot) in self.slots.iter() {
            use std::fmt::Write;
            let _ = write!(
                s,
                "[t{} {:?}@{}]",
                i,
                Status::from_u8(slot.status.load(SeqCst)),
                slot.clock.load(SeqCst)
            );
        }
        let b = self.baton.load(SeqCst);
        use std::fmt::Write;
        if b == BATON_NONE {
            let _ = write!(s, " baton=none");
        } else {
            let _ = write!(s, " baton=t{}@{}", baton_tid(b), baton_clock(b));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn register_assigns_sequential_tids() {
        let k = KendoState::new();
        assert_eq!(k.register(0).tid(), 0);
        assert_eq!(k.register(1).tid(), 1);
        assert_eq!(k.num_threads(), 2);
    }

    #[test]
    fn tick_and_clock() {
        let k = KendoState::new();
        let h = k.register(5);
        assert_eq!(h.clock(), 5);
        h.tick(3);
        assert_eq!(h.clock(), 8);
        assert_eq!(k.clock_of(0), 8);
    }

    #[test]
    fn single_thread_always_has_turn() {
        let k = KendoState::new();
        let h = k.register(0);
        k.wait_for_turn(&h); // returns immediately
        k.release_turn(&h, 1);
        k.wait_for_turn(&h);
    }

    #[test]
    fn lower_clock_wins_tie_by_tid() {
        let k = KendoState::new();
        let a = k.register(10);
        let b = k.register(10);
        // Equal clocks: tid 0 is minimal.
        assert!(k.has_turn(&a));
        assert!(!k.has_turn(&b));
        a.tick(1);
        assert!(k.has_turn(&b));
        assert!(!k.has_turn(&a));
    }

    #[test]
    fn blocked_threads_are_skipped() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(100);
        assert!(!k.has_turn(&b));
        k.block(&a); // a has the turn (clock 0) and blocks itself
        assert!(k.has_turn(&b));
    }

    #[test]
    fn finished_threads_are_skipped() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(100);
        k.finish(&a);
        assert!(k.has_turn(&b));
    }

    #[test]
    fn finish_hands_the_baton_to_the_survivor() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(100);
        k.finish(&a);
        // The successor scan must have designated b: its wait returns
        // without any other thread running.
        k.wait_for_turn(&b);
    }

    #[test]
    fn release_turn_designates_the_next_minimum() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(3);
        k.wait_for_turn(&a);
        k.release_turn(&a, 5); // a: 0 -> 5; b (3) is now minimal
        k.wait_for_turn(&b);
        k.release_turn(&b, 5); // b: 3 -> 8; a (5) minimal again
        k.wait_for_turn(&a);
        let (scans, _, _) = k.handoff_counters();
        assert!(scans >= 2, "each release runs one successor scan");
    }

    #[test]
    fn stale_designation_is_repaired_by_the_owner() {
        let k = Arc::new(KendoState::new());
        let a = k.register(0);
        let b = k.register(3);
        k.wait_for_turn(&a);
        k.release_turn(&a, 1); // a: 0 -> 1, still minimal: baton = (1, a)
        a.tick(10); // off-turn ticks make the designation stale (a=11 > b=3)
        let k2 = Arc::clone(&k);
        let t = std::thread::spawn(move || {
            // Stranded on the stale baton until the owner's next wait
            // repairs the designation — the runtime analogue is the
            // holder's next sync op.
            k2.wait_for_turn(&b);
            k2.release_turn(&b, 20); // b: 3 -> 23; a (11) minimal again
        });
        k.wait_for_turn(&a); // owner rescans, hands off to b, then waits
        t.join().unwrap();
    }

    #[test]
    fn wake_restores_participation_with_new_clock() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(50);
        k.block(&a);
        assert!(k.has_turn(&b));
        k.wake(0, 60);
        assert_eq!(k.clock_of(0), 60);
        assert_eq!(k.status_of(0), Status::Active);
        assert!(k.has_turn(&b), "b (50) still beats rewoken a (60)");
        b.tick(11);
        assert!(k.has_turn(&a));
    }

    #[test]
    fn park_returns_after_wake() {
        let k = Arc::new(KendoState::new());
        let a = k.register(0);
        let _b = k.register(10);
        k.block(&a);
        let k2 = Arc::clone(&k);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            k2.wake(0, 42);
        });
        k.park_until_active(&a);
        assert_eq!(a.clock(), 42);
        waker.join().unwrap();
    }

    #[test]
    fn idle_poll_knob_counts_idle_wakeups() {
        let k = Arc::new(KendoState::new().with_idle_poll(Duration::from_millis(5)));
        let a = k.register(0);
        let _b = k.register(10);
        k.block(&a);
        let k2 = Arc::clone(&k);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            k2.wake(0, 42);
        });
        let idles = k.park_until_active_with(&a, || {});
        waker.join().unwrap();
        assert_eq!(a.clock(), 42);
        assert!(
            idles >= 1,
            "a 200 ms park polling every 5 ms must observe idle wakeups, got {idles}"
        );
    }

    #[test]
    fn degenerate_idle_poll_clamps_to_one_ms() {
        let k = KendoState::new().with_idle_poll(Duration::ZERO);
        assert_eq!(k.idle_poll, Duration::from_millis(1));
    }

    /// N threads each take `rounds` turns appending their tid, ticking by
    /// a schedule-determined amount; returns the admission order.
    fn contended_order(k: Arc<KendoState>, n: u64, rounds: u64) -> Vec<Tid> {
        let order = Arc::new(Mutex::new(Vec::new()));
        let started = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let k = Arc::clone(&k);
                let order = Arc::clone(&order);
                let started = Arc::clone(&started);
                let h = k.register(0);
                std::thread::spawn(move || {
                    started.fetch_add(1, SeqCst);
                    while started.load(SeqCst) < n as usize {
                        std::hint::spin_loop();
                    }
                    for round in 0..rounds {
                        k.wait_for_turn(&h);
                        order.lock().push(h.tid());
                        // Uneven, deterministic progress per thread.
                        k.release_turn(&h, 1 + (i + round) % 3);
                    }
                    k.wait_for_turn(&h);
                    k.finish(&h);
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        Arc::try_unwrap(order).unwrap().into_inner()
    }

    #[test]
    fn turn_order_is_deterministic_under_contention() {
        let run = || contended_order(Arc::new(KendoState::new()), 4, 50);
        let a = run();
        let b = run();
        let c = run();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn handoff_admits_the_same_turn_sequence_as_the_scan_oracle() {
        // The cross-mode pin: for several thread counts, the successor
        // handoff must admit exactly the order the broadcast scan does.
        for n in [2u64, 4, 8] {
            let rounds = 30;
            let handoff = contended_order(
                Arc::new(KendoState::new().with_arbitration(ArbitrationMode::Handoff)),
                n,
                rounds,
            );
            let scan = contended_order(
                Arc::new(KendoState::new().with_arbitration(ArbitrationMode::SpinScan)),
                n,
                rounds,
            );
            assert_eq!(handoff, scan, "mode divergence at {n} threads");
            assert_eq!(handoff.len() as u64, n * rounds);
        }
    }

    #[test]
    fn parked_turn_waiter_observes_abort() {
        let k = Arc::new(KendoState::new().with_deadlock_timeout(None));
        let _a = k.register(0); // designated leader; never progresses
        let b = k.register(10);
        let k2 = Arc::clone(&k);
        let waiter = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k2.wait_for_turn(&b))).is_err()
        });
        // Give b time to pass the spin stage and park on its condvar.
        std::thread::sleep(Duration::from_millis(50));
        let (_, _, parks) = k.handoff_counters();
        assert!(parks >= 1, "non-designated waiter must park, not spin");
        k.set_abort();
        assert!(
            waiter.join().unwrap(),
            "abort must unwind a parked turn-waiter"
        );
    }

    #[test]
    fn wake_tap_observes_wakes_inside_the_waker_turn() {
        let k = KendoState::new();
        let a = k.register(0);
        let _b = k.register(50);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        k.set_wake_tap(Box::new(move |tid, clock| seen2.lock().push((tid, clock))));
        k.block(&a);
        k.wake(0, 60);
        assert_eq!(*seen.lock(), vec![(0, 60)]);
        assert_eq!(a.clock(), 60, "tap observation does not perturb the wake");
    }

    #[test]
    fn blocked_snapshot_only_when_every_live_thread_is_blocked() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(1);
        assert!(k.blocked_snapshot().is_none(), "both threads active");
        k.block(&a);
        assert!(k.blocked_snapshot().is_none(), "b still active");
        k.block(&b);
        assert_eq!(k.blocked_snapshot(), Some(vec![0, 1]));
    }

    #[test]
    fn blocked_snapshot_skips_finished_threads() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(1);
        k.block(&a);
        k.finish(&b);
        assert_eq!(k.blocked_snapshot(), Some(vec![0]));
    }

    #[test]
    fn blocked_snapshot_none_when_all_finished_or_empty() {
        let k = KendoState::new();
        assert!(k.blocked_snapshot().is_none());
        let a = k.register(0);
        k.finish(&a);
        assert!(k.blocked_snapshot().is_none());
    }

    #[test]
    fn timeout_aborts_the_whole_run_not_just_the_scanner() {
        let k = Arc::new(KendoState::new().with_deadlock_timeout(Some(Duration::from_millis(100))));
        let _a = k.register(10); // minimal active thread; never progresses
        let b = k.register(10); // loses the tid tie-break: starves
        let c = k.register(0); // will park
        k.block(&c); // c holds the turn (clock 0) and blocks itself
        let k2 = Arc::clone(&k);
        let starved = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k2.wait_for_turn(&b))).is_err()
        });
        // b's starvation timeout must flip the global abort so c — parked
        // on a different slot, with no wakeup ever coming — unwinds too.
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k.park_until_active(&c)));
        assert!(res.is_err(), "abort must reach parked peers");
        assert!(k.aborted());
        assert!(starved.join().unwrap());
    }

    #[test]
    #[should_panic(expected = "starved")]
    fn starvation_detector_fires() {
        let k = KendoState::new().with_deadlock_timeout(Some(Duration::from_millis(150)));
        let _a = k.register(0); // never ticks, never blocked
        let b = k.register(10);
        k.wait_for_turn(&b); // can never win
    }

    #[test]
    #[should_panic(expected = "starved")]
    fn starvation_detector_fires_in_spin_scan_mode() {
        let k = KendoState::new()
            .with_arbitration(ArbitrationMode::SpinScan)
            .with_deadlock_timeout(Some(Duration::from_millis(150)));
        let _a = k.register(0);
        let b = k.register(10);
        k.wait_for_turn(&b);
    }

    /// §3.1 repair: a compute-bound thread that the successor scan
    /// designated (minimal clock, never entering the arbiter) must hand
    /// the baton onward from its off-turn ticks once it passes the
    /// waiter — without this, the waiter parks until the compute
    /// thread's next sync op, which may be arbitrarily far away.
    #[test]
    fn off_turn_ticks_repair_stale_designation() {
        let k = Arc::new(KendoState::new().with_deadlock_timeout(Some(Duration::from_secs(30))));
        let a = k.register(0);
        let compute = k.register(0);
        // a takes and releases its turn; the scan designates `compute`
        // (clock 0 beats a's post-release clock).
        k.wait_for_turn(&a);
        k.release_turn(&a, 1);
        assert_eq!(baton_tid(k.baton.load(SeqCst)), compute.tid());
        let k2 = Arc::clone(&k);
        let (tx, rx) = std::sync::mpsc::channel();
        let waiter = std::thread::spawn(move || {
            // Parks: the baton names `compute`, whose clock is below a's.
            k2.wait_for_turn(&a);
            tx.send(()).unwrap();
        });
        // The compute thread never calls wait_for_turn; its off-turn
        // ticks alone must republish the baton to `a` once they cross a
        // 64-unit boundary past a's clock.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            k.tick_off_turn(&compute, 64);
            match rx.try_recv() {
                Ok(()) => break,
                Err(_) => assert!(Instant::now() < deadline, "waiter still parked"),
            }
            std::thread::yield_now();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn reseed_baton_skips_finished_registrations() {
        // Restore registers dead threads too (dense tids); the baton may
        // then name a Finished thread. Reseed must re-aim it at the live
        // minimum.
        let k = KendoState::new();
        let dead = k.register(0);
        let live = k.register(7);
        k.finish_forced(dead.tid());
        assert_eq!(baton_tid(k.baton.load(SeqCst)), dead.tid(), "stale seed");
        k.reseed_baton();
        assert_eq!(baton_tid(k.baton.load(SeqCst)), live.tid());
        k.wait_for_turn(&live); // returns: the designation is repaired
    }

    #[test]
    fn reseed_baton_with_no_active_threads_is_none() {
        let k = KendoState::new();
        let a = k.register(0);
        k.finish_forced(a.tid());
        k.reseed_baton();
        assert_eq!(k.baton.load(SeqCst), BATON_NONE);
    }

    #[test]
    fn baton_packing_round_trips() {
        let b = pack(123_456, 17);
        assert_eq!(baton_tid(b), 17);
        assert_eq!(baton_clock(b), 123_456);
        // Tuple order is preserved by integer order on the packed form.
        assert!(pack(5, 0) < pack(5, 1));
        assert!(pack(5, 200) < pack(6, 0));
        assert!(pack(6, 0) < BATON_NONE);
    }
}
