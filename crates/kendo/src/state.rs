//! The arbitration state machine.

use parking_lot::{Condvar, Mutex, RwLock};
use rfdet_vclock::Tid;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pads a value to its own cache line so per-thread slots never falsely
/// share one (the only piece of `crossbeam` this crate used; inlined so
/// the workspace builds offline).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        Self { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Thread status in the arbitration protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Participates in turn arbitration; other threads wait for its clock.
    Active = 0,
    /// Physically blocked (on a lock queue, condition variable, join or
    /// barrier); skipped by the minimum computation. May only be set by
    /// the thread itself during its own turn, and cleared by a waker
    /// during *its* turn.
    Blocked = 1,
    /// Exited; never returns to the protocol.
    Finished = 2,
}

impl Status {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Status::Active,
            1 => Status::Blocked,
            2 => Status::Finished,
            _ => unreachable!("invalid status byte"),
        }
    }
}

#[derive(Debug)]
struct Slot {
    clock: CachePadded<AtomicU64>,
    status: CachePadded<AtomicU8>,
    /// Parking support for blocked threads.
    park_lock: Mutex<()>,
    park_cv: Condvar,
}

impl Slot {
    fn new(clock: u64, status: Status) -> Self {
        Self {
            clock: CachePadded::new(AtomicU64::new(clock)),
            status: CachePadded::new(AtomicU8::new(status as u8)),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
        }
    }
}

/// A thread's cached handle to its own slot (keeps the hot `tick` path to
/// one uncontended atomic add).
#[derive(Clone, Debug)]
pub struct KendoHandle {
    slot: Arc<Slot>,
    tid: Tid,
}

impl KendoHandle {
    /// The thread this handle belongs to.
    #[must_use]
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Advances this thread's logical clock by `n`.
    #[inline]
    pub fn tick(&self, n: u64) {
        self.slot.clock.fetch_add(n, SeqCst);
    }

    /// This thread's current logical clock.
    #[inline]
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.slot.clock.load(SeqCst)
    }
}

/// Observer of deterministic wakeups, set by the runtime's flight
/// recorder: called with `(woken tid, its new clock)` from inside the
/// waker's turn — a deterministic point of the schedule, which is what
/// makes wake events recordable at all.
pub type WakeTap = Box<dyn Fn(Tid, u64) + Send + Sync>;

/// The global arbitration state shared by all threads of one run.
pub struct KendoState {
    slots: RwLock<Vec<Arc<Slot>>>,
    /// How long a parked thread waits between deadlock scans.
    deadlock_after: Option<Duration>,
    /// Period of a parked thread's idle re-check (condvar wait timeout
    /// and idle-callback cadence). Purely a liveness/latency knob: the
    /// wakeups themselves are deterministic.
    idle_poll: Duration,
    /// Set when some thread panicked: every waiter unwinds instead of
    /// spinning forever on a protocol that will never advance.
    abort: AtomicBool,
    /// Bumped on every non-monotone event (wake, register). The
    /// `has_turn` scan is not atomic; ticks are monotone so stale reads
    /// only make the scan conservative, but a *wake* can re-activate a
    /// blocked thread with a lower clock. Requiring the epoch to be
    /// unchanged across the scan makes a successful scan sound: any
    /// wake that lands after a clean scan must come from a turn-holder
    /// whose clock the scan already saw (and rejected, had it been
    /// smaller).
    wake_epoch: AtomicU64,
    /// Flight-recorder wake observer. Cold: read under an uncontended
    /// `RwLock` only on the wake path (already a slow path), `None` when
    /// recording is off.
    wake_tap: RwLock<Option<WakeTap>>,
}

impl std::fmt::Debug for KendoState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KendoState")
            .field("threads", &self.num_threads())
            .field("deadlock_after", &self.deadlock_after)
            .field("aborted", &self.aborted())
            .field("state", &self.debug_state())
            .finish_non_exhaustive()
    }
}

impl Default for KendoState {
    fn default() -> Self {
        Self::new()
    }
}

impl KendoState {
    /// Creates an empty arbitration state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: RwLock::new(Vec::new()),
            deadlock_after: Some(Duration::from_secs(30)),
            idle_poll: Duration::from_millis(20),
            abort: AtomicBool::new(false),
            wake_epoch: AtomicU64::new(0),
            wake_tap: RwLock::new(None),
        }
    }

    /// Installs the wake observer (see [`WakeTap`]). The runtime sets
    /// this once at run start, before any thread can wake another.
    pub fn set_wake_tap(&self, tap: WakeTap) {
        *self.wake_tap.write() = Some(tap);
    }

    /// Aborts the run: all threads waiting in [`KendoState::wait_for_turn`]
    /// or [`KendoState::park_until_active`] panic promptly. Used to
    /// propagate a panic out of one thread without deadlocking the rest.
    pub fn set_abort(&self) {
        self.abort.store(true, SeqCst);
        // Kick every parked thread so they observe the flag.
        for slot in self.slots.read().iter() {
            let _guard = slot.park_lock.lock();
            slot.park_cv.notify_all();
        }
    }

    /// `true` once the run has been aborted.
    #[must_use]
    pub fn aborted(&self) -> bool {
        self.abort.load(SeqCst)
    }

    fn check_abort(&self) {
        assert!(
            !self.aborted(),
            "kendo: run aborted by supervisor (peer panic, deadlock, or wedge)"
        );
    }

    /// Overrides the deadlock-detection timeout (`None` disables it).
    #[must_use]
    pub fn with_deadlock_timeout(mut self, t: Option<Duration>) -> Self {
        self.deadlock_after = t;
        self
    }

    /// Overrides the parked-thread idle re-check period (clamped to
    /// ≥ 1 ms so a degenerate knob cannot turn parks into spins).
    #[must_use]
    pub fn with_idle_poll(mut self, period: Duration) -> Self {
        self.idle_poll = period.max(Duration::from_millis(1));
        self
    }

    /// Epoch-stable stable-deadlock scan: `Some(blocked tids)` iff at
    /// least one registered thread is `Blocked` and **every** registered,
    /// non-`Finished` thread is `Blocked` — verified with `wake_epoch`
    /// unchanged across the scan, exactly like `has_turn`.
    ///
    /// Why a clean scan proves a *stable* deadlock: a `Blocked` thread
    /// never wakes another thread (wakes happen only inside a waker's
    /// turn, and only `Active` threads take turns), so once every live
    /// thread is observed `Blocked` under one epoch, no future wake can
    /// originate inside the run. The state is permanent — no wall clock
    /// needed. A mid-scan register or wake bumps the epoch and the scan
    /// reports `None` (caller retries later).
    #[must_use]
    pub fn blocked_snapshot(&self) -> Option<Vec<Tid>> {
        let epoch_before = self.wake_epoch.load(SeqCst);
        let mut blocked = Vec::new();
        {
            let slots = self.slots.read();
            for (i, s) in slots.iter().enumerate() {
                match Status::from_u8(s.status.load(SeqCst)) {
                    Status::Active => return None,
                    Status::Blocked => blocked.push(i as Tid),
                    Status::Finished => {}
                }
            }
        }
        if blocked.is_empty() || self.wake_epoch.load(SeqCst) != epoch_before {
            return None;
        }
        Some(blocked)
    }

    /// Registers the next thread with an initial clock and returns its
    /// slot handle. Thread IDs are dense and sequential; callers must
    /// invoke this under a deterministic order (inside the parent's turn).
    pub fn register(&self, initial_clock: u64) -> KendoHandle {
        let mut slots = self.slots.write();
        let tid = slots.len() as Tid;
        let slot = Arc::new(Slot::new(initial_clock, Status::Active));
        slots.push(Arc::clone(&slot));
        drop(slots);
        self.wake_epoch.fetch_add(1, SeqCst);
        KendoHandle { slot, tid }
    }

    /// Number of registered threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.slots.read().len()
    }

    /// A thread's current clock.
    #[must_use]
    pub fn clock_of(&self, tid: Tid) -> u64 {
        self.slots.read()[tid as usize].clock.load(SeqCst)
    }

    /// A thread's current status.
    #[must_use]
    pub fn status_of(&self, tid: Tid) -> Status {
        Status::from_u8(self.slots.read()[tid as usize].status.load(SeqCst))
    }

    /// `true` iff `(clock, tid)` is minimal over all `Active` threads —
    /// verified by an epoch-stable scan (see `wake_epoch`).
    fn has_turn(&self, me: &KendoHandle) -> bool {
        let epoch_before = self.wake_epoch.load(SeqCst);
        let my_clock = me.clock();
        let slots = self.slots.read();
        for (i, s) in slots.iter().enumerate() {
            if i as Tid == me.tid {
                continue;
            }
            if Status::from_u8(s.status.load(SeqCst)) != Status::Active {
                continue;
            }
            let c = s.clock.load(SeqCst);
            if (c, i as Tid) < (my_clock, me.tid) {
                return false;
            }
        }
        drop(slots);
        // A wake or register slipped in mid-scan: the snapshot may be
        // inconsistent (a thread observed Blocked may now be Active with
        // a smaller clock). Retry.
        self.wake_epoch.load(SeqCst) == epoch_before
    }

    /// Blocks until the calling thread holds the turn.
    ///
    /// On return the caller is the unique minimal active thread and stays
    /// so until it ticks; everything it does in between is serialized
    /// against every other turn body, in deterministic order.
    pub fn wait_for_turn(&self, me: &KendoHandle) {
        let mut spins: u32 = 0;
        let start = Instant::now();
        loop {
            // Abort check must precede the fast-path return: a thread
            // that is always the clock leader (all peers dead or parked)
            // would otherwise never observe the abort and could spin
            // forever on application state nobody will ever publish.
            self.check_abort();
            if self.has_turn(me) {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 4096 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(20));
                if spins.is_multiple_of(1_000) && std::env::var_os("RFDET_KENDO_TRACE").is_some() {
                    eprintln!(
                        "[kendo-trace] t{} waiting at clock {}: {}",
                        me.tid,
                        me.clock(),
                        self.debug_state()
                    );
                }
                if let Some(limit) = self.deadlock_after {
                    if start.elapsed() > limit {
                        // Abort first so every *other* waiter (parked or
                        // spinning) wakes and unwinds too, instead of
                        // only the thread that noticed.
                        self.set_abort();
                        panic!(
                            "kendo: thread {} starved waiting for its turn for {:?} \
                             (clock={}, state={})",
                            me.tid,
                            limit,
                            me.clock(),
                            self.debug_state()
                        );
                    }
                }
            }
        }
    }

    /// Marks the calling thread blocked. **Must be called while holding
    /// the turn**, immediately before the final tick of a blocking
    /// operation.
    pub fn block(&self, me: &KendoHandle) {
        debug_assert!(
            self.has_turn(me),
            "block() outside of turn: t{} clock={} state={}",
            me.tid,
            me.clock(),
            self.debug_state()
        );
        me.slot.status.store(Status::Blocked as u8, SeqCst);
    }

    /// Marks the calling thread finished. Must be called while holding
    /// the turn; the turn is implicitly released (finished threads are
    /// skipped by arbitration).
    pub fn finish(&self, me: &KendoHandle) {
        debug_assert!(self.has_turn(me), "finish() outside of turn");
        me.slot.status.store(Status::Finished as u8, SeqCst);
    }

    /// Marks a thread finished without the turn assertion. Only for panic
    /// cleanup after [`KendoState::set_abort`].
    pub fn finish_forced(&self, tid: Tid) {
        self.slots.read()[tid as usize]
            .status
            .store(Status::Finished as u8, SeqCst);
    }

    /// Reactivates a blocked thread with a deterministic new clock.
    ///
    /// **Must be called from inside the waker's turn**, and `new_clock`
    /// must be strictly greater than the waker's current clock — this
    /// keeps the waker minimal until its own tick and makes the order of
    /// the wakeup deterministic.
    pub fn wake(&self, target: Tid, new_clock: u64) {
        let slot = Arc::clone(&self.slots.read()[target as usize]);
        debug_assert_eq!(
            Status::from_u8(slot.status.load(SeqCst)),
            Status::Blocked,
            "wake of a non-blocked thread {target}"
        );
        // Clock first, then status: a concurrent has_turn() that observes
        // Active will also observe the new clock or a larger one.
        slot.clock.store(new_clock, SeqCst);
        {
            let _guard = slot.park_lock.lock();
            slot.status.store(Status::Active as u8, SeqCst);
            slot.park_cv.notify_all();
        }
        self.wake_epoch.fetch_add(1, SeqCst);
        if let Some(tap) = self.wake_tap.read().as_ref() {
            tap(target, new_clock);
        }
    }

    /// Parks the calling thread until some waker flips it back to
    /// `Active`. Call after [`KendoState::block`] + the final tick of the
    /// blocking operation.
    ///
    /// Two-stage wait: a yield-polling stage first — a yielding thread
    /// keeps a tiny vruntime, so the scheduler runs it promptly after the
    /// waker's store even when a compute-bound thread saturates the CPU
    /// (futex wakeups on a loaded single CPU otherwise cost a scheduler
    /// granule per lock handoff, serializing handoff-heavy programs) —
    /// then a condvar sleep for long parks so join-style waits do not
    /// burn cycles.
    pub fn park_until_active(&self, me: &KendoHandle) {
        self.park_until_active_with(me, || {});
    }

    /// [`KendoState::park_until_active`] with an idle callback, invoked
    /// periodically while still parked. RFDet uses this to run prelock
    /// pre-merging off the critical path (§4.5) and to keep a blocked
    /// thread's published clock advancing so it does not pin garbage
    /// collection.
    ///
    /// Returns the number of *idle wakeups*: sleep timeouts (one per
    /// [`KendoState::with_idle_poll`] period) that expired while the
    /// thread was still parked. The metrics layer histograms this so
    /// spurious-wakeup regressions are visible; the count must never
    /// feed back into scheduling.
    pub fn park_until_active_with(&self, me: &KendoHandle, mut on_idle: impl FnMut()) -> u64 {
        let start = Instant::now();
        // Stage 1: poll. Typical lock/condvar handoffs land here; a
        // yielding thread keeps a tiny vruntime so the scheduler runs it
        // promptly after the waker's store even on a saturated CPU.
        let mut polls: u32 = 0;
        while Status::from_u8(me.slot.status.load(SeqCst)) != Status::Active {
            self.check_abort();
            polls += 1;
            if polls < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            if polls > 20_000 {
                break; // long park: fall through to sleeping
            }
        }
        // Stage 2: sleep on the slot condvar, doing idle work between
        // timeouts.
        let mut idle_wakeups: u64 = 0;
        let mut guard = me.slot.park_lock.lock();
        let mut next_idle = Instant::now() + self.idle_poll;
        while Status::from_u8(me.slot.status.load(SeqCst)) != Status::Active {
            self.check_abort();
            me.slot.park_cv.wait_for(&mut guard, self.idle_poll);
            if Status::from_u8(me.slot.status.load(SeqCst)) == Status::Active {
                break;
            }
            idle_wakeups += 1;
            if Instant::now() >= next_idle {
                // Run the callback without the park lock so wakers are
                // never blocked on it.
                drop(guard);
                on_idle();
                guard = me.slot.park_lock.lock();
                next_idle = Instant::now() + self.idle_poll;
            }
            if let Some(limit) = self.deadlock_after {
                if start.elapsed() > limit
                    && Status::from_u8(me.slot.status.load(SeqCst)) != Status::Active
                {
                    // Wake-all before unwinding: peers parked on other
                    // slots must not be left behind.
                    drop(guard);
                    self.set_abort();
                    panic!(
                        "kendo: thread {} parked for {:?} without wakeup — \
                         likely an application deadlock (state={})",
                        me.tid,
                        limit,
                        self.debug_state()
                    );
                }
            }
        }
        idle_wakeups
    }

    /// Snapshot of all slots for diagnostics.
    #[must_use]
    pub fn debug_state(&self) -> String {
        let slots = self.slots.read();
        let mut s = String::new();
        for (i, slot) in slots.iter().enumerate() {
            use std::fmt::Write;
            let _ = write!(
                s,
                "[t{} {:?}@{}]",
                i,
                Status::from_u8(slot.status.load(SeqCst)),
                slot.clock.load(SeqCst)
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn register_assigns_sequential_tids() {
        let k = KendoState::new();
        assert_eq!(k.register(0).tid(), 0);
        assert_eq!(k.register(1).tid(), 1);
        assert_eq!(k.num_threads(), 2);
    }

    #[test]
    fn tick_and_clock() {
        let k = KendoState::new();
        let h = k.register(5);
        assert_eq!(h.clock(), 5);
        h.tick(3);
        assert_eq!(h.clock(), 8);
        assert_eq!(k.clock_of(0), 8);
    }

    #[test]
    fn single_thread_always_has_turn() {
        let k = KendoState::new();
        let h = k.register(0);
        k.wait_for_turn(&h); // returns immediately
        h.tick(1);
        k.wait_for_turn(&h);
    }

    #[test]
    fn lower_clock_wins_tie_by_tid() {
        let k = KendoState::new();
        let a = k.register(10);
        let b = k.register(10);
        // Equal clocks: tid 0 is minimal.
        assert!(k.has_turn(&a));
        assert!(!k.has_turn(&b));
        a.tick(1);
        assert!(k.has_turn(&b));
        assert!(!k.has_turn(&a));
    }

    #[test]
    fn blocked_threads_are_skipped() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(100);
        assert!(!k.has_turn(&b));
        k.block(&a); // a has the turn (clock 0) and blocks itself
        assert!(k.has_turn(&b));
    }

    #[test]
    fn finished_threads_are_skipped() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(100);
        k.finish(&a);
        assert!(k.has_turn(&b));
    }

    #[test]
    fn wake_restores_participation_with_new_clock() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(50);
        k.block(&a);
        assert!(k.has_turn(&b));
        k.wake(0, 60);
        assert_eq!(k.clock_of(0), 60);
        assert_eq!(k.status_of(0), Status::Active);
        assert!(k.has_turn(&b), "b (50) still beats rewoken a (60)");
        b.tick(11);
        assert!(k.has_turn(&a));
    }

    #[test]
    fn park_returns_after_wake() {
        let k = Arc::new(KendoState::new());
        let a = k.register(0);
        let _b = k.register(10);
        k.block(&a);
        let k2 = Arc::clone(&k);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            k2.wake(0, 42);
        });
        k.park_until_active(&a);
        assert_eq!(a.clock(), 42);
        waker.join().unwrap();
    }

    #[test]
    fn idle_poll_knob_counts_idle_wakeups() {
        let k = Arc::new(KendoState::new().with_idle_poll(Duration::from_millis(5)));
        let a = k.register(0);
        let _b = k.register(10);
        k.block(&a);
        let k2 = Arc::clone(&k);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            k2.wake(0, 42);
        });
        let idles = k.park_until_active_with(&a, || {});
        waker.join().unwrap();
        assert_eq!(a.clock(), 42);
        assert!(
            idles >= 1,
            "a 200 ms park polling every 5 ms must observe idle wakeups, got {idles}"
        );
    }

    #[test]
    fn degenerate_idle_poll_clamps_to_one_ms() {
        let k = KendoState::new().with_idle_poll(Duration::ZERO);
        assert_eq!(k.idle_poll, Duration::from_millis(1));
    }

    #[test]
    fn turn_order_is_deterministic_under_contention() {
        // N threads each take 50 turns appending their tid; the resulting
        // sequence must be a pure function of the tick amounts.
        fn run() -> Vec<Tid> {
            let k = Arc::new(KendoState::new());
            let order = Arc::new(Mutex::new(Vec::new()));
            let started = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let k = Arc::clone(&k);
                    let order = Arc::clone(&order);
                    let started = Arc::clone(&started);
                    let h = k.register(0);
                    std::thread::spawn(move || {
                        started.fetch_add(1, SeqCst);
                        while started.load(SeqCst) < 4 {
                            std::hint::spin_loop();
                        }
                        for round in 0..50u64 {
                            k.wait_for_turn(&h);
                            order.lock().push(h.tid());
                            // Uneven, deterministic progress per thread.
                            h.tick(1 + (i + round) % 3);
                        }
                        k.wait_for_turn(&h);
                        k.finish(&h);
                    })
                })
                .collect();
            for t in handles {
                t.join().unwrap();
            }
            Arc::try_unwrap(order).unwrap().into_inner()
        }
        let a = run();
        let b = run();
        let c = run();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn wake_tap_observes_wakes_inside_the_waker_turn() {
        let k = KendoState::new();
        let a = k.register(0);
        let _b = k.register(50);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        k.set_wake_tap(Box::new(move |tid, clock| seen2.lock().push((tid, clock))));
        k.block(&a);
        k.wake(0, 60);
        assert_eq!(*seen.lock(), vec![(0, 60)]);
        assert_eq!(a.clock(), 60, "tap observation does not perturb the wake");
    }

    #[test]
    fn blocked_snapshot_only_when_every_live_thread_is_blocked() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(1);
        assert!(k.blocked_snapshot().is_none(), "both threads active");
        k.block(&a);
        assert!(k.blocked_snapshot().is_none(), "b still active");
        k.block(&b);
        assert_eq!(k.blocked_snapshot(), Some(vec![0, 1]));
    }

    #[test]
    fn blocked_snapshot_skips_finished_threads() {
        let k = KendoState::new();
        let a = k.register(0);
        let b = k.register(1);
        k.block(&a);
        k.finish(&b);
        assert_eq!(k.blocked_snapshot(), Some(vec![0]));
    }

    #[test]
    fn blocked_snapshot_none_when_all_finished_or_empty() {
        let k = KendoState::new();
        assert!(k.blocked_snapshot().is_none());
        let a = k.register(0);
        k.finish(&a);
        assert!(k.blocked_snapshot().is_none());
    }

    #[test]
    fn timeout_aborts_the_whole_run_not_just_the_scanner() {
        let k = Arc::new(KendoState::new().with_deadlock_timeout(Some(Duration::from_millis(100))));
        let _a = k.register(10); // minimal active thread; never progresses
        let b = k.register(10); // loses the tid tie-break: starves
        let c = k.register(0); // will park
        k.block(&c); // c holds the turn (clock 0) and blocks itself
        let k2 = Arc::clone(&k);
        let starved = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k2.wait_for_turn(&b))).is_err()
        });
        // b's starvation timeout must flip the global abort so c — parked
        // on a different slot, with no wakeup ever coming — unwinds too.
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k.park_until_active(&c)));
        assert!(res.is_err(), "abort must reach parked peers");
        assert!(k.aborted());
        assert!(starved.join().unwrap());
    }

    #[test]
    #[should_panic(expected = "starved")]
    fn starvation_detector_fires() {
        let k = KendoState::new().with_deadlock_timeout(Some(Duration::from_millis(150)));
        let _a = k.register(0); // never ticks, never blocked
        let b = k.register(10);
        k.wait_for_turn(&b); // can never win
    }
}
