//! Failure-injection jitter.
//!
//! Determinism means physical timing must not matter. To *test* that, the
//! runtime can inject pseudo-random delays at its internal scheduling
//! points; results must be bit-identical for every jitter seed. This is
//! the failure-injection hook promised in DESIGN.md §8.

use std::time::Duration;

/// A deterministic per-thread jitter source (SplitMix64 over seed ⊕ tid).
#[derive(Clone, Debug)]
pub struct Jitter {
    state: u64,
    max_us: u64,
}

impl Jitter {
    /// Creates a jitter source for one thread.
    #[must_use]
    pub fn new(seed: u64, tid: u32, max_us: u64) -> Self {
        Self {
            state: seed ^ (u64::from(tid).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            max_us,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Sleeps a pseudo-random duration in `[0, max_us]` µs. Roughly half
    /// of the calls sleep zero time so fast paths are still exercised.
    pub fn pause(&mut self) {
        let r = self.next();
        if r & 1 == 0 {
            return;
        }
        let us = (r >> 1) % (self.max_us + 1);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Jitter::new(7, 3, 10);
        let mut b = Jitter::new(7, 3, 10);
        for _ in 0..32 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_tids_differ() {
        let mut a = Jitter::new(7, 0, 10);
        let mut b = Jitter::new(7, 1, 10);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn pause_with_zero_max_never_sleeps_long() {
        let mut j = Jitter::new(1, 0, 0);
        let start = std::time::Instant::now();
        for _ in 0..100 {
            j.pause();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}
