//! `service.*`: a sharded in-memory ledger service (DESIGN.md §4.12).
//!
//! The promotion of `examples/replicated_ledger.rs` into a real
//! workload: `threads` workers *plus the main thread* each own one
//! account stripe via deterministic lock striping and ingest a
//! DetRng-derived request stream — point gets, puts, cross-shard
//! transfers, and range scans — in barrier-delimited rounds. Every
//! round ends in a full-membership barrier episode, so the core
//! backend's checkpointing cuts cleanly through the stream, and the
//! body is written in the `chaos.long_haul` tick-parity style (all
//! control state in deterministic memory, spawn gate free when not
//! taken) so the identical closure serves as fresh root, spawned
//! worker, and per-tid resume body.
//!
//! Cross-stripe traffic is asynchronous: a transfer debits the source
//! stripe synchronously and delivers the credit through the owner's
//! bounded mailbox queue. A full mailbox triggers the deterministic
//! [`RetryPolicy`] — bounded retries with logical-clock backoff, then
//! a deterministic shed counted in [`rfdet_api::Stats`] — so the
//! digest stays a pure function of the input even under overload.
//! Money is conserved by construction: the final report checks
//! `balances + undelivered credits == initial + puts - shed`.

use crate::{Params, Size, Suite, Workload};
use rfdet_api::{
    BarrierId, DetRng, DmtCtx, DmtCtxExt, MutexId, RetryPolicy, ThreadFn, ThreadHandle, Tid,
};

/// Per-thread round counter: one 64-byte slot per tid, owner-written.
const SV_CELL_BASE: u64 = 0x1000;
const SV_CELL_STRIDE: u64 = 0x40;
/// Per-thread counter block (checksum, retries, shed, put/shed sums),
/// owner-written, read by main in the final report.
const SV_CTR_BASE: u64 = 0x2000;
const SV_CTR_STRIDE: u64 = 0x40;
const CTR_CHECKSUM: u64 = 0;
const CTR_RETRIES: u64 = 8;
const CTR_SHED: u64 = 16;
const CTR_PUT_SUM: u64 = 24;
const CTR_SHED_SUM: u64 = 32;
/// Account stripes: one page per stripe, 64 u64 balances each.
const SV_ACCT_BASE: u64 = 0x1_0000;
const SV_STRIPE_STRIDE: u64 = 0x1000;
/// Accounts per stripe (stripe of account `a` is `a / 64`).
pub const ACCTS_PER_STRIPE: u64 = 64;
/// Credit mailboxes: one page per stripe — a depth word followed by
/// packed `(account << 32) | amount` entries.
const SV_QUEUE_BASE: u64 = 0x4_0000;
/// Every account starts with this balance.
pub const INIT_BAL: u64 = 1_000;
/// Stripe mutexes live at `SV_MUTEX_BASE + stripe`.
const SV_MUTEX_BASE: u32 = 200;

/// Sync ops a worker executes in the init round (its barrier arrival).
pub const OPS_INIT_ROUND: u64 = 1;

/// Sync ops a worker executes per request round when no retry fires:
/// phase A locks every stripe once (`2·parties`), phase B again
/// (`2·parties`), phase C locks its own stripe (`2`), plus the round
/// barrier (`1`). Retries add 2 per attempt — use this to place
/// `FaultPlan` coordinates, not to predict exact totals under load.
#[must_use]
pub fn ops_per_request_round(threads: usize) -> u64 {
    4 * (threads.max(1) as u64 + 1) + 3
}

/// One multiply-xor-rotate step (same diffusion as `chaos::lh_mix`).
fn sv_mix(h: u64, v: u64) -> u64 {
    (h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .rotate_left(27)
        .wrapping_mul(0x0100_0000_01B3)
}

/// Scale knobs for one run. Bench rounds are derived from the thread
/// count so `requests ≥ 1M` holds at every width.
#[derive(Clone, Copy, Debug)]
struct SvScale {
    /// Request rounds (the init round is extra).
    request_rounds: u64,
    /// Requests generated per thread per round.
    batch: u64,
    /// Mailbox capacity in credit entries.
    qcap: u64,
}

fn sv_scale(workers: usize, size: Size) -> SvScale {
    let parties = workers as u64 + 1;
    match size {
        Size::Test => SvScale {
            request_rounds: 6,
            batch: 24,
            qcap: 64,
        },
        Size::Bench => {
            let batch = 1024;
            let per_round = batch * parties;
            SvScale {
                request_rounds: 1_050_000u64.div_ceil(per_round),
                batch,
                qcap: 320,
            }
        }
    }
}

/// Request rounds one run executes (the init round is extra). Combined
/// with [`ops_per_request_round`] this places late-run [`FaultPlan`]
/// coordinates and checkpoint cadences at any scale.
///
/// [`FaultPlan`]: rfdet_api::FaultPlan
#[must_use]
pub fn request_rounds_per_run(threads: usize, size: Size) -> u64 {
    sv_scale(threads.max(1), size).request_rounds
}

/// Total requests one run ingests: `rounds × batch × parties`. Pure —
/// bench throughput cells report `requests_per_run / wall_time` without
/// instrumenting the run.
#[must_use]
pub fn requests_per_run(threads: usize, size: Size) -> u64 {
    let workers = threads.max(1);
    let s = sv_scale(workers, size);
    s.request_rounds * s.batch * (workers as u64 + 1)
}

fn stripe_mutex(s: u64) -> MutexId {
    MutexId(SV_MUTEX_BASE + u32::try_from(s).expect("stripe fits u32"))
}

fn acct_addr(acct: u64) -> u64 {
    let stripe = acct / ACCTS_PER_STRIPE;
    SV_ACCT_BASE + SV_STRIPE_STRIDE * stripe + 8 * (acct % ACCTS_PER_STRIPE)
}

fn queue_depth(s: u64) -> u64 {
    SV_QUEUE_BASE + SV_STRIPE_STRIDE * s
}

fn queue_entry(s: u64, i: u64) -> u64 {
    queue_depth(s) + 8 + 8 * i
}

/// One ledger request. Accounts are global ids in
/// `0..parties · ACCTS_PER_STRIPE`; a request's *primary* stripe (the
/// one whose lock applies it) is its account's stripe — a transfer's is
/// the debit side's.
#[derive(Clone, Copy)]
enum Req {
    Get(u64),
    Put(u64, u64),
    Transfer(u64, u64, u64),
    Scan(u64),
}

impl Req {
    fn primary_stripe(self) -> u64 {
        match self {
            Req::Get(a) | Req::Put(a, _) | Req::Transfer(a, _, _) | Req::Scan(a) => {
                a / ACCTS_PER_STRIPE
            }
        }
    }
}

/// The request mix: 40 % point gets, 25 % puts, 20 % cross-shard
/// transfers, 15 % 8-account range scans.
fn gen_requests(rng: &mut DetRng, batch: u64, total_accts: u64) -> Vec<Req> {
    (0..batch)
        .map(|_| {
            let k = rng.next_below(100);
            if k < 40 {
                Req::Get(rng.next_below(total_accts))
            } else if k < 65 {
                Req::Put(rng.next_below(total_accts), 1 + rng.next_below(99))
            } else if k < 85 {
                let from = rng.next_below(total_accts);
                let to = rng.next_below(total_accts);
                Req::Transfer(from, to, 1 + rng.next_below(49))
            } else {
                Req::Scan(rng.next_below(total_accts))
            }
        })
        .collect()
}

/// `service.ledger`: the sharded ledger at the run's requested scale.
pub fn ledger(p: Params) -> ThreadFn {
    let workers = p.threads.max(1);
    service_body(workers, sv_scale(workers, p.size), p.seed)
}

/// `service.ledger.bench`: pinned to bench scale regardless of
/// `p.size`, because checkpoints and traces record only `name@threads`
/// and a resume must rederive the round count from the name alone.
pub fn ledger_bench(p: Params) -> ThreadFn {
    let workers = p.threads.max(1);
    service_body(workers, sv_scale(workers, Size::Bench), p.seed)
}

/// Per-tid resume bodies for `service.ledger` (checkpoint-restore entry
/// points). The body is tid-independent — each thread reads its own
/// round cell from restored memory.
#[must_use]
pub fn ledger_resume(p: Params) -> Box<dyn Fn(Tid) -> ThreadFn + Send + Sync> {
    let workers = p.threads.max(1);
    let sc = sv_scale(workers, p.size);
    let seed = p.seed;
    Box::new(move |_tid| service_body(workers, sc, seed))
}

/// [`ledger_resume`] pinned to bench scale, mirroring [`ledger_bench`].
#[must_use]
pub fn ledger_bench_resume(p: Params) -> Box<dyn Fn(Tid) -> ThreadFn + Send + Sync> {
    let workers = p.threads.max(1);
    let sc = sv_scale(workers, Size::Bench);
    let seed = p.seed;
    Box::new(move |_tid| service_body(workers, sc, seed))
}

/// The shared body: fresh root, spawned worker, and resume body are the
/// same closure. Round 0 initializes the thread's own stripe; rounds
/// `1..=request_rounds` ingest; after the loop each thread reports its
/// checksum and main audits conservation.
fn service_body(workers: usize, sc: SvScale, seed: u64) -> ThreadFn {
    Box::new(move |ctx: &mut dyn DmtCtx| {
        let tid = u64::from(ctx.tid());
        let parties = workers as u64 + 1;
        let bar = BarrierId(2);
        let cell = SV_CELL_BASE + SV_CELL_STRIDE * tid;
        let ctr = SV_CTR_BASE + SV_CTR_STRIDE * tid;
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ticks: 32,
            max_backoff_ticks: 256,
        };
        loop {
            let r: u64 = ctx.read(cell);
            if tid == 0 && r == 0 {
                for _ in 0..workers {
                    ctx.spawn(service_body(workers, sc, seed));
                }
            }
            if r > sc.request_rounds {
                break;
            }
            if r == 0 {
                for i in 0..ACCTS_PER_STRIPE {
                    ctx.write(acct_addr(tid * ACCTS_PER_STRIPE + i), INIT_BAL);
                }
            } else {
                request_round(ctx, tid, parties, sc, seed, r, ctr, policy);
            }
            ctx.write(cell, r + 1);
            ctx.barrier(bar, usize::try_from(parties).expect("parties fits usize"));
        }
        let checksum: u64 = ctx.read(ctr + CTR_CHECKSUM);
        let retries: u64 = ctx.read(ctr + CTR_RETRIES);
        let shed: u64 = ctx.read(ctr + CTR_SHED);
        ctx.emit_str(&format!("t{tid}:{checksum:016x},r{retries},s{shed};"));
        if tid == 0 {
            for t in 1..=workers {
                ctx.join(ThreadHandle(u32::try_from(t).expect("tid fits u32")));
            }
            audit(ctx, parties);
        }
    })
}

/// One request round: generate the batch, apply it stripe-by-stripe,
/// deliver cross-stripe credits through bounded mailboxes (retry then
/// shed on overflow), drain the thread's own mailbox, and fold the
/// round into the thread's deterministic counters.
#[allow(clippy::too_many_arguments)]
fn request_round(
    ctx: &mut dyn DmtCtx,
    tid: u64,
    parties: u64,
    sc: SvScale,
    seed: u64,
    r: u64,
    ctr: u64,
    policy: RetryPolicy,
) {
    // Heap churn: one short-lived block per round, so
    // `FaultPlan::fail_alloc(tid, n)` has a dense, well-indexed target
    // (the nth allocation is round n).
    let scratch = ctx.alloc(256, 8);
    ctx.write(scratch, r);
    ctx.dealloc(scratch);

    let mut rng = DetRng::new(
        seed ^ tid.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ r.wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    let total_accts = parties * ACCTS_PER_STRIPE;
    let reqs = gen_requests(&mut rng, sc.batch, total_accts);
    let mut buckets: Vec<Vec<Req>> = vec![Vec::new(); parties as usize];
    for q in reqs {
        buckets[q.primary_stripe() as usize].push(q);
    }

    // Phase A — apply, stripe by stripe. Every stripe is locked exactly
    // once even when its bucket is empty, so per-thread sync-op indices
    // are a fixed function of the round (FaultPlan coordinates land on
    // the same program point on every backend).
    let mut checksum: u64 = ctx.read(ctr + CTR_CHECKSUM);
    let mut put_sum = 0u64;
    let mut credits: Vec<(u64, u64)> = Vec::new(); // (to_acct, amount)
    for s in 0..parties {
        ctx.lock(stripe_mutex(s));
        for q in &buckets[s as usize] {
            match *q {
                Req::Get(a) => {
                    let b: u64 = ctx.read(acct_addr(a));
                    checksum = sv_mix(checksum, b ^ a);
                }
                Req::Put(a, amt) => {
                    let b: u64 = ctx.read(acct_addr(a));
                    ctx.write(acct_addr(a), b + amt);
                    put_sum += amt;
                }
                Req::Transfer(from, to, amt) => {
                    let b: u64 = ctx.read(acct_addr(from));
                    if b >= amt {
                        ctx.write(acct_addr(from), b - amt);
                        credits.push((to, amt));
                    } else {
                        // Declined transfers still reach the digest.
                        checksum = sv_mix(checksum, 0xDEC1_14ED ^ from);
                    }
                }
                Req::Scan(a) => {
                    let stripe = a / ACCTS_PER_STRIPE;
                    let start = (a % ACCTS_PER_STRIPE).min(ACCTS_PER_STRIPE - 8);
                    for i in 0..8 {
                        let b: u64 = ctx.read(acct_addr(stripe * ACCTS_PER_STRIPE + start + i));
                        checksum = sv_mix(checksum, b);
                    }
                }
            }
        }
        ctx.unlock(stripe_mutex(s));
    }

    // Phase B — deliver credits to owner mailboxes, all-or-nothing per
    // stripe. A full mailbox backs off on the *logical* clock
    // (RetryPolicy) and retries; an exhausted budget sheds the group
    // deterministically, with the lost sum recorded for the audit.
    let mut outboxes: Vec<Vec<(u64, u64)>> = vec![Vec::new(); parties as usize];
    for (to, amt) in credits {
        outboxes[(to / ACCTS_PER_STRIPE) as usize].push((to, amt));
    }
    let mut retries_n = 0u64;
    let mut shed_n = 0u64;
    let mut shed_sum = 0u64;
    for s in 0..parties {
        let group = &outboxes[s as usize];
        let mut attempt = 0u32;
        loop {
            ctx.lock(stripe_mutex(s));
            let depth: u64 = ctx.read(queue_depth(s));
            if depth + group.len() as u64 <= sc.qcap {
                if !group.is_empty() {
                    for (i, (to, amt)) in group.iter().enumerate() {
                        ctx.write(queue_entry(s, depth + i as u64), (to << 32) | amt);
                    }
                    ctx.write(queue_depth(s), depth + group.len() as u64);
                }
                ctx.unlock(stripe_mutex(s));
                break;
            }
            ctx.unlock(stripe_mutex(s));
            match policy.backoff_ticks(attempt) {
                Some(ticks) => {
                    ctx.tick(ticks);
                    attempt += 1;
                    retries_n += 1;
                }
                None => {
                    shed_n += group.len() as u64;
                    shed_sum += group.iter().map(|&(_, amt)| amt).sum::<u64>();
                    break;
                }
            }
        }
    }

    // Phase C — drain the thread's own mailbox. Credits enqueued by
    // peers after this drain wait for the next round (or the final
    // audit, which counts them as in-flight).
    ctx.lock(stripe_mutex(tid));
    let depth: u64 = ctx.read(queue_depth(tid));
    for i in 0..depth {
        let e: u64 = ctx.read(queue_entry(tid, i));
        let (to, amt) = (e >> 32, e & 0xFFFF_FFFF);
        let b: u64 = ctx.read(acct_addr(to));
        ctx.write(acct_addr(to), b + amt);
        checksum = sv_mix(checksum, e);
    }
    if depth > 0 {
        ctx.write(queue_depth(tid), 0);
    }
    ctx.unlock(stripe_mutex(tid));

    // Fold the round into the thread's deterministic counters and the
    // run's Stats (digest-neutral bookkeeping).
    ctx.write(ctr + CTR_CHECKSUM, checksum);
    for (off, delta) in [
        (CTR_RETRIES, retries_n),
        (CTR_SHED, shed_n),
        (CTR_PUT_SUM, put_sum),
        (CTR_SHED_SUM, shed_sum),
    ] {
        let v: u64 = ctx.read(ctr + off);
        ctx.write(ctr + off, v + delta);
    }
    ctx.count_app_events(retries_n, shed_n);
}

/// Main's post-join audit: every unit of money must be on a balance, in
/// an undelivered mailbox entry, or explicitly shed.
fn audit(ctx: &mut dyn DmtCtx, parties: u64) {
    let mut balances = 0u64;
    for a in 0..parties * ACCTS_PER_STRIPE {
        let b: u64 = ctx.read(acct_addr(a));
        balances += b;
    }
    let mut in_flight = 0u64;
    let mut in_flight_n = 0u64;
    for s in 0..parties {
        let depth: u64 = ctx.read(queue_depth(s));
        in_flight_n += depth;
        for i in 0..depth {
            let e: u64 = ctx.read(queue_entry(s, i));
            in_flight += e & 0xFFFF_FFFF;
        }
    }
    let mut puts = 0u64;
    let mut shed = 0u64;
    for t in 0..parties {
        let ctr = SV_CTR_BASE + SV_CTR_STRIDE * t;
        let p: u64 = ctx.read(ctr + CTR_PUT_SUM);
        let s: u64 = ctx.read(ctr + CTR_SHED_SUM);
        puts += p;
        shed += s;
    }
    let expected = parties * ACCTS_PER_STRIPE * INIT_BAL + puts - shed;
    let actual = balances + in_flight;
    let verdict = if actual == expected { "ok" } else { "BAD" };
    ctx.emit_str(&format!(
        "total={actual:016x} q={in_flight_n} conserve={verdict}"
    ));
}

/// The service scenario registry (names carry the `service.` prefix).
#[must_use]
pub fn scenarios() -> Vec<Workload> {
    vec![
        Workload {
            name: "service.ledger",
            suite: Suite::Stress,
            factory: ledger,
        },
        Workload {
            name: "service.ledger.bench",
            suite: Suite::Stress,
            factory: ledger_bench,
        },
    ]
}

/// Resume-body resolver for the `service.*` family (both variants keep
/// all control state in deterministic memory).
#[must_use]
pub fn resume_bodies(name: &str, p: Params) -> Option<Box<dyn Fn(Tid) -> ThreadFn + Send + Sync>> {
    match name {
        "service.ledger" => Some(ledger_resume(p)),
        "service.ledger.bench" => Some(ledger_bench_resume(p)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfdet_api::{DmtBackend, RunConfig};
    use rfdet_dthreads::DthreadsBackend;

    #[test]
    fn ledger_is_deterministic_and_conserves_money() {
        let p = Params::new(3, Size::Test);
        let base = DthreadsBackend.run_expect(&RunConfig::small(), ledger(p));
        let text = String::from_utf8(base.output.clone()).expect("utf8 report");
        assert!(text.starts_with("t0:"), "main checksum leads: {text}");
        for t in 1..=3 {
            assert!(text.contains(&format!("t{t}:")), "worker {t}: {text}");
        }
        assert!(text.contains("conserve=ok"), "money conserved: {text}");
        let again = DthreadsBackend.run_expect(&RunConfig::small(), ledger(p));
        assert_eq!(base.output, again.output, "ledger must be deterministic");
    }

    #[test]
    fn bench_scale_meets_the_million_request_floor() {
        for threads in [2, 4, 8, 16] {
            assert!(
                requests_per_run(threads, Size::Bench) >= 1_000_000,
                "{threads} threads"
            );
        }
        // Test scale stays tiny.
        assert_eq!(requests_per_run(3, Size::Test), 6 * 24 * 4);
    }

    #[test]
    fn overload_sheds_deterministically_and_still_conserves() {
        // A one-entry mailbox forces the retry/shed path without
        // needing bench scale: any credit group larger than the
        // leftover capacity backs off three times and sheds.
        let sc = SvScale {
            request_rounds: 6,
            batch: 24,
            qcap: 1,
        };
        let body = || service_body(2, sc, 0x5EED_0001);
        let out = DthreadsBackend.run_expect(&RunConfig::small(), body());
        let text = String::from_utf8(out.output.clone()).expect("utf8 report");
        assert!(text.contains("conserve=ok"), "shed money audited: {text}");
        assert!(out.stats.app_retries > 0, "retry path exercised");
        assert!(out.stats.app_shed > 0, "shed path exercised");
        let again = DthreadsBackend.run_expect(&RunConfig::small(), body());
        assert_eq!(out.output, again.output, "overload path is deterministic");
    }

    #[test]
    fn registry_and_resume_bodies_resolve() {
        let names: Vec<&str> = scenarios().iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["service.ledger", "service.ledger.bench"]);
        let p = Params::new(2, Size::Test);
        assert!(resume_bodies("service.ledger", p).is_some());
        assert!(resume_bodies("service.ledger.bench", p).is_some());
        assert!(resume_bodies("service.nonesuch", p).is_none());
    }
}
