//! Shared-memory building blocks for the workloads.

use rfdet_api::{Addr, CondId, DmtCtx, DmtCtxExt, MutexId};

/// A SPLASH-2 `c.m4.null.POSIX`-style barrier built from one mutex and
/// one condition variable over shared memory — the configuration the
/// paper evaluates, chosen precisely because it stresses lock/wait/signal
/// traffic ("this configuration uses lock and unlock to implement
/// barrier", §5.1).
///
/// Layout: two `u64` counters (arrivals, generation) at `base`.
#[derive(Clone, Copy, Debug)]
pub struct LockBarrier {
    base: Addr,
    mutex: MutexId,
    cond: CondId,
    parties: u64,
}

impl LockBarrier {
    /// Bytes of shared memory a barrier occupies.
    pub const SHARED_BYTES: u64 = 16;

    /// Creates a barrier over `base` (16 bytes, zero-initialized) using
    /// the given sync-var IDs.
    #[must_use]
    pub fn new(base: Addr, mutex: MutexId, cond: CondId, parties: u64) -> Self {
        Self {
            base,
            mutex,
            cond,
            parties,
        }
    }

    /// Waits until all parties arrive.
    pub fn wait(&self, ctx: &mut dyn DmtCtx) {
        ctx.lock(self.mutex);
        let gen: u64 = ctx.read(self.base + 8);
        let arrived: u64 = ctx.read::<u64>(self.base) + 1;
        if arrived == self.parties {
            ctx.write::<u64>(self.base, 0);
            ctx.write::<u64>(self.base + 8, gen + 1);
            ctx.cond_broadcast(self.cond);
        } else {
            ctx.write::<u64>(self.base, arrived);
            while ctx.read::<u64>(self.base + 8) == gen {
                ctx.cond_wait(self.cond, self.mutex);
            }
        }
        ctx.unlock(self.mutex);
    }
}

/// FNV-1a over a shared `u64` array — workloads use this to fold their
/// results into a deterministic checksum.
pub fn checksum_u64s(ctx: &mut dyn DmtCtx, base: Addr, count: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..count {
        let v: u64 = ctx.read_idx(base, i);
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// FNV-1a over a shared `f64` array via bit patterns.
pub fn checksum_f64s(ctx: &mut dyn DmtCtx, base: Addr, count: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..count {
        let v: f64 = ctx.read_idx(base, i);
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Q31.32 fixed-point scale for order-invariant shared reductions.
///
/// Lock-guarded `f64` accumulation into a shared cell is race-free but
/// *schedule-sensitive*: float addition is not associative, so the
/// lock-acquisition order (nondeterministic on pthreads) leaks into the
/// low bits of the sum. Integer addition is associative and commutative,
/// so quantizing each thread's contribution once and summing in `i64`
/// makes the result identical under every interleaving — which is what
/// lets the conformance matrix demand byte-identical output from a
/// nondeterministic backend.
const FIXED_ONE: f64 = (1u64 << 32) as f64;

/// Quantizes a contribution for a fixed-point shared accumulator.
#[must_use]
pub fn to_fixed(v: f64) -> i64 {
    #[allow(clippy::cast_possible_truncation)]
    {
        (v * FIXED_ONE).round() as i64 // saturating cast: deterministic
    }
}

/// Reads back a fixed-point accumulator as `f64`.
#[must_use]
pub fn from_fixed(v: i64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        v as f64 / FIXED_ONE
    }
}

/// Adds `v` to the fixed-point accumulator at `addr` (caller holds the
/// guarding lock). Wrapping add: overflow would be wrong the same way
/// under every schedule, never differently per run.
pub fn add_fixed(ctx: &mut dyn DmtCtx, addr: Addr, v: f64) {
    let cur: i64 = ctx.read(addr);
    ctx.write(addr, cur.wrapping_add(to_fixed(v)));
}

/// Reads the fixed-point accumulator at `addr` as `f64`.
pub fn read_fixed(ctx: &mut dyn DmtCtx, addr: Addr) -> f64 {
    from_fixed(ctx.read::<i64>(addr))
}

/// Splits `0..total` into `parts` contiguous chunks; returns chunk `i`.
#[must_use]
pub fn chunk(total: u64, parts: u64, i: u64) -> std::ops::Range<u64> {
    let per = total / parts;
    let rem = total % parts;
    let start = i * per + i.min(rem);
    let len = per + u64::from(i < rem);
    start..start + len
}

/// Mutex/cond ID allocation convention: workloads carve IDs from
/// disjoint ranges so helpers never collide with app locks.
pub mod ids {
    use rfdet_api::{CondId, MutexId};

    /// Barrier sync vars live at 90_000+.
    #[must_use]
    pub fn barrier_mutex(i: u32) -> MutexId {
        MutexId(90_000 + i)
    }
    /// Condition-variable twin of [`barrier_mutex`].
    #[must_use]
    pub fn barrier_cond(i: u32) -> CondId {
        CondId(90_000 + i)
    }
    /// Application data locks live at 10_000+.
    #[must_use]
    pub fn data_mutex(i: u32) -> MutexId {
        MutexId(10_000 + i)
    }
    /// Pipeline-queue sync vars live at 50_000+.
    #[must_use]
    pub fn queue_mutex(i: u32) -> MutexId {
        MutexId(50_000 + i)
    }
    /// Condition-variable for "queue not empty".
    #[must_use]
    pub fn queue_nonempty_cond(i: u32) -> CondId {
        CondId(50_000 + 2 * i)
    }
    /// Condition-variable for "queue not full".
    #[must_use]
    pub fn queue_nonfull_cond(i: u32) -> CondId {
        CondId(50_001 + 2 * i)
    }
}

/// A bounded FIFO of `u64` items in shared memory, protected by one lock
/// and two condition variables — the pipeline plumbing of dedup/ferret.
///
/// Layout at `base`: head, tail, count, closed (4×u64), then `cap` slots.
#[derive(Clone, Copy, Debug)]
pub struct SharedQueue {
    base: Addr,
    cap: u64,
    mutex: MutexId,
    nonempty: CondId,
    nonfull: CondId,
}

impl SharedQueue {
    /// Shared bytes needed for a queue of capacity `cap`.
    #[must_use]
    pub fn shared_bytes(cap: u64) -> u64 {
        32 + 8 * cap
    }

    /// Creates a queue over zero-initialized shared memory at `base`.
    #[must_use]
    pub fn new(base: Addr, cap: u64, index: u32) -> Self {
        Self {
            base,
            cap,
            mutex: ids::queue_mutex(index),
            nonempty: ids::queue_nonempty_cond(index),
            nonfull: ids::queue_nonfull_cond(index),
        }
    }

    /// Blocking push.
    pub fn push(&self, ctx: &mut dyn DmtCtx, item: u64) {
        ctx.lock(self.mutex);
        while ctx.read::<u64>(self.base + 16) == self.cap {
            ctx.cond_wait(self.nonfull, self.mutex);
        }
        let tail: u64 = ctx.read(self.base + 8);
        ctx.write_idx::<u64>(self.base + 32, tail, item);
        ctx.write::<u64>(self.base + 8, (tail + 1) % self.cap);
        let count: u64 = ctx.read::<u64>(self.base + 16) + 1;
        ctx.write::<u64>(self.base + 16, count);
        ctx.cond_signal(self.nonempty);
        ctx.unlock(self.mutex);
    }

    /// Marks the queue closed; poppers drain remaining items then get
    /// `None`.
    pub fn close(&self, ctx: &mut dyn DmtCtx) {
        ctx.lock(self.mutex);
        ctx.write::<u64>(self.base + 24, 1);
        ctx.cond_broadcast(self.nonempty);
        ctx.unlock(self.mutex);
    }

    /// Blocking pop; `None` once closed and drained.
    pub fn pop(&self, ctx: &mut dyn DmtCtx) -> Option<u64> {
        ctx.lock(self.mutex);
        loop {
            let count: u64 = ctx.read(self.base + 16);
            if count > 0 {
                let head: u64 = ctx.read(self.base);
                let item: u64 = ctx.read_idx(self.base + 32, head);
                ctx.write::<u64>(self.base, (head + 1) % self.cap);
                ctx.write::<u64>(self.base + 16, count - 1);
                ctx.cond_signal(self.nonfull);
                ctx.unlock(self.mutex);
                return Some(item);
            }
            if ctx.read::<u64>(self.base + 24) == 1 {
                ctx.unlock(self.mutex);
                return None;
            }
            ctx.cond_wait(self.nonempty, self.mutex);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_sum_is_order_invariant() {
        // The exact failure mode: three f64 contributions whose float
        // sum depends on association order...
        let parts = [1.0f64 + 1e-16, 1e-16, -1.0];
        let fwd = (parts[0] + parts[1]) + parts[2];
        let rev = (parts[2] + parts[1]) + parts[0];
        assert_ne!(fwd.to_bits(), rev.to_bits(), "picked a sensitive case");
        // ...but whose fixed-point sum does not.
        let mut a = 0i64;
        let mut b = 0i64;
        for p in parts {
            a = a.wrapping_add(to_fixed(p));
        }
        for p in parts.iter().rev() {
            b = b.wrapping_add(to_fixed(*p));
        }
        assert_eq!(a, b);
        assert!((from_fixed(a) - 2e-16).abs() < 1.0 / (1u64 << 31) as f64);
    }

    #[test]
    fn fixed_point_roundtrip_precision() {
        for v in [0.0, 1.0, -3.75, 123_456.789, -0.000_1] {
            assert!((from_fixed(to_fixed(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn chunk_covers_everything_exactly_once() {
        for total in [0u64, 1, 7, 100, 101] {
            for parts in [1u64, 2, 3, 8] {
                let mut covered = 0;
                let mut next = 0;
                for i in 0..parts {
                    let r = chunk(total, parts, i);
                    assert_eq!(r.start, next, "chunks must be contiguous");
                    next = r.end;
                    covered += r.end - r.start;
                }
                assert_eq!(covered, total);
                assert_eq!(next, total);
            }
        }
    }

    #[test]
    fn chunk_is_balanced() {
        for i in 0..3 {
            let r = chunk(10, 3, i);
            let len = r.end - r.start;
            assert!((3..=4).contains(&len));
        }
    }

    #[test]
    fn id_ranges_are_disjoint() {
        assert_ne!(ids::barrier_mutex(0).0, ids::data_mutex(0).0);
        assert_ne!(ids::data_mutex(0).0, ids::queue_mutex(0).0);
        assert_ne!(ids::queue_nonempty_cond(0).0, ids::queue_nonfull_cond(0).0);
        assert_ne!(ids::queue_nonempty_cond(1).0, ids::queue_nonfull_cond(0).0);
    }
}
