//! The seeded-race corpus: eight small programs that each contain one
//! deliberately planted data race, paired with a *clean twin* that fixes
//! the race with real synchronization and must report zero races.
//!
//! Every variant is built so its race reports are **backend-invariant**:
//!
//! * exactly two racy participants per word — with three or more, which
//!   pair gets recorded first depends on observation order, which
//!   differs between DLRC propagation and lockstep token order;
//! * when both participants mix reads and writes on the same word (the
//!   counter, lazy-init), the participants are synchronization-free
//!   siblings, whose slices reach the detector in thread-id order on
//!   every deterministic backend (join order for DLRC, token order for
//!   the lockstep engine); single-combination races (pure write/write,
//!   or one writer and one reader) are observation-order-independent
//!   because reports are canonicalized;
//! * every racy write stores a value that differs from current memory —
//!   byte diffing is the write oracle, and a silent store produces no
//!   diff to check;
//! * racy reads are one-shot peeks, never spin loops — DLRC never
//!   propagates a spin-awaited write, so a spin would hang the run;
//! * per-worker tick counts stay far below the default quantum, so
//!   CoreDet-q never splits an interval (a quantum break would seal an
//!   interval at a smaller sync-op count than the other backends).
//!
//! Workers are always spawned and joined in thread-id order, and the
//! `mask` parameter disables workers *without unspawning them* — tids
//! and sync-op counts of the survivors are unchanged, so a race digest
//! found with all workers enabled is still the digest the minimized
//! reproducer reports. `replay races` ddmin-shrinks over this mask.

use crate::{Params, Suite, Workload};
use rfdet_api::{BarrierId, DmtCtx, DmtCtxExt, MutexId, ThreadFn};

/// First byte of the corpus's raced-on region (page 1 by default).
const BASE: u64 = 4096;

/// All-workers-enabled mask.
const ALL: u64 = u64::MAX;

fn on(mask: u64, t: usize) -> bool {
    mask & (1u64 << (t as u32 & 63)) != 0
}

/// A nonzero, per-worker, seed-derived value — never equal to current
/// (zeroed or differently-seeded) memory, so every store survives the
/// byte diff.
fn val(seed: u64, t: u64, salt: u64) -> u64 {
    seed.wrapping_mul(2 * t + 3)
        .wrapping_add(salt << 7)
        .wrapping_add(0x9E37_79B9)
        | 1
}

/// Spawns `threads` workers in tid order, joins them in tid order, then
/// emits a checksum of the raced-on region (read after every join, so
/// the checksum reads are ordered with everything).
fn scaffold(
    p: Params,
    mask: u64,
    words: u64,
    body: impl Fn(&mut dyn DmtCtx, usize) + Send + Sync + Clone + 'static,
    pre: impl Fn(&mut dyn DmtCtx) + Send + 'static,
    peek: impl Fn(&mut dyn DmtCtx) + Send + 'static,
) -> ThreadFn {
    Box::new(move |ctx: &mut dyn DmtCtx| {
        pre(ctx);
        let handles: Vec<_> = (0..p.threads)
            .map(|t| {
                let body = body.clone();
                let enabled = on(mask, t);
                ctx.spawn(Box::new(move |ctx: &mut dyn DmtCtx| {
                    if enabled {
                        body(ctx, t);
                    }
                }))
            })
            .collect();
        peek(ctx);
        for h in handles {
            ctx.join(h);
        }
        let sig = crate::util::checksum_u64s(ctx, BASE, words);
        ctx.emit_str(&format!("races signature: {sig:016x}\n"));
    })
}

fn no_pre(_: &mut dyn DmtCtx) {}
fn no_peek(_: &mut dyn DmtCtx) {}

/// `counter` — the classic unsynchronized shared counter: each worker
/// pair read-modify-writes one word with no synchronization at all.
/// One report per pair (the survivors' slices arrive in tid order, so
/// the recorded conflict is the lower tid's write against the higher
/// tid's read on every backend).
fn counter(p: Params, mask: u64, locked: bool) -> ThreadFn {
    let seed = p.seed;
    scaffold(
        p,
        mask,
        (p.threads as u64).div_ceil(2),
        move |ctx, t| {
            let pair = (t / 2) as u64;
            let w = BASE + 8 * pair;
            let bump = val(seed, t as u64, 1);
            if locked {
                let m = MutexId(pair as u32);
                ctx.lock(m);
                let v: u64 = ctx.read(w);
                ctx.write(w, v.wrapping_add(bump));
                ctx.unlock(m);
            } else {
                let v: u64 = ctx.read(w);
                ctx.write(w, v.wrapping_add(bump));
            }
        },
        no_pre,
        no_peek,
    )
}

/// `handoff` — a racy flag handoff: the even worker of each pair writes
/// a data word then raises a flag; the odd worker peeks the flag once
/// and reads the data unconditionally. Two reports per pair (flag and
/// data, each writer-vs-reader). The clean twin does both sides under
/// the pair's mutex.
fn handoff(p: Params, mask: u64, locked: bool) -> ThreadFn {
    let seed = p.seed;
    scaffold(
        p,
        mask,
        2 * (p.threads as u64).div_ceil(2),
        move |ctx, t| {
            let pair = (t / 2) as u64;
            let data = BASE + 16 * pair;
            let flag = data + 8;
            let m = MutexId(pair as u32);
            if t % 2 == 0 {
                if locked {
                    ctx.lock(m);
                }
                ctx.write(data, val(seed, t as u64, 2));
                ctx.write(flag, 1u64);
                if locked {
                    ctx.unlock(m);
                }
            } else {
                if locked {
                    ctx.lock(m);
                }
                let _f: u64 = ctx.read(flag);
                let _d: u64 = ctx.read(data);
                if locked {
                    ctx.unlock(m);
                }
            }
        },
        no_pre,
        no_peek,
    )
}

/// `lazy_init` — racy double-checked initialization: both workers of a
/// pair peek the init word, see it unset, and both initialize it plus a
/// value word. Two reports per pair (init word and value word). The
/// clean twin does the check-and-set under a mutex.
fn lazy_init(p: Params, mask: u64, locked: bool) -> ThreadFn {
    let seed = p.seed;
    scaffold(
        p,
        mask,
        2 * (p.threads as u64).div_ceil(2),
        move |ctx, t| {
            let pair = (t / 2) as u64;
            let init = BASE + 16 * pair;
            let value = init + 8;
            let m = MutexId(pair as u32);
            if locked {
                ctx.lock(m);
            }
            let seen: u64 = ctx.read(init);
            if seen == 0 {
                ctx.write(value, val(seed, t as u64, 3));
                ctx.write(init, 1u64);
            }
            if locked {
                ctx.unlock(m);
            }
        },
        no_pre,
        no_peek,
    )
}

/// `barrier_miss` — an off-by-one barrier: each worker writes its own
/// word, crosses a barrier, then reads its neighbour's word. In the
/// racy variant worker 0 skips the barrier (and the others' barrier
/// only counts themselves), so exactly two edges are missing: worker
/// 0's read of word 1, and the last worker's read of word 0. Two
/// reports at any thread count.
fn barrier_miss(p: Params, mask: u64, everyone: bool) -> ThreadFn {
    let seed = p.seed;
    let n = p.threads;
    // Barrier parties = the enabled workers that will actually arrive;
    // computed from the mask so a shrunk run still releases the wall.
    let parties = (0..n)
        .filter(|&t| on(mask, t) && (everyone || t != 0))
        .count();
    scaffold(
        p,
        mask,
        n as u64,
        move |ctx, t| {
            let mine = BASE + 8 * t as u64;
            let next = BASE + 8 * (((t + 1) % n) as u64);
            ctx.write(mine, val(seed, t as u64, 4));
            if (everyone || t != 0) && parties > 0 {
                ctx.barrier(BarrierId(0), parties);
            }
            let _peek: u64 = ctx.read(next);
        },
        no_pre,
        no_peek,
    )
}

/// `torn_write` — a torn two-word write: both workers of a pair store a
/// 16-byte "struct" (two adjacent words) with no synchronization. Two
/// write/write reports per pair; single-combination, so observation
/// order never matters. The clean twin stores under the pair's mutex.
fn torn_write(p: Params, mask: u64, locked: bool) -> ThreadFn {
    let seed = p.seed;
    scaffold(
        p,
        mask,
        2 * (p.threads as u64).div_ceil(2),
        move |ctx, t| {
            let pair = (t / 2) as u64;
            let lo = BASE + 16 * pair;
            let hi = lo + 8;
            let v = val(seed, t as u64, 5);
            let m = MutexId(pair as u32);
            if locked {
                ctx.lock(m);
            }
            ctx.write(lo, v);
            ctx.write(hi, v ^ 0xFFFF);
            if locked {
                ctx.unlock(m);
            }
        },
        no_pre,
        no_peek,
    )
}

/// `mailbox_peek` — a racy mailbox peek: the producer fills a slot and
/// bumps the count under the pair's mutex; the consumer first *peeks*
/// the count without the lock, then re-reads it properly inside the
/// lock. One report per pair: the producer's locked count write against
/// the consumer's unlocked peek. The clean twin peeks under the lock.
fn mailbox_peek(p: Params, mask: u64, locked_peek: bool) -> ThreadFn {
    let seed = p.seed;
    scaffold(
        p,
        mask,
        2 * (p.threads as u64).div_ceil(2),
        move |ctx, t| {
            let pair = (t / 2) as u64;
            let slot = BASE + 16 * pair;
            let count = slot + 8;
            let m = MutexId(pair as u32);
            if t % 2 == 0 {
                ctx.lock(m);
                ctx.write(slot, val(seed, t as u64, 6));
                ctx.write(count, 1u64);
                ctx.unlock(m);
            } else {
                if locked_peek {
                    ctx.lock(m);
                }
                let _peek: u64 = ctx.read(count);
                if !locked_peek {
                    ctx.lock(m);
                }
                let _s: u64 = ctx.read(slot);
                let _c: u64 = ctx.read(count);
                ctx.unlock(m);
            }
        },
        no_pre,
        no_peek,
    )
}

/// `shard_overlap` — an off-by-one shard split: each worker fills a
/// four-word shard, but the racy variant's bounds overlap each shard's
/// first word with its left neighbour's last. One write/write report
/// per adjacent worker pair (`threads - 1` total).
fn shard_overlap(p: Params, mask: u64, disjoint: bool) -> ThreadFn {
    let seed = p.seed;
    const SHARD: u64 = 4;
    scaffold(
        p,
        mask,
        SHARD * p.threads as u64,
        move |ctx, t| {
            let t = t as u64;
            let start = if disjoint || t == 0 {
                SHARD * t
            } else {
                SHARD * t - 1 // overlaps the left neighbour's last word
            };
            for i in start..SHARD * (t + 1) {
                ctx.write(BASE + 8 * i, val(seed, t, 7 + i));
            }
        },
        no_pre,
        no_peek,
    )
}

/// `result_peek` — harvesting a result before joining: each worker
/// writes its result word; the racy main peeks worker 0's result
/// *before* any join. One report (main's read vs worker 0's write),
/// and a 1-minimal reproducer of a single worker.
fn result_peek(p: Params, mask: u64, peek_early: bool) -> ThreadFn {
    let seed = p.seed;
    scaffold(
        p,
        mask,
        p.threads as u64,
        move |ctx, t| {
            ctx.write(BASE + 8 * t as u64, val(seed, t as u64, 20));
        },
        no_pre,
        move |ctx| {
            if peek_early {
                let _early: u64 = ctx.read(BASE);
            }
        },
    )
}

macro_rules! corpus_entry {
    ($fn_name:ident, $builder:ident, $flag:expr) => {
        fn $fn_name(p: Params) -> ThreadFn {
            $builder(p, ALL, $flag)
        }
    };
}

corpus_entry!(counter_racy, counter, false);
corpus_entry!(counter_clean, counter, true);
corpus_entry!(handoff_racy, handoff, false);
corpus_entry!(handoff_clean, handoff, true);
corpus_entry!(lazy_init_racy, lazy_init, false);
corpus_entry!(lazy_init_clean, lazy_init, true);
corpus_entry!(barrier_miss_racy, barrier_miss, false);
corpus_entry!(barrier_miss_clean, barrier_miss, true);
corpus_entry!(torn_write_racy, torn_write, false);
corpus_entry!(torn_write_clean, torn_write, true);
corpus_entry!(mailbox_peek_racy, mailbox_peek, false);
corpus_entry!(mailbox_peek_clean, mailbox_peek, true);
corpus_entry!(shard_overlap_racy, shard_overlap, false);
corpus_entry!(shard_overlap_clean, shard_overlap, true);
corpus_entry!(result_peek_racy, result_peek, true);
corpus_entry!(result_peek_clean, result_peek, false);

/// The full corpus: eight racy variants interleaved with their clean
/// twins (`*_clean` suffix).
#[must_use]
pub fn corpus() -> Vec<Workload> {
    fn w(name: &'static str, factory: fn(Params) -> ThreadFn) -> Workload {
        Workload {
            name,
            suite: Suite::Stress,
            factory,
        }
    }
    vec![
        w("races.counter", counter_racy),
        w("races.counter_clean", counter_clean),
        w("races.handoff", handoff_racy),
        w("races.handoff_clean", handoff_clean),
        w("races.lazy_init", lazy_init_racy),
        w("races.lazy_init_clean", lazy_init_clean),
        w("races.barrier_miss", barrier_miss_racy),
        w("races.barrier_miss_clean", barrier_miss_clean),
        w("races.torn_write", torn_write_racy),
        w("races.torn_write_clean", torn_write_clean),
        w("races.mailbox_peek", mailbox_peek_racy),
        w("races.mailbox_peek_clean", mailbox_peek_clean),
        w("races.shard_overlap", shard_overlap_racy),
        w("races.shard_overlap_clean", shard_overlap_clean),
        w("races.result_peek", result_peek_racy),
        w("races.result_peek_clean", result_peek_clean),
    ]
}

/// Builds a corpus workload with an explicit worker-enable `mask`
/// (bit `t` enables worker `t`) — the shrink axis `replay races` runs
/// ddmin over. `mask == u64::MAX` reproduces the registry entry.
#[must_use]
pub fn root_masked(name: &str, p: Params, mask: u64) -> Option<ThreadFn> {
    Some(match name {
        "races.counter" => counter(p, mask, false),
        "races.counter_clean" => counter(p, mask, true),
        "races.handoff" => handoff(p, mask, false),
        "races.handoff_clean" => handoff(p, mask, true),
        "races.lazy_init" => lazy_init(p, mask, false),
        "races.lazy_init_clean" => lazy_init(p, mask, true),
        "races.barrier_miss" => barrier_miss(p, mask, false),
        "races.barrier_miss_clean" => barrier_miss(p, mask, true),
        "races.torn_write" => torn_write(p, mask, false),
        "races.torn_write_clean" => torn_write(p, mask, true),
        "races.mailbox_peek" => mailbox_peek(p, mask, false),
        "races.mailbox_peek_clean" => mailbox_peek(p, mask, true),
        "races.shard_overlap" => shard_overlap(p, mask, false),
        "races.shard_overlap_clean" => shard_overlap(p, mask, true),
        "races.result_peek" => result_peek(p, mask, true),
        "races.result_peek_clean" => result_peek(p, mask, false),
        _ => return None,
    })
}

/// How many race reports variant `name` must produce at `threads`
/// workers with every worker enabled — the corpus's ground truth.
/// Clean twins are always zero.
#[must_use]
pub fn expected_races(name: &str, threads: usize) -> Option<usize> {
    let pairs = threads / 2;
    Some(match name {
        "races.counter" => pairs,
        "races.handoff" | "races.lazy_init" | "races.torn_write" => 2 * pairs,
        "races.barrier_miss" => 2,
        "races.mailbox_peek" => pairs,
        "races.shard_overlap" => threads.saturating_sub(1),
        "races.result_peek" => 1,
        n if n.starts_with("races.") && n.ends_with("_clean") => 0,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Size;

    #[test]
    fn corpus_is_racy_clean_pairs() {
        let c = corpus();
        assert_eq!(c.len(), 16, "eight variants, eight clean twins");
        for pair in c.chunks(2) {
            assert_eq!(format!("{}_clean", pair[0].name), pair[1].name);
            assert_eq!(
                expected_races(pair[1].name, 4),
                Some(0),
                "clean twins must expect zero races"
            );
            assert!(
                expected_races(pair[0].name, 4).unwrap() > 0,
                "racy variants must expect at least one race"
            );
        }
    }

    #[test]
    fn masked_roots_cover_the_corpus() {
        for w in corpus() {
            assert!(
                root_masked(w.name, Params::new(4, Size::Test), u64::MAX).is_some(),
                "no masked builder for {}",
                w.name
            );
        }
        assert!(root_masked("races.nonesuch", Params::new(4, Size::Test), 0).is_none());
    }

    #[test]
    fn factories_build_at_every_oracle_thread_count() {
        for w in corpus() {
            for t in [2usize, 4, 8] {
                let _ = (w.factory)(Params::new(t, Size::Test));
            }
        }
    }
}
